#include "pattern/catalog.h"

#include <cassert>
#include <string>

namespace egocensus {
namespace {

std::string Var(int i) { return std::string(1, static_cast<char>('A' + i)); }

void MustPrepare(Pattern* p) {
  Status s = p->Prepare();
  assert(s.ok());
  (void)s;
}

Pattern MakeClique(const std::string& name, int size, bool labeled) {
  Pattern p(name);
  for (int i = 0; i < size; ++i) p.AddNode(Var(i));
  for (int i = 0; i < size; ++i) {
    for (int j = i + 1; j < size; ++j) {
      p.AddEdge(Var(i), Var(j), /*directed=*/false);
    }
  }
  if (labeled) {
    for (int i = 0; i < size; ++i) {
      p.SetLabelConstraint(Var(i), static_cast<Label>(i));
    }
  }
  MustPrepare(&p);
  return p;
}

}  // namespace

Pattern MakeSingleNode() {
  Pattern p("single_node");
  p.AddNode("A");
  MustPrepare(&p);
  return p;
}

Pattern MakeSingleEdge() {
  Pattern p("single_edge");
  p.AddEdge("A", "B", /*directed=*/false);
  MustPrepare(&p);
  return p;
}

Pattern MakeTriangle(bool labeled) {
  return MakeClique(labeled ? "clq3" : "clq3-unlb", 3, labeled);
}

Pattern MakeClique4(bool labeled) {
  return MakeClique(labeled ? "clq4" : "clq4-unlb", 4, labeled);
}

Pattern MakeSquare(bool labeled) {
  Pattern p(labeled ? "sqr" : "sqr-unlb");
  p.AddEdge("A", "B", false);
  p.AddEdge("B", "C", false);
  p.AddEdge("C", "D", false);
  p.AddEdge("D", "A", false);
  if (labeled) {
    for (int i = 0; i < 4; ++i) {
      p.SetLabelConstraint(Var(i), static_cast<Label>(i));
    }
  }
  MustPrepare(&p);
  return p;
}

Pattern MakePath(int num_nodes, bool labeled) {
  assert(num_nodes >= 2);
  Pattern p(labeled ? "path" + std::to_string(num_nodes)
                    : "path" + std::to_string(num_nodes) + "-unlb");
  for (int i = 0; i + 1 < num_nodes; ++i) {
    p.AddEdge(Var(i), Var(i + 1), false);
  }
  if (labeled) {
    for (int i = 0; i < num_nodes; ++i) {
      p.SetLabelConstraint(Var(i), static_cast<Label>(i % 4));
    }
  }
  MustPrepare(&p);
  return p;
}

Pattern MakeCoordinatorTriad() {
  Pattern p("triad");
  p.AddEdge("A", "B", /*directed=*/true);
  p.AddEdge("B", "C", /*directed=*/true);
  p.AddEdge("A", "C", /*directed=*/true, /*negated=*/true);
  PatternPredicate eq_ab;
  eq_ab.lhs = NodeAttrRef{p.FindNode("A"), "LABEL"};
  eq_ab.op = PredicateOp::kEq;
  eq_ab.rhs = NodeAttrRef{p.FindNode("B"), "LABEL"};
  p.AddPredicate(eq_ab);
  PatternPredicate eq_bc;
  eq_bc.lhs = NodeAttrRef{p.FindNode("B"), "LABEL"};
  eq_bc.op = PredicateOp::kEq;
  eq_bc.rhs = NodeAttrRef{p.FindNode("C"), "LABEL"};
  p.AddPredicate(eq_bc);
  Status s = p.AddSubpattern("coordinator", {"B"});
  assert(s.ok());
  (void)s;
  MustPrepare(&p);
  return p;
}

}  // namespace egocensus
