#ifndef EGOCENSUS_PATTERN_CATALOG_H_
#define EGOCENSUS_PATTERN_CATALOG_H_

#include "pattern/pattern.h"

namespace egocensus {

/// The query patterns of Figure 3 (and Table I), provided as prepared
/// Pattern objects. Labeled variants constrain node i to label i (the
/// figure draws distinct letters inside the circles); the synthetic labeled
/// workloads use 4 labels, so all constraints are within range.

/// Table I row 1: a single node ({?A;}).
Pattern MakeSingleNode();

/// Table I row 2: a single undirected edge ({?A-?B;}).
Pattern MakeSingleEdge();

/// clq3-unlb / clq3: a triangle; labeled variant fixes labels (0, 1, 2).
Pattern MakeTriangle(bool labeled);

/// clq4: a 4-clique; labeled variant fixes labels (0, 1, 2, 3).
Pattern MakeClique4(bool labeled);

/// sqr: a 4-cycle; labeled variant fixes labels (0, 1, 2, 3).
Pattern MakeSquare(bool labeled);

/// A simple path with `num_nodes` nodes; labeled variant fixes label i on
/// node i (mod 4).
Pattern MakePath(int num_nodes, bool labeled);

/// Table I row 4: the directed coordinator triad
/// ?A->?B; ?B->?C; ?A!->?C with all labels equal and subpattern
/// "coordinator" = {?B}.
Pattern MakeCoordinatorTriad();

}  // namespace egocensus

#endif  // EGOCENSUS_PATTERN_CATALOG_H_
