#include "pattern/shape.h"

#include <algorithm>
#include <array>

namespace egocensus {
namespace {

PatternShape Reject(const char* reason) {
  PatternShape shape;
  shape.reject_reason = reason;
  return shape;
}

/// Classifies a connected undirected graph on `n` <= 4 nodes by its size
/// and sorted degree sequence. Prepare() guarantees connectivity of the
/// positive skeleton, so the (n, m, degrees) triple is unambiguous.
ShapeId ClassifySkeleton(int n, int m, std::array<int, 4> degrees) {
  std::sort(degrees.begin(), degrees.begin() + n);
  switch (n) {
    case 1:
      return ShapeId::kSingleton;
    case 2:
      return m == 1 ? ShapeId::kEdge : ShapeId::kGeneric;
    case 3:
      if (m == 2) return ShapeId::kWedge;
      if (m == 3) return ShapeId::kTriangle;
      return ShapeId::kGeneric;
    case 4:
      switch (m) {
        case 3:
          return degrees[3] == 3 ? ShapeId::kClaw : ShapeId::kPath4;
        case 4:
          return degrees[3] == 3 ? ShapeId::kPaw : ShapeId::kCycle4;
        case 5:
          return ShapeId::kDiamond;
        case 6:
          return ShapeId::kClique4;
        default:
          return ShapeId::kGeneric;
      }
    default:
      return ShapeId::kGeneric;
  }
}

}  // namespace

const char* ShapeName(ShapeId id) {
  switch (id) {
    case ShapeId::kGeneric:
      return "generic";
    case ShapeId::kSingleton:
      return "singleton";
    case ShapeId::kEdge:
      return "edge";
    case ShapeId::kWedge:
      return "wedge";
    case ShapeId::kTriangle:
      return "triangle";
    case ShapeId::kPath4:
      return "path4";
    case ShapeId::kClaw:
      return "claw";
    case ShapeId::kPaw:
      return "paw";
    case ShapeId::kCycle4:
      return "cycle4";
    case ShapeId::kDiamond:
      return "diamond";
    case ShapeId::kClique4:
      return "clique4";
  }
  return "?";
}

PatternShape AnalyzeShape(const Pattern& pattern) {
  const int n = pattern.NumNodes();
  if (n < 1 || n > 4) return Reject("more than 4 pattern nodes");
  for (int v = 0; v < n; ++v) {
    if (pattern.LabelConstraint(v).has_value()) {
      return Reject("label constraint");
    }
  }
  if (!pattern.Predicates().empty()) return Reject("attribute predicate");

  // Unordered pair -> bit index in a 4x4 upper triangle.
  auto pair_bit = [](int a, int b) {
    if (a > b) std::swap(a, b);
    return 1u << (a * 4 + b);
  };
  std::uint32_t positive = 0;
  std::uint32_t negative = 0;
  std::array<int, 4> degrees{};
  for (const PatternEdge& e : pattern.PositiveEdges()) {
    if (e.directed) return Reject("directed pattern edge");
    const std::uint32_t bit = pair_bit(e.src, e.dst);
    if ((positive & bit) != 0) return Reject("duplicate pattern edge");
    positive |= bit;
    ++degrees[e.src];
    ++degrees[e.dst];
  }
  for (const PatternEdge& e : pattern.NegativeEdges()) {
    if (e.directed) return Reject("directed pattern edge");
    const std::uint32_t bit = pair_bit(e.src, e.dst);
    if ((positive & bit) != 0) return Reject("contradictory negated edge");
    negative |= bit;
  }

  // All non-adjacent unordered pairs of the positive skeleton.
  std::uint32_t complement = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if ((positive & pair_bit(a, b)) == 0) complement |= pair_bit(a, b);
    }
  }

  PatternShape shape;
  if (negative == 0) {
    shape.induced = false;
  } else if (negative == complement) {
    shape.induced = true;
  } else {
    return Reject("partial negation (neither none nor full complement)");
  }

  const int m = static_cast<int>(pattern.PositiveEdges().size());
  shape.id = ClassifySkeleton(n, m, degrees);
  if (shape.id == ShapeId::kGeneric) return Reject("unrecognized skeleton");
  // A complete skeleton has an empty complement, so "induced" and
  // "non-induced" coincide; canonicalize to non-induced.
  if (complement == 0) shape.induced = false;
  return shape;
}

}  // namespace egocensus
