#include "pattern/pattern.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace egocensus {

int Pattern::AddNode(const std::string& var) {
  auto it = var_index_.find(var);
  if (it != var_index_.end()) return it->second;
  int idx = static_cast<int>(vars_.size());
  vars_.push_back(var);
  var_index_[var] = idx;
  label_constraints_.emplace_back(std::nullopt);
  return idx;
}

int Pattern::FindNode(const std::string& var) const {
  auto it = var_index_.find(var);
  return it == var_index_.end() ? -1 : it->second;
}

void Pattern::AddEdge(const std::string& src, const std::string& dst,
                      bool directed, bool negated) {
  PatternEdge edge;
  edge.src = AddNode(src);
  edge.dst = AddNode(dst);
  edge.directed = directed;
  edge.negated = negated;
  (negated ? negative_edges_ : positive_edges_).push_back(edge);
}

void Pattern::SetLabelConstraint(const std::string& var, Label label) {
  label_constraints_[AddNode(var)] = label;
}

void Pattern::AddPredicate(PatternPredicate predicate) {
  predicates_.push_back(std::move(predicate));
}

Status Pattern::AddSubpattern(const std::string& name,
                              const std::vector<std::string>& vars) {
  std::vector<int> indices;
  for (const auto& v : vars) {
    int idx = FindNode(v);
    if (idx < 0) {
      return Status::InvalidArgument("subpattern " + name +
                                     " references unknown variable " + v);
    }
    indices.push_back(idx);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  if (indices.empty()) {
    return Status::InvalidArgument("subpattern " + name + " is empty");
  }
  subpatterns_[name] = std::move(indices);
  return Status::Ok();
}

bool Pattern::HasGeneralPredicates() const {
  for (const auto& p : predicates_) {
    for (const PredicateOperand* op : {&p.lhs, &p.rhs}) {
      if (const auto* nref = std::get_if<NodeAttrRef>(op)) {
        if (!EqualsIgnoreCase(nref->attr, "LABEL") &&
            !EqualsIgnoreCase(nref->attr, "ID")) {
          return true;
        }
      } else if (std::get_if<EdgeAttrRef>(op) != nullptr) {
        return true;
      }
    }
  }
  return false;
}

Status Pattern::ValidateStructure() const {
  if (vars_.empty()) return Status::InvalidArgument("pattern has no nodes");
  if (vars_.size() > 9) {
    return Status::InvalidArgument(
        "pattern too large (max 9 nodes supported)");
  }
  for (const auto& e : positive_edges_) {
    if (e.src == e.dst) {
      return Status::InvalidArgument("self-loop in pattern " + name_);
    }
  }
  // Positive skeleton must be connected (the search order requires
  // connected prefixes, and disconnected patterns make neighborhood census
  // ill-defined).
  std::vector<char> seen(vars_.size(), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (const auto& e : positive_edges_) {
      int other = -1;
      if (e.src == v) other = e.dst;
      if (e.dst == v) other = e.src;
      if (other >= 0 && !seen[other]) {
        seen[other] = 1;
        ++count;
        stack.push_back(other);
      }
    }
  }
  if (count != vars_.size()) {
    return Status::InvalidArgument("pattern " + name_ +
                                   " is not connected via structural edges");
  }
  // Predicate references must be in range (construction guarantees node
  // refs; edge refs built by parser are checked there too).
  return Status::Ok();
}

void Pattern::ComputeDistances() {
  const std::size_t n = vars_.size();
  adjacency_.assign(n, {});
  for (const auto& e : positive_edges_) {
    auto add = [&](int from, int to, bool out, bool in, bool undir) {
      for (auto& adj : adjacency_[from]) {
        if (adj.node == to) {
          adj.via_out |= out;
          adj.via_in |= in;
          adj.undirected |= undir;
          return;
        }
      }
      Adjacent adj;
      adj.node = to;
      adj.via_out = out;
      adj.via_in = in;
      adj.undirected = undir;
      adjacency_[from].push_back(adj);
    };
    if (e.directed) {
      add(e.src, e.dst, /*out=*/true, /*in=*/false, /*undir=*/false);
      add(e.dst, e.src, /*out=*/false, /*in=*/true, /*undir=*/false);
    } else {
      add(e.src, e.dst, false, false, true);
      add(e.dst, e.src, false, false, true);
    }
  }

  distances_.assign(n * n, kUnreachable);
  eccentricity_.assign(n, 0);
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<int> queue = {static_cast<int>(src)};
    distances_[src * n + src] = 0;
    std::size_t head = 0;
    while (head < queue.size()) {
      int u = queue[head++];
      std::uint32_t du = distances_[src * n + u];
      for (const auto& adj : adjacency_[u]) {
        if (distances_[src * n + adj.node] == kUnreachable) {
          distances_[src * n + adj.node] = du + 1;
          queue.push_back(adj.node);
        }
      }
    }
    std::uint32_t ecc = 0;
    for (std::size_t t = 0; t < n; ++t) {
      ecc = std::max(ecc, distances_[src * n + t]);
    }
    eccentricity_[src] = ecc;
  }
  pivot_ = 0;
  for (std::size_t v = 1; v < n; ++v) {
    if (eccentricity_[v] < eccentricity_[pivot_]) {
      pivot_ = static_cast<int>(v);
    }
  }
}

void Pattern::ComputeSearchOrder() {
  const int n = NumNodes();
  search_order_.clear();
  std::vector<char> added(n, 0);
  auto score = [&](int v, int prefix_links) {
    // More selective nodes first: connections to the matched prefix, then
    // label-constrained nodes, then higher pattern degree.
    return std::tuple<int, int, int, int>(
        prefix_links, label_constraints_[v].has_value() ? 1 : 0,
        static_cast<int>(adjacency_[v].size()), -v);
  };
  int start = 0;
  for (int v = 1; v < n; ++v) {
    if (score(v, 0) > score(start, 0)) start = v;
  }
  search_order_.push_back(start);
  added[start] = 1;
  while (static_cast<int>(search_order_.size()) < n) {
    int best = -1;
    std::tuple<int, int, int, int> best_score;
    for (int v = 0; v < n; ++v) {
      if (added[v]) continue;
      int links = 0;
      for (const auto& adj : adjacency_[v]) {
        if (added[adj.node]) ++links;
      }
      if (links == 0) continue;  // keep prefixes connected
      auto s = score(v, links);
      if (best < 0 || s > best_score) {
        best = v;
        best_score = s;
      }
    }
    // Connectivity was validated, so best >= 0 always holds here.
    search_order_.push_back(best);
    added[best] = 1;
  }
}

namespace {

std::string EncodeOperand(const PredicateOperand& op,
                          const std::vector<int>& perm) {
  std::ostringstream out;
  if (const auto* nref = std::get_if<NodeAttrRef>(&op)) {
    out << 'N' << perm[nref->node] << '.' << ToUpper(nref->attr);
  } else if (const auto* eref = std::get_if<EdgeAttrRef>(&op)) {
    // EDGE(?A, ?B) references resolve in either orientation, so the
    // endpoint order is not significant: encode sorted.
    int a = perm[eref->src];
    int b = perm[eref->dst];
    if (a > b) std::swap(a, b);
    out << 'E' << a << ',' << b << '.' << ToUpper(eref->attr);
  } else {
    out << 'C' << AttributeValueToString(std::get<AttributeValue>(op));
  }
  return out.str();
}

std::string EncodePredicate(const PatternPredicate& p,
                            const std::vector<int>& perm) {
  std::string lhs = EncodeOperand(p.lhs, perm);
  std::string rhs = EncodeOperand(p.rhs, perm);
  // = and != are symmetric; normalize operand order so that automorphisms
  // over symmetric predicates are recognized.
  if ((p.op == PredicateOp::kEq || p.op == PredicateOp::kNe) && rhs < lhs) {
    std::swap(lhs, rhs);
  }
  return lhs + '|' + std::to_string(static_cast<int>(p.op)) + '|' + rhs;
}

std::uint64_t EncodeEdge(const PatternEdge& e, const std::vector<int>& perm) {
  int a = perm[e.src];
  int b = perm[e.dst];
  if (!e.directed && a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(e.directed) << 62) |
         (static_cast<std::uint64_t>(a) << 16) | static_cast<std::uint64_t>(b);
}

}  // namespace

bool Pattern::IsAutomorphism(const std::vector<int>& perm) const {
  const int n = NumNodes();
  for (int v = 0; v < n; ++v) {
    if (label_constraints_[v] != label_constraints_[perm[v]]) return false;
  }
  std::vector<int> identity(n);
  std::iota(identity.begin(), identity.end(), 0);

  auto edges_preserved = [&](const std::vector<PatternEdge>& edges) {
    std::multiset<std::uint64_t> base, mapped;
    for (const auto& e : edges) {
      base.insert(EncodeEdge(e, identity));
      mapped.insert(EncodeEdge(e, perm));
    }
    return base == mapped;
  };
  if (!edges_preserved(positive_edges_)) return false;
  if (!edges_preserved(negative_edges_)) return false;

  {
    std::multiset<std::string> base, mapped;
    for (const auto& p : predicates_) {
      base.insert(EncodePredicate(p, identity));
      mapped.insert(EncodePredicate(p, perm));
    }
    if (base != mapped) return false;
  }

  for (const auto& [name, members] : subpatterns_) {
    std::vector<int> image;
    image.reserve(members.size());
    for (int v : members) image.push_back(perm[v]);
    std::sort(image.begin(), image.end());
    if (image != members) return false;
  }
  return true;
}

void Pattern::ComputeSymmetryConditions() {
  const int n = NumNodes();
  std::vector<std::vector<int>> autos;
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (IsAutomorphism(perm)) autos.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  num_automorphisms_ = autos.size();

  symmetry_conditions_.clear();
  // Grochow-Kellis style: repeatedly fix the smallest node moved by some
  // remaining automorphism, emitting "fixed < everything in its orbit"
  // conditions, then restrict to the stabilizer.
  while (autos.size() > 1) {
    int v = -1;
    for (int cand = 0; cand < n && v < 0; ++cand) {
      for (const auto& a : autos) {
        if (a[cand] != cand) {
          v = cand;
          break;
        }
      }
    }
    std::set<int> orbit;
    for (const auto& a : autos) orbit.insert(a[v]);
    for (int u : orbit) {
      if (u != v) symmetry_conditions_.push_back({v, u});
    }
    std::vector<std::vector<int>> stabilizer;
    for (auto& a : autos) {
      if (a[v] == v) stabilizer.push_back(std::move(a));
    }
    autos = std::move(stabilizer);
  }
}

Status Pattern::Prepare() {
  if (prepared_) return Status::Internal("Prepare() called twice");
  Status s = ValidateStructure();
  if (!s.ok()) return s;
  ComputeDistances();
  ComputeSearchOrder();
  ComputeSymmetryConditions();
  prepared_ = true;
  return Status::Ok();
}

const std::vector<int>* Pattern::FindSubpattern(const std::string& name) const {
  auto it = subpatterns_.find(name);
  return it == subpatterns_.end() ? nullptr : &it->second;
}

namespace {

std::string OperandToText(const PredicateOperand& op,
                          const std::vector<std::string>& vars) {
  if (const auto* nref = std::get_if<NodeAttrRef>(&op)) {
    return "?" + vars[nref->node] + "." + nref->attr;
  }
  if (const auto* eref = std::get_if<EdgeAttrRef>(&op)) {
    return "EDGE(?" + vars[eref->src] + ",?" + vars[eref->dst] + ")." +
           eref->attr;
  }
  const auto& value = std::get<AttributeValue>(op);
  if (const auto* s = std::get_if<std::string>(&value)) {
    return "'" + *s + "'";
  }
  return AttributeValueToString(value);
}

const char* OpSymbol(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kNe:
      return "!=";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string Pattern::ToString() const {
  std::ostringstream out;
  out << "PATTERN " << name_ << " {\n";
  std::vector<char> in_edge(vars_.size(), 0);
  auto emit_edge = [&](const PatternEdge& e) {
    in_edge[e.src] = 1;
    in_edge[e.dst] = 1;
    out << "  ?" << vars_[e.src] << (e.negated ? "!" : "")
        << (e.directed ? "->" : "-") << "?" << vars_[e.dst] << ";\n";
  };
  for (const auto& e : positive_edges_) emit_edge(e);
  for (const auto& e : negative_edges_) emit_edge(e);
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    if (!in_edge[v]) out << "  ?" << vars_[v] << ";\n";
  }
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    if (label_constraints_[v].has_value()) {
      out << "  [?" << vars_[v] << ".LABEL = " << *label_constraints_[v]
          << "];\n";
    }
  }
  for (const auto& p : predicates_) {
    out << "  [" << OperandToText(p.lhs, vars_) << " " << OpSymbol(p.op)
        << " " << OperandToText(p.rhs, vars_) << "];\n";
  }
  for (const auto& [name, members] : subpatterns_) {
    out << "  SUBPATTERN " << name << " {";
    for (int v : members) out << "?" << vars_[v] << "; ";
    out << "}\n";
  }
  out << "}";
  return out.str();
}

}  // namespace egocensus
