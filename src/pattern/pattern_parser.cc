#include "pattern/pattern_parser.h"

#include <optional>

#include "util/strings.h"

namespace egocensus {
namespace {

/// Cursor over the token stream with SQL-ish helpers.
class Cursor {
 public:
  Cursor(const std::vector<Token>& tokens, std::size_t pos)
      : tokens_(tokens), pos_(pos) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return Peek().type == Token::Type::kEnd; }

  bool ConsumePunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] Status Expect(std::string_view punct) {
    if (!ConsumePunct(punct)) {
      return Error("expected '" + std::string(punct) + "'");
    }
    return Status::Ok();
  }

  [[nodiscard]] Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

 private:
  const std::vector<Token>& tokens_;
  std::size_t pos_;
};

struct EdgeOp {
  bool directed;
  bool reversed;  // true for <- variants
  bool negated;
};

std::optional<EdgeOp> ParseEdgeOp(const Token& tok) {
  if (tok.type != Token::Type::kPunct) return std::nullopt;
  if (tok.text == "-") return EdgeOp{false, false, false};
  if (tok.text == "->") return EdgeOp{true, false, false};
  if (tok.text == "<-") return EdgeOp{true, true, false};
  if (tok.text == "!->") return EdgeOp{true, false, true};
  if (tok.text == "!<-") return EdgeOp{true, true, true};
  return std::nullopt;
}

std::optional<PredicateOp> ParsePredicateOp(Cursor* cur) {
  const Token& tok = cur->Peek();
  if (tok.type != Token::Type::kPunct) return std::nullopt;
  PredicateOp op;
  if (tok.text == "=") {
    op = PredicateOp::kEq;
  } else if (tok.text == "!=" || tok.text == "<>") {
    op = PredicateOp::kNe;
  } else if (tok.text == "<") {
    op = PredicateOp::kLt;
  } else if (tok.text == "<=") {
    op = PredicateOp::kLe;
  } else if (tok.text == ">") {
    op = PredicateOp::kGt;
  } else if (tok.text == ">=") {
    op = PredicateOp::kGe;
  } else {
    return std::nullopt;
  }
  cur->Next();
  return op;
}

[[nodiscard]] Result<PredicateOperand> ParseOperand(Cursor* cur, Pattern* pattern) {
  const Token& tok = cur->Peek();
  if (tok.type == Token::Type::kVariable) {
    std::string var = cur->Next().text;
    Status s = cur->Expect(".");
    if (!s.ok()) return s;
    if (cur->Peek().type != Token::Type::kIdentifier) {
      return cur->Error("expected attribute name after '.'");
    }
    NodeAttrRef ref;
    ref.node = pattern->AddNode(var);
    ref.attr = ToUpper(cur->Next().text);
    return PredicateOperand(ref);
  }
  if (tok.IsKeyword("EDGE")) {
    cur->Next();
    Status s = cur->Expect("(");
    if (!s.ok()) return s;
    if (cur->Peek().type != Token::Type::kVariable) {
      return cur->Error("expected variable in EDGE()");
    }
    std::string a = cur->Next().text;
    s = cur->Expect(",");
    if (!s.ok()) return s;
    if (cur->Peek().type != Token::Type::kVariable) {
      return cur->Error("expected variable in EDGE()");
    }
    std::string b = cur->Next().text;
    s = cur->Expect(")");
    if (!s.ok()) return s;
    s = cur->Expect(".");
    if (!s.ok()) return s;
    if (cur->Peek().type != Token::Type::kIdentifier) {
      return cur->Error("expected attribute name after EDGE().");
    }
    EdgeAttrRef ref;
    ref.src = pattern->AddNode(a);
    ref.dst = pattern->AddNode(b);
    ref.attr = ToUpper(cur->Next().text);
    return PredicateOperand(ref);
  }
  bool negative = cur->ConsumePunct("-");
  const Token& val = cur->Peek();
  if (val.type == Token::Type::kInteger) {
    cur->Next();
    return PredicateOperand(
        AttributeValue(negative ? -val.int_value : val.int_value));
  }
  if (val.type == Token::Type::kDouble) {
    cur->Next();
    return PredicateOperand(
        AttributeValue(negative ? -val.double_value : val.double_value));
  }
  if (val.type == Token::Type::kString && !negative) {
    cur->Next();
    return PredicateOperand(AttributeValue(val.text));
  }
  return cur->Error("expected attribute reference or constant");
}

/// True when the predicate is the optimizable `?X.LABEL = <int>` form.
bool TryCompileLabelConstraint(const PatternPredicate& pred,
                               Pattern* pattern) {
  if (pred.op != PredicateOp::kEq) return false;
  const auto* lref = std::get_if<NodeAttrRef>(&pred.lhs);
  const auto* rref = std::get_if<NodeAttrRef>(&pred.rhs);
  const auto* lval = std::get_if<AttributeValue>(&pred.lhs);
  const auto* rval = std::get_if<AttributeValue>(&pred.rhs);
  const NodeAttrRef* ref = lref != nullptr ? lref : rref;
  const AttributeValue* val = lval != nullptr ? lval : rval;
  if (ref == nullptr || val == nullptr) return false;
  if (!EqualsIgnoreCase(ref->attr, "LABEL")) return false;
  const auto* ival = std::get_if<std::int64_t>(val);
  if (ival == nullptr || *ival < 0) return false;
  pattern->SetLabelConstraint(pattern->VarName(ref->node),
                              static_cast<Label>(*ival));
  return true;
}

[[nodiscard]] Status ParsePatternBody(Cursor* cur, Pattern* pattern) {
  Status s = cur->Expect("{");
  if (!s.ok()) return s;
  while (!cur->ConsumePunct("}")) {
    if (cur->AtEnd()) return cur->Error("unterminated pattern body");
    const Token& tok = cur->Peek();
    if (tok.type == Token::Type::kVariable) {
      std::string src = cur->Next().text;
      auto op = ParseEdgeOp(cur->Peek());
      if (op.has_value()) {
        cur->Next();
        if (cur->Peek().type != Token::Type::kVariable) {
          return cur->Error("expected variable after edge operator");
        }
        std::string dst = cur->Next().text;
        if (op->reversed) std::swap(src, dst);
        if (src == dst) return cur->Error("pattern self-loop");
        pattern->AddEdge(src, dst, op->directed, op->negated);
      } else if (cur->Peek().IsPunct("!")) {
        // "?A!-?B": the lexer may split '!' and '-'.
        cur->Next();
        if (!cur->ConsumePunct("-")) {
          return cur->Error("expected '-' after '!'");
        }
        if (cur->Peek().type != Token::Type::kVariable) {
          return cur->Error("expected variable after edge operator");
        }
        std::string dst = cur->Next().text;
        pattern->AddEdge(src, dst, /*directed=*/false, /*negated=*/true);
      } else {
        pattern->AddNode(src);  // bare node declaration
      }
      s = cur->Expect(";");
      if (!s.ok()) return s;
      continue;
    }
    if (tok.IsPunct("[")) {
      cur->Next();
      auto lhs = ParseOperand(cur, pattern);
      if (!lhs.ok()) return lhs.status();
      auto op = ParsePredicateOp(cur);
      if (!op.has_value()) return cur->Error("expected comparison operator");
      auto rhs = ParseOperand(cur, pattern);
      if (!rhs.ok()) return rhs.status();
      s = cur->Expect("]");
      if (!s.ok()) return s;
      cur->ConsumePunct(";");  // optional trailing semicolon
      PatternPredicate pred;
      pred.lhs = std::move(lhs).value();
      pred.op = *op;
      pred.rhs = std::move(rhs).value();
      if (!TryCompileLabelConstraint(pred, pattern)) {
        pattern->AddPredicate(std::move(pred));
      }
      continue;
    }
    if (tok.IsKeyword("SUBPATTERN")) {
      cur->Next();
      if (cur->Peek().type != Token::Type::kIdentifier) {
        return cur->Error("expected subpattern name");
      }
      std::string name = cur->Next().text;
      s = cur->Expect("{");
      if (!s.ok()) return s;
      std::vector<std::string> members;
      while (!cur->ConsumePunct("}")) {
        if (cur->AtEnd()) return cur->Error("unterminated subpattern");
        if (cur->Peek().type != Token::Type::kVariable) {
          return cur->Error("expected variable in subpattern");
        }
        members.push_back(cur->Next().text);
        cur->ConsumePunct(";");
      }
      s = pattern->AddSubpattern(name, members);
      if (!s.ok()) return s;
      cur->ConsumePunct(";");
      continue;
    }
    return cur->Error("unexpected token '" + tok.text + "' in pattern body");
  }
  return Status::Ok();
}

}  // namespace

[[nodiscard]] Result<Pattern> ParsePatternAt(const std::vector<Token>& tokens,
                               std::size_t* cursor) {
  Cursor cur(tokens, *cursor);
  if (!cur.ConsumeKeyword("PATTERN")) {
    return cur.Error("expected PATTERN keyword");
  }
  if (cur.Peek().type != Token::Type::kIdentifier) {
    return cur.Error("expected pattern name");
  }
  Pattern pattern(cur.Next().text);
  Status s = ParsePatternBody(&cur, &pattern);
  if (!s.ok()) return s;
  s = pattern.Prepare();
  if (!s.ok()) return s;
  *cursor = cur.pos();
  return pattern;
}

[[nodiscard]] Result<Pattern> ParsePattern(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  std::size_t cursor = 0;
  auto pattern = ParsePatternAt(*tokens, &cursor);
  if (!pattern.ok()) return pattern.status();
  if ((*tokens)[cursor].type != Token::Type::kEnd) {
    return Status::ParseError("trailing input after pattern");
  }
  return pattern;
}

[[nodiscard]] Result<std::vector<Pattern>> ParsePatterns(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  std::vector<Pattern> patterns;
  std::size_t cursor = 0;
  while ((*tokens)[cursor].type != Token::Type::kEnd) {
    auto pattern = ParsePatternAt(*tokens, &cursor);
    if (!pattern.ok()) return pattern.status();
    patterns.push_back(std::move(pattern).value());
  }
  return patterns;
}

}  // namespace egocensus
