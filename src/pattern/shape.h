#ifndef EGOCENSUS_PATTERN_SHAPE_H_
#define EGOCENSUS_PATTERN_SHAPE_H_

// Canonical shape classification of small patterns, feeding the
// combinatorial fast-path census (src/census/fastpath/, docs/FAST_PATH.md).
//
// A pattern is fast-path countable when matching it inside an ego-network
// reduces to closed-form motif counting: at most four nodes, undirected
// structural edges only, no label constraints, no attribute predicates, and
// negation that is either absent (the pattern counts arbitrary subgraph
// copies) or exactly the complement of the positive skeleton (the pattern
// counts vertex-induced copies). Everything else classifies as kGeneric and
// stays on the generic matcher-based engines.

#include "pattern/pattern.h"

namespace egocensus {

/// The ten connected unlabeled shapes on <= 4 nodes, plus kGeneric for
/// every pattern the fast path cannot count.
enum class ShapeId : std::uint8_t {
  kGeneric = 0,
  kSingleton,  // 1 node
  kEdge,       // 2 nodes, 1 edge
  kWedge,      // path on 3 nodes
  kTriangle,   // 3-clique
  kPath4,      // path on 4 nodes
  kClaw,       // star K_{1,3}
  kPaw,        // triangle with a pendant edge
  kCycle4,     // 4-cycle
  kDiamond,    // 4-clique minus one edge
  kClique4,    // 4-clique
};

const char* ShapeName(ShapeId id);

/// Result of classifying a pattern for the fast path.
struct PatternShape {
  ShapeId id = ShapeId::kGeneric;

  /// True when the pattern's negative edges are exactly the complement of
  /// its positive skeleton, i.e. it matches vertex-induced copies. False
  /// (no negative edges) means arbitrary (not necessarily induced) copies.
  bool induced = false;

  /// Human-readable reason when id == kGeneric (static string; never null).
  const char* reject_reason = "";

  bool eligible() const { return id != ShapeId::kGeneric; }
};

/// Classifies `pattern` (which must be prepared) against the fast-path
/// shape catalog. Patterns with > 4 nodes, directed edges, label
/// constraints, predicates, duplicate structural edges, or partial
/// negation come back as kGeneric with reject_reason set.
PatternShape AnalyzeShape(const Pattern& pattern);

}  // namespace egocensus

#endif  // EGOCENSUS_PATTERN_SHAPE_H_
