#ifndef EGOCENSUS_PATTERN_PATTERN_H_
#define EGOCENSUS_PATTERN_PATTERN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "graph/attributes.h"
#include "graph/types.h"
#include "util/status.h"

namespace egocensus {

/// A positive or negative structural edge of a pattern. `directed` edges are
/// oriented src -> dst; `negated` edges assert absence (the `?A!->?C`
/// construct of Table I row 4).
struct PatternEdge {
  int src = 0;
  int dst = 0;
  bool directed = false;
  bool negated = false;
};

/// Comparison operator of an attribute predicate.
enum class PredicateOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Reference to a node attribute, e.g. ?A.LABEL.
struct NodeAttrRef {
  int node = 0;
  std::string attr;
};

/// Reference to an attribute of the edge between two pattern nodes, written
/// EDGE(?A, ?B).SIGN in the surface language.
struct EdgeAttrRef {
  int src = 0;
  int dst = 0;
  std::string attr;
};

using PredicateOperand = std::variant<NodeAttrRef, EdgeAttrRef, AttributeValue>;

/// An attribute predicate `[lhs op rhs]` attached to the pattern, e.g.
/// [?A.LABEL = ?B.LABEL] or [EDGE(?A,?B).SIGN = -1].
struct PatternPredicate {
  PredicateOperand lhs;
  PredicateOp op = PredicateOp::kEq;
  PredicateOperand rhs;
};

/// A pattern graph P (Section II): variables, structural edges (directed or
/// undirected, possibly negated), per-node label constraints, attribute
/// predicates, and optional named subpatterns (subsets of the nodes).
///
/// After construction call Prepare(), which validates the pattern and
/// precomputes everything the matchers and census engines need:
///  - all-pairs hop distances over the positive undirected skeleton,
///  - the pivot node (minimum eccentricity, Section IV-A1) and max_v,
///  - a search order whose every prefix is connected (Section III-D),
///  - symmetry-breaking conditions derived from the automorphism group so
///    that each match (= subgraph) is produced exactly once rather than once
///    per automorphic re-mapping.
class Pattern {
 public:
  /// Distance value for disconnected pattern node pairs.
  static constexpr std::uint32_t kUnreachable = 0xFFFFFFFF;

  explicit Pattern(std::string name = "pattern") : name_(std::move(name)) {}

  // --- Construction ----------------------------------------------------

  /// Adds (or finds) a variable and returns its index.
  int AddNode(const std::string& var);

  /// Index of `var`, or -1.
  int FindNode(const std::string& var) const;

  /// Adds a structural edge between two variables (created on demand).
  void AddEdge(const std::string& src, const std::string& dst, bool directed,
               bool negated = false);

  /// Constrains a variable to a fixed label (the ?A.LABEL = const fast path
  /// the paper's prototype optimizes).
  void SetLabelConstraint(const std::string& var, Label label);

  void AddPredicate(PatternPredicate predicate);

  /// Declares a named subpattern over a subset of the variables.
  [[nodiscard]] Status AddSubpattern(const std::string& name,
                       const std::vector<std::string>& vars);

  /// Validates and precomputes. Must be called exactly once, before use.
  [[nodiscard]] Status Prepare();

  // --- Accessors (require Prepare()) -------------------------------------

  const std::string& name() const { return name_; }
  bool prepared() const { return prepared_; }
  int NumNodes() const { return static_cast<int>(vars_.size()); }
  const std::string& VarName(int v) const { return vars_[v]; }
  std::optional<Label> LabelConstraint(int v) const {
    return label_constraints_[v];
  }

  /// Positive (structural, non-negated) edges.
  const std::vector<PatternEdge>& PositiveEdges() const {
    return positive_edges_;
  }
  const std::vector<PatternEdge>& NegativeEdges() const {
    return negative_edges_;
  }
  const std::vector<PatternPredicate>& Predicates() const {
    return predicates_;
  }

  /// True if some predicate references non-LABEL/non-ID attributes (callers
  /// then need attribute data when matching in extracted subgraphs).
  bool HasGeneralPredicates() const;

  /// Adjacency over positive edges, seen from node v.
  struct Adjacent {
    int node = 0;
    bool via_out = false;    // pattern edge v -> node
    bool via_in = false;     // pattern edge node -> v
    bool undirected = false; // undirected pattern edge v - node
  };
  const std::vector<Adjacent>& Neighbors(int v) const {
    return adjacency_[v];
  }

  /// Hop distance between two pattern nodes over the positive skeleton.
  std::uint32_t Distance(int a, int b) const {
    return distances_[static_cast<std::size_t>(a) * vars_.size() + b];
  }

  /// max_x d(v, x).
  std::uint32_t Eccentricity(int v) const { return eccentricity_[v]; }

  /// Pivot node: argmin eccentricity (Section IV-A1, "Pivot Selection").
  int Pivot() const { return pivot_; }

  /// Eccentricity of the pivot (the paper's max_v).
  std::uint32_t PivotRadius() const { return eccentricity_[pivot_]; }

  /// Search order with connected prefixes (Section III-D).
  const std::vector<int>& SearchOrder() const { return search_order_; }

  /// Symmetry-breaking: a match must satisfy image(smaller) < image(larger)
  /// (database node ids) for every condition. Derived from the pattern
  /// automorphism group restricted to automorphisms preserving labels, edge
  /// directions, negated edges, predicates, and subpattern membership.
  struct SymmetryCondition {
    int smaller = 0;
    int larger = 0;
  };
  const std::vector<SymmetryCondition>& SymmetryConditions() const {
    return symmetry_conditions_;
  }

  /// Number of automorphisms found (1 = asymmetric pattern). Exposed for
  /// tests and for converting mapping counts to subgraph counts.
  std::size_t NumAutomorphisms() const { return num_automorphisms_; }

  /// Named subpatterns: name -> sorted node indices.
  const std::map<std::string, std::vector<int>>& Subpatterns() const {
    return subpatterns_;
  }

  /// Finds a subpattern by name.
  const std::vector<int>* FindSubpattern(const std::string& name) const;

  /// Serializes the pattern back to the PATTERN surface language; the
  /// output re-parses to a structurally identical pattern (round-trip
  /// tested). Label constraints are emitted as [?X.LABEL = c] predicates.
  std::string ToString() const;

 private:
  [[nodiscard]] Status ValidateStructure() const;
  void ComputeDistances();
  void ComputeSearchOrder();
  void ComputeSymmetryConditions();
  bool IsAutomorphism(const std::vector<int>& perm) const;

  std::string name_;
  bool prepared_ = false;

  std::vector<std::string> vars_;
  std::map<std::string, int> var_index_;
  std::vector<std::optional<Label>> label_constraints_;
  std::vector<PatternEdge> positive_edges_;
  std::vector<PatternEdge> negative_edges_;
  std::vector<PatternPredicate> predicates_;
  std::map<std::string, std::vector<int>> subpatterns_;

  std::vector<std::vector<Adjacent>> adjacency_;
  std::vector<std::uint32_t> distances_;
  std::vector<std::uint32_t> eccentricity_;
  int pivot_ = 0;
  std::vector<int> search_order_;
  std::vector<SymmetryCondition> symmetry_conditions_;
  std::size_t num_automorphisms_ = 1;
};

}  // namespace egocensus

#endif  // EGOCENSUS_PATTERN_PATTERN_H_
