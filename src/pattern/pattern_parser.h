#ifndef EGOCENSUS_PATTERN_PATTERN_PARSER_H_
#define EGOCENSUS_PATTERN_PATTERN_PARSER_H_

#include <string_view>
#include <vector>

#include "lang/lexer.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// Parses one PATTERN block, e.g.
///
///   PATTERN triad {
///     ?A->?B; ?B->?C; ?A!->?C;
///     [?A.LABEL=?B.LABEL];
///     [?B.LABEL=?C.LABEL];
///     SUBPATTERN coordinator {?B;}
///   }
///
/// Supported statements: node declarations (?A;), undirected edges (?A-?B;),
/// directed edges (?A->?B; / ?A<-?B;), negated edges (!-, !->, !<-),
/// attribute predicates in brackets ([?A.LABEL = ?B.LABEL],
/// [EDGE(?A,?B).SIGN = -1], comparison ops = != <> < <= > >=), and
/// SUBPATTERN name { ?X; ?Y; }.
///
/// Predicates of the form [?X.LABEL = <integer>] are compiled into label
/// constraints (the selection-predicate optimization of footnote 1).
/// The returned pattern is validated and Prepare()d.
[[nodiscard]] Result<Pattern> ParsePattern(std::string_view text);

/// Parses a sequence of PATTERN blocks.
[[nodiscard]] Result<std::vector<Pattern>> ParsePatterns(std::string_view text);

/// Internal entry point shared with the query parser: parses one PATTERN
/// block starting at token index *cursor (which must point at the PATTERN
/// keyword); advances *cursor past the closing brace.
[[nodiscard]] Result<Pattern> ParsePatternAt(const std::vector<Token>& tokens,
                               std::size_t* cursor);

}  // namespace egocensus

#endif  // EGOCENSUS_PATTERN_PATTERN_PARSER_H_
