#ifndef EGOCENSUS_OBS_METRICS_H_
#define EGOCENSUS_OBS_METRICS_H_

// Low-overhead metrics registry: named counters, max-gauges, and
// log2-bucketed histograms.
//
// Recording discipline: every thread writes to its own shard (created on
// first record, registered with the registry), so the hot path is one
// relaxed atomic add into thread-private memory — no locks, no cross-core
// traffic. Shards are merged on demand by Snapshot() with the same
// order-insensitive reduction as CensusStats::Merge: counters and
// histogram buckets are summed, gauges are max-ed. Enabling metrics
// therefore never perturbs census results, only observes them; and because
// the merge is order-insensitive, snapshots are identical for any worker
// count and scheduling.
//
// Shards of exiting threads (census worker pools are per-query) fold into
// a retired accumulator, so metrics survive the threads that produced
// them. Shard slots are relaxed atomics written by their owner thread only,
// which makes concurrent Snapshot() calls race-free (TSan-clean) at the
// cost of one uncontended atomic op per event.
//
// Use the EGO_* macros for hot sites with string-literal names (the metric
// id is interned once per site), handle objects for hot loops with
// runtime-built names, and the free helpers for cold paths.

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/obs.h"

namespace egocensus::obs {

/// Histogram buckets: bucket 0 counts value 0, bucket b >= 1 counts values
/// in [2^(b-1), 2^b). 64 buckets cover the full uint64 range.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index of a value (0 for 0, else 1 + floor(log2(value))).
std::size_t HistogramBucket(std::uint64_t value);
/// Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
std::uint64_t HistogramBucketLow(std::size_t b);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Order-insensitive: buckets/count/sum summed, max max-ed.
  void Merge(const HistogramSnapshot& other);

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  std::uint64_t ApproxPercentile(double p) const;
};

/// Point-in-time merge of all shards. Map-keyed by metric name so exports
/// and tests are deterministically ordered.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;  // max-merged
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  /// mean,p50,p99,buckets:[{lo,count},...]}}} — buckets with zero count are
  /// omitted.
  void WriteJson(std::ostream& os) const;
  /// Flat CSV: metric,kind,count,sum,mean,max (counters/gauges use the
  /// value columns they have, empty otherwise).
  void WriteCsv(std::ostream& os) const;
};

/// Process-wide metric registry. Interning a name is mutex-protected and
/// idempotent; recording through an interned id is lock-free.
class Registry {
 public:
  /// Leaked singleton: must outlive thread_local shard destructors of
  /// detached threads, so it is never destroyed.
  static Registry& Global();

  std::uint32_t InternCounter(std::string_view name);
  std::uint32_t InternGauge(std::string_view name);
  std::uint32_t InternHistogram(std::string_view name);

  void CounterAdd(std::uint32_t id, std::uint64_t delta);
  void GaugeMax(std::uint32_t id, std::uint64_t value);
  void HistogramRecord(std::uint32_t id, std::uint64_t value);

  /// Merges retired + live shards (counters summed, gauges max-ed,
  /// histogram buckets summed). Metrics that never recorded a value are
  /// omitted.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every live shard and the retired accumulator. Interned names
  /// survive (macro-site ids stay valid). Not safe concurrently with
  /// recording threads; call between censuses.
  void Reset();

  /// Implementation detail, public only so the thread_local shard owner in
  /// metrics.cc can name it.
  struct Impl;

 private:
  Registry();
  ~Registry() = delete;  // leaked

  Impl* impl_;
};

// ---- Call-site helpers -------------------------------------------------

/// Pre-interned handles for hot loops whose metric names are built at
/// runtime (e.g. per-algorithm). Construction interns (cheap, once);
/// recording checks Enabled() first so a disabled run costs one relaxed
/// load + branch per call.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(std::string_view name) {
#if EGO_OBS_ENABLED
    id_ = Registry::Global().InternCounter(name);
#endif
  }
  void Add(std::uint64_t delta) const {
    if (Enabled()) Registry::Global().CounterAdd(id_, delta);
  }

 private:
  std::uint32_t id_ = 0;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(std::string_view name) {
#if EGO_OBS_ENABLED
    id_ = Registry::Global().InternGauge(name);
#endif
  }
  void Max(std::uint64_t value) const {
    if (Enabled()) Registry::Global().GaugeMax(id_, value);
  }

 private:
  std::uint32_t id_ = 0;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(std::string_view name) {
#if EGO_OBS_ENABLED
    id_ = Registry::Global().InternHistogram(name);
#endif
  }
  void Record(std::uint64_t value) const {
    if (Enabled()) Registry::Global().HistogramRecord(id_, value);
  }

 private:
  std::uint32_t id_ = 0;
};

/// Cold-path helpers: intern-by-name on every call (one hash lookup).
inline void CounterAdd(std::string_view name, std::uint64_t delta) {
  if (!Enabled()) return;
  Registry& r = Registry::Global();
  r.CounterAdd(r.InternCounter(name), delta);
}
inline void GaugeMax(std::string_view name, std::uint64_t value) {
  if (!Enabled()) return;
  Registry& r = Registry::Global();
  r.GaugeMax(r.InternGauge(name), value);
}
inline void HistogramRecord(std::string_view name, std::uint64_t value) {
  if (!Enabled()) return;
  Registry& r = Registry::Global();
  r.HistogramRecord(r.InternHistogram(name), value);
}

}  // namespace egocensus::obs

// Macro forms for string-literal sites: the handle is a function-local
// static, so the name is interned exactly once per site, lazily on the
// first *enabled* pass. With EGO_OBS_ENABLED=0, Enabled() is constexpr
// false and the whole statement (static included) is eliminated.
#define EGO_COUNTER_ADD(name, delta)                               \
  do {                                                             \
    if (::egocensus::obs::Enabled()) {                             \
      static const ::egocensus::obs::CounterHandle ego_obs_h_{name}; \
      ego_obs_h_.Add(delta);                                       \
    }                                                              \
  } while (0)

#define EGO_GAUGE_MAX(name, value)                               \
  do {                                                           \
    if (::egocensus::obs::Enabled()) {                           \
      static const ::egocensus::obs::GaugeHandle ego_obs_h_{name}; \
      ego_obs_h_.Max(value);                                     \
    }                                                            \
  } while (0)

#define EGO_HIST_RECORD(name, value)                                 \
  do {                                                               \
    if (::egocensus::obs::Enabled()) {                               \
      static const ::egocensus::obs::HistogramHandle ego_obs_h_{name}; \
      ego_obs_h_.Record(value);                                      \
    }                                                                \
  } while (0)

#endif  // EGOCENSUS_OBS_METRICS_H_
