#ifndef EGOCENSUS_OBS_PROMETHEUS_H_
#define EGOCENSUS_OBS_PROMETHEUS_H_

// Prometheus text exposition (format v0.0.4) for a MetricsSnapshot, the
// body of the daemon's METRICS frame (docs/SERVER.md) and of
// `ecensus remote metrics`.
//
// The registry stays flat and label-free on the hot path; labels ride in
// the metric *name* using the convention `base{key="value",...}` (build
// such names with LabeledName, which escapes the values). The renderer
// splits the name back apart, sanitizes the base into a legal Prometheus
// metric name under the `egocensus_` prefix, and re-emits the label block
// verbatim — so `server/latency_us{graph="g",verb="QUERY"}` becomes the
// family `egocensus_server_latency_us{graph="g",verb="QUERY"}`.
//
// Mapping: counters render as `<name>_total` counter families, gauges as
// gauge families, and the log2 histograms as histogram families with
// cumulative `_bucket{le="..."}` samples (bucket b >= 1 covers
// [2^(b-1), 2^b), so its inclusive upper bound is 2^b - 1; bucket 0 is
// le="0"), a `+Inf` bucket, `_sum`, and `_count`.
//
// Pure rendering of a by-value snapshot: no registry access, no locks —
// Registry::Snapshot() already merges shards without stopping recording
// threads, so exposition never stops the world.

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace egocensus::obs {

/// `base{k1="v1",k2="v2"}` with label values escaped for the exposition
/// format (backslash, double quote, newline). Empty label list = `base`.
std::string LabeledName(
    std::string_view base,
    const std::vector<std::pair<std::string_view, std::string_view>>& labels);

/// Escapes one label value (the rules LabeledName applies).
std::string PromEscapeLabelValue(std::string_view value);

/// Renders the whole snapshot as text exposition v0.0.4.
void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace egocensus::obs

#endif  // EGOCENSUS_OBS_PROMETHEUS_H_
