#ifndef EGOCENSUS_OBS_TRACE_H_
#define EGOCENSUS_OBS_TRACE_H_

// Scoped span tracer: EGO_SPAN("census/match") records one begin/end
// interval (steady-clock micros via Timer::NowMicros) tagged with a small
// sequential thread id, into a thread-local buffer. Buffers of exited
// threads fold into a retired list, so spans from per-query worker pools
// survive the pool. WriteChromeTrace emits the Chrome trace_event JSON
// format — load the file in chrome://tracing or https://ui.perfetto.dev to
// see the phase/worker timeline.
//
// Spans are coarse by design (per census phase, per worker job, per
// dynamic update) — recording costs one push_back into a thread-private
// vector, but a span per focal node would still dominate small
// neighborhoods. Guarded by obs::Enabled() like the metrics registry, and
// compiled out entirely under EGO_OBS_ENABLED=0.
//
// Snapshot()/WriteChromeTrace() must not race with threads actively
// recording spans; in practice census worker pools are destroyed before a
// query returns, so exporting after the query sees a quiesced tracer.

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/obs.h"
#include "util/timer.h"

namespace egocensus::obs {

struct SpanRecord {
  const char* name = nullptr;  // static-storage string (macro literal)
  std::uint64_t begin_us = 0;  // Timer::NowMicros at scope entry
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;       // sequential id, 0 = first recording thread
  std::uint64_t arg = 0;       // optional numeric payload
  bool has_arg = false;
};

class Tracer {
 public:
  /// Leaked singleton (outlives thread_local buffer destructors).
  static Tracer& Global();

  void Record(const char* name, std::uint64_t begin_us, std::uint64_t end_us,
              std::uint64_t arg, bool has_arg);

  /// All recorded spans (retired + live buffers), unordered.
  std::vector<SpanRecord> Snapshot() const;

  /// Drops all recorded spans (live buffers and retired).
  void Reset();

  /// Chrome trace_event JSON ("X" complete events, ts normalized so the
  /// earliest span starts at 0). Optional numeric args appear as
  /// args.value.
  void WriteChromeTrace(std::ostream& os) const;

  /// Small sequential id of the calling thread (assigned on first use).
  static std::uint32_t CurrentThreadId();

  /// Implementation detail, public only so the thread_local buffer owner in
  /// trace.cc can name it.
  struct Impl;

 private:
  Tracer();
  ~Tracer() = delete;  // leaked

  Impl* impl_;
};

/// RAII span. Captures the begin timestamp if observability is enabled at
/// construction; the destructor records through the tracer. A span whose
/// scope outlives a SetEnabled(false) is still recorded (its begin was
/// observed); one started disabled records nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Enabled()) {
      name_ = name;
      begin_us_ = Timer::NowMicros();
    }
  }
  ScopedSpan(const char* name, std::uint64_t arg) : ScopedSpan(name) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now instead of at scope exit (for phases that end
  /// mid-function); idempotent, the destructor becomes a no-op.
  void End() {
    if (name_ != nullptr) {
      Tracer::Global().Record(name_, begin_us_, Timer::NowMicros(), arg_,
                              has_arg_);
      name_ = nullptr;
    }
  }

  /// Attaches/overwrites the numeric payload (e.g. a result size known
  /// only at scope exit).
  void SetArg(std::uint64_t arg) {
    arg_ = arg;
    has_arg_ = true;
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_us_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace egocensus::obs

#define EGO_OBS_CONCAT_INNER_(a, b) a##b
#define EGO_OBS_CONCAT_(a, b) EGO_OBS_CONCAT_INNER_(a, b)

#if EGO_OBS_ENABLED
/// EGO_SPAN("name") or EGO_SPAN("name", numeric_arg): scoped span covering
/// the rest of the enclosing block.
#define EGO_SPAN(...)                                    \
  ::egocensus::obs::ScopedSpan EGO_OBS_CONCAT_(ego_span_, \
                                               __LINE__)(__VA_ARGS__)
#else
#define EGO_SPAN(...) \
  do {                \
  } while (0)
#endif

#endif  // EGOCENSUS_OBS_TRACE_H_
