#ifndef EGOCENSUS_OBS_LOG_H_
#define EGOCENSUS_OBS_LOG_H_

// Structured JSON-lines logger for the daemon's request telemetry
// (docs/OBSERVABILITY.md, "Request telemetry"): one flat JSON object per
// line, leveled, thread-safe, and rate-limited, writing to stderr or an
// append-opened file (`ecensusd --log-file`).
//
// The canonical consumer is net/server.cc, which emits exactly one wide
// "request" event per dispatched frame. Events are assembled off-lock with
// LogEvent (an ordered key/value JSON builder) and serialized under one
// mutex in Logger::Write, so concurrent request threads never interleave
// bytes within a line.
//
// Gating: like the metric handles in obs/metrics.h, the whole surface
// compiles to no-ops when EGO_OBS_ENABLED=0, so call sites stay ungated.
// Unlike the metrics registry, the logger is independent of the runtime
// obs::Enabled() toggle: it is active iff a sink is configured (enabled()),
// because operators want request logs even when the metric shards are off.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/obs.h"
#include "util/status.h"

namespace egocensus::obs {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (the --log-level values); anything
/// else falls back to kInfo.
LogLevel LogLevelFromName(std::string_view name);

#if EGO_OBS_ENABLED

/// Ordered JSON-object builder for one log line. Keys are emitted in call
/// order; values are escaped (Str) or rendered verbatim (Raw, for nested
/// pre-rendered JSON). Not thread-safe; build per event, then hand to
/// Logger::Write.
class LogEvent {
 public:
  explicit LogEvent(std::string_view event_name);

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Int(std::string_view key, std::uint64_t value);
  LogEvent& Float(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);
  /// `json` must already be valid JSON (object/array/number).
  LogEvent& Raw(std::string_view key, std::string_view json);

  /// The accumulated `"k":v,...` field list (no surrounding braces).
  const std::string& fields() const { return fields_; }

 private:
  std::string fields_;
};

/// Process-wide JSON-lines sink. Leaked singleton like obs::Registry, so
/// detached threads logging at process exit never touch a destroyed object.
class Logger {
 public:
  static Logger& Global();

  /// Routes lines to `path`, opened for append. Replaces any prior sink.
  [[nodiscard]] Status OpenFile(const std::string& path);
  /// Routes lines to stderr. Replaces any prior sink.
  void UseStderr();

  /// Minimum level written; lower-level events are dropped before the lock.
  void SetMinLevel(LogLevel level);
  /// At most `max_per_sec` lines per wall-clock second (fixed windows);
  /// excess lines count in dropped(). 0 = unlimited (the default).
  void SetRateLimit(std::uint64_t max_per_sec);

  /// True once a sink is configured. Callers check this before assembling
  /// an event so a quiet daemon pays one relaxed load per request.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool ShouldLog(LogLevel level) const {
    return enabled() &&
           static_cast<std::uint8_t>(level) >=
               min_level_.load(std::memory_order_relaxed);
  }

  /// Serializes `{"ts_us":...,"level":"...",<fields>}` + newline and
  /// flushes, under the writer mutex.
  void Write(LogLevel level, const LogEvent& event);

  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Closes the sink and restores defaults (tests run many configurations
  /// against the one global instance).
  void ResetForTest();

 private:
  Logger() = default;
  ~Logger() = delete;  // leaked

  struct Impl;
  Impl& impl();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint8_t> min_level_{
      static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

#else  // !EGO_OBS_ENABLED

/// Kill-switch stubs: same shape, no state, no I/O. Call sites compile and
/// dead-code eliminate (enabled()/ShouldLog() are constexpr false).
class LogEvent {
 public:
  explicit LogEvent(std::string_view) {}
  LogEvent& Str(std::string_view, std::string_view) { return *this; }
  LogEvent& Int(std::string_view, std::uint64_t) { return *this; }
  LogEvent& Float(std::string_view, double) { return *this; }
  LogEvent& Bool(std::string_view, bool) { return *this; }
  LogEvent& Raw(std::string_view, std::string_view) { return *this; }
  const std::string& fields() const {
    static const std::string kEmpty;
    return kEmpty;
  }
};

class Logger {
 public:
  static Logger& Global() {
    static Logger logger;
    return logger;
  }
  [[nodiscard]] Status OpenFile(const std::string&) { return Status::Ok(); }
  void UseStderr() {}
  void SetMinLevel(LogLevel) {}
  void SetRateLimit(std::uint64_t) {}
  constexpr bool enabled() const { return false; }
  constexpr bool ShouldLog(LogLevel) const { return false; }
  void Write(LogLevel, const LogEvent&) {}
  constexpr std::uint64_t written() const { return 0; }
  constexpr std::uint64_t dropped() const { return 0; }
  void ResetForTest() {}
};

#endif  // EGO_OBS_ENABLED

}  // namespace egocensus::obs

#endif  // EGOCENSUS_OBS_LOG_H_
