#include "obs/log.h"

#include <cstdio>

#include "util/strings.h"
#include "util/timer.h"

#if EGO_OBS_ENABLED
#include <fstream>
#include <iostream>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#endif

namespace egocensus::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogLevel LogLevelFromName(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

#if EGO_OBS_ENABLED

LogEvent::LogEvent(std::string_view event_name) {
  fields_ = "\"event\":\"" + JsonEscape(event_name) + "\"";
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  fields_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, std::uint64_t value) {
  fields_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Float(std::string_view key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  fields_ += ",\"" + JsonEscape(key) + "\":" + buffer;
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  fields_ += ",\"" + JsonEscape(key) + "\":" + (value ? "true" : "false");
  return *this;
}

LogEvent& LogEvent::Raw(std::string_view key, std::string_view json) {
  fields_ += ",\"" + JsonEscape(key) + "\":";
  fields_ += json;
  return *this;
}

/// Sink + rate-limiter state, all guarded by one mutex. Lines are short
/// (one request each) and requests are milliseconds-plus, so a single
/// writer lock never becomes the bottleneck the metric shards avoid.
struct Logger::Impl {
  Mutex mutex;
  std::ofstream file EGO_GUARDED_BY(mutex);
  bool use_stderr EGO_GUARDED_BY(mutex) = false;
  // Lines per second; 0 = unlimited.
  std::uint64_t rate_limit EGO_GUARDED_BY(mutex) = 0;
  // Current 1s rate window.
  std::uint64_t window_start_us EGO_GUARDED_BY(mutex) = 0;
  std::uint64_t window_count EGO_GUARDED_BY(mutex) = 0;
};

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked, like obs::Registry
  return *logger;
}

Logger::Impl& Logger::impl() {
  static Impl* impl = new Impl();  // leaked with its owner
  return *impl;
}

Status Logger::OpenFile(const std::string& path) {
  Impl& i = impl();
  MutexLock lock(i.mutex);
  if (i.file.is_open()) i.file.close();
  i.file.open(path, std::ios::out | std::ios::app);
  if (!i.file.is_open()) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::InvalidArgument("cannot open log file: " + path);
  }
  i.use_stderr = false;
  enabled_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void Logger::UseStderr() {
  Impl& i = impl();
  MutexLock lock(i.mutex);
  if (i.file.is_open()) i.file.close();
  i.use_stderr = true;
  enabled_.store(true, std::memory_order_relaxed);
}

void Logger::SetMinLevel(LogLevel level) {
  min_level_.store(static_cast<std::uint8_t>(level),
                   std::memory_order_relaxed);
}

void Logger::SetRateLimit(std::uint64_t max_per_sec) {
  Impl& i = impl();
  MutexLock lock(i.mutex);
  i.rate_limit = max_per_sec;
  i.window_start_us = 0;
  i.window_count = 0;
}

void Logger::Write(LogLevel level, const LogEvent& event) {
  if (!ShouldLog(level)) return;
  // Compose off-lock; only the sink write serializes.
  std::string line = "{\"ts_us\":" + std::to_string(Timer::NowMicros()) +
                     ",\"level\":\"" + LogLevelName(level) + "\"," +
                     event.fields() + "}\n";
  Impl& i = impl();
  MutexLock lock(i.mutex);
  if (i.rate_limit > 0) {
    std::uint64_t now = Timer::NowMicros();
    if (now - i.window_start_us >= 1'000'000) {
      i.window_start_us = now;
      i.window_count = 0;
    }
    if (i.window_count >= i.rate_limit) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++i.window_count;
  }
  if (i.file.is_open()) {
    i.file << line;
    i.file.flush();
  } else if (i.use_stderr) {
    std::cerr << line;  // unbuffered enough: cerr flushes per insertion
  } else {
    return;  // sink raced away (ResetForTest)
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::ResetForTest() {
  Impl& i = impl();
  MutexLock lock(i.mutex);
  if (i.file.is_open()) i.file.close();
  i.use_stderr = false;
  i.rate_limit = 0;
  i.window_start_us = 0;
  i.window_count = 0;
  enabled_.store(false, std::memory_order_relaxed);
  min_level_.store(static_cast<std::uint8_t>(LogLevel::kInfo),
                   std::memory_order_relaxed);
  written_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

#endif  // EGO_OBS_ENABLED

}  // namespace egocensus::obs
