#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace egocensus::obs {

struct Tracer::Impl {
  /// One thread's span buffer. The owning thread appends without the lock
  /// (thread-local sharding is the point); `mu` covers the buffer list and
  /// the retired accumulator, plus span reads during Snapshot.
  struct Buffer {
    std::vector<SpanRecord> spans;
  };

  mutable Mutex mu;
  std::vector<Buffer*> live EGO_GUARDED_BY(mu);
  std::vector<SpanRecord> retired EGO_GUARDED_BY(mu);
  std::atomic<std::uint32_t> next_tid{0};

  Buffer* ThisBuffer();
  void Retire(Buffer* buffer);
};

namespace {

struct BufferOwner {
  Tracer::Impl* impl = nullptr;
  Tracer::Impl::Buffer* buffer = nullptr;
  ~BufferOwner() {
    if (impl != nullptr && buffer != nullptr) impl->Retire(buffer);
  }
};

}  // namespace

Tracer::Impl::Buffer* Tracer::Impl::ThisBuffer() {
  thread_local BufferOwner owner;
  if (owner.buffer == nullptr) {
    auto* buffer = new Buffer();
    {
      MutexLock lock(mu);
      live.push_back(buffer);
    }
    owner.impl = this;
    owner.buffer = buffer;
  }
  return owner.buffer;
}

void Tracer::Impl::Retire(Buffer* buffer) {
  MutexLock lock(mu);
  retired.insert(retired.end(), buffer->spans.begin(), buffer->spans.end());
  live.erase(std::remove(live.begin(), live.end(), buffer), live.end());
  delete buffer;
}

Tracer::Tracer() : impl_(new Impl()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked, see header
  return *tracer;
}

std::uint32_t Tracer::CurrentThreadId() {
  thread_local std::uint32_t tid =
      Global().impl_->next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::Record(const char* name, std::uint64_t begin_us,
                    std::uint64_t end_us, std::uint64_t arg, bool has_arg) {
  SpanRecord record;
  record.name = name;
  record.begin_us = begin_us;
  record.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  record.tid = CurrentThreadId();
  record.arg = arg;
  record.has_arg = has_arg;
  impl_->ThisBuffer()->spans.push_back(record);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(impl_->mu);
  std::vector<SpanRecord> spans = impl_->retired;
  for (const Impl::Buffer* buffer : impl_->live) {
    spans.insert(spans.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return spans;
}

void Tracer::Reset() {
  MutexLock lock(impl_->mu);
  impl_->retired.clear();
  for (Impl::Buffer* buffer : impl_->live) buffer->spans.clear();
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_us < b.begin_us;
            });
  const std::uint64_t t0 = spans.empty() ? 0 : spans.front().begin_us;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    os << (first ? "\n" : ",\n");
    os << "{\"name\": \"" << span.name
       << "\", \"cat\": \"egocensus\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << span.tid << ", \"ts\": " << (span.begin_us - t0)
       << ", \"dur\": " << span.dur_us;
    if (span.has_arg) os << ", \"args\": {\"value\": " << span.arg << "}";
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace egocensus::obs
