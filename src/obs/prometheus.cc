#include "obs/prometheus.h"

#include <map>

namespace egocensus::obs {

namespace {

/// One sample of a family: its label block (without braces, may be empty)
/// plus either a scalar or a histogram.
struct ScalarSample {
  std::string labels;
  std::uint64_t value = 0;
};

struct HistogramSample {
  std::string labels;
  const HistogramSnapshot* histogram = nullptr;
};

/// Splits a registry name into base + label block. Labels were attached by
/// LabeledName, so the block (when present) is already escaped `k="v"` text.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// Legal exposition metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, under the
/// project prefix. Registry separators ('/', '-', spaces from skip-reason
/// counters) all collapse to '_'.
std::string SanitizeBase(const std::string& base) {
  std::string out = "egocensus_";
  for (char c : base) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string WithLabels(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string WithLabelsAndLe(const std::string& name, const std::string& labels,
                            const std::string& le) {
  std::string block = labels.empty() ? "" : labels + ",";
  return name + "{" + block + "le=\"" + le + "\"}";
}

void WriteScalarFamilies(
    const std::map<std::string, std::uint64_t>& metrics, const char* type,
    const char* help, bool total_suffix, std::ostream& os) {
  // Group samples by sanitized base so each family gets one HELP/TYPE pair
  // with all of its labeled samples together, as the format requires.
  std::map<std::string, std::vector<ScalarSample>> families;
  for (const auto& [name, value] : metrics) {
    std::string base, labels;
    SplitName(name, &base, &labels);
    std::string family = SanitizeBase(base);
    if (total_suffix) family += "_total";
    families[family].push_back(ScalarSample{labels, value});
  }
  for (const auto& [family, samples] : families) {
    os << "# HELP " << family << " " << help << "\n";
    os << "# TYPE " << family << " " << type << "\n";
    for (const ScalarSample& sample : samples) {
      os << WithLabels(family, sample.labels) << " " << sample.value << "\n";
    }
  }
}

void WriteHistogramFamilies(
    const std::map<std::string, HistogramSnapshot>& metrics,
    std::ostream& os) {
  std::map<std::string, std::vector<HistogramSample>> families;
  for (const auto& [name, histogram] : metrics) {
    std::string base, labels;
    SplitName(name, &base, &labels);
    families[SanitizeBase(base)].push_back(
        HistogramSample{labels, &histogram});
  }
  for (const auto& [family, samples] : families) {
    os << "# HELP " << family
       << " egocensus log2-bucketed histogram (obs/metrics.h)\n";
    os << "# TYPE " << family << " histogram\n";
    for (const HistogramSample& sample : samples) {
      const HistogramSnapshot& h = *sample.histogram;
      // Cumulative buckets up to the last populated one; +Inf carries the
      // total. Bucket b >= 1 counts values in [2^(b-1), 2^b), so its
      // inclusive exposition bound is 2^b - 1; bucket 0 counts exactly 0.
      std::size_t last = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (h.buckets[b] != 0) last = b;
      }
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b <= last; ++b) {
        cumulative += h.buckets[b];
        std::uint64_t le = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        os << WithLabelsAndLe(family + "_bucket", sample.labels,
                              std::to_string(le))
           << " " << cumulative << "\n";
      }
      os << WithLabelsAndLe(family + "_bucket", sample.labels, "+Inf") << " "
         << h.count << "\n";
      os << WithLabels(family + "_sum", sample.labels) << " " << h.sum
         << "\n";
      os << WithLabels(family + "_count", sample.labels) << " " << h.count
         << "\n";
    }
  }
}

}  // namespace

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabeledName(
    std::string_view base,
    const std::vector<std::pair<std::string_view, std::string_view>>&
        labels) {
  std::string out(base);
  if (labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += std::string(key) + "=\"" + PromEscapeLabelValue(value) + "\"";
  }
  out += '}';
  return out;
}

void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  WriteScalarFamilies(snapshot.counters, "counter",
                      "egocensus counter (obs/metrics.h)",
                      /*total_suffix=*/true, os);
  WriteScalarFamilies(snapshot.gauges, "gauge",
                      "egocensus max-gauge (obs/metrics.h)",
                      /*total_suffix=*/false, os);
  WriteHistogramFamilies(snapshot.histograms, os);
}

}  // namespace egocensus::obs
