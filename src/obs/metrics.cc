#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace egocensus::obs {

#if EGO_OBS_ENABLED
namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

std::size_t HistogramBucket(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t b = static_cast<std::size_t>(64 - std::countl_zero(value));
  // Values >= 2^62 share the last bucket (its range is open-ended).
  return std::min(b, kHistogramBuckets - 1);
}

std::uint64_t HistogramBucketLow(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

std::uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank percentile, 1-based; bucket upper bounds are conservative.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Upper bound of bucket b, clamped to the observed max.
      std::uint64_t hi = b == 0 ? 0 : (HistogramBucketLow(b) << 1) - 1;
      return std::min(hi, max);
    }
  }
  return max;
}

namespace {

/// Per-thread metric storage. Slots are relaxed atomics written only by
/// the owning thread; other threads read them during Snapshot(). deque
/// keeps element addresses stable across growth (atomics are immovable).
struct ShardSlots {
  std::deque<std::atomic<std::uint64_t>> counters;
  std::deque<std::atomic<std::uint64_t>> gauges;
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::deque<Hist> hists;
};

void EnsureSize(std::deque<std::atomic<std::uint64_t>>* slots, std::size_t n) {
  while (slots->size() < n) slots->emplace_back(0);
}

}  // namespace

struct Registry::Impl {
  struct Shard {
    ShardSlots slots;
  };

  mutable Mutex mu;
  // name -> id per kind, and id -> name (ids index snapshot arrays).
  std::unordered_map<std::string, std::uint32_t> counter_ids
      EGO_GUARDED_BY(mu);
  std::unordered_map<std::string, std::uint32_t> gauge_ids
      EGO_GUARDED_BY(mu);
  std::unordered_map<std::string, std::uint32_t> hist_ids EGO_GUARDED_BY(mu);
  std::vector<std::string> counter_names EGO_GUARDED_BY(mu);
  std::vector<std::string> gauge_names EGO_GUARDED_BY(mu);
  std::vector<std::string> hist_names EGO_GUARDED_BY(mu);

  std::vector<Shard*> live_shards EGO_GUARDED_BY(mu);
  // Values of shards whose threads exited, folded under mu.
  std::vector<std::uint64_t> retired_counters EGO_GUARDED_BY(mu);
  std::vector<std::uint64_t> retired_gauges EGO_GUARDED_BY(mu);  // max-merged
  std::vector<HistogramSnapshot> retired_hists EGO_GUARDED_BY(mu);

  Shard* ThisShard();
  void Retire(Shard* shard);
  void FoldLocked(const ShardSlots& slots) EGO_REQUIRES(mu);
};

namespace {

/// Owns one thread's shard; the destructor folds its values into the
/// registry's retired accumulator so pool workers leave no data behind.
struct ShardOwner {
  Registry::Impl* impl = nullptr;
  Registry::Impl::Shard* shard = nullptr;
  ~ShardOwner() {
    if (impl != nullptr && shard != nullptr) impl->Retire(shard);
  }
};

}  // namespace

Registry::Impl::Shard* Registry::Impl::ThisShard() {
  thread_local ShardOwner owner;
  if (owner.shard == nullptr) {
    auto* shard = new Shard();
    {
      MutexLock lock(mu);
      live_shards.push_back(shard);
    }
    owner.impl = this;
    owner.shard = shard;
  }
  return owner.shard;
}

void Registry::Impl::FoldLocked(const ShardSlots& slots) {
  if (retired_counters.size() < slots.counters.size()) {
    retired_counters.resize(slots.counters.size(), 0);
  }
  for (std::size_t i = 0; i < slots.counters.size(); ++i) {
    retired_counters[i] += slots.counters[i].load(std::memory_order_relaxed);
  }
  if (retired_gauges.size() < slots.gauges.size()) {
    retired_gauges.resize(slots.gauges.size(), 0);
  }
  for (std::size_t i = 0; i < slots.gauges.size(); ++i) {
    retired_gauges[i] = std::max(
        retired_gauges[i], slots.gauges[i].load(std::memory_order_relaxed));
  }
  if (retired_hists.size() < slots.hists.size()) {
    retired_hists.resize(slots.hists.size());
  }
  for (std::size_t i = 0; i < slots.hists.size(); ++i) {
    HistogramSnapshot h;
    h.count = slots.hists[i].count.load(std::memory_order_relaxed);
    h.sum = slots.hists[i].sum.load(std::memory_order_relaxed);
    h.max = slots.hists[i].max.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] = slots.hists[i].buckets[b].load(std::memory_order_relaxed);
    }
    retired_hists[i].Merge(h);
  }
}

void Registry::Impl::Retire(Shard* shard) {
  MutexLock lock(mu);
  FoldLocked(shard->slots);
  live_shards.erase(
      std::remove(live_shards.begin(), live_shards.end(), shard),
      live_shards.end());
  delete shard;
}

Registry::Registry() : impl_(new Impl()) {}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked, see header
  return *registry;
}

namespace {

std::uint32_t InternLocked(std::unordered_map<std::string, std::uint32_t>* ids,
                           std::vector<std::string>* names,
                           std::string_view name) {
  auto it = ids->find(std::string(name));
  if (it != ids->end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(names->size());
  names->emplace_back(name);
  ids->emplace(std::string(name), id);
  return id;
}

}  // namespace

std::uint32_t Registry::InternCounter(std::string_view name) {
  MutexLock lock(impl_->mu);
  return InternLocked(&impl_->counter_ids, &impl_->counter_names, name);
}

std::uint32_t Registry::InternGauge(std::string_view name) {
  MutexLock lock(impl_->mu);
  return InternLocked(&impl_->gauge_ids, &impl_->gauge_names, name);
}

std::uint32_t Registry::InternHistogram(std::string_view name) {
  MutexLock lock(impl_->mu);
  return InternLocked(&impl_->hist_ids, &impl_->hist_names, name);
}

void Registry::CounterAdd(std::uint32_t id, std::uint64_t delta) {
  auto& slots = impl_->ThisShard()->slots;
  EnsureSize(&slots.counters, id + 1);
  slots.counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::GaugeMax(std::uint32_t id, std::uint64_t value) {
  auto& slots = impl_->ThisShard()->slots;
  EnsureSize(&slots.gauges, id + 1);
  // Owner-thread-only writes: plain compare-then-store is enough.
  auto& slot = slots.gauges[id];
  if (value > slot.load(std::memory_order_relaxed)) {
    slot.store(value, std::memory_order_relaxed);
  }
}

void Registry::HistogramRecord(std::uint32_t id, std::uint64_t value) {
  auto& slots = impl_->ThisShard()->slots;
  while (slots.hists.size() <= id) slots.hists.emplace_back();
  auto& hist = slots.hists[id];
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
  if (value > hist.max.load(std::memory_order_relaxed)) {
    hist.max.store(value, std::memory_order_relaxed);
  }
  hist.buckets[HistogramBucket(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(impl_->mu);

  std::vector<std::uint64_t> counters = impl_->retired_counters;
  std::vector<std::uint64_t> gauges = impl_->retired_gauges;
  std::vector<HistogramSnapshot> hists = impl_->retired_hists;
  counters.resize(impl_->counter_names.size(), 0);
  gauges.resize(impl_->gauge_names.size(), 0);
  hists.resize(impl_->hist_names.size());

  for (const Impl::Shard* shard : impl_->live_shards) {
    const ShardSlots& slots = shard->slots;
    for (std::size_t i = 0; i < slots.counters.size(); ++i) {
      counters[i] += slots.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < slots.gauges.size(); ++i) {
      gauges[i] = std::max(gauges[i],
                           slots.gauges[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < slots.hists.size(); ++i) {
      HistogramSnapshot h;
      h.count = slots.hists[i].count.load(std::memory_order_relaxed);
      h.sum = slots.hists[i].sum.load(std::memory_order_relaxed);
      h.max = slots.hists[i].max.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] =
            slots.hists[i].buckets[b].load(std::memory_order_relaxed);
      }
      hists[i].Merge(h);
    }
  }

  MetricsSnapshot snapshot;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (counters[i] != 0) {
      snapshot.counters[impl_->counter_names[i]] = counters[i];
    }
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (gauges[i] != 0) snapshot.gauges[impl_->gauge_names[i]] = gauges[i];
  }
  for (std::size_t i = 0; i < hists.size(); ++i) {
    if (hists[i].count != 0) {
      snapshot.histograms[impl_->hist_names[i]] = hists[i];
    }
  }
  return snapshot;
}

void Registry::Reset() {
  MutexLock lock(impl_->mu);
  impl_->retired_counters.clear();
  impl_->retired_gauges.clear();
  impl_->retired_hists.clear();
  for (Impl::Shard* shard : impl_->live_shards) {
    for (auto& c : shard->slots.counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& g : shard->slots.gauges) {
      g.store(0, std::memory_order_relaxed);
    }
    for (auto& h : shard->slots.hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

// ---- Exporters ---------------------------------------------------------

namespace {

/// Minimal JSON string escape (metric names are plain identifiers, but be
/// safe against quotes/backslashes/control bytes).
void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    WriteJsonString(os, name);
    os << ": {\"count\": " << hist.count << ", \"sum\": " << hist.sum
       << ", \"max\": " << hist.max << ", \"mean\": " << hist.Mean()
       << ", \"p50\": " << hist.ApproxPercentile(0.5)
       << ", \"p99\": " << hist.ApproxPercentile(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) os << ", ";
      os << "{\"lo\": " << HistogramBucketLow(b)
         << ", \"count\": " << hist.buckets[b] << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsSnapshot::WriteCsv(std::ostream& os) const {
  os << "metric,kind,count,sum,mean,max\n";
  for (const auto& [name, value] : counters) {
    os << name << ",counter,," << value << ",,\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << ",gauge,,,," << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    os << name << ",histogram," << hist.count << "," << hist.sum << ","
       << hist.Mean() << "," << hist.max << "\n";
  }
}

}  // namespace egocensus::obs
