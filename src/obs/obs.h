#ifndef EGOCENSUS_OBS_OBS_H_
#define EGOCENSUS_OBS_OBS_H_

// Master switches of the observability layer (metrics registry + span
// tracer, see obs/metrics.h and obs/trace.h).
//
// Two independent gates keep the un-instrumented path free:
//
//  * Compile-time kill switch: build with -DEGO_OBS_ENABLED=0 (CMake option
//    EGOCENSUS_OBS=OFF) and every EGO_* macro expands to nothing, Enabled()
//    folds to constexpr false, and the inline recording helpers dead-code
//    eliminate — no atomics, no statics, no registry references at the
//    instrumentation sites.
//
//  * Runtime flag: even when compiled in, observability is off by default.
//    Every instrumentation site is guarded by Enabled(), a single relaxed
//    atomic load + predictable branch; nothing is interned, allocated, or
//    recorded until SetEnabled(true).

#ifndef EGO_OBS_ENABLED
#define EGO_OBS_ENABLED 1
#endif

#include <atomic>

namespace egocensus::obs {

#if EGO_OBS_ENABLED

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when metric/span recording is active. Hot-path guard: one relaxed
/// load, no fence.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off process-wide. Toggling while worker threads
/// are mid-census is safe (sites re-check per event) but yields partial
/// data; callers normally enable before a query and export after it.
void SetEnabled(bool enabled);

#else  // !EGO_OBS_ENABLED

inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#endif  // EGO_OBS_ENABLED

}  // namespace egocensus::obs

#endif  // EGOCENSUS_OBS_OBS_H_
