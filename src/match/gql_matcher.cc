#include "match/gql_matcher.h"

#include <algorithm>

#include "exec/failpoints.h"

#include "obs/metrics.h"

namespace egocensus {
namespace {

/// Kuhn's augmenting-path bipartite matching. Left vertices are the pattern
/// neighbors of v (at most 8), right vertices are indices into a local
/// neighbor array. Returns true if every left vertex can be matched.
class BipartiteMatcher {
 public:
  void Reset(std::size_t left, std::size_t right) {
    adjacency_.assign(left, {});
    match_right_.assign(right, -1);
  }

  void AddEdge(std::size_t l, std::size_t r) {
    adjacency_[l].push_back(static_cast<int>(r));
  }

  bool SaturatesLeft() {
    for (std::size_t l = 0; l < adjacency_.size(); ++l) {
      visited_.assign(match_right_.size(), 0);
      if (!TryAugment(static_cast<int>(l))) return false;
    }
    return true;
  }

 private:
  bool TryAugment(int l) {
    for (int r : adjacency_[l]) {
      if (visited_[r]) continue;
      visited_[r] = 1;
      if (match_right_[r] < 0 || TryAugment(match_right_[r])) {
        match_right_[r] = l;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<int>> adjacency_;
  std::vector<int> match_right_;
  std::vector<char> visited_;
};

}  // namespace

MatchSet GqlMatcher::DoFindMatches(const Graph& graph,
                                   const Pattern& pattern) {
  stats_ = MatcherStats();
  const int arity = pattern.NumNodes();
  MatchSet matches(arity);
  Governor* const gov = governor();

  ProfileIndex local_profiles;
  const ProfileIndex* profiles = profiles_;
  if (profiles == nullptr) {
    local_profiles = ProfileIndex::Build(graph);
    profiles = &local_profiles;
  }

  std::vector<std::vector<NodeId>> cands =
      EnumerateCandidates(graph, *profiles, pattern);
  std::vector<std::vector<char>> is_cand(arity);
  for (int v = 0; v < arity; ++v) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      interrupted_ = true;
      return matches;
    }
    EGO_HIST_RECORD("match/gql/candidate_set_size", cands[v].size());
    stats_.initial_candidates += cands[v].size();
    if (cands[v].empty()) return matches;
    is_cand[v].assign(graph.NumNodes(), 0);
    for (NodeId n : cands[v]) is_cand[v][n] = 1;
    if (gov != nullptr &&
        !gov->ChargeMemory(cands[v].size() * sizeof(NodeId) +
                           graph.NumNodes() * sizeof(char))) {
      interrupted_ = true;
      return matches;
    }
  }

  const bool directed = graph.directed();

  // Pseudo subgraph isomorphism refinement: repeat passes of the
  // semi-perfect matching test until no candidate is removed.
  BipartiteMatcher bipartite;
  bool changed = true;
  while (changed) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      interrupted_ = true;
      return matches;
    }
    changed = false;
    ++stats_.prune_passes;
    for (int v = 0; v < arity; ++v) {
      const auto& adjacency = pattern.Neighbors(v);
      if (adjacency.empty()) continue;
      auto& list = cands[v];
      std::size_t kept = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        NodeId n = list[i];
        auto neighbors = graph.Neighbors(n);
        bipartite.Reset(adjacency.size(), neighbors.size());
        for (std::size_t l = 0; l < adjacency.size(); ++l) {
          const auto& adj = adjacency[l];
          for (std::size_t r = 0; r < neighbors.size(); ++r) {
            NodeId x = neighbors[r];
            if (!is_cand[adj.node][x]) continue;
            if (directed) {
              if (adj.via_out && !graph.HasEdge(n, x)) continue;
              if (adj.via_in && !graph.HasEdge(x, n)) continue;
            }
            bipartite.AddEdge(l, r);
          }
        }
        if (bipartite.SaturatesLeft()) {
          list[kept++] = n;
        } else {
          is_cand[v][n] = 0;
          ++stats_.pruned_candidates;
          changed = true;
        }
      }
      list.resize(kept);
    }
  }

  // Extraction by scanning full candidate sets (no candidate neighbors).
  const auto& order = pattern.SearchOrder();
  std::vector<int> position(arity);
  for (int i = 0; i < arity; ++i) position[order[i]] = i;

  // Pattern neighbors of order[i] that are matched earlier.
  std::vector<std::vector<Pattern::Adjacent>> backward(arity);
  for (int i = 0; i < arity; ++i) {
    for (const auto& adj : pattern.Neighbors(order[i])) {
      if (position[adj.node] < i) backward[i].push_back(adj);
    }
  }
  std::vector<std::vector<Pattern::SymmetryCondition>> conditions_at(arity);
  for (const auto& cond : pattern.SymmetryConditions()) {
    int at = std::max(position[cond.smaller], position[cond.larger]);
    conditions_at[at].push_back(cond);
  }

  std::vector<NodeId> assignment(arity, kInvalidNode);
  // `stop` unwinds the search tree once the governor says stop; matches
  // found so far stay valid.
  bool stop = false;
  auto extend = [&](auto&& self, int i) -> void {
    if (stop) return;
    if (i == arity) {
      if (MatchSatisfiesConstraints(graph, pattern, assignment)) {
        matches.Add(assignment);
        if (gov != nullptr &&
            !gov->ChargeMemory(static_cast<std::uint64_t>(arity) *
                               sizeof(NodeId))) {
          stop = true;
        }
      }
      return;
    }
    // One checkpoint per search-tree node expanded.
    EGO_FAILPOINT("match/extend");
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      stop = true;
      return;
    }
    ++stats_.partial_matches;
    int v = order[i];
    // The full candidate-set scan per extension is exactly the cost CN's
    // candidate-neighbor lists avoid; its size distribution is the
    // observable half of the Fig. 4(a)/(b) gap.
    EGO_HIST_RECORD("match/gql/scan_set_size", cands[v].size());
    // Each accepted candidate re-enters extend through self(self, i + 1),
    // which polls Checkpoint per search-tree node; that recursion is
    // invisible to name-level call analysis.
    // egolint: no-checkpoint(recursion via self() polls per tree node)
    for (NodeId x : cands[v]) {
      ++stats_.extension_checks;
      bool ok = true;
      // egolint: no-checkpoint(bounded by the pattern backward-edge count)
      for (const auto& adj : backward[i]) {
        NodeId matched = assignment[adj.node];
        if (directed) {
          if (adj.via_out && !graph.HasEdge(x, matched)) {
            // pattern edge v -> adj.node
            ok = false;
            break;
          }
          if (adj.via_in && !graph.HasEdge(matched, x)) {
            ok = false;
            break;
          }
          if (adj.undirected && !graph.HasUndirectedEdge(x, matched)) {
            ok = false;
            break;
          }
        } else if (!graph.HasUndirectedEdge(x, matched)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (int j = 0; j < i && ok; ++j) {
        if (assignment[order[j]] == x) ok = false;
      }
      if (!ok) continue;
      assignment[v] = x;
      for (const auto& cond : conditions_at[i]) {
        if (assignment[cond.smaller] >= assignment[cond.larger]) {
          ok = false;
          break;
        }
      }
      if (ok) self(self, i + 1);
      assignment[v] = kInvalidNode;
    }
  };
  extend(extend, 0);
  if (stop) interrupted_ = true;

  if (obs::Enabled()) {
    obs::CounterAdd("match/gql/initial_candidates",
                    stats_.initial_candidates);
    obs::CounterAdd("match/gql/pruned_candidates", stats_.pruned_candidates);
    obs::CounterAdd("match/gql/prune_passes", stats_.prune_passes);
    obs::CounterAdd("match/gql/extension_checks", stats_.extension_checks);
    obs::CounterAdd("match/gql/partial_matches", stats_.partial_matches);
    obs::CounterAdd("match/gql/matches", matches.size());
    obs::HistogramRecord("match/gql/prune_passes_per_run",
                         stats_.prune_passes);
  }
  return matches;
}

}  // namespace egocensus
