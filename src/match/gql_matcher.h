#ifndef EGOCENSUS_MATCH_GQL_MATCHER_H_
#define EGOCENSUS_MATCH_GQL_MATCHER_H_

#include "match/matcher.h"

namespace egocensus {

/// Reimplementation of the GraphQL-style matching strategy of He & Singh
/// (SIGMOD 2008), the baseline the paper compares against ("GQL"):
///   1. profile-based candidate enumeration (same first step as CN);
///   2. iterative refinement by *pseudo subgraph isomorphism*: a candidate n
///      of pattern node v survives a pass only if a semi-perfect bipartite
///      matching exists between v's pattern neighbors and n's graph
///      neighbors restricted to the current candidate sets;
///   3. extraction WITHOUT candidate neighbor sets: each extension step
///      scans the full candidate set C(v_{i+1}) and tests adjacency against
///      the already-matched neighbors. This candidate-set scan is exactly
///      the cost that the paper's candidate-neighbor sets remove, so the
///      CN-vs-GQL comparison reproduces the paper's Figures 4(a)/(b) shape.
class GqlMatcher : public Matcher {
 public:
  GqlMatcher() = default;
  explicit GqlMatcher(const ProfileIndex* profiles) : profiles_(profiles) {}

 protected:
  MatchSet DoFindMatches(const Graph& graph, const Pattern& pattern) override;

 private:
  const ProfileIndex* profiles_ = nullptr;
};

}  // namespace egocensus

#endif  // EGOCENSUS_MATCH_GQL_MATCHER_H_
