#include "match/cn_matcher.h"

#include <algorithm>

#include "exec/failpoints.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace egocensus {
namespace {

/// Per-pattern-node candidate state for the CN algorithm.
struct CandidateState {
  std::vector<NodeId> cands;
  std::vector<char> alive;  // parallel to cands
  // cn[ci][slot]: sorted candidate-neighbor list of candidate ci w.r.t. the
  // slot-th pattern neighbor of this pattern node.
  std::vector<std::vector<std::vector<NodeId>>> cn;
  // Dense reverse maps over database nodes.
  std::vector<char> is_cand;        // node -> is a live candidate
  std::vector<std::uint32_t> pos;   // node -> index into cands
};

bool SortedContains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

MatchSet CnMatcher::DoFindMatches(const Graph& graph,
                                  const Pattern& pattern) {
  stats_ = MatcherStats();
  const int arity = pattern.NumNodes();
  MatchSet matches(arity);
  Governor* const gov = governor();

  ProfileIndex local_profiles;
  const ProfileIndex* profiles = profiles_;
  if (profiles == nullptr) {
    local_profiles = ProfileIndex::Build(graph);
    profiles = &local_profiles;
  }

  // Step 1: candidate enumeration via profiles.
  std::vector<std::vector<NodeId>> initial =
      EnumerateCandidates(graph, *profiles, pattern);
  std::vector<CandidateState> state(arity);
  for (int v = 0; v < arity; ++v) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      interrupted_ = true;
      return matches;
    }
    state[v].cands = std::move(initial[v]);
    EGO_HIST_RECORD("match/cn/candidate_set_size", state[v].cands.size());
    stats_.initial_candidates += state[v].cands.size();
    if (state[v].cands.empty()) return matches;  // no match possible
    state[v].alive.assign(state[v].cands.size(), 1);
    state[v].is_cand.assign(graph.NumNodes(), 0);
    state[v].pos.assign(graph.NumNodes(), 0);
    for (std::uint32_t i = 0; i < state[v].cands.size(); ++i) {
      state[v].is_cand[state[v].cands[i]] = 1;
      state[v].pos[state[v].cands[i]] = i;
    }
    // Candidate list + dense reverse maps for this pattern node.
    if (gov != nullptr &&
        !gov->ChargeMemory(state[v].cands.size() * sizeof(NodeId) +
                           graph.NumNodes() *
                               (sizeof(char) + sizeof(std::uint32_t)))) {
      interrupted_ = true;
      return matches;
    }
  }

  const bool directed = graph.directed();

  // Step 2: initialize candidate neighbor sets.
  for (int v = 0; v < arity; ++v) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      interrupted_ = true;
      return matches;
    }
    const auto& adjacency = pattern.Neighbors(v);
    state[v].cn.resize(state[v].cands.size());
    for (std::uint32_t ci = 0; ci < state[v].cands.size(); ++ci) {
      NodeId n = state[v].cands[ci];
      auto& slots = state[v].cn[ci];
      slots.resize(adjacency.size());
      for (std::size_t slot = 0; slot < adjacency.size(); ++slot) {
        const auto& adj = adjacency[slot];
        const auto& target = state[adj.node];
        for (NodeId x : graph.Neighbors(n)) {
          if (!target.is_cand[x]) continue;
          if (directed) {
            if (adj.via_out && !graph.HasEdge(n, x)) continue;
            if (adj.via_in && !graph.HasEdge(x, n)) continue;
            // `undirected` pattern edges accept either direction, which
            // Graph::Neighbors already guarantees.
          }
          slots[slot].push_back(x);  // Neighbors(n) is sorted
        }
      }
    }
    std::uint64_t cn_bytes = 0;
    for (const auto& slots : state[v].cn) {
      for (const auto& slot : slots) cn_bytes += slot.size() * sizeof(NodeId);
    }
    if (gov != nullptr && !gov->ChargeMemory(cn_bytes)) {
      interrupted_ = true;
      return matches;
    }
  }

  // The candidate-neighbor cardinalities right after initialization are the
  // quantity the paper's CN-vs-GQL argument turns on (small CN lists vs
  // full candidate-set scans), so sample them before pruning shrinks them.
  if (obs::Enabled()) {
    static const obs::HistogramHandle cn_len_hist("match/cn/cn_set_size");
    for (int v = 0; v < arity; ++v) {
      for (const auto& slots : state[v].cn) {
        for (const auto& slot : slots) cn_len_hist.Record(slot.size());
      }
    }
  }

  // Step 3: simultaneous pruning to a fixed point.
  bool changed = true;
  while (changed) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      interrupted_ = true;
      return matches;
    }
    changed = false;
    ++stats_.prune_passes;
    // Remove candidates with an empty CN slot.
    for (int v = 0; v < arity; ++v) {
      for (std::uint32_t ci = 0; ci < state[v].cands.size(); ++ci) {
        if (!state[v].alive[ci]) continue;
        for (const auto& slot : state[v].cn[ci]) {
          if (slot.empty()) {
            state[v].alive[ci] = 0;
            state[v].is_cand[state[v].cands[ci]] = 0;
            state[v].cn[ci].clear();
            ++stats_.pruned_candidates;
            changed = true;
            break;
          }
        }
      }
    }
    // Drop CN entries that are no longer candidates of the neighbor node.
    for (int v = 0; v < arity; ++v) {
      const auto& adjacency = pattern.Neighbors(v);
      for (std::uint32_t ci = 0; ci < state[v].cands.size(); ++ci) {
        if (!state[v].alive[ci]) continue;
        for (std::size_t slot = 0; slot < adjacency.size(); ++slot) {
          auto& list = state[v].cn[ci][slot];
          const auto& target = state[adjacency[slot].node];
          std::size_t before = list.size();
          list.erase(std::remove_if(list.begin(), list.end(),
                                    [&](NodeId x) {
                                      return !target.is_cand[x];
                                    }),
                     list.end());
          if (list.size() != before) changed = true;
        }
      }
    }
  }

  // Step 4: extraction. The search order has connected prefixes; node v at
  // position i is matched by intersecting the CN lists of the
  // already-matched pattern neighbors of v.
  const auto& order = pattern.SearchOrder();
  std::vector<int> position(arity);
  for (int i = 0; i < arity; ++i) position[order[i]] = i;

  // Earlier-matched pattern neighbors of order[i], as (pattern node u,
  // slot index of order[i] within u's adjacency).
  std::vector<std::vector<std::pair<int, std::size_t>>> backward(arity);
  for (int i = 0; i < arity; ++i) {
    int v = order[i];
    for (const auto& adj : pattern.Neighbors(v)) {
      if (position[adj.node] < i) {
        int u = adj.node;
        const auto& u_adj = pattern.Neighbors(u);
        for (std::size_t slot = 0; slot < u_adj.size(); ++slot) {
          if (u_adj[slot].node == v) {
            backward[i].emplace_back(u, slot);
            break;
          }
        }
      }
    }
  }

  // Symmetry conditions checked as soon as both endpoints are assigned.
  std::vector<std::vector<Pattern::SymmetryCondition>> conditions_at(arity);
  for (const auto& cond : pattern.SymmetryConditions()) {
    int at = std::max(position[cond.smaller], position[cond.larger]);
    conditions_at[at].push_back(cond);
  }

  std::vector<NodeId> assignment(arity, kInvalidNode);
  std::vector<std::uint32_t> cand_index(arity, 0);

  // Recursive lambda over search positions. `stop` unwinds the whole
  // search tree once the governor says stop: matches found so far stay
  // valid, nothing new is expanded.
  bool stop = false;
  auto extend = [&](auto&& self, int i) -> void {
    if (stop) return;
    if (i == arity) {
      if (MatchSatisfiesConstraints(graph, pattern, assignment)) {
        matches.Add(assignment);
        if (gov != nullptr &&
            !gov->ChargeMemory(static_cast<std::uint64_t>(arity) *
                               sizeof(NodeId))) {
          stop = true;
        }
      }
      return;
    }
    // One checkpoint per search-tree node expanded.
    EGO_FAILPOINT("match/extend");
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      stop = true;
      return;
    }
    ++stats_.partial_matches;
    int v = order[i];
    auto try_candidate = [&](NodeId x, std::uint32_t ci) {
      ++stats_.extension_checks;
      for (int j = 0; j < i; ++j) {
        if (assignment[order[j]] == x) return;  // injectivity
      }
      assignment[v] = x;
      cand_index[v] = ci;
      for (const auto& cond : conditions_at[i]) {
        if (assignment[cond.smaller] >= assignment[cond.larger]) {
          assignment[v] = kInvalidNode;
          return;
        }
      }
      self(self, i + 1);
      assignment[v] = kInvalidNode;
    };

    if (backward[i].empty()) {
      // Only the first position can be neighbor-free (connected prefixes).
      for (std::uint32_t ci = 0; ci < state[v].cands.size(); ++ci) {
        if (state[v].alive[ci]) try_candidate(state[v].cands[ci], ci);
      }
      return;
    }
    // Intersect the candidate-neighbor lists of the matched neighbors:
    // iterate the shortest and probe the rest.
    const std::vector<NodeId>* shortest = nullptr;
    for (const auto& [u, slot] : backward[i]) {
      const auto& list = state[u].cn[cand_index[u]][slot];
      if (shortest == nullptr || list.size() < shortest->size()) {
        shortest = &list;
      }
    }
    for (NodeId x : *shortest) {
      if (!state[v].is_cand[x]) continue;
      bool in_all = true;
      for (const auto& [u, slot] : backward[i]) {
        const auto& list = state[u].cn[cand_index[u]][slot];
        if (&list != shortest && !SortedContains(list, x)) {
          in_all = false;
          break;
        }
      }
      if (in_all) try_candidate(x, state[v].pos[x]);
    }
  };
  extend(extend, 0);
  if (stop) interrupted_ = true;

  if (obs::Enabled()) {
    obs::CounterAdd("match/cn/initial_candidates", stats_.initial_candidates);
    obs::CounterAdd("match/cn/pruned_candidates", stats_.pruned_candidates);
    obs::CounterAdd("match/cn/prune_passes", stats_.prune_passes);
    obs::CounterAdd("match/cn/extension_checks", stats_.extension_checks);
    obs::CounterAdd("match/cn/partial_matches", stats_.partial_matches);
    obs::CounterAdd("match/cn/matches", matches.size());
    obs::HistogramRecord("match/cn/prune_passes_per_run", stats_.prune_passes);
  }
  return matches;
}

}  // namespace egocensus
