#ifndef EGOCENSUS_MATCH_MATCH_SET_H_
#define EGOCENSUS_MATCH_MATCH_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace egocensus {

/// The set of matches M of a pattern P in a graph G. Each match stores the
/// image of every pattern node, indexed by *pattern node index* (not search
/// order), flat-packed for locality. Matches are distinct subgraphs:
/// matchers enforce the pattern's symmetry-breaking conditions so automorphic
/// re-mappings are not produced.
class MatchSet {
 public:
  explicit MatchSet(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  std::size_t size() const {
    return arity_ == 0 ? 0 : nodes_.size() / arity_;
  }

  /// Appends a match; `images[v]` is the database node matched to pattern
  /// node v.
  void Add(std::span<const NodeId> images) {
    nodes_.insert(nodes_.end(), images.begin(), images.end());
  }

  /// Images of match `index`, by pattern node index.
  std::span<const NodeId> Match(std::size_t index) const {
    return {nodes_.data() + index * arity_, static_cast<std::size_t>(arity_)};
  }

  /// Image of pattern node v in match `index` (the paper's mu(v, M)).
  NodeId Image(std::size_t index, int v) const {
    return nodes_[index * arity_ + v];
  }

  void Reserve(std::size_t matches) { nodes_.reserve(matches * arity_); }

 private:
  int arity_;
  std::vector<NodeId> nodes_;
};

/// Checks the non-structural constraints of a full assignment: negated
/// edges must be absent and all attribute predicates must hold. `graph`
/// supplies attribute data. Positive-edge structure and injectivity are the
/// matcher's responsibility and are not re-checked here.
bool MatchSatisfiesConstraints(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> assignment);

/// Evaluates one predicate against an assignment.
bool EvaluatePredicate(const Graph& graph, const PatternPredicate& predicate,
                       std::span<const NodeId> assignment);

}  // namespace egocensus

#endif  // EGOCENSUS_MATCH_MATCH_SET_H_
