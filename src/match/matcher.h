#ifndef EGOCENSUS_MATCH_MATCHER_H_
#define EGOCENSUS_MATCH_MATCHER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/profile_index.h"
#include "match/match_set.h"
#include "pattern/pattern.h"

namespace egocensus {

/// Counters exposed by the matchers; used by tests and by the CN-vs-GQL
/// benchmarks to attribute the performance gap (candidate-set scans vs
/// candidate-neighbor intersections).
struct MatcherStats {
  std::uint64_t initial_candidates = 0;   // after profile filtering
  std::uint64_t pruned_candidates = 0;    // removed by refinement
  std::uint64_t prune_passes = 0;         // refinement iterations
  std::uint64_t extension_checks = 0;     // candidate nodes examined during
                                          // extraction
  std::uint64_t partial_matches = 0;      // partial assignments expanded
};

/// Interface of a subgraph pattern matcher: returns all matches of
/// `pattern` in `graph` (distinct subgraphs; symmetry-broken).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Finds all matches. `pattern` must be prepared.
  virtual MatchSet FindMatches(const Graph& graph, const Pattern& pattern) = 0;

  const MatcherStats& stats() const { return stats_; }

 protected:
  MatcherStats stats_;
};

/// Step III-A shared by both matchers: enumerates candidate database nodes
/// C(v) for every pattern node using label constraints and profile
/// containment. Returned lists are sorted.
std::vector<std::vector<NodeId>> EnumerateCandidates(
    const Graph& graph, const ProfileIndex& profiles, const Pattern& pattern);

}  // namespace egocensus

#endif  // EGOCENSUS_MATCH_MATCHER_H_
