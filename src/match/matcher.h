#ifndef EGOCENSUS_MATCH_MATCHER_H_
#define EGOCENSUS_MATCH_MATCHER_H_

#include <cstdint>
#include <vector>

#include "exec/governor.h"
#include "graph/graph.h"
#include "graph/profile_index.h"
#include "match/match_set.h"
#include "pattern/pattern.h"

namespace egocensus {

/// Counters exposed by the matchers; used by tests and by the CN-vs-GQL
/// benchmarks to attribute the performance gap (candidate-set scans vs
/// candidate-neighbor intersections).
struct MatcherStats {
  std::uint64_t initial_candidates = 0;   // after profile filtering
  std::uint64_t pruned_candidates = 0;    // removed by refinement
  std::uint64_t prune_passes = 0;         // refinement iterations
  std::uint64_t extension_checks = 0;     // candidate nodes examined during
                                          // extraction
  std::uint64_t partial_matches = 0;      // partial assignments expanded
};

/// Per-call execution options for a matcher run.
struct MatchOptions {
  /// Optional resource governor. When set, the matcher checkpoints once per
  /// search-tree node expanded (and once per refinement pass) and charges
  /// match-set growth to the budget; when the governor stops, the matcher
  /// returns the matches found so far and interrupted() is true. Null =
  /// ungoverned (one pointer test per checkpoint).
  Governor* governor = nullptr;
};

/// Interface of a subgraph pattern matcher: returns all matches of
/// `pattern` in `graph` (distinct subgraphs; symmetry-broken).
///
/// Template method: FindMatches is the non-virtual public entry (so the
/// historical two-argument call sites compile unchanged and option handling
/// lives in one place); implementations override DoFindMatches.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Finds all matches. `pattern` must be prepared. When
  /// options.governor stops mid-search the returned set is the valid
  /// prefix found so far and interrupted() reports true.
  MatchSet FindMatches(const Graph& graph, const Pattern& pattern,
                       const MatchOptions& options = {}) {
    options_ = options;
    interrupted_ = false;
    return DoFindMatches(graph, pattern);
  }

  const MatcherStats& stats() const { return stats_; }

  /// True iff the last FindMatches call was stopped by its governor before
  /// exhausting the search space (its result is a subset of the full match
  /// set, every element still a genuine match).
  bool interrupted() const { return interrupted_; }

 protected:
  virtual MatchSet DoFindMatches(const Graph& graph,
                                 const Pattern& pattern) = 0;

  Governor* governor() const { return options_.governor; }

  MatcherStats stats_;
  MatchOptions options_;
  bool interrupted_ = false;
};

/// Step III-A shared by both matchers: enumerates candidate database nodes
/// C(v) for every pattern node using label constraints and profile
/// containment. Returned lists are sorted.
std::vector<std::vector<NodeId>> EnumerateCandidates(
    const Graph& graph, const ProfileIndex& profiles, const Pattern& pattern);

}  // namespace egocensus

#endif  // EGOCENSUS_MATCH_MATCHER_H_
