#ifndef EGOCENSUS_MATCH_CN_MATCHER_H_
#define EGOCENSUS_MATCH_CN_MATCHER_H_

#include "match/matcher.h"

namespace egocensus {

/// The paper's subgraph pattern matching algorithm (Section III /
/// Algorithm 1), built around explicitly maintained *candidate neighbor
/// sets*: (1) enumerate candidates per pattern node via profile containment,
/// (2) initialize CN(n, v, v') = C(v') intersect N(n) for every candidate n
/// of v and pattern neighbor v', (3) simultaneously prune candidates whose
/// CN set empties and CN entries that left the candidate sets, until a fixed
/// point, and (4) extract matches in a connected-prefix order, extending
/// each partial match by intersecting the (small) candidate neighbor sets of
/// the already-matched neighbors.
///
/// An optional externally built ProfileIndex can be supplied to amortize
/// profile computation across multiple calls on the same graph.
///
/// Thread-safety: FindMatches uses only per-call state and reads the graph,
/// pattern and profile index, so distinct CnMatcher instances may run
/// concurrently on the same (or different) graphs — the parallel ND-BAS
/// engine keeps one matcher per worker. A single instance is not
/// re-entrant.
class CnMatcher : public Matcher {
 public:
  CnMatcher() = default;
  explicit CnMatcher(const ProfileIndex* profiles) : profiles_(profiles) {}

 protected:
  MatchSet DoFindMatches(const Graph& graph, const Pattern& pattern) override;

 private:
  const ProfileIndex* profiles_ = nullptr;
};

}  // namespace egocensus

#endif  // EGOCENSUS_MATCH_CN_MATCHER_H_
