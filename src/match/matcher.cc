#include "match/matcher.h"

#include <algorithm>

namespace egocensus {

std::vector<std::vector<NodeId>> EnumerateCandidates(
    const Graph& graph, const ProfileIndex& profiles, const Pattern& pattern) {
  const int arity = pattern.NumNodes();
  std::vector<std::vector<NodeId>> candidates(arity);

  // Pattern profile of v: required neighbor count per constrained label,
  // plus the total structural degree.
  for (int v = 0; v < arity; ++v) {
    std::vector<std::pair<Label, std::uint32_t>> required;
    std::uint32_t degree = 0;
    for (const auto& adj : pattern.Neighbors(v)) {
      ++degree;
      auto label = pattern.LabelConstraint(adj.node);
      if (label.has_value() && *label < graph.NumLabels()) {
        bool found = false;
        for (auto& [l, c] : required) {
          if (l == *label) {
            ++c;
            found = true;
            break;
          }
        }
        if (!found) required.emplace_back(*label, 1);
      }
    }
    auto own_label = pattern.LabelConstraint(v);
    if (own_label.has_value() && *own_label >= graph.NumLabels()) {
      continue;  // label not present in the graph: no candidates
    }
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      if (own_label.has_value() && graph.label(n) != *own_label) continue;
      if (graph.Degree(n) < degree) continue;
      bool ok = true;
      for (const auto& [l, c] : required) {
        if (profiles.Count(n, l) < c) {
          ok = false;
          break;
        }
      }
      if (ok) candidates[v].push_back(n);
    }
  }
  return candidates;
}

}  // namespace egocensus
