#include "match/match_set.h"

#include <optional>

namespace egocensus {
namespace {

std::optional<AttributeValue> ResolveOperand(
    const Graph& graph, const PredicateOperand& operand,
    std::span<const NodeId> assignment) {
  if (const auto* nref = std::get_if<NodeAttrRef>(&operand)) {
    return graph.GetNodeAttribute(assignment[nref->node], nref->attr);
  }
  if (const auto* eref = std::get_if<EdgeAttrRef>(&operand)) {
    NodeId a = assignment[eref->src];
    NodeId b = assignment[eref->dst];
    std::optional<EdgeId> edge = graph.FindEdge(a, b);
    if (!edge.has_value() && graph.directed()) {
      edge = graph.FindEdge(b, a);
    }
    if (!edge.has_value()) return std::nullopt;
    return graph.edge_attributes().Get(*edge, eref->attr);
  }
  return std::get<AttributeValue>(operand);
}

}  // namespace

bool EvaluatePredicate(const Graph& graph, const PatternPredicate& predicate,
                       std::span<const NodeId> assignment) {
  auto lhs = ResolveOperand(graph, predicate.lhs, assignment);
  auto rhs = ResolveOperand(graph, predicate.rhs, assignment);
  if (!lhs.has_value() || !rhs.has_value()) return false;
  auto cmp = CompareAttributeValues(*lhs, *rhs);
  if (!cmp.has_value()) return false;
  switch (predicate.op) {
    case PredicateOp::kEq:
      return *cmp == 0;
    case PredicateOp::kNe:
      return *cmp != 0;
    case PredicateOp::kLt:
      return *cmp < 0;
    case PredicateOp::kLe:
      return *cmp <= 0;
    case PredicateOp::kGt:
      return *cmp > 0;
    case PredicateOp::kGe:
      return *cmp >= 0;
  }
  return false;
}

bool MatchSatisfiesConstraints(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> assignment) {
  for (const auto& edge : pattern.NegativeEdges()) {
    NodeId a = assignment[edge.src];
    NodeId b = assignment[edge.dst];
    bool present = edge.directed && graph.directed()
                       ? graph.HasEdge(a, b)
                       : graph.HasUndirectedEdge(a, b);
    if (present) return false;
  }
  for (const auto& predicate : pattern.Predicates()) {
    if (!EvaluatePredicate(graph, predicate, assignment)) return false;
  }
  return true;
}

}  // namespace egocensus
