#ifndef EGOCENSUS_EXEC_FAILPOINTS_H_
#define EGOCENSUS_EXEC_FAILPOINTS_H_

// Deterministic fault injection (see docs/ROBUSTNESS.md for the catalog).
//
// A failpoint is a named hook compiled into a hot path:
//
//   EGO_FAILPOINT("census/focal");
//
// In production nothing is armed and the macro costs one relaxed load of a
// global "any armed" flag (same double-gating discipline as the obs
// macros). Tests arm a point by name to run a handler on its N-th hit:
//
//   failpoints::Arm("census/focal", 3, [&] { gov.RequestCancel(); });
//
// which makes "cancel at exactly the i-th checkpoint" a reproducible unit
// test instead of a timing race. Handlers observe, they do not throw:
// failpoint sites sit inside ThreadPool chunks and Status-returning code
// where exceptions must not escape — inject faults by flipping the state
// the production code already checks (cancel a token, exhaust a budget),
// not by unwinding.
//
// Compile-time kill switch: -DEGOCENSUS_FAILPOINTS=OFF defines
// EGO_FAILPOINTS_ENABLED=0 and EGO_FAILPOINT() expands to nothing — the
// CI kill-switch job proves the hooks vanish from release builds.

#ifndef EGO_FAILPOINTS_ENABLED
#define EGO_FAILPOINTS_ENABLED 1
#endif

#if EGO_FAILPOINTS_ENABLED

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>

namespace egocensus::failpoints {

/// Runs when an armed failpoint reaches its trigger hit. Must not throw.
using Handler = std::function<void()>;

constexpr bool CompiledIn() { return true; }

namespace internal {
extern std::atomic<bool> g_any_armed;
void HitSlow(std::string_view name);
}  // namespace internal

/// True iff at least one failpoint is armed (relaxed; hot-path gate).
inline bool Active() {
  return internal::g_any_armed.load(std::memory_order_relaxed);
}

/// Arms `name` to run `handler` on its nth_hit-th hit (1-based) after
/// arming, once. nth_hit == 0 means observe only: count hits, never fire.
/// Re-arming an armed name replaces it (hit count restarts at zero).
void Arm(std::string_view name, std::uint64_t nth_hit, Handler handler);

/// Disarms `name`; its hit count remains readable until ResetHits.
void Disarm(std::string_view name);

/// Disarms everything and forgets all hit counts. Tests call this in
/// SetUp/TearDown so state never leaks across tests.
void DisarmAll();

/// Hits recorded for `name` since it was last armed (0 if never armed).
std::uint64_t Hits(std::string_view name);

/// Zeroes the hit count of `name`, keeping its arming.
void ResetHits(std::string_view name);

/// Hot-path entry (use the EGO_FAILPOINT macro, not this).
inline void Hit(std::string_view name) {
  if (Active()) internal::HitSlow(name);
}

}  // namespace egocensus::failpoints

#define EGO_FAILPOINT(name) ::egocensus::failpoints::Hit(name)

#else  // !EGO_FAILPOINTS_ENABLED

#include <cstdint>
#include <functional>
#include <string_view>

namespace egocensus::failpoints {

using Handler = std::function<void()>;

constexpr bool CompiledIn() { return false; }
inline bool Active() { return false; }
inline void Arm(std::string_view, std::uint64_t, Handler) {}
inline void Disarm(std::string_view) {}
inline void DisarmAll() {}
inline std::uint64_t Hits(std::string_view) { return 0; }
inline void ResetHits(std::string_view) {}
inline void Hit(std::string_view) {}

}  // namespace egocensus::failpoints

#define EGO_FAILPOINT(name) \
  do {                      \
  } while (false)

#endif  // EGO_FAILPOINTS_ENABLED

#endif  // EGOCENSUS_EXEC_FAILPOINTS_H_
