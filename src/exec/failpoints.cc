#include "exec/failpoints.h"

#if EGO_FAILPOINTS_ENABLED

#include <map>
#include <string>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace egocensus::failpoints {

namespace internal {
std::atomic<bool> g_any_armed{false};
}  // namespace internal

namespace {

struct Point {
  Handler handler;            // empty once fired or when observe-only
  std::uint64_t nth_hit = 0;  // 1-based trigger; 0 = observe only
  std::uint64_t hits = 0;
  bool armed = false;         // disarmed points linger to keep their hits
};

struct Registry {
  Mutex mu;
  // std::less<> so string_view lookups don't allocate on the hot path.
  std::map<std::string, Point, std::less<>> points EGO_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: handlers may run at exit
  return *r;
}

void RecomputeAnyArmedLocked(Registry& r) EGO_REQUIRES(r.mu) {
  bool any = false;
  for (const auto& [name, p] : r.points) {
    if (p.armed) {
      any = true;
      break;
    }
  }
  internal::g_any_armed.store(any, std::memory_order_relaxed);
}

}  // namespace

namespace internal {

void HitSlow(std::string_view name) {
  Registry& r = registry();
  Handler to_run;
  {
    MutexLock lock(r.mu);
    auto it = r.points.find(name);
    if (it == r.points.end() || !it->second.armed) return;
    Point& p = it->second;
    ++p.hits;
    if (p.nth_hit != 0 && p.hits == p.nth_hit) {
      to_run = std::move(p.handler);  // fire once
      p.handler = nullptr;
    }
  }
  // Run outside the lock: handlers commonly poke governors whose obs
  // counters or tests' own Arm/Disarm calls would otherwise deadlock.
  if (to_run) to_run();
}

}  // namespace internal

void Arm(std::string_view name, std::uint64_t nth_hit, Handler handler) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  Point& p = r.points[std::string(name)];
  p.handler = std::move(handler);
  p.nth_hit = nth_hit;
  p.hits = 0;
  p.armed = true;
  internal::g_any_armed.store(true, std::memory_order_relaxed);
}

void Disarm(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return;
  it->second.armed = false;
  it->second.handler = nullptr;
  RecomputeAnyArmedLocked(r);
}

void DisarmAll() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.points.clear();
  internal::g_any_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t Hits(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

void ResetHits(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  if (it != r.points.end()) it->second.hits = 0;
}

}  // namespace egocensus::failpoints

#endif  // EGO_FAILPOINTS_ENABLED
