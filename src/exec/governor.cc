#include "exec/governor.h"

#include "exec/failpoints.h"
#include "obs/metrics.h"

namespace egocensus {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case StopReason::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

StopReason Governor::Checkpoint() {
  EGO_FAILPOINT("exec/checkpoint");
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  StopReason r = reason();
  if (r != StopReason::kNone) return r;
  if (cancel_.Cancelled()) return Stop(StopReason::kCancelled);
  // Poll the clock on every checkpoint rather than every Nth: checkpoints
  // bracket arbitrarily slow work (a hub's k=2 extraction can take
  // milliseconds), so decimation would delay detection unboundedly. The
  // steady-clock read is a ~20ns vDSO call.
  if (deadline_.Expired()) return Stop(StopReason::kDeadlineExceeded);
  return StopReason::kNone;
}

bool Governor::ChargeMemory(std::uint64_t bytes) {
  EGO_COUNTER_ADD("exec/budget_charged_bytes", bytes);
  if (budget_.TryCharge(bytes)) return true;
  Stop(StopReason::kResourceExhausted);
  return false;
}

StopReason Governor::Stop(StopReason r) {
  std::uint8_t expected = static_cast<std::uint8_t>(StopReason::kNone);
  if (stop_reason_.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(r),
          std::memory_order_relaxed, std::memory_order_relaxed)) {
    switch (r) {
      case StopReason::kCancelled:
        EGO_COUNTER_ADD("exec/cancelled", 1);
        break;
      case StopReason::kDeadlineExceeded:
        EGO_COUNTER_ADD("exec/deadline_exceeded", 1);
        break;
      case StopReason::kResourceExhausted:
        EGO_COUNTER_ADD("exec/resource_exhausted", 1);
        break;
      case StopReason::kNone:
        break;
    }
    return r;
  }
  // Lost the race: the first recorded reason wins everywhere.
  return static_cast<StopReason>(expected);
}

Status Governor::ToStatus(std::string_view context) const {
  std::string what;
  std::string where(context);
  if (!annotation_.empty()) where += " [" + annotation_ + "]";
  switch (reason()) {
    case StopReason::kNone:
      return Status::Ok();
    case StopReason::kCancelled:
      what = where + ": cancelled";
      return Status::Cancelled(what);
    case StopReason::kDeadlineExceeded:
      what = where + ": deadline exceeded after " +
             std::to_string(checkpoints()) + " checkpoints";
      if (queue_wait_us_ > 0) {
        what += " (queued " + std::to_string(queue_wait_us_ / 1000) +
                " ms before execution)";
      }
      return Status::DeadlineExceeded(what);
    case StopReason::kResourceExhausted:
      what = where + ": memory budget exhausted (" +
             std::to_string(budget_.charged_bytes()) + " of " +
             std::to_string(budget_.limit_bytes()) + " bytes charged)";
      return Status::ResourceExhausted(what);
  }
  return Status::Internal("unknown stop reason");
}

}  // namespace egocensus
