#ifndef EGOCENSUS_EXEC_GOVERNOR_H_
#define EGOCENSUS_EXEC_GOVERNOR_H_

// Resource-governance layer: deadlines, memory budgets, and cooperative
// cancellation for census queries (see docs/ROBUSTNESS.md).
//
// The paper's census queries are worst-case explosive — a k=2 neighborhood
// of a hub or a dense pattern can blow up matcher time and extraction
// memory by orders of magnitude — so every long-running loop in the system
// (matcher search-tree expansion, per-focal counting, per-cluster
// traversal, pool chunks, dynamic updates) polls a shared Governor at a
// cooperative checkpoint and winds down when it says stop. Stops are
// sticky and propagate to every thread sharing the Governor: the first
// checkpoint that observes an expired deadline, an exhausted budget, or a
// cancelled token records the reason once, and all later checkpoints —
// on any worker — return it immediately.
//
// Cost model: an ungoverned run (Governor* == nullptr, the default) pays
// one pointer test per checkpoint. A governed run pays one relaxed
// fetch_add plus, when a deadline is set, one steady-clock read per
// checkpoint. All state is relaxed atomics (TSan-clean, same discipline as
// the obs shards): the governor only ever transitions one way
// (running -> stopped), so no ordering is required beyond the atomicity.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/timer.h"

namespace egocensus {

/// Why a governed execution stopped early. kNone means "keep going".
enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled,          // explicit CancelToken::Cancel
  kDeadlineExceeded,   // monotonic deadline passed
  kResourceExhausted,  // memory budget overrun
};

const char* StopReasonName(StopReason reason);

/// A point on the steady clock (Timer::NowMicros). Default-constructed
/// deadlines are unlimited.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Unlimited() { return Deadline(); }
  static Deadline AtMicros(std::uint64_t absolute_micros) {
    return Deadline(absolute_micros);
  }
  static Deadline AfterMicros(std::uint64_t micros) {
    return Deadline(Timer::NowMicros() + micros);
  }
  static Deadline AfterMillis(std::uint64_t millis) {
    return AfterMicros(millis * 1000);
  }

  bool unlimited() const { return micros_ == kUnlimited; }
  std::uint64_t micros() const { return micros_; }
  bool Expired() const {
    return !unlimited() && Timer::NowMicros() >= micros_;
  }
  /// Microseconds left; negative once expired, INT64_MAX when unlimited.
  std::int64_t RemainingMicros() const {
    if (unlimited()) return std::numeric_limits<std::int64_t>::max();
    return static_cast<std::int64_t>(micros_) -
           static_cast<std::int64_t>(Timer::NowMicros());
  }

 private:
  static constexpr std::uint64_t kUnlimited = ~0ull;
  explicit Deadline(std::uint64_t micros) : micros_(micros) {}
  std::uint64_t micros_ = kUnlimited;
};

/// Shared cancellation flag. Copies share one atomic, so a token handed to
/// another thread (or stashed in a failpoint handler) cancels the same
/// execution. Cancel/Cancelled are relaxed atomics — safe from any thread.
class CancelToken {
 public:
  CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { cancelled_->store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Cumulative memory budget shared by every worker of one execution.
/// Charges model the query's footprint, not RSS: growable scratch buffers
/// charge their high-water growth (see ScratchCharge) and append-only
/// structures (match sets) charge per element. A limit of 0 is unlimited;
/// the charge that crosses the limit fails and stays recorded, so
/// charged_bytes() reports how far the query got.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(std::uint64_t limit_bytes) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Configure before the execution starts (not thread-safe vs TryCharge).
  void SetLimit(std::uint64_t limit_bytes) { limit_ = limit_bytes; }

  bool limited() const { return limit_ != 0; }
  std::uint64_t limit_bytes() const { return limit_; }
  std::uint64_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }

  /// Records the charge; false when it pushed the total past the limit.
  bool TryCharge(std::uint64_t bytes) {
    std::uint64_t total =
        charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    return limit_ == 0 || total <= limit_;
  }

 private:
  std::uint64_t limit_ = 0;
  std::atomic<std::uint64_t> charged_{0};
};

/// Bundle of deadline + budget + cancel token with the sticky stop state,
/// threaded through CensusOptions / MatchOptions and shared by reference
/// across all workers of one execution. Configure (SetDeadline /
/// SetMemoryLimitBytes) before the execution starts; checkpointing and
/// charging are thread-safe thereafter. One Governor governs one query:
/// the stop is sticky, so reuse would start already-stopped.
class Governor {
 public:
  Governor() = default;
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  void SetDeadline(Deadline deadline) { deadline_ = deadline; }
  void SetMemoryLimitBytes(std::uint64_t bytes) { budget_.SetLimit(bytes); }

  /// Attributes this execution to a caller-visible identity — the daemon
  /// sets the request id — so a governed stop's Status names the request
  /// that hit the limit ("census: cancelled [request r1a2b-7]"). Configure
  /// before the execution starts, like the deadline: the string is read by
  /// ToStatus after workers wind down, never from checkpoint hot paths.
  void SetAnnotation(std::string annotation) {
    annotation_ = std::move(annotation);
  }
  const std::string& annotation() const { return annotation_; }

  /// Time the request spent queued before execution began. The daemon's
  /// admission queue charges queue wait against the request's absolute
  /// deadline (SetDeadline(Deadline::AtMicros(...)) anchored at frame
  /// receipt), so a deadline stop may have burned most of its budget
  /// before the first checkpoint — recording the wait here lets ToStatus
  /// say so instead of blaming the execution. Configure before the
  /// execution starts, like the annotation.
  void SetQueueWaitMicros(std::uint64_t wait_us) { queue_wait_us_ = wait_us; }
  std::uint64_t queue_wait_micros() const { return queue_wait_us_; }

  const Deadline& deadline() const { return deadline_; }
  const MemoryBudget& budget() const { return budget_; }

  /// Shared handle for cancelling from another thread.
  CancelToken cancel_token() const { return cancel_; }
  void RequestCancel() { cancel_.Cancel(); }

  /// Cooperative checkpoint: the cheap per-unit-of-work poll every governed
  /// loop makes. Returns kNone to continue; anything else means wind down
  /// (finish nothing new, keep what is already complete). Also the
  /// "exec/checkpoint" failpoint site, so fault-injection tests can cancel
  /// at exactly the i-th checkpoint.
  StopReason Checkpoint();

  /// Charges `bytes` to the budget; on overrun records kResourceExhausted
  /// and returns false. Callers treat false exactly like a stopping
  /// Checkpoint().
  bool ChargeMemory(std::uint64_t bytes);

  /// Sticky stop state without the deadline poll (the per-chunk check in
  /// ThreadPool workers): one relaxed load.
  bool stopped() const { return reason() != StopReason::kNone; }
  StopReason reason() const {
    return static_cast<StopReason>(
        stop_reason_.load(std::memory_order_relaxed));
  }

  /// Checkpoints passed so far (all threads).
  std::uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  std::uint64_t memory_charged_bytes() const {
    return budget_.charged_bytes();
  }

  /// OK while running; otherwise the stop rendered as
  /// kCancelled / kDeadlineExceeded / kResourceExhausted with `context`
  /// naming the interrupted operation.
  [[nodiscard]] Status ToStatus(std::string_view context) const;

 private:
  /// Records `r` if no stop is recorded yet (first writer wins) and bumps
  /// the matching obs counter; returns the winning reason.
  StopReason Stop(StopReason r);

  Deadline deadline_;
  MemoryBudget budget_;
  CancelToken cancel_;
  std::string annotation_;
  std::uint64_t queue_wait_us_ = 0;
  std::atomic<std::uint8_t> stop_reason_{
      static_cast<std::uint8_t>(StopReason::kNone)};
  std::atomic<std::uint64_t> checkpoints_{0};
};

/// Charges the high-water footprint of one reused scratch buffer (BFS
/// workspace, extraction buffers): only growth beyond the largest size seen
/// so far is charged, so a tight loop reusing its buffers charges its peak,
/// not its traffic. One ScratchCharge per scratch object per worker.
class ScratchCharge {
 public:
  /// True to continue; false when the growth overran the budget (treat like
  /// a stopping checkpoint). Ungoverned (null) always continues.
  bool Update(Governor* governor, std::uint64_t bytes_now) {
    if (governor == nullptr || bytes_now <= charged_) return true;
    std::uint64_t growth = bytes_now - charged_;
    charged_ = bytes_now;
    return governor->ChargeMemory(growth);
  }

 private:
  std::uint64_t charged_ = 0;
};

}  // namespace egocensus

#endif  // EGOCENSUS_EXEC_GOVERNOR_H_
