#ifndef EGOCENSUS_UTIL_TABLE_PRINTER_H_
#define EGOCENSUS_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace egocensus {

/// Collects rows of string cells and prints them as an aligned text table
/// (the format used by the bench harnesses to mirror the paper's figures)
/// or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string FormatDouble(double v, int precision = 3);

  /// Writes an aligned, human-readable table.
  void PrintText(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// numeric tables).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_TABLE_PRINTER_H_
