#ifndef EGOCENSUS_UTIL_TIMER_H_
#define EGOCENSUS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace egocensus {

/// Simple wall-clock stopwatch used by the benchmark harnesses and the
/// observability layer (obs/trace.h timestamps its spans with NowMicros so
/// every timing in the system reads the same steady clock).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Steady-clock timestamp in integer microseconds (epoch is the clock's,
  /// typically boot time — only differences are meaningful).
  static std::uint64_t NowMicros() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_TIMER_H_
