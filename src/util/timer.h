#ifndef EGOCENSUS_UTIL_TIMER_H_
#define EGOCENSUS_UTIL_TIMER_H_

#include <chrono>

namespace egocensus {

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_TIMER_H_
