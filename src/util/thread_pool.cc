#include "util/thread_pool.h"

#include <algorithm>

#include "exec/failpoints.h"
#include "exec/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace egocensus {

unsigned ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned ThreadPool::ResolveNumThreads(std::uint32_t requested) {
  return requested == 0 ? HardwareThreads() : requested;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_workers_(std::max(1u, num_threads == 0 ? HardwareThreads()
                                                 : num_threads)),
      cursors_(num_workers_) {
  threads_.reserve(num_workers_ - 1);
  for (unsigned rank = 1; rank < num_workers_; ++rank) {
    threads_.emplace_back([this, rank] { WorkerLoop(rank); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain, const ChunkFn& fn) {
  ParallelFor(begin, end, grain, nullptr, fn);
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain, const Governor* governor,
                             const ChunkFn& fn) {
  if (end <= begin) return;
  if (governor != nullptr && governor->stopped()) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t count = end - begin;
  if (num_workers_ == 1 || count <= grain) {
    fn(begin, end, 0);
    return;
  }

  const std::size_t num_chunks = (count + grain - 1) / grain;
  // Contiguous chunk partitions: worker w owns
  // [w * num_chunks / W, (w + 1) * num_chunks / W).
  for (unsigned w = 0; w < num_workers_; ++w) {
    cursors_[w].next.store(num_chunks * w / num_workers_,
                           std::memory_order_relaxed);
    cursors_[w].limit = num_chunks * (w + 1) / num_workers_;
  }
  {
    MutexLock lock(mu_);
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_fn_ = &fn;
    job_governor_ = governor;
    workers_remaining_ = num_workers_;
    ++generation_;
  }
  wake_cv_.notify_all();

  RunJob(0);

  MutexLock lock(mu_);
  --workers_remaining_;
  while (workers_remaining_ > 0) lock.Wait(done_cv_);
  job_fn_ = nullptr;
  job_governor_ = nullptr;
}

void ThreadPool::RunJob(unsigned rank) {
  const std::size_t begin = job_begin_;
  const std::size_t end = job_end_;
  const std::size_t grain = job_grain_;
  const ChunkFn& fn = *job_fn_;
  const Governor* const governor = job_governor_;

  // One span per worker per job: the trace timeline shows each worker's
  // busy interval on its own tid row, with the chunk tally as the arg —
  // imbalance and steal activity are visible at a glance.
  obs::ScopedSpan worker_span("pool/worker");
  std::uint64_t own_chunks = 0;
  std::uint64_t stolen_chunks = 0;

  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * grain;
    const std::size_t hi = std::min(end, lo + grain);
    fn(lo, hi, rank);
  };

  // Own partition first, then steal from the others in rank order. A
  // fetch_add that lands at or past the partition limit simply means the
  // partition is drained; cursors are re-armed at the next ParallelFor.
  for (unsigned offset = 0; offset < num_workers_; ++offset) {
    Cursor& cursor = cursors_[(rank + offset) % num_workers_];
    for (;;) {
      // Per-chunk stop check: the pop itself is what propagates a sibling's
      // stop — a stopped governor stops every worker at its next chunk
      // boundary without running the chunk.
      if (governor != nullptr && governor->stopped()) return;
      std::size_t chunk = cursor.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= cursor.limit) break;
      EGO_FAILPOINT("pool/chunk");
      run_chunk(chunk);
      if (offset == 0) {
        ++own_chunks;
      } else {
        ++stolen_chunks;
      }
    }
  }

  if (obs::Enabled()) {
    worker_span.SetArg(own_chunks + stolen_chunks);
    obs::CounterAdd("pool/chunks_own", own_chunks);
    obs::CounterAdd("pool/chunks_stolen", stolen_chunks);
    obs::HistogramRecord("pool/chunks_per_worker",
                         own_chunks + stolen_chunks);
  }
}

void ThreadPool::WorkerLoop(unsigned rank) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      // Explicit wait loop (not the predicate overload): the analysis
      // checks the predicate body as its own function, where the lambda
      // would read guarded fields without visibly holding mu_.
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) lock.Wait(wake_cv_);
      if (stop_) return;
      seen = generation_;
    }
    RunJob(rank);
    {
      MutexLock lock(mu_);
      if (--workers_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace egocensus
