#include "util/build_info.h"

#include "exec/failpoints.h"
#include "obs/obs.h"

// Configure-time identity, injected per-source-file by src/CMakeLists.txt
// so only this translation unit recompiles when the revision changes.
#ifndef EGOCENSUS_GIT_DESCRIBE
#define EGOCENSUS_GIT_DESCRIBE "unknown"
#endif
#ifndef EGOCENSUS_BUILD_TYPE
#define EGOCENSUS_BUILD_TYPE "unknown"
#endif

namespace egocensus {

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.git_describe = EGOCENSUS_GIT_DESCRIBE;
  info.build_type = EGOCENSUS_BUILD_TYPE;
#if EGO_OBS_ENABLED
  info.obs_enabled = true;
#else
  info.obs_enabled = false;
#endif
  info.failpoints_enabled = failpoints::CompiledIn();
  return info;
}

std::string BuildInfoString() {
  BuildInfo info = GetBuildInfo();
  return "egocensus " + info.git_describe + " (" + info.build_type +
         "; obs=" + (info.obs_enabled ? "on" : "off") +
         " failpoints=" + (info.failpoints_enabled ? "on" : "off") + ")";
}

}  // namespace egocensus
