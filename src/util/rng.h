#ifndef EGOCENSUS_UTIL_RNG_H_
#define EGOCENSUS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace egocensus {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**,
/// seeded via splitmix64). Used everywhere randomness is needed so that
/// tests, generators and benchmarks are reproducible across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `count` distinct values from [0, universe). If count >= universe
  /// returns all of [0, universe) shuffled.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t universe,
                                                      std::uint32_t count);

 private:
  std::uint64_t state_[4];
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_RNG_H_
