#ifndef EGOCENSUS_UTIL_BUCKET_QUEUE_H_
#define EGOCENSUS_UTIL_BUCKET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace egocensus {

/// Array-based monotone priority queue over a small integer score range,
/// as described in Section IV-B3 of the paper: because
/// score(n) <= (k+1)*|V_P| the full score range is known up front, so nodes
/// with score s are kept in bucket s and both insertion and extract-min are
/// O(1) amortized.
///
/// The queue supports DecreaseKey-style usage by lazy deletion: callers push
/// a (value, score) entry again with the smaller score and, on Pop, validate
/// the returned score against their authoritative score table, discarding
/// stale entries. PopMin() here returns entries in nondecreasing score order
/// among entries whose score is >= the current cursor; entries pushed below
/// the cursor are still returned correctly because the cursor rewinds.
template <typename T>
class BucketQueue {
 public:
  /// Creates a queue accepting scores in [0, max_score].
  explicit BucketQueue(std::size_t max_score)
      : buckets_(max_score + 1), cursor_(0), size_(0) {}

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  /// Inserts value with the given score. Precondition: score <= max_score.
  void Push(const T& value, std::size_t score) {
    buckets_[score].push_back(value);
    if (score < cursor_) cursor_ = score;
    ++size_;
  }

  /// Removes and returns an entry with the minimum score. Preconditions:
  /// !Empty(). The score is written to *score_out when non-null.
  T PopMin(std::size_t* score_out = nullptr) {
    while (buckets_[cursor_].empty()) ++cursor_;
    T value = buckets_[cursor_].back();
    buckets_[cursor_].pop_back();
    --size_;
    if (score_out != nullptr) *score_out = cursor_;
    return value;
  }

  /// Removes all entries.
  void Clear() {
    for (auto& b : buckets_) b.clear();
    cursor_ = 0;
    size_ = 0;
  }

 private:
  std::vector<std::vector<T>> buckets_;
  std::size_t cursor_;
  std::size_t size_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_BUCKET_QUEUE_H_
