#ifndef EGOCENSUS_UTIL_THREAD_ANNOTATIONS_H_
#define EGOCENSUS_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attributes behind EGO_* macros, so the
// locking protocol that used to live in comments ("caller holds mu_") is a
// compile-time contract under clang (-Wthread-safety, promoted to an error
// in the thread-safety CI job) and free on every other compiler, where each
// macro expands to nothing.
//
// The vocabulary (mirrors the Clang documentation and the Abseil/Chromium
// wrappers the pattern comes from):
//
//  * EGO_CAPABILITY("mutex")    — on a class: instances are lockable
//                                 capabilities (util/mutex.h Mutex,
//                                 SharedMutex).
//  * EGO_GUARDED_BY(mu)         — on a data member: reads and writes
//                                 require holding `mu` (shared suffices for
//                                 reads when `mu` is a SharedMutex).
//  * EGO_PT_GUARDED_BY(mu)      — like GUARDED_BY, but guards the pointee
//                                 of a pointer member rather than the
//                                 pointer itself.
//  * EGO_REQUIRES(mu)           — on a function: callers must already hold
//                                 `mu` exclusively (the *Locked helper
//                                 convention); EGO_REQUIRES_SHARED for
//                                 read-side helpers.
//  * EGO_ACQUIRE / EGO_RELEASE  — on a function: it acquires / releases the
//                                 capability (plus _SHARED variants and
//                                 EGO_TRY_ACQUIRE(bool, mu)).
//  * EGO_EXCLUDES(mu)           — on a function: callers must NOT hold
//                                 `mu` (self-deadlock guard).
//  * EGO_SCOPED_CAPABILITY      — on an RAII class whose constructor
//                                 acquires and destructor releases.
//  * EGO_NO_THREAD_SAFETY_ANALYSIS — opts one function out; every use must
//                                 say why in a comment (audited the same
//                                 way egolint suppressions are).
//
// The analysis is clang-only and purely static: it does not see through
// raw std::mutex / std::lock_guard, which is why all locked subsystems use
// the annotated wrappers in util/mutex.h (enforced by egolint's
// lock-discipline check on every compiler — see docs/STATIC_ANALYSIS.md).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define EGO_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef EGO_THREAD_ANNOTATION_
#define EGO_THREAD_ANNOTATION_(x)
#endif

#define EGO_CAPABILITY(name) EGO_THREAD_ANNOTATION_(capability(name))
#define EGO_SCOPED_CAPABILITY EGO_THREAD_ANNOTATION_(scoped_lockable)

#define EGO_GUARDED_BY(x) EGO_THREAD_ANNOTATION_(guarded_by(x))
#define EGO_PT_GUARDED_BY(x) EGO_THREAD_ANNOTATION_(pt_guarded_by(x))

#define EGO_ACQUIRED_BEFORE(...) \
  EGO_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define EGO_ACQUIRED_AFTER(...) \
  EGO_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define EGO_REQUIRES(...) \
  EGO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define EGO_REQUIRES_SHARED(...) \
  EGO_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define EGO_ACQUIRE(...) \
  EGO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define EGO_ACQUIRE_SHARED(...) \
  EGO_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define EGO_RELEASE(...) \
  EGO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define EGO_RELEASE_SHARED(...) \
  EGO_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define EGO_RELEASE_GENERIC(...) \
  EGO_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define EGO_TRY_ACQUIRE(...) \
  EGO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EGO_TRY_ACQUIRE_SHARED(...) \
  EGO_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define EGO_EXCLUDES(...) EGO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define EGO_ASSERT_CAPABILITY(x) \
  EGO_THREAD_ANNOTATION_(assert_capability(x))
#define EGO_RETURN_CAPABILITY(x) EGO_THREAD_ANNOTATION_(lock_returned(x))

#define EGO_NO_THREAD_SAFETY_ANALYSIS \
  EGO_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // EGOCENSUS_UTIL_THREAD_ANNOTATIONS_H_
