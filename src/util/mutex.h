#ifndef EGOCENSUS_UTIL_MUTEX_H_
#define EGOCENSUS_UTIL_MUTEX_H_

// Annotated mutex wrappers: std::mutex / std::shared_mutex behind the
// EGO_CAPABILITY vocabulary of util/thread_annotations.h, so Clang's
// thread-safety analysis can see every acquire and release. The analysis
// does not understand the standard-library types (std::lock_guard is
// invisible to it), which is why every locked subsystem holds one of these
// instead of a raw standard mutex — egolint's lock-discipline check flags
// raw std::mutex/std::shared_mutex outside src/util/ on every compiler.
//
// The scoped lock types follow the reference implementation in the Clang
// thread-safety docs: a bool tracks whether the capability is still held so
// Unlock() can release mid-scope (the fair queue's early-return paths) and
// the destructor releases only what is still held.
//
// Condition-variable waits go through MutexLock::Wait/WaitFor, which adopt
// the held native mutex for the duration of the wait. The analysis treats
// the capability as held across the wait — exactly the contract guarded
// fields need, since the wait reacquires before returning.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace egocensus {

/// Exclusive-only lockable capability wrapping std::mutex.
class EGO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EGO_ACQUIRE() { mu_.lock(); }
  void Unlock() EGO_RELEASE() { mu_.unlock(); }
  bool TryLock() EGO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for condition-variable plumbing (MutexLock::Wait).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader/writer lockable capability wrapping std::shared_mutex.
class EGO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() EGO_ACQUIRE() { mu_.lock(); }
  void Unlock() EGO_RELEASE() { mu_.unlock(); }
  void LockShared() EGO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() EGO_RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex. Supports early release (Unlock) and
/// condition-variable waits while held.
class EGO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EGO_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() EGO_RELEASE() {
    if (held_) mu_.Unlock();
  }

  /// Releases before scope end (the queue's early-return paths release the
  /// lock before firing failpoints that may run arbitrary handlers).
  void Unlock() EGO_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Blocks on `cv` with the capability released for the duration of the
  /// wait and reacquired before returning, like std::condition_variable
  /// requires. Spurious wakeups pass through; loop on the condition.
  void Wait(std::condition_variable& cv) {
    std::unique_lock<std::mutex> native(mu_.native(), std::adopt_lock);
    cv.wait(native);
    native.release();
  }

  template <typename Rep, typename Period>
  void WaitFor(std::condition_variable& cv,
               const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> native(mu_.native(), std::adopt_lock);
    cv.wait_for(native, timeout);
    native.release();
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII shared (reader) lock over a SharedMutex — QUERY-side graph access.
class EGO_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) EGO_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;
  ~SharedMutexLock() EGO_RELEASE_GENERIC() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex — UPDATE-side graph
/// access, serializing against all shared holders.
class EGO_SCOPED_CAPABILITY SharedMutexExclusiveLock {
 public:
  explicit SharedMutexExclusiveLock(SharedMutex& mu) EGO_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock();
  }
  SharedMutexExclusiveLock(const SharedMutexExclusiveLock&) = delete;
  SharedMutexExclusiveLock& operator=(const SharedMutexExclusiveLock&) =
      delete;
  ~SharedMutexExclusiveLock() EGO_RELEASE_GENERIC() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_MUTEX_H_
