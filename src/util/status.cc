#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace egocensus {

void CheckOk(const Status& status, const char* context) {
  if (status.ok()) return;
  std::fprintf(stderr, "CheckOk failed (%s): %s\n", context,
               status.ToString().c_str());
  std::abort();
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInterrupted:
      return "INTERRUPTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace egocensus
