#ifndef EGOCENSUS_UTIL_STATUS_H_
#define EGOCENSUS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace egocensus {

/// Error codes used across the library. The library does not use exceptions;
/// fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
  kInterrupted,
};

/// Uppercase wire/CSV name of a code ("OK", "DEADLINE_EXCEEDED", ...).
const char* StatusCodeName(StatusCode code);

class Status;

/// Aborts the process (after printing `context` and the status to stderr)
/// when `status` is not OK. For consuming a Status at sites where failure is
/// a programming error rather than an input error — builder calls on freshly
/// constructed graphs, test fixtures — so the result is handled explicitly
/// instead of silently discarded (egolint: status-discipline).
void CheckOk(const Status& status, const char* context);

/// Lightweight status object carrying a code and a human-readable message.
/// The type itself is [[nodiscard]]: any call that returns a Status by value
/// and ignores it is a compile error under -Werror and an egolint
/// status-discipline finding (see docs/STATIC_ANALYSIS.md). Call sites that
/// genuinely cannot fail discard explicitly with a reasoned
/// `// egolint: allow-discard(...)` suppression.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A blocking wait cut short by a signal (EINTR) — distinct from a
  /// timeout so callers can tell "nothing arrived" from "re-check your
  /// stop flag and wait again".
  [[nodiscard]] static Status Interrupted(std::string msg) {
    return Status(StatusCode::kInterrupted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Mirrors the common
/// StatusOr / std::expected idiom. [[nodiscard]] like Status: dropping a
/// Result drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::ParseError(...)` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_STATUS_H_
