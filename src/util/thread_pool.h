#ifndef EGOCENSUS_UTIL_THREAD_POOL_H_
#define EGOCENSUS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace egocensus {

class Governor;  // exec/governor.h; forward-declared to keep util -> exec
                 // out of this header (thread_pool.cc includes it).

/// Fixed-size work-stealing thread pool built for the census engines'
/// fan-out shape: one ParallelFor over focal nodes / matches / clusters per
/// query phase, with highly skewed per-item cost (hub neighborhoods are
/// orders of magnitude larger than leaf neighborhoods).
///
/// Scheduling: the iteration range is cut into fixed-grain chunks; chunks
/// are partitioned contiguously across workers and each worker drains its
/// own partition through a private atomic cursor, then steals remaining
/// chunks from the other workers' cursors. Stealing happens at chunk
/// granularity, so the only cross-thread traffic on the happy path is one
/// relaxed fetch_add per chunk.
///
/// Determinism contract: the pool makes no ordering promises — callers that
/// need results independent of the worker count must write to disjoint
/// locations (e.g. counts[n] for distinct focal n) or accumulate into
/// per-worker scratch indexed by the `worker` argument and merge with an
/// order-insensitive reduction (integer sums, maxes). All census engines
/// follow this contract; see docs/PARALLEL.md.
///
/// The calling thread participates as worker 0, so a pool constructed with
/// n threads spawns n - 1 std::threads and ParallelFor never leaves the
/// caller idle. Worker ranks are stable within one ParallelFor call and lie
/// in [0, NumWorkers()), which is what engines size their thread-local
/// scratch slots by.
///
/// The chunk function must not throw: engines report failures through
/// Status values computed before the parallel section, and an exception
/// escaping a worker would terminate.
class ThreadPool {
 public:
  /// fn(chunk_begin, chunk_end, worker): processes [chunk_begin, chunk_end)
  /// on the worker with the given rank.
  using ChunkFn = std::function<void(std::size_t, std::size_t, unsigned)>;

  /// Creates a pool with `num_threads` workers (including the caller);
  /// 0 means HardwareThreads().
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned NumWorkers() const { return num_workers_; }

  /// Runs fn over [begin, end) cut into chunks of at most `grain` items.
  /// Blocks until every chunk has been processed. Safe to call repeatedly;
  /// must not be called concurrently from multiple threads or reentrantly
  /// from inside a chunk function.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const ChunkFn& fn);

  /// Governed variant: every worker re-checks governor->stopped() before
  /// popping its next chunk (own or stolen), so one worker tripping the
  /// governor stops the siblings at their next chunk boundary — remaining
  /// chunks are skipped, never run. Chunk functions should still checkpoint
  /// internally if a single chunk can run long. Null governor behaves
  /// exactly like the ungoverned overload.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const Governor* governor, const ChunkFn& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned HardwareThreads();

  /// Maps CensusOptions::num_threads to a worker count: 0 selects
  /// HardwareThreads(), anything else is taken verbatim (so tests can run
  /// 8 workers on a 1-core machine to widen interleavings under TSan).
  static unsigned ResolveNumThreads(std::uint32_t requested);

 private:
  // One cache line per cursor: workers poll each other's cursors while
  // stealing, and sharing a line would turn every chunk pop into
  // cross-core traffic.
  struct alignas(64) Cursor {
    std::atomic<std::size_t> next{0};  // next chunk index in this partition
    std::size_t limit = 0;             // one past the partition's last chunk
  };

  void WorkerLoop(unsigned rank);
  /// Drains own partition, then steals; returns when no chunk remains.
  void RunJob(unsigned rank);

  // egolint: no-guard(immutable after construction, read lock-free)
  unsigned num_workers_;
  /// Lock-free steal cursors: the atomics are their own synchronization,
  /// and `limit` is re-armed by ParallelFor before the generation bump that
  /// publishes it (the mutex release/acquire pair is the happens-before).
  // egolint: no-guard(atomic cursors + generation-protocol publication)
  std::vector<Cursor> cursors_;

  // Current job (valid while workers_remaining_ > 0). Written under mu_ by
  // ParallelFor, but read lock-free in RunJob: a worker only enters RunJob
  // after observing the generation bump under mu_, and the caller only
  // clears the fields after every worker has decremented
  // workers_remaining_ under mu_ — the generation protocol, not the lock,
  // is what makes the reads safe, so GUARDED_BY would overclaim.
  // egolint: no-guard(generation-protocol publication, see RunJob)
  std::size_t job_begin_ = 0;
  // egolint: no-guard(generation-protocol publication, see RunJob)
  std::size_t job_end_ = 0;
  // egolint: no-guard(generation-protocol publication, see RunJob)
  std::size_t job_grain_ = 1;
  // egolint: no-guard(generation-protocol publication, see RunJob)
  const ChunkFn* job_fn_ = nullptr;
  // egolint: no-guard(generation-protocol publication, see RunJob)
  const Governor* job_governor_ = nullptr;

  Mutex mu_;
  std::condition_variable wake_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers_remaining_
  std::uint64_t generation_ EGO_GUARDED_BY(mu_) = 0;
  unsigned workers_remaining_ EGO_GUARDED_BY(mu_) = 0;
  bool stop_ EGO_GUARDED_BY(mu_) = false;

  /// Joined only by the destructor; workers never touch the vector.
  // egolint: no-guard(constructor/destructor lifecycle only)
  std::vector<std::thread> threads_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_THREAD_POOL_H_
