#ifndef EGOCENSUS_UTIL_STRINGS_H_
#define EGOCENSUS_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace egocensus {

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `delim`, optionally trimming each piece. Empty pieces are
/// kept (consistent with SQL-ish value lists).
std::vector<std::string> Split(std::string_view s, char delim,
                               bool trim = true);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters as \uXXXX). Used by the daemon's STATUS endpoint and
/// other hand-rolled JSON writers.
std::string JsonEscape(std::string_view s);

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_STRINGS_H_
