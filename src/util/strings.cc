#include "util/strings.h"

#include <cctype>

namespace egocensus {

std::string_view StripWhitespace(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim, bool trim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      std::string_view piece = s.substr(start, i - start);
      if (trim) piece = StripWhitespace(piece);
      out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JsonEscape(std::string_view s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace egocensus
