#include "util/rng.h"

#include <numeric>

namespace egocensus {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Debiased via rejection sampling on the upper range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<std::uint32_t> Rng::SampleWithoutReplacement(std::uint32_t universe,
                                                         std::uint32_t count) {
  std::vector<std::uint32_t> all(universe);
  std::iota(all.begin(), all.end(), 0u);
  Shuffle(&all);
  if (count < universe) all.resize(count);
  return all;
}

}  // namespace egocensus
