#ifndef EGOCENSUS_UTIL_BUILD_INFO_H_
#define EGOCENSUS_UTIL_BUILD_INFO_H_

// Build identity of this binary: git revision, build type, and which
// compile-time feature gates are on. Clients use the daemon's STATUS copy
// of this string to detect server capabilities (e.g. whether metrics are
// compiled in before asking for them); `ecensus --version` and
// `ecensusd --version` print it.

#include <string>

namespace egocensus {

/// Structured build identity (each field also appears in the STATUS JSON).
struct BuildInfo {
  std::string git_describe;  // `git describe --always --dirty` at configure
  std::string build_type;    // CMAKE_BUILD_TYPE
  bool obs_enabled = false;         // EGOCENSUS_OBS (metrics/tracing)
  bool failpoints_enabled = false;  // EGOCENSUS_FAILPOINTS (fault injection)
};

/// The identity baked into this binary.
BuildInfo GetBuildInfo();

/// One-line rendering:
///   egocensus <git> (<build-type>; obs=on|off failpoints=on|off)
std::string BuildInfoString();

}  // namespace egocensus

#endif  // EGOCENSUS_UTIL_BUILD_INFO_H_
