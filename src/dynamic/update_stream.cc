#include "dynamic/update_stream.h"

#include <fstream>
#include <sstream>

namespace egocensus {
namespace {

[[nodiscard]] Status LineError(std::size_t line_no, const std::string& what) {
  return Status::ParseError("update stream line " + std::to_string(line_no) +
                            ": " + what);
}

bool ParseNodeId(const std::string& token, NodeId* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xFFFFFFFFull) return false;
  }
  *out = static_cast<NodeId>(value);
  return true;
}

}  // namespace

[[nodiscard]] Result<std::vector<GraphUpdate>> ParseUpdateStream(std::istream& in) {
  std::vector<GraphUpdate> updates;
  std::string line;
  std::size_t line_no = 0;
  // egolint: no-checkpoint(I/O-bound parse, constant work per input line)
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op[0] == '#' || op[0] == '%') continue;

    // After a valid op and its operands the rest of the line must be empty
    // or an inline comment — a stray token is a malformed stream, not
    // something to skip silently.
    auto end_of_line = [&]() -> Status {
      std::string extra;
      if ((tokens >> extra) && extra[0] != '#' && extra[0] != '%') {
        return LineError(line_no,
                         "trailing token '" + extra + "' after '" + op + "'");
      }
      return Status::Ok();
    };

    auto parse_pair = [&](GraphUpdate (*make)(NodeId, NodeId))
        -> Result<GraphUpdate> {
      std::string a, b;
      NodeId u = 0, v = 0;
      if (!(tokens >> a >> b) || !ParseNodeId(a, &u) || !ParseNodeId(b, &v)) {
        return LineError(line_no, "expected two node ids after '" + op + "'");
      }
      return make(u, v);
    };

    if (op == "ae" || op == "+") {
      auto update = parse_pair(&GraphUpdate::AddEdge);
      if (!update.ok()) return update.status();
      if (Status s = end_of_line(); !s.ok()) return s;
      updates.push_back(*update);
    } else if (op == "re" || op == "-") {
      auto update = parse_pair(&GraphUpdate::RemoveEdge);
      if (!update.ok()) return update.status();
      if (Status s = end_of_line(); !s.ok()) return s;
      updates.push_back(*update);
    } else if (op == "an") {
      std::string token;
      NodeId label = 0;
      if ((tokens >> token) && token[0] != '#' && token[0] != '%') {
        if (!ParseNodeId(token, &label)) {
          return LineError(line_no, "bad label '" + token + "'");
        }
        if (Status s = end_of_line(); !s.ok()) return s;
      }
      updates.push_back(GraphUpdate::AddNode(static_cast<Label>(label)));
    } else if (op == "rn") {
      std::string token;
      NodeId n = 0;
      if (!(tokens >> token) || !ParseNodeId(token, &n)) {
        return LineError(line_no, "expected a node id after 'rn'");
      }
      if (Status s = end_of_line(); !s.ok()) return s;
      updates.push_back(GraphUpdate::RemoveNode(n));
    } else {
      return LineError(line_no, "unknown op '" + op + "'");
    }
  }
  return updates;
}

[[nodiscard]] Result<std::vector<GraphUpdate>> LoadUpdateStream(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open update stream: " + path);
  return ParseUpdateStream(in);
}

}  // namespace egocensus
