#ifndef EGOCENSUS_DYNAMIC_UPDATE_STREAM_H_
#define EGOCENSUS_DYNAMIC_UPDATE_STREAM_H_

#include <istream>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "util/status.h"

namespace egocensus {

/// Parses a textual edge/node update stream, one update per line:
///
///   ae U V    (or: + U V)   insert edge U->V (undirected: U-V)
///   re U V    (or: - U V)   delete edge U->V
///   an [L]                  add a node with label L (default 0)
///   rn N                    remove node N
///
/// Blank lines and lines starting with '#' or '%' are skipped. Node ids are
/// non-negative integers (ids beyond the current graph are validated at
/// apply time, not parse time, so streams may reference nodes they add).
[[nodiscard]] Result<std::vector<GraphUpdate>> ParseUpdateStream(std::istream& in);

/// Reads and parses an update-stream file.
[[nodiscard]] Result<std::vector<GraphUpdate>> LoadUpdateStream(const std::string& path);

}  // namespace egocensus

#endif  // EGOCENSUS_DYNAMIC_UPDATE_STREAM_H_
