#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace egocensus {
namespace {

bool SortedContains(std::span<const NodeId> nodes, NodeId x) {
  return std::binary_search(nodes.begin(), nodes.end(), x);
}

bool SortedContains(const std::vector<NodeId>& nodes, NodeId x) {
  return std::binary_search(nodes.begin(), nodes.end(), x);
}

/// Inserts x into a sorted vector (no-op if present); returns true if
/// inserted.
bool SortedInsert(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

/// Erases x from a sorted vector; returns true if it was present.
bool SortedErase(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base) : base_(std::move(base)) {
  num_nodes_ = base_.NumNodes();
  num_edges_ = base_.NumEdges();
  max_label_ = base_.NumLabels() == 0 ? 0 : base_.NumLabels() - 1;
  removed_.assign(num_nodes_, 0);
}

std::span<const NodeId> DynamicGraph::BaseNeighbors(int view, NodeId n) const {
  if (n >= base_.NumNodes()) return {};
  switch (view) {
    case kOutView:
      return base_.OutNeighbors(n);
    case kInView:
      return base_.InNeighbors(n);
    default:
      return base_.Neighbors(n);
  }
}

std::span<const NodeId> DynamicGraph::ViewNeighbors(int view, NodeId n) const {
  auto it = delta_[view].find(n);
  if (it == delta_[view].end()) return BaseNeighbors(view, n);
  const DeltaAdj& d = it->second;
  if (!d.merged_valid) {
    auto bases = BaseNeighbors(view, n);
    d.merged.clear();
    d.merged.reserve(bases.size() + d.added.size());
    // base minus removed, then union with added (all three inputs sorted).
    std::set_difference(bases.begin(), bases.end(), d.removed.begin(),
                        d.removed.end(), std::back_inserter(d.merged));
    if (!d.added.empty()) {
      std::size_t mid = d.merged.size();
      d.merged.insert(d.merged.end(), d.added.begin(), d.added.end());
      std::inplace_merge(d.merged.begin(), d.merged.begin() + mid,
                         d.merged.end());
    }
    d.merged_valid = true;
  }
  return d.merged;
}

bool DynamicGraph::ViewContains(int view, NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  auto it = delta_[view].find(u);
  if (it != delta_[view].end()) {
    if (SortedContains(it->second.added, v)) return true;
    if (SortedContains(it->second.removed, v)) return false;
  }
  return SortedContains(BaseNeighbors(view, u), v);
}

void DynamicGraph::DeltaAddNeighbor(int view, NodeId n, NodeId x) {
  DeltaAdj& d = delta_[view][n];
  if (!SortedErase(&d.removed, x)) SortedInsert(&d.added, x);
  d.merged_valid = false;
}

void DynamicGraph::DeltaRemoveNeighbor(int view, NodeId n, NodeId x) {
  DeltaAdj& d = delta_[view][n];
  if (!SortedErase(&d.added, x)) SortedInsert(&d.removed, x);
  d.merged_valid = false;
}

Status DynamicGraph::CheckEndpoints(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not supported");
  if (NodeRemoved(u) || NodeRemoved(v)) {
    return Status::InvalidArgument("edge endpoint is a removed node");
  }
  return Status::Ok();
}

Result<NodeId> DynamicGraph::AddNode(Label label) {
  NodeId id = num_nodes_++;
  ext_labels_.push_back(label);
  removed_.push_back(0);
  max_label_ = std::max(max_label_, label);
  ++version_;
  return id;
}

Result<bool> DynamicGraph::AddEdge(NodeId u, NodeId v) {
  Status status = CheckEndpoints(u, v);
  if (!status.ok()) return status;
  if (HasEdge(u, v)) return false;  // duplicate: reported no-op
  if (directed()) {
    // The undirected view gains u~v only when the reverse arc is absent
    // (the base combined view is deduplicated the same way).
    if (!HasEdge(v, u)) {
      DeltaAddNeighbor(kUndView, u, v);
      DeltaAddNeighbor(kUndView, v, u);
    }
    DeltaAddNeighbor(kOutView, u, v);
    DeltaAddNeighbor(kInView, v, u);
  } else {
    DeltaAddNeighbor(kOutView, u, v);
    DeltaAddNeighbor(kOutView, v, u);
  }
  ++num_edges_;
  ++version_;
  ++delta_ops_;
  return true;
}

Result<bool> DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (!HasEdge(u, v)) return false;  // missing: reported no-op
  if (directed()) {
    DeltaRemoveNeighbor(kOutView, u, v);
    DeltaRemoveNeighbor(kInView, v, u);
    if (!HasEdge(v, u)) {
      DeltaRemoveNeighbor(kUndView, u, v);
      DeltaRemoveNeighbor(kUndView, v, u);
    }
  } else {
    DeltaRemoveNeighbor(kOutView, u, v);
    DeltaRemoveNeighbor(kOutView, v, u);
  }
  --num_edges_;
  ++version_;
  ++delta_ops_;
  return true;
}

Result<bool> DynamicGraph::RemoveNode(NodeId n) {
  if (n >= num_nodes_) return Status::OutOfRange("no such node");
  if (NodeRemoved(n)) return false;
  // Detach all incident edges, then tombstone the id.
  std::vector<NodeId> targets(OutNeighbors(n).begin(), OutNeighbors(n).end());
  for (NodeId x : targets) {
    auto removed = RemoveEdge(n, x);
    if (!removed.ok()) return removed.status();
  }
  if (directed()) {
    std::vector<NodeId> sources(InNeighbors(n).begin(),
                                InNeighbors(n).end());
    for (NodeId x : sources) {
      auto removed = RemoveEdge(x, n);
      if (!removed.ok()) return removed.status();
    }
  }
  removed_[n] = 1;
  ++version_;
  return true;
}

Result<bool> DynamicGraph::Apply(const GraphUpdate& update,
                                 NodeId* new_node_id) {
  switch (update.kind) {
    case GraphUpdate::Kind::kAddEdge:
      return AddEdge(update.u, update.v);
    case GraphUpdate::Kind::kRemoveEdge:
      return RemoveEdge(update.u, update.v);
    case GraphUpdate::Kind::kAddNode: {
      auto id = AddNode(update.label);
      if (!id.ok()) return id.status();
      if (new_node_id != nullptr) *new_node_id = id.value();
      return true;
    }
    case GraphUpdate::Kind::kRemoveNode:
      return RemoveNode(update.u);
  }
  return Status::Internal("unknown update kind");
}

Graph DynamicGraph::Materialize() const {
  Graph out(directed());
  for (NodeId n = 0; n < num_nodes_; ++n) out.AddNode(label(n));
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (directed()) {
      for (NodeId x : OutNeighbors(n)) out.AddEdge(n, x);
    } else {
      for (NodeId x : OutNeighbors(n)) {
        if (n < x) out.AddEdge(n, x);
      }
    }
  }
  if (!base_.node_attributes().AttributeNames().empty()) {
    for (NodeId n = 0; n < num_nodes_; ++n) {
      out.node_attributes().CopyFrom(base_.node_attributes(), n, n);
    }
  }
  CheckOk(out.Finalize(), "extracted subgraph");
  return out;
}

void DynamicGraph::Compact() {
  Graph fresh = Materialize();
  base_ = std::move(fresh);
  for (auto& view : delta_) view.clear();
  ext_labels_.clear();
  num_edges_ = base_.NumEdges();
  delta_ops_ = 0;
}

std::optional<AttributeValue> DynamicGraph::GetNodeAttribute(
    NodeId n, const std::string& name) const {
  if (EqualsIgnoreCase(name, "LABEL")) {
    return AttributeValue(static_cast<std::int64_t>(label(n)));
  }
  if (EqualsIgnoreCase(name, "ID")) {
    return AttributeValue(static_cast<std::int64_t>(n));
  }
  return base_.node_attributes().Get(n, name);
}

// --- DynamicSubgraphExtractor ------------------------------------------

void DynamicSubgraphExtractor::EnsureCapacity() {
  if (local_of_.size() < graph_.NumNodes()) {
    local_of_.resize(graph_.NumNodes(), kInvalidNode);
    epoch_of_.resize(graph_.NumNodes(), 0);
  }
}

EgoSubgraph DynamicSubgraphExtractor::Extract(std::span<const NodeId> nodes,
                                              bool copy_attributes) {
  EnsureCapacity();
  ++epoch_;
  EgoSubgraph out;
  out.graph = Graph(graph_.directed());
  out.to_global.reserve(nodes.size());
  for (NodeId g : nodes) {
    if (epoch_of_[g] == epoch_) continue;  // duplicate
    epoch_of_[g] = epoch_;
    local_of_[g] = static_cast<NodeId>(out.to_global.size());
    out.to_global.push_back(g);
    out.graph.AddNode(graph_.label(g));
  }
  for (NodeId g : out.to_global) {
    NodeId lu = local_of_[g];
    for (NodeId h : graph_.OutNeighbors(g)) {
      if (h >= epoch_of_.size() || epoch_of_[h] != epoch_) continue;
      if (!graph_.directed() && h < g) continue;
      out.graph.AddEdge(lu, local_of_[h]);
    }
  }
  if (copy_attributes) {
    for (NodeId g : out.to_global) {
      out.graph.node_attributes().CopyFrom(graph_.node_attributes(), g,
                                           local_of_[g]);
    }
  }
  CheckOk(out.graph.Finalize(), "extracted subgraph");
  return out;
}

EgoSubgraph DynamicSubgraphExtractor::ExtractKHop(NodeId n, std::uint32_t k,
                                                  bool copy_attributes) {
  const auto& nodes = bfs1_.Run(graph_, n, k);
  return Extract(nodes, copy_attributes);
}

EgoSubgraph DynamicSubgraphExtractor::ExtractAroundPair(
    NodeId u, NodeId v, std::uint32_t radius, bool copy_attributes) {
  const auto& nodes1 = bfs1_.Run(graph_, u, radius);
  scratch_nodes_.assign(nodes1.begin(), nodes1.end());
  const auto& nodes2 = bfs2_.Run(graph_, v, radius);
  for (NodeId n : nodes2) {
    if (!bfs1_.Reached(n)) scratch_nodes_.push_back(n);
  }
  return Extract(scratch_nodes_, copy_attributes);
}

}  // namespace egocensus
