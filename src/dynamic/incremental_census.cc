#include "dynamic/incremental_census.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "census/census.h"
#include "exec/failpoints.h"
#include "match/cn_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus {
namespace {

/// Mirrors the planner's algorithm choice (lang/engine.cc): selective
/// patterns favor PT-OPT, non-selective patterns ND-PVOT.
CensusAlgorithm PickAlgorithm(const Pattern& pattern) {
  for (int v = 0; v < pattern.NumNodes(); ++v) {
    if (pattern.LabelConstraint(v).has_value()) {
      return CensusAlgorithm::kPtOpt;
    }
  }
  return pattern.Predicates().empty() ? CensusAlgorithm::kNdPvot
                                      : CensusAlgorithm::kPtOpt;
}

/// True if match `images` (local ids) stops being a valid match when edge
/// (lu, lv) is removed: some positive pattern edge's structural requirement
/// holds only through that edge. `sub` is the local topology *with* the
/// edge present.
bool MatchUsesEdge(const Graph& sub, const Pattern& pattern,
                   std::span<const NodeId> images, NodeId lu, NodeId lv) {
  for (const PatternEdge& e : pattern.PositiveEdges()) {
    NodeId a = images[e.src];
    NodeId b = images[e.dst];
    if (!sub.directed()) {
      // In a simple undirected graph the only adjacency realizing a-b is
      // the edge itself.
      if ((a == lu && b == lv) || (a == lv && b == lu)) return true;
    } else if (e.directed) {
      if (a == lu && b == lv) return true;
    } else {
      // Undirected pattern edge on a directed graph: satisfied by either
      // arc; broken only when no arc other than (lu, lv) remains.
      bool holds_without = (a != lu || b != lv) && sub.HasEdge(a, b);
      holds_without =
          holds_without || ((b != lu || a != lv) && sub.HasEdge(b, a));
      if (!holds_without) return true;
    }
  }
  return false;
}

/// True if match `images` (valid in the local topology *without* arc
/// (lu, lv)) is invalidated by inserting it: some negated pattern edge's
/// absence requirement is violated by the new arc.
bool MatchForbidsEdge(const Graph& sub, const Pattern& pattern,
                      std::span<const NodeId> images, NodeId lu, NodeId lv) {
  for (const PatternEdge& e : pattern.NegativeEdges()) {
    NodeId a = images[e.src];
    NodeId b = images[e.dst];
    if (e.directed && sub.directed()) {
      if (a == lu && b == lv) return true;
    } else {
      // Undirected absence requirement (MatchSatisfiesConstraints checks
      // HasUndirectedEdge): violated by the new arc in either orientation.
      if ((a == lu && b == lv) || (a == lv && b == lu)) return true;
    }
  }
  return false;
}

}  // namespace

void MaintenanceStats::Accumulate(const MaintenanceStats& other) {
  updates_applied += other.updates_applied;
  noop_updates += other.noop_updates;
  delta_matches += other.delta_matches;
  recounted_nodes += other.recounted_nodes;
  adjusted_nodes += other.adjusted_nodes;
  changed_nodes += other.changed_nodes;
  region_nodes += other.region_nodes;
  seconds += other.seconds;
}

bool IncrementalCensus::Ball::Contains(NodeId n) const {
  return std::binary_search(nodes.begin(), nodes.end(), n);
}

Result<IncrementalCensus> IncrementalCensus::Create(DynamicGraph* graph,
                                                    Pattern pattern,
                                                    Options options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("IncrementalCensus: graph is null");
  }
  IncrementalCensus census(graph, std::move(pattern), std::move(options));
  Status status = census.InitCounts({}, /*all_nodes=*/true);
  if (!status.ok()) return status;
  return census;
}

Result<IncrementalCensus> IncrementalCensus::Create(
    DynamicGraph* graph, Pattern pattern, Options options,
    std::vector<NodeId> focal) {
  if (graph == nullptr) {
    return Status::InvalidArgument("IncrementalCensus: graph is null");
  }
  IncrementalCensus census(graph, std::move(pattern), std::move(options));
  Status status = census.InitCounts(std::move(focal), /*all_nodes=*/false);
  if (!status.ok()) return status;
  return census;
}

Status IncrementalCensus::InitCounts(std::vector<NodeId> focal,
                                     bool all_nodes) {
  if (!pattern_.prepared()) {
    return Status::InvalidArgument(
        "IncrementalCensus: pattern must be prepared");
  }
  for (const PatternPredicate& p : pattern_.Predicates()) {
    if (std::holds_alternative<EdgeAttrRef>(p.lhs) ||
        std::holds_alternative<EdgeAttrRef>(p.rhs)) {
      return Status::Unimplemented(
          "IncrementalCensus: edge-attribute predicates are not supported "
          "by the dynamic layer");
    }
  }

  // Anchor nodes: the whole pattern (COUNTP) or the named subpattern.
  if (options_.subpattern.empty()) {
    anchor_nodes_.resize(pattern_.NumNodes());
    for (int v = 0; v < pattern_.NumNodes(); ++v) anchor_nodes_[v] = v;
  } else {
    const std::vector<int>* sub = pattern_.FindSubpattern(options_.subpattern);
    if (sub == nullptr) {
      return Status::NotFound("IncrementalCensus: no subpattern named '" +
                              options_.subpattern + "'");
    }
    anchor_nodes_ = *sub;
  }
  whole_pattern_ =
      static_cast<int>(anchor_nodes_.size()) == pattern_.NumNodes();

  diameter_ = 0;
  for (int v = 0; v < pattern_.NumNodes(); ++v) {
    diameter_ = std::max(diameter_, pattern_.Eccentricity(v));
  }
  if (diameter_ == Pattern::kUnreachable) {
    return Status::InvalidArgument(
        "IncrementalCensus: pattern positive skeleton must be connected");
  }

  const NodeId num_nodes = graph_->NumNodes();
  if (all_nodes) {
    all_nodes_focal_ = true;
    focal_.assign(num_nodes, 1);
  } else {
    all_nodes_focal_ = false;
    focal_.assign(num_nodes, 0);
    // egolint: no-checkpoint(O(|focal|) flag marking during Init)
    for (NodeId n : focal) {
      if (n >= num_nodes) {
        return Status::OutOfRange("IncrementalCensus: focal node " +
                                  std::to_string(n) + " out of range");
      }
      focal_[n] = 1;
    }
  }
  // egolint: no-checkpoint(O(N) removed-node sweep during Init)
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (graph_->NodeRemoved(n)) focal_[n] = 0;
  }

  // Initial census on an equivalent static snapshot (the base CSR directly
  // when the overlay is clean).
  std::vector<NodeId> focal_list;
  // egolint: no-checkpoint(O(N) focal-list build during Init)
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (focal_[n]) focal_list.push_back(n);
  }
  if (focal_list.empty()) {
    counts_.assign(num_nodes, 0);
  } else {
    Graph snapshot;
    const Graph* g = nullptr;
    if (graph_->DeltaSize() == 0 &&
        graph_->NumNodes() == graph_->base().NumNodes()) {
      g = &graph_->base();
    } else {
      snapshot = graph_->Materialize();
      g = &snapshot;
    }
    CensusOptions census_options;
    census_options.algorithm = PickAlgorithm(pattern_);
    census_options.k = options_.k;
    census_options.subpattern = options_.subpattern;
    auto result = RunCensus(*g, pattern_, focal_list, census_options);
    if (!result.ok()) return result.status();
    counts_ = std::move(result->counts);
  }
  expected_version_ = graph_->version();
  return Status::Ok();
}

IncrementalCensus::Ball IncrementalCensus::MakeBall(NodeId source,
                                                    std::uint32_t depth,
                                                    BfsWorkspace* bfs) const {
  Ball ball;
  const std::vector<NodeId>& visited = bfs->Run(*graph_, source, depth);
  ball.nodes.assign(visited.begin(), visited.end());
  std::sort(ball.nodes.begin(), ball.nodes.end());
  return ball;
}

std::vector<IncrementalCensus::DeltaMatch>
IncrementalCensus::EnumerateEdgeMatches(NodeId u, NodeId v, bool edge_present,
                                        DynamicSubgraphExtractor* extractor,
                                        MaintenanceStats* stats) const {
  std::vector<DeltaMatch> out;
  if (edge_present && pattern_.PositiveEdges().empty()) return out;
  if (!edge_present && pattern_.NegativeEdges().empty()) return out;

  // Every match depending on (u, v) maps some pattern edge onto {u, v}, so
  // all its images lie within diam(P) of an endpoint: matching inside the
  // induced region B(u, diam) ∪ B(v, diam) finds exactly those matches.
  EgoSubgraph sub = extractor->ExtractAroundPair(
      u, v, diameter_, pattern_.HasGeneralPredicates());
  stats->region_nodes += sub.graph.NumNodes();
  EGO_HIST_RECORD("dynamic/region_nodes", sub.graph.NumNodes());

  NodeId lu = kInvalidNode;
  NodeId lv = kInvalidNode;
  for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
    if (sub.to_global[i] == u) lu = static_cast<NodeId>(i);
    if (sub.to_global[i] == v) lv = static_cast<NodeId>(i);
  }

  CnMatcher matcher;
  MatchSet matches = matcher.FindMatches(sub.graph, pattern_);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    std::span<const NodeId> images = matches.Match(i);
    bool depends = edge_present
                       ? MatchUsesEdge(sub.graph, pattern_, images, lu, lv)
                       : MatchForbidsEdge(sub.graph, pattern_, images, lu, lv);
    if (!depends) continue;
    DeltaMatch dm;
    dm.anchors.reserve(anchor_nodes_.size());
    for (int a : anchor_nodes_) {
      dm.anchors.push_back(sub.to_global[images[a]]);
    }
    std::sort(dm.anchors.begin(), dm.anchors.end());
    dm.anchors.erase(std::unique(dm.anchors.begin(), dm.anchors.end()),
                     dm.anchors.end());
    out.push_back(std::move(dm));
    ++stats->delta_matches;
  }
  return out;
}

std::uint64_t IncrementalCensus::LocalRecount(
    NodeId n, DynamicSubgraphExtractor* extractor, BfsWorkspace* bfs) const {
  if (n >= graph_->NumNodes() || graph_->NodeRemoved(n)) return 0;
  const bool need_attrs = pattern_.HasGeneralPredicates();
  CnMatcher matcher;
  if (whole_pattern_) {
    // COUNTP: every anchor image must lie in S(n, k), i.e. the whole match
    // does — extract S(n, k) and count matches inside (ND-BAS locally).
    EgoSubgraph sub = extractor->ExtractKHop(n, options_.k, need_attrs);
    return matcher.FindMatches(sub.graph, pattern_).size();
  }
  // COUNTSP: the match may extend up to diam(P) beyond the anchors, so
  // matching inside S(n, k + diam) finds every match whose anchor images
  // are within k of n; distances <= k are exact inside the ball.
  EgoSubgraph sub =
      extractor->ExtractKHop(n, options_.k + diameter_, need_attrs);
  NodeId ln = kInvalidNode;
  for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
    if (sub.to_global[i] == n) {
      ln = static_cast<NodeId>(i);
      break;
    }
  }
  MatchSet matches = matcher.FindMatches(sub.graph, pattern_);
  bfs->Run(sub.graph, ln, options_.k);
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < matches.size(); ++i) {
    bool inside = true;
    for (int a : anchor_nodes_) {
      if (!bfs->Reached(matches.Image(i, a))) {
        inside = false;
        break;
      }
    }
    if (inside) ++count;
  }
  return count;
}

void IncrementalCensus::ApplyMatchDeltas(
    const std::vector<DeltaMatch>& matches, int sign,
    const std::unordered_map<NodeId, char>& skip,
    std::unordered_map<NodeId, std::int64_t>* acc, BfsWorkspace* bfs,
    MaintenanceStats* stats) const {
  if (matches.empty()) return;
  // The focal nodes gaining/losing a match M are exactly those whose
  // S(n, k) contains all anchor images: the intersection of the anchors'
  // k-balls (reverse BFS; the undirected view is symmetric).
  std::unordered_map<NodeId, Ball> balls;
  for (const DeltaMatch& m : matches) {
    const Ball* smallest = nullptr;
    for (NodeId a : m.anchors) {
      auto [it, inserted] = balls.try_emplace(a);
      if (inserted) it->second = MakeBall(a, options_.k, bfs);
      if (smallest == nullptr ||
          it->second.nodes.size() < smallest->nodes.size()) {
        smallest = &it->second;
      }
    }
    for (NodeId n : smallest->nodes) {
      if (!IsFocal(n) || skip.contains(n)) continue;
      bool eligible = true;
      for (NodeId a : m.anchors) {
        const Ball& ball = balls.at(a);
        if (&ball != smallest && !ball.Contains(n)) {
          eligible = false;
          break;
        }
      }
      if (!eligible) continue;
      (*acc)[n] += sign;
      ++stats->adjusted_nodes;
    }
  }
}

Result<bool> IncrementalCensus::ProcessEdgeUpdate(
    NodeId u, NodeId v, bool insert, DynamicSubgraphExtractor* extractor,
    BfsWorkspace* bfs, std::unordered_map<NodeId, std::int64_t>* acc,
    MaintenanceStats* stats) {
  if (u >= graph_->NumNodes() || v >= graph_->NumNodes()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (insert == graph_->HasEdge(u, v)) return false;  // reported no-op

  std::vector<DeltaMatch> dying;
  std::vector<DeltaMatch> born;
  if (insert) {
    // Matches relying on the *absence* of (u, v) via a negated pattern
    // edge die; they must be enumerated before the insert.
    dying = EnumerateEdgeMatches(u, v, /*edge_present=*/false, extractor,
                                 stats);
    auto applied = graph_->AddEdge(u, v);
    if (!applied.ok()) return applied.status();
  }

  // A2 = focal nodes with min(d(n,u), d(n,v)) <= k-1, distances taken with
  // the edge present (post-insert / pre-delete). Only these can see their
  // S(n, k) node set change, and they are recounted from scratch below;
  // everything else keeps its exact S(n, k) and is adjusted per match.
  std::unordered_map<NodeId, char> recount;
  if (options_.k > 0) {
    for (NodeId endpoint : {u, v}) {
      for (NodeId n : bfs->Run(*graph_, endpoint, options_.k - 1)) {
        if (IsFocal(n)) recount.emplace(n, 1);
      }
    }
  }

  if (insert) {
    born = EnumerateEdgeMatches(u, v, /*edge_present=*/true, extractor,
                                stats);
  } else {
    dying = EnumerateEdgeMatches(u, v, /*edge_present=*/true, extractor,
                                 stats);
  }

  // Anchor balls are taken in whatever topology is current; on the
  // complement of A2 the k-ball membership is identical in both
  // topologies, so the order of operations below does not matter there.
  if (insert) {
    ApplyMatchDeltas(born, +1, recount, acc, bfs, stats);
    ApplyMatchDeltas(dying, -1, recount, acc, bfs, stats);
  } else {
    ApplyMatchDeltas(dying, -1, recount, acc, bfs, stats);
    auto applied = graph_->RemoveEdge(u, v);
    if (!applied.ok()) return applied.status();
    if (!pattern_.NegativeEdges().empty()) {
      born = EnumerateEdgeMatches(u, v, /*edge_present=*/false, extractor,
                                  stats);
      ApplyMatchDeltas(born, +1, recount, acc, bfs, stats);
    }
  }

  for (const auto& [n, unused] : recount) {
    std::uint64_t fresh = LocalRecount(n, extractor, bfs);
    ++stats->recounted_nodes;
    // The recount is authoritative for n (its match deltas were skipped).
    (*acc)[n] = static_cast<std::int64_t>(fresh) -
                static_cast<std::int64_t>(counts_[n]);
  }
  return true;
}

Result<MaintenanceStats> IncrementalCensus::ApplyBatch(
    std::span<const GraphUpdate> updates,
    std::vector<CountDelta>* deltas_out) {
  if (graph_->version() != expected_version_) {
    return Status::InvalidArgument(
        "IncrementalCensus: graph was mutated outside of ApplyBatch");
  }
  Timer timer;
  EGO_SPAN("dynamic/apply_batch", updates.size());
  MaintenanceStats stats;
  DynamicSubgraphExtractor extractor(*graph_);
  BfsWorkspace bfs;
  std::unordered_map<NodeId, std::int64_t> acc;
  std::unordered_map<NodeId, std::int64_t> batch_acc;

  // Folds the per-step deltas into the maintained counts; later steps of
  // the same batch then compare against up-to-date counts.
  auto flush = [&]() {
    for (const auto& [n, d] : acc) {
      if (d == 0) continue;
      counts_[n] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(counts_[n]) + d);
      batch_acc[n] += d;
    }
    acc.clear();
  };

  for (const GraphUpdate& update : updates) {
    // One checkpoint per update: a governor stop aborts the batch between
    // updates, so the applied prefix stays exact (same contract as an
    // invalid-update abort). Listeners see nothing for an aborted batch.
    EGO_FAILPOINT("dynamic/update");
    if (options_.governor != nullptr &&
        options_.governor->Checkpoint() != StopReason::kNone) {
      return options_.governor->ToStatus(
          "IncrementalCensus::ApplyBatch (applied prefix updates stay "
          "applied)");
    }
    // Per-update latency: sampled only when observability is on so the
    // default path never touches the clock per update.
    const std::uint64_t update_begin_us =
        obs::Enabled() ? Timer::NowMicros() : 0;
    switch (update.kind) {
      case GraphUpdate::Kind::kAddEdge:
      case GraphUpdate::Kind::kRemoveEdge: {
        bool insert = update.kind == GraphUpdate::Kind::kAddEdge;
        auto applied = ProcessEdgeUpdate(update.u, update.v, insert,
                                         &extractor, &bfs, &acc, &stats);
        if (!applied.ok()) return applied.status();
        if (applied.value()) {
          ++stats.updates_applied;
        } else {
          ++stats.noop_updates;
        }
        flush();
        break;
      }
      case GraphUpdate::Kind::kAddNode: {
        auto id = graph_->AddNode(update.label);
        if (!id.ok()) return id.status();
        counts_.push_back(0);
        focal_.push_back(all_nodes_focal_ ? 1 : 0);
        if (focal_.back()) {
          // An isolated node only matches single-node patterns; the local
          // recount handles that exactly.
          std::uint64_t fresh = LocalRecount(id.value(), &extractor, &bfs);
          ++stats.recounted_nodes;
          if (fresh != 0) {
            acc[id.value()] = static_cast<std::int64_t>(fresh);
          }
        }
        ++stats.updates_applied;
        flush();
        break;
      }
      case GraphUpdate::Kind::kRemoveNode: {
        NodeId n = update.u;
        if (n >= graph_->NumNodes()) {
          return Status::OutOfRange("RemoveNode: no such node");
        }
        if (graph_->NodeRemoved(n)) {
          ++stats.noop_updates;
          break;
        }
        // Detach every incident edge through the maintained path, then
        // tombstone: the node ends isolated with an exact count, which
        // drops to 0 once the id is dead.
        std::vector<NodeId> targets(graph_->OutNeighbors(n).begin(),
                                    graph_->OutNeighbors(n).end());
        for (NodeId x : targets) {
          auto applied = ProcessEdgeUpdate(n, x, /*insert=*/false,
                                           &extractor, &bfs, &acc, &stats);
          if (!applied.ok()) return applied.status();
          flush();
        }
        if (graph_->directed()) {
          std::vector<NodeId> sources(graph_->InNeighbors(n).begin(),
                                      graph_->InNeighbors(n).end());
          for (NodeId x : sources) {
            auto applied = ProcessEdgeUpdate(x, n, /*insert=*/false,
                                             &extractor, &bfs, &acc, &stats);
            if (!applied.ok()) return applied.status();
            flush();
          }
        }
        auto removed = graph_->RemoveNode(n);
        if (!removed.ok()) return removed.status();
        if (focal_[n]) {
          focal_[n] = 0;
          if (counts_[n] != 0) {
            acc[n] = -static_cast<std::int64_t>(counts_[n]);
          }
        }
        ++stats.updates_applied;
        flush();
        break;
      }
    }
    if (obs::Enabled()) {
      EGO_HIST_RECORD("dynamic/update_micros",
                      Timer::NowMicros() - update_begin_us);
    }
  }

  std::vector<CountDelta> deltas;
  for (const auto& [n, d] : batch_acc) {
    if (d != 0) deltas.push_back({n, d, counts_[n]});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const CountDelta& a, const CountDelta& b) {
              return a.node < b.node;
            });
  stats.changed_nodes = deltas.size();
  stats.seconds = timer.ElapsedSeconds();
  if (obs::Enabled()) {
    obs::CounterAdd("dynamic/updates_applied", stats.updates_applied);
    obs::CounterAdd("dynamic/noop_updates", stats.noop_updates);
    obs::CounterAdd("dynamic/delta_matches", stats.delta_matches);
    obs::CounterAdd("dynamic/recounted_nodes", stats.recounted_nodes);
    obs::CounterAdd("dynamic/changed_nodes", stats.changed_nodes);
  }
  lifetime_stats_.Accumulate(stats);
  expected_version_ = graph_->version();

  if (!deltas.empty()) {
    for (const Listener& listener : listeners_) listener(deltas);
  }
  if (deltas_out != nullptr) *deltas_out = std::move(deltas);

  if (options_.auto_compact &&
      graph_->DeltaFraction() > options_.compact_threshold) {
    graph_->Compact();
  }
  return stats;
}

}  // namespace egocensus
