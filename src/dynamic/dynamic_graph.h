#ifndef EGOCENSUS_DYNAMIC_DYNAMIC_GRAPH_H_
#define EGOCENSUS_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "util/status.h"

namespace egocensus {

/// One topology update of a dynamic-graph stream.
struct GraphUpdate {
  enum class Kind { kAddEdge, kRemoveEdge, kAddNode, kRemoveNode };

  Kind kind = Kind::kAddEdge;
  NodeId u = kInvalidNode;  // edge source / node to remove
  NodeId v = kInvalidNode;  // edge target
  Label label = kDefaultLabel;  // label of an added node

  static GraphUpdate AddEdge(NodeId u, NodeId v) {
    return {Kind::kAddEdge, u, v, kDefaultLabel};
  }
  static GraphUpdate RemoveEdge(NodeId u, NodeId v) {
    return {Kind::kRemoveEdge, u, v, kDefaultLabel};
  }
  static GraphUpdate AddNode(Label label = kDefaultLabel) {
    return {Kind::kAddNode, kInvalidNode, kInvalidNode, label};
  }
  static GraphUpdate RemoveNode(NodeId n) {
    return {Kind::kRemoveNode, n, kInvalidNode, kDefaultLabel};
  }
};

/// Mutable overlay over a finalized CSR Graph (the dynamic-graph substrate
/// of the EAGr-style continuous workload). The base stays immutable; edge
/// and node changes accumulate in per-node hash-indexed delta lists
/// (added/removed neighbors per adjacency view) and are periodically
/// compacted into a fresh CSR base.
///
/// The overlay mirrors the topology accessors the matchers, BFS, and
/// subgraph extraction already use (NumNodes/Neighbors/OutNeighbors/
/// InNeighbors/Degree/HasEdge/label), returning spans either directly into
/// the base CSR (clean nodes) or into a lazily merged per-node cache (dirty
/// nodes). BfsWorkspace::Run and DynamicSubgraphExtractor therefore operate
/// on base+delta unmodified, and pattern matching runs unchanged inside
/// materialized ego subgraphs of the current topology.
///
/// Semantics: the graph is kept *simple* — inserting an existing edge or
/// deleting a missing one is a reported no-op (AddEdge/RemoveEdge return
/// false). Removed nodes are tombstoned: their id stays allocated, all
/// incident edges are removed, and further mutation through them is an
/// error. Node attributes are carried by node id across updates and
/// compaction; edge attributes are not supported by the dynamic layer (see
/// docs/DYNAMIC.md).
class DynamicGraph {
 public:
  /// `base` must be finalized and simple (no parallel edges).
  explicit DynamicGraph(Graph base);

  // --- Topology accessors (mirroring Graph) ----------------------------

  bool directed() const { return base_.directed(); }
  std::uint32_t NumNodes() const { return num_nodes_; }
  std::uint64_t NumEdges() const { return num_edges_; }
  std::uint32_t NumLabels() const { return max_label_ + 1; }
  Label label(NodeId n) const {
    return n < base_.NumNodes() ? base_.label(n)
                                : ext_labels_[n - base_.NumNodes()];
  }
  bool NodeRemoved(NodeId n) const {
    return n < removed_.size() && removed_[n] != 0;
  }

  /// Out-neighbors (directed) / all neighbors (undirected), sorted.
  std::span<const NodeId> OutNeighbors(NodeId n) const {
    return ViewNeighbors(kOutView, n);
  }
  /// In-neighbors (directed) / all neighbors (undirected), sorted.
  std::span<const NodeId> InNeighbors(NodeId n) const {
    return ViewNeighbors(directed() ? kInView : kOutView, n);
  }
  /// Undirected view (the N(x) of k-hop neighborhood expansion), sorted.
  std::span<const NodeId> Neighbors(NodeId n) const {
    return ViewNeighbors(directed() ? kUndView : kOutView, n);
  }
  std::uint32_t Degree(NodeId n) const {
    return static_cast<std::uint32_t>(Neighbors(n).size());
  }
  /// True if the directed edge u->v exists (undirected: u-v).
  bool HasEdge(NodeId u, NodeId v) const {
    return ViewContains(kOutView, u, v);
  }
  bool HasUndirectedEdge(NodeId u, NodeId v) const {
    return ViewContains(directed() ? kUndView : kOutView, u, v);
  }

  /// Node attribute lookup with the LABEL/ID fast path (as Graph).
  std::optional<AttributeValue> GetNodeAttribute(
      NodeId n, const std::string& name) const;
  AttributeTable& node_attributes() { return base_.node_attributes(); }
  const AttributeTable& node_attributes() const {
    return base_.node_attributes();
  }

  // --- Mutations --------------------------------------------------------

  /// Adds a node and returns its id.
  [[nodiscard]] Result<NodeId> AddNode(Label label = kDefaultLabel);

  /// Inserts edge u->v (undirected: u-v). Returns false if the edge already
  /// exists (no-op); errors on self-loops, out-of-range ids, or removed
  /// endpoints.
  [[nodiscard]] Result<bool> AddEdge(NodeId u, NodeId v);

  /// Deletes edge u->v (undirected: u-v). Returns false if the edge does
  /// not exist (no-op).
  [[nodiscard]] Result<bool> RemoveEdge(NodeId u, NodeId v);

  /// Tombstones node n: removes all incident edges and marks the id dead.
  /// Returns false if already removed.
  [[nodiscard]] Result<bool> RemoveNode(NodeId n);

  /// Applies one GraphUpdate. For kAddNode the returned flag is always
  /// true (the new id is reported via new_node_id).
  [[nodiscard]] Result<bool> Apply(const GraphUpdate& update,
                     NodeId* new_node_id = nullptr);

  // --- Compaction -------------------------------------------------------

  /// Number of delta entries applied since the last compaction.
  std::uint64_t DeltaSize() const { return delta_ops_; }

  /// Delta size relative to the base edge count (compaction trigger).
  double DeltaFraction() const {
    return base_.NumEdges() == 0
               ? (delta_ops_ > 0 ? 1.0 : 0.0)
               : static_cast<double>(delta_ops_) / base_.NumEdges();
  }

  /// Rebuilds a fresh CSR base from base+delta and clears the delta
  /// structures. Invalidates all previously returned spans.
  void Compact();

  /// Equivalent fully static graph (finalized): same node ids (tombstoned
  /// nodes become isolated), current edges, labels, and node attributes.
  Graph Materialize() const;

  /// Monotone counter bumped by every applied (non-no-op) mutation.
  std::uint64_t version() const { return version_; }

  const Graph& base() const { return base_; }

 private:
  static constexpr int kOutView = 0;
  static constexpr int kInView = 1;
  static constexpr int kUndView = 2;

  struct DeltaAdj {
    std::vector<NodeId> added;    // sorted; not in the base adjacency
    std::vector<NodeId> removed;  // sorted; subset of the base adjacency
    mutable std::vector<NodeId> merged;
    mutable bool merged_valid = false;
  };

  std::span<const NodeId> BaseNeighbors(int view, NodeId n) const;
  std::span<const NodeId> ViewNeighbors(int view, NodeId n) const;
  bool ViewContains(int view, NodeId u, NodeId v) const;
  void DeltaAddNeighbor(int view, NodeId n, NodeId x);
  void DeltaRemoveNeighbor(int view, NodeId n, NodeId x);
  [[nodiscard]] Status CheckEndpoints(NodeId u, NodeId v) const;

  Graph base_;  // finalized
  std::uint32_t num_nodes_ = 0;
  std::uint64_t num_edges_ = 0;
  Label max_label_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t delta_ops_ = 0;

  std::vector<Label> ext_labels_;  // nodes beyond the base
  std::vector<char> removed_;
  // One delta map per adjacency view; undirected graphs use only kOutView
  // (as Graph, where out == in == undirected).
  std::unordered_map<NodeId, DeltaAdj> delta_[3];
};

/// Induced-subgraph materialization over the DynamicGraph overlay: the
/// dynamic counterpart of SubgraphExtractor. The extracted EgoSubgraph is an
/// ordinary finalized Graph, so the CN/GQL matchers run inside it
/// unmodified. Edge attributes are not copied (unsupported by the dynamic
/// layer); node labels always are, node attributes on request.
class DynamicSubgraphExtractor {
 public:
  explicit DynamicSubgraphExtractor(const DynamicGraph& graph)
      : graph_(graph) {}

  /// Induced subgraph on `nodes` (duplicates ignored).
  EgoSubgraph Extract(std::span<const NodeId> nodes,
                      bool copy_attributes = false);

  /// Induced subgraph on the k-hop neighborhood S(n, k).
  EgoSubgraph ExtractKHop(NodeId n, std::uint32_t k,
                          bool copy_attributes = false);

  /// Induced subgraph on B(u, radius) ∪ B(v, radius) — the locality region
  /// of incremental maintenance around an updated edge.
  EgoSubgraph ExtractAroundPair(NodeId u, NodeId v, std::uint32_t radius,
                                bool copy_attributes = false);

  /// BFS workspace of the last ExtractKHop/ExtractAroundPair call (global
  /// distances from the first seed).
  const BfsWorkspace& last_bfs() const { return bfs1_; }

 private:
  void EnsureCapacity();

  const DynamicGraph& graph_;
  BfsWorkspace bfs1_;
  BfsWorkspace bfs2_;
  std::vector<NodeId> local_of_;
  std::vector<std::uint32_t> epoch_of_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> scratch_nodes_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_DYNAMIC_DYNAMIC_GRAPH_H_
