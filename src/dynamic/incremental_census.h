#ifndef EGOCENSUS_DYNAMIC_INCREMENTAL_CENSUS_H_
#define EGOCENSUS_DYNAMIC_INCREMENTAL_CENSUS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "exec/governor.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// One maintained count change: node n's COUNTP went from
/// new_count - delta to new_count.
struct CountDelta {
  NodeId node = kInvalidNode;
  std::int64_t delta = 0;
  std::uint64_t new_count = 0;
};

/// Counters for one maintenance batch (or, accumulated, for the lifetime of
/// an IncrementalCensus).
struct MaintenanceStats {
  std::uint64_t updates_applied = 0;  // mutations that changed the graph
  std::uint64_t noop_updates = 0;     // duplicate inserts / missing deletes
  std::uint64_t delta_matches = 0;    // edge-anchored matches enumerated
  std::uint64_t recounted_nodes = 0;  // localized from-scratch recounts
  std::uint64_t adjusted_nodes = 0;   // counts adjusted via match deltas
  std::uint64_t changed_nodes = 0;    // nodes whose count actually changed
  std::uint64_t region_nodes = 0;     // sizes of materialized match regions
  double seconds = 0;

  void Accumulate(const MaintenanceStats& other);
};

/// Maintains the per-focal-node ego-centric pattern census
/// `COUNTP(P, SUBGRAPH(n, k))` (or COUNTSP) under a stream of graph updates
/// by localized re-enumeration instead of global recompute.
///
/// For an updated edge (u, v) the maintenance is exact and works in three
/// localized steps (see docs/DYNAMIC.md for the correctness argument):
///
///  1. *Delta matches*: only matches whose validity depends on (u, v) are
///     enumerated, by matching inside the induced region
///     B(u, diam(P)) ∪ B(v, diam(P)) and keeping matches that require the
///     edge (insertion: born; deletion: dying) or — for patterns with
///     negated edges — its absence.
///  2. *Affected focal nodes of a delta match M*: exactly the nodes whose
///     k-hop neighborhood contains all of M's anchor images, found as the
///     intersection of the k-balls of the anchors (reverse BFS from the
///     match).
///  3. *Neighborhood-membership changes*: nodes n with
///     min(d(n,u), d(n,v)) <= k-1 (k-1-balls around the endpoints, edge
///     present) are the only ones whose S(n, k) node set can change; they
///     are recounted from scratch locally (extract + match), which also
///     absorbs steps 1–2 for them.
///
/// Counts of every other node are provably unchanged, so single-edge
/// updates cost a handful of bounded-radius BFS runs plus matching in a
/// small region — orders of magnitude below a full recompute.
class IncrementalCensus {
 public:
  struct Options {
    /// Neighborhood radius k of SUBGRAPH(ID, k).
    std::uint32_t k = 1;
    /// COUNTSP subpattern name; empty counts the whole pattern.
    std::string subpattern;
    /// Compact the overlay when the delta exceeds compact_threshold of the
    /// base edge count (checked at batch boundaries).
    bool auto_compact = true;
    double compact_threshold = 0.25;
    /// Optional resource governor: ApplyBatch checkpoints once per update
    /// and stops between updates when the governor says stop, returning the
    /// governor's status. Already-applied prefix updates stay applied (the
    /// documented batch-abort semantics) and the maintained counts remain
    /// exact for the applied prefix. Null = ungoverned.
    Governor* governor = nullptr;
  };

  /// Change-listener: receives the aggregated count deltas of every
  /// applied batch (fired once per ApplyBatch that changed any count).
  using Listener = std::function<void(const std::vector<CountDelta>&)>;

  /// Builds the initial census over all (non-removed) nodes of `graph` and
  /// returns a maintainer. `graph` must outlive the returned object;
  /// `pattern` must be prepared. Patterns with edge-attribute predicates
  /// are not supported by the dynamic layer.
  [[nodiscard]] static Result<IncrementalCensus> Create(DynamicGraph* graph,
                                          Pattern pattern, Options options);

  /// As above, restricted to an explicit focal set (removed and
  /// out-of-range ids are rejected). Nodes added later are not focal.
  [[nodiscard]] static Result<IncrementalCensus> Create(DynamicGraph* graph,
                                          Pattern pattern, Options options,
                                          std::vector<NodeId> focal);

  /// counts()[n] = maintained census count of focal node n (0 for
  /// non-focal / removed nodes); sized graph->NumNodes() as of the last
  /// batch.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  bool IsFocal(NodeId n) const {
    return n < focal_.size() && focal_[n] != 0;
  }

  const Pattern& pattern() const { return pattern_; }
  const Options& options() const { return options_; }
  const MaintenanceStats& lifetime_stats() const { return lifetime_stats_; }

  void AddListener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Applies `updates` in order, maintaining all focal counts exactly.
  /// Count deltas are aggregated across the batch, delivered to listeners,
  /// and optionally returned via `deltas_out`. Invalid updates abort the
  /// batch with an error (already-applied prefix updates stay applied).
  [[nodiscard]] Result<MaintenanceStats> ApplyBatch(
      std::span<const GraphUpdate> updates,
      std::vector<CountDelta>* deltas_out = nullptr);

 private:
  IncrementalCensus(DynamicGraph* graph, Pattern pattern, Options options)
      : graph_(graph), pattern_(std::move(pattern)),
        options_(std::move(options)) {}

  /// Global-id anchor images of one match that depends on the updated edge.
  struct DeltaMatch {
    std::vector<NodeId> anchors;  // sorted, deduplicated
  };

  /// Sorted node list of a k-ball B(source, depth).
  struct Ball {
    std::vector<NodeId> nodes;
    bool Contains(NodeId n) const;
  };

  [[nodiscard]] Status InitCounts(std::vector<NodeId> focal, bool all_nodes);
  Ball MakeBall(NodeId source, std::uint32_t depth, BfsWorkspace* bfs) const;

  /// Enumerates the matches in the current topology whose validity depends
  /// on edge (u, v): with `edge_present`, matches using the edge through a
  /// positive pattern edge; otherwise matches requiring its absence through
  /// a negated pattern edge.
  std::vector<DeltaMatch> EnumerateEdgeMatches(
      NodeId u, NodeId v, bool edge_present,
      DynamicSubgraphExtractor* extractor, MaintenanceStats* stats) const;

  /// From-scratch count of focal node n in the current topology, matching
  /// only inside S(n, k) (whole pattern) or S(n, k + diam) (subpattern).
  std::uint64_t LocalRecount(NodeId n, DynamicSubgraphExtractor* extractor,
                             BfsWorkspace* bfs) const;

  /// Adds the ±1 contributions of `matches` to `acc` for every eligible
  /// focal node (anchor-ball intersection), skipping nodes in `skip`.
  void ApplyMatchDeltas(const std::vector<DeltaMatch>& matches, int sign,
                        const std::unordered_map<NodeId, char>& skip,
                        std::unordered_map<NodeId, std::int64_t>* acc,
                        BfsWorkspace* bfs, MaintenanceStats* stats) const;

  /// Maintains counts for one edge insert/delete. Returns whether the graph
  /// changed (false = no-op duplicate/missing edge).
  [[nodiscard]] Result<bool> ProcessEdgeUpdate(NodeId u, NodeId v, bool insert,
                                 DynamicSubgraphExtractor* extractor,
                                 BfsWorkspace* bfs,
                                 std::unordered_map<NodeId, std::int64_t>* acc,
                                 MaintenanceStats* stats);

  DynamicGraph* graph_ = nullptr;
  Pattern pattern_;
  Options options_;

  std::vector<int> anchor_nodes_;
  bool whole_pattern_ = true;
  std::uint32_t diameter_ = 0;  // pattern diameter (positive skeleton)
  bool all_nodes_focal_ = true;

  std::vector<std::uint64_t> counts_;
  std::vector<char> focal_;
  std::vector<Listener> listeners_;
  MaintenanceStats lifetime_stats_;
  // Graph version after the last batch; the graph must not be mutated
  // behind the maintainer's back between batches.
  std::uint64_t expected_version_ = 0;
};

}  // namespace egocensus

#endif  // EGOCENSUS_DYNAMIC_INCREMENTAL_CENSUS_H_
