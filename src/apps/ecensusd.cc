// ecensusd — the census daemon: loads graphs once, then serves QUERY /
// UPDATE / STATUS / LOAD / UNLOAD / SHUTDOWN frames to concurrent clients
// over the net/frame protocol (docs/SERVER.md).
//
//   ecensusd --listen HOST:PORT [--graph NAME=FILE]... [--max-inflight N]
//            [--queue-depth N] [--queue-bytes-mb MB] [--drain-ms MS]
//            [--max-deadline-ms MS] [--max-memory-budget-mb MB]
//            [--max-threads T] [--obs] [--version]
//
// Exit codes follow the ecensus contract: 2 for usage errors, 1 for
// everything else (port in use, unreadable graph file). SIGINT shuts down
// immediately: stop accepting, hang up clients, join workers, exit 0.
// SIGTERM drains gracefully first: stop accepting, serve or BUSY-flush the
// queue within --drain-ms, then the same clean shutdown — so a rolling
// restart never drops an admitted request on the floor.

#include <csignal>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "util/build_info.h"
#include "util/strings.h"

namespace {

using namespace egocensus;

// Signal handlers may only touch lock-free state; the main thread polls
// this and runs the actual (lock-taking) shutdown.
volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

int Usage() {
  std::cerr <<
      "usage:\n"
      "  ecensusd --listen HOST:PORT [--graph NAME=FILE]...\n"
      "           [--max-inflight N (default 8)]\n"
      "           [--queue-depth N (default 64; 0 = reject-on-full)]\n"
      "           [--queue-bytes-mb MB (default 32)]\n"
      "           [--drain-ms MS (default 5000; SIGTERM drain budget)]\n"
      "           [--max-deadline-ms MS] [--max-memory-budget-mb MB]\n"
      "           [--max-threads T] [--ring N] [--obs]\n"
      "           [--log-file PATH | --log-stderr] [--log-level LEVEL]\n"
      "           [--log-rate N] [--slow-query-ms MS] [--slow-ring N]\n"
      "  ecensusd --version\n"
      "\n"
      "Serves census queries over TCP (protocol: docs/SERVER.md). Graphs\n"
      "load once at startup (--graph) or at runtime (LOAD frames); QUERY\n"
      "and UPDATE requests run under per-request governors clamped by the\n"
      "--max-* caps. Beyond --max-inflight, requests wait in a per-tenant\n"
      "fair queue bounded by --queue-depth/--queue-bytes-mb; past the\n"
      "bound they get BUSY with a retry_after_ms hint. SIGTERM drains\n"
      "gracefully within --drain-ms before exiting.\n"
      "\n"
      "Request telemetry (docs/OBSERVABILITY.md): --log-file/--log-stderr\n"
      "emit one JSON line per request (level floor --log-level, at most\n"
      "--log-rate lines/s); requests slower than --slow-query-ms are\n"
      "captured into a ring of --slow-ring entries retrievable via STATUS.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::CensusServer::Options options;
  std::vector<std::pair<std::string, std::string>> graphs;  // name, path
  bool have_listen = false;
  bool obs_on = false;
  std::uint64_t drain_ms = 5000;
  std::string log_file;
  bool log_stderr = false;
  std::string log_level;
  std::uint64_t log_rate = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--version") {
      std::cout << BuildInfoString() << "\n";
      return 0;
    } else if (arg == "--listen") {
      const char* v = value("--listen");
      if (v == nullptr) return Usage();
      auto endpoint = net::ParseEndpoint(v);
      if (!endpoint.ok()) {
        std::cerr << endpoint.status().ToString() << "\n";
        return Usage();
      }
      options.listen = *endpoint;
      have_listen = true;
    } else if (arg == "--graph") {
      const char* v = value("--graph");
      if (v == nullptr) return Usage();
      std::string spec = v;
      std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "--graph expects NAME=FILE, got '" << spec << "'\n";
        return Usage();
      }
      graphs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--max-inflight") {
      const char* v = value("--max-inflight");
      if (v == nullptr) return Usage();
      options.max_inflight = static_cast<std::uint32_t>(std::stoul(v));
      if (options.max_inflight == 0) {
        std::cerr << "--max-inflight must be >= 1\n";
        return Usage();
      }
    } else if (arg == "--queue-depth") {
      const char* v = value("--queue-depth");
      if (v == nullptr) return Usage();
      options.queue_depth = static_cast<std::size_t>(std::stoull(v));
    } else if (arg == "--queue-bytes-mb") {
      const char* v = value("--queue-bytes-mb");
      if (v == nullptr) return Usage();
      options.queue_bytes = std::stoull(v) << 20;
    } else if (arg == "--drain-ms") {
      const char* v = value("--drain-ms");
      if (v == nullptr) return Usage();
      drain_ms = std::stoull(v);
    } else if (arg == "--max-deadline-ms") {
      const char* v = value("--max-deadline-ms");
      if (v == nullptr) return Usage();
      options.max_deadline_ms = std::stoull(v);
    } else if (arg == "--max-memory-budget-mb") {
      const char* v = value("--max-memory-budget-mb");
      if (v == nullptr) return Usage();
      options.max_memory_budget_mb = std::stoull(v);
    } else if (arg == "--max-threads") {
      const char* v = value("--max-threads");
      if (v == nullptr) return Usage();
      options.max_threads = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--ring") {
      const char* v = value("--ring");
      if (v == nullptr) return Usage();
      options.ring_capacity = static_cast<std::size_t>(std::stoull(v));
    } else if (arg == "--obs") {
      obs_on = true;
    } else if (arg == "--log-file") {
      const char* v = value("--log-file");
      if (v == nullptr) return Usage();
      log_file = v;
    } else if (arg == "--log-stderr") {
      log_stderr = true;
    } else if (arg == "--log-level") {
      const char* v = value("--log-level");
      if (v == nullptr) return Usage();
      log_level = v;
    } else if (arg == "--log-rate") {
      const char* v = value("--log-rate");
      if (v == nullptr) return Usage();
      log_rate = std::stoull(v);
    } else if (arg == "--slow-query-ms") {
      const char* v = value("--slow-query-ms");
      if (v == nullptr) return Usage();
      options.slow_query_threshold_ms = std::stoull(v);
    } else if (arg == "--slow-ring") {
      const char* v = value("--slow-ring");
      if (v == nullptr) return Usage();
      options.slow_ring_capacity = static_cast<std::size_t>(std::stoull(v));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage();
    }
  }
  if (!have_listen) {
    std::cerr << "--listen is required\n";
    return Usage();
  }
  if (obs_on) obs::SetEnabled(true);

  if (!log_file.empty() && log_stderr) {
    std::cerr << "--log-file and --log-stderr are mutually exclusive\n";
    return Usage();
  }
  if ((!log_file.empty() || log_stderr) && !GetBuildInfo().obs_enabled) {
    std::cerr << "warning: built with EGOCENSUS_OBS=OFF; request logging "
                 "is compiled out and --log-* flags have no effect\n";
  }
  obs::Logger& logger = obs::Logger::Global();
  if (!log_file.empty()) {
    Status opened = logger.OpenFile(log_file);
    if (!opened.ok()) {
      std::cerr << opened.ToString() << "\n";
      return Usage();
    }
  } else if (log_stderr) {
    logger.UseStderr();
  }
  if (!log_level.empty()) {
    logger.SetMinLevel(obs::LogLevelFromName(log_level));
  }
  if (log_rate > 0) logger.SetRateLimit(log_rate);

  net::CensusServer server(options);
  for (const auto& [name, path] : graphs) {
    Status loaded = server.registry().LoadFromFile(name, path);
    if (!loaded.ok()) {
      std::cerr << loaded.ToString() << "\n";
      return 1;
    }
    std::cerr << "loaded graph '" << name << "' from " << path << "\n";
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The smoke job and scripts wait for this exact line (stdout, flushed)
  // before connecting; the printed port resolves ephemeral binds.
  std::cout << BuildInfoString() << " listening on " << options.listen.host
            << ":" << server.port() << " (" << graphs.size()
            << " graphs resident, max-inflight=" << options.max_inflight
            << ", queue-depth=" << options.queue_depth << ")" << std::endl;

  while (!server.ShutdownRequested() && g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (g_signal == SIGTERM) {
    // Graceful drain: stop accepting, serve or BUSY-flush the queue within
    // the budget, wait for in-flight responses, then shut down.
    std::cerr << "signal " << g_signal << ": draining (budget " << drain_ms
              << " ms)\n";
    net::CensusServer::DrainResult drained = server.Drain(drain_ms);
    std::cerr << "drain " << (drained.completed ? "completed" : "timed out")
              << " (" << drained.flushed << " queued requests flushed)\n";
  } else if (g_signal != 0) {
    std::cerr << "signal " << g_signal << ": shutting down\n";
  }
  server.RequestShutdown();
  server.Wait();
  std::cout << "ecensusd: clean shutdown\n";
  return 0;
}
