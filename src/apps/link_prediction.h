#ifndef EGOCENSUS_APPS_LINK_PREDICTION_H_
#define EGOCENSUS_APPS_LINK_PREDICTION_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/dblp_gen.h"
#include "census/pairwise.h"
#include "graph/graph.h"

namespace egocensus {

/// The link prediction experiment of Section V-B / Fig. 4(h): for every
/// pair of authors, measure the number of nodes, edges and triangles in
/// their common (intersection) 1/2/3-hop neighborhoods — 9 pairwise census
/// measures — plus the Jaccard coefficient and a random predictor; rank
/// non-collaborating pairs by each measure and report precision at K.
struct LinkPredictionOptions {
  std::vector<std::uint32_t> radii = {1, 2, 3};
  std::vector<std::size_t> precision_ks = {50, 600};
  /// Pattern-driven census machinery knobs (k/subpattern/neighborhood are
  /// set per measure).
  PairwiseCensusOptions pairwise;
  std::uint64_t seed = 11;
};

struct MeasureResult {
  std::string name;
  std::vector<double> precision;  // parallel to options.precision_ks
  std::size_t ranked_pairs = 0;   // candidate pairs with a nonzero score
  double seconds = 0;             // census time for this measure
};

struct LinkPredictionReport {
  std::vector<MeasureResult> measures;  // 9 census + jaccard + random
};

/// Runs all measures over the training graph and scores against the test
/// edges. Pairs already linked in training are excluded from rankings.
[[nodiscard]] Result<LinkPredictionReport> RunLinkPrediction(
    const DblpData& data, const LinkPredictionOptions& options);

/// Ranks the pairs of `counts` by descending count (ties by pair key) after
/// removing `exclude` pairs; returns packed pair keys.
std::vector<std::uint64_t> RankPairs(
    const PairCounts& counts,
    const std::unordered_set<std::uint64_t>& exclude);

/// Fraction of the top-K ranked pairs present in `truth`.
double PrecisionAtK(const std::vector<std::uint64_t>& ranked,
                    const std::unordered_set<std::uint64_t>& truth,
                    std::size_t k);

/// Jaccard coefficient |N(u) cap N(v)| / |N(u) cup N(v)| for all pairs with
/// at least one common neighbor (the classic link prediction baseline).
std::vector<std::pair<std::uint64_t, double>> ComputeJaccardScores(
    const Graph& graph);

}  // namespace egocensus

#endif  // EGOCENSUS_APPS_LINK_PREDICTION_H_
