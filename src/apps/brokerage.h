#ifndef EGOCENSUS_APPS_BROKERAGE_H_
#define EGOCENSUS_APPS_BROKERAGE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "census/census.h"
#include "graph/graph.h"
#include "util/status.h"

namespace egocensus {

/// The five Gould-Fernandez brokerage roles of Fig. 1(c). The middle node B
/// of a directed open triad A -> B -> C (no A -> C edge) is classified by
/// which of the three nodes share B's organization (the node label):
enum class BrokerageRole {
  kCoordinator = 0,     // A, B, C all in the same organization
  kGatekeeper = 1,      // A outside; B, C inside
  kRepresentative = 2,  // A, B inside; C outside
  kConsultant = 3,      // A, C in one organization, B in another
  kLiaison = 4,         // all three in different organizations
};

inline constexpr int kNumBrokerageRoles = 5;

const char* BrokerageRoleName(BrokerageRole role);

struct BrokerageResult {
  /// counts[n][role] = number of open triads with n as the broker of that
  /// role. Roles are mutually exclusive and cover all label combinations,
  /// so summing over roles gives n's total open-triad brokerage.
  std::vector<std::array<std::uint64_t, kNumBrokerageRoles>> counts;
};

/// Computes the full brokerage census of a directed graph whose node labels
/// encode organization membership: one COUNTSP(broker, triad, SUBGRAPH(ID,0))
/// census per role, with the role's label equalities/inequalities attached
/// as pattern predicates.
[[nodiscard]] Result<BrokerageResult> ComputeBrokerage(const Graph& graph,
                                         const CensusOptions& base_options);

}  // namespace egocensus

#endif  // EGOCENSUS_APPS_BROKERAGE_H_
