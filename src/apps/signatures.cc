#include "apps/signatures.h"

namespace egocensus {

[[nodiscard]] Result<std::vector<std::vector<std::uint64_t>>> BuildNodeSignatures(
    const Graph& graph, std::span<const Pattern> patterns,
    const SignatureOptions& options) {
  std::vector<std::vector<std::uint64_t>> signatures(
      graph.NumNodes(), std::vector<std::uint64_t>(patterns.size(), 0));
  auto focal = AllNodes(graph);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    CensusOptions census;
    census.algorithm = options.algorithm;
    census.k = options.k;
    auto result = RunCensus(graph, patterns[i], focal, census);
    if (!result.ok()) return result.status();
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      signatures[n][i] = result->counts[n];
    }
  }
  return signatures;
}

Graph PatternToGraph(const Pattern& pattern) {
  Graph graph(/*directed=*/false);
  for (int v = 0; v < pattern.NumNodes(); ++v) {
    graph.AddNode(pattern.LabelConstraint(v).value_or(kDefaultLabel));
  }
  for (const auto& e : pattern.PositiveEdges()) {
    graph.AddEdge(static_cast<NodeId>(e.src), static_cast<NodeId>(e.dst));
  }
  CheckOk(graph.Finalize(), "builder invariant");
  return graph;
}

[[nodiscard]] Result<std::vector<std::uint64_t>> RoleSignature(
    const Pattern& query, int role, std::span<const Pattern> patterns,
    const SignatureOptions& options) {
  if (role < 0 || role >= query.NumNodes()) {
    return Status::OutOfRange("role out of range");
  }
  Graph skeleton = PatternToGraph(query);
  std::vector<NodeId> focal = {static_cast<NodeId>(role)};
  std::vector<std::uint64_t> signature(patterns.size(), 0);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    CensusOptions census;
    census.algorithm = options.algorithm;
    census.k = options.k;
    auto result = RunCensus(skeleton, patterns[i], focal, census);
    if (!result.ok()) return result.status();
    signature[i] = result->counts[role];
  }
  return signature;
}

std::vector<NodeId> FilterCandidatesBySignature(
    const std::vector<std::vector<std::uint64_t>>& signatures,
    const std::vector<std::uint64_t>& role_signature) {
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < signatures.size(); ++n) {
    bool dominates = true;
    for (std::size_t i = 0; i < role_signature.size(); ++i) {
      if (signatures[n][i] < role_signature[i]) {
        dominates = false;
        break;
      }
    }
    if (dominates) candidates.push_back(n);
  }
  return candidates;
}

}  // namespace egocensus
