#include "apps/dblp_gen.h"

#include <algorithm>

#include "census/pairwise.h"
#include "util/rng.h"

namespace egocensus {

DblpData GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  const std::uint32_t n = options.num_authors;
  const std::uint32_t communities = std::max(1u, options.num_communities);

  std::vector<std::uint32_t> community(n);
  std::vector<std::vector<NodeId>> members(communities);
  for (NodeId a = 0; a < n; ++a) {
    community[a] = static_cast<std::uint32_t>(rng.NextBounded(communities));
    members[community[a]].push_back(a);
  }

  // Collaboration state across all years. coauthors[a] lists a's past
  // coauthors (with multiplicity, so repeat collaborators are favored);
  // papers[a] counts productivity for preferential first-author selection.
  std::vector<std::vector<NodeId>> coauthors(n);
  std::vector<std::uint32_t> papers(n, 1);

  // Per-year edge sets.
  std::vector<std::unordered_set<std::uint64_t>> year_edges(options.num_years);

  auto pick_from_community = [&](std::uint32_t c) -> NodeId {
    const auto& pool = members[c];
    // Productivity-weighted pick: tournament of two uniform draws.
    NodeId a = pool[rng.NextBounded(pool.size())];
    NodeId b = pool[rng.NextBounded(pool.size())];
    return papers[a] >= papers[b] ? a : b;
  };

  std::vector<NodeId> team;
  for (std::uint32_t year = 0; year < options.num_years; ++year) {
    for (std::uint32_t p = 0; p < options.papers_per_year; ++p) {
      std::uint32_t c = static_cast<std::uint32_t>(rng.NextBounded(communities));
      if (members[c].empty()) continue;
      std::uint32_t team_size = static_cast<std::uint32_t>(
          rng.NextInRange(options.min_team, options.max_team));
      team.clear();
      team.push_back(pick_from_community(c));
      std::uint32_t attempts = 0;
      while (team.size() < team_size && attempts < team_size * 16) {
        ++attempts;
        NodeId cand;
        // Triadic closure: reuse a coauthor of someone already on the
        // paper; otherwise draw from this (or occasionally another)
        // community.
        NodeId seed_author = team[rng.NextBounded(team.size())];
        if (!coauthors[seed_author].empty() &&
            rng.NextBool(options.closure_prob)) {
          cand = coauthors[seed_author][rng.NextBounded(
              coauthors[seed_author].size())];
        } else {
          std::uint32_t cc = c;
          if (rng.NextBool(options.cross_community_prob)) {
            cc = static_cast<std::uint32_t>(rng.NextBounded(communities));
          }
          if (members[cc].empty()) continue;
          cand = pick_from_community(cc);
        }
        if (std::find(team.begin(), team.end(), cand) == team.end()) {
          team.push_back(cand);
        }
      }
      if (team.size() < 2) continue;
      for (NodeId a : team) ++papers[a];
      for (std::size_t i = 0; i < team.size(); ++i) {
        for (std::size_t j = i + 1; j < team.size(); ++j) {
          year_edges[year].insert(PackPair(team[i], team[j]));
          coauthors[team[i]].push_back(team[j]);
          coauthors[team[j]].push_back(team[i]);
        }
      }
    }
  }

  DblpData data;
  data.train = Graph(/*directed=*/false);
  data.train.AddNodes(n);
  for (NodeId a = 0; a < n; ++a) {
    data.train.node_attributes().Set(
        a, "COMMUNITY", static_cast<std::int64_t>(community[a]));
  }
  for (std::uint32_t year = 0; year < options.train_years; ++year) {
    for (std::uint64_t key : year_edges[year]) {
      if (data.train_edge_keys.insert(key).second) {
        auto [a, b] = UnpackPair(key);
        data.train.AddEdge(a, b);
      }
    }
  }
  CheckOk(data.train.Finalize(), "builder invariant");

  std::unordered_set<std::uint64_t> test_seen;
  for (std::uint32_t year = options.train_years; year < options.num_years;
       ++year) {
    for (std::uint64_t key : year_edges[year]) {
      if (data.train_edge_keys.count(key) != 0) continue;
      if (test_seen.insert(key).second) {
        data.test_edges.push_back(UnpackPair(key));
      }
    }
  }
  std::sort(data.test_edges.begin(), data.test_edges.end());
  return data;
}

}  // namespace egocensus
