#include "apps/link_prediction.h"

#include <algorithm>

#include "pattern/catalog.h"
#include "util/rng.h"
#include "util/timer.h"

namespace egocensus {

std::vector<std::uint64_t> RankPairs(
    const PairCounts& counts,
    const std::unordered_set<std::uint64_t>& exclude) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items;  // (count, key)
  items.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    if (count == 0 || exclude.count(key) != 0) continue;
    items.emplace_back(count, key);
  }
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<std::uint64_t> ranked;
  ranked.reserve(items.size());
  for (const auto& [count, key] : items) ranked.push_back(key);
  return ranked;
}

double PrecisionAtK(const std::vector<std::uint64_t>& ranked,
                    const std::unordered_set<std::uint64_t>& truth,
                    std::size_t k) {
  if (k == 0) return 0;
  std::size_t hits = 0;
  std::size_t limit = std::min(k, ranked.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (truth.count(ranked[i]) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

std::vector<std::pair<std::uint64_t, double>> ComputeJaccardScores(
    const Graph& graph) {
  // Common-neighbor counts via wedge enumeration.
  PairCounts common;
  for (NodeId w = 0; w < graph.NumNodes(); ++w) {
    auto nbrs = graph.Neighbors(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        ++common[PackPair(nbrs[i], nbrs[j])];
      }
    }
  }
  std::vector<std::pair<std::uint64_t, double>> scores;
  scores.reserve(common.size());
  for (const auto& [key, cn] : common) {
    auto [u, v] = UnpackPair(key);
    double uni = static_cast<double>(graph.Degree(u)) +
                 static_cast<double>(graph.Degree(v)) -
                 static_cast<double>(cn);
    scores.emplace_back(key, uni > 0 ? static_cast<double>(cn) / uni : 0.0);
  }
  return scores;
}

[[nodiscard]] Result<LinkPredictionReport> RunLinkPrediction(
    const DblpData& data, const LinkPredictionOptions& options) {
  LinkPredictionReport report;
  const Graph& graph = data.train;

  std::unordered_set<std::uint64_t> truth;
  for (const auto& [a, b] : data.test_edges) truth.insert(PackPair(a, b));

  struct Structure {
    const char* name;
    Pattern pattern;
  };
  std::vector<Structure> structures;
  structures.push_back({"node", MakeSingleNode()});
  structures.push_back({"edge", MakeSingleEdge()});
  structures.push_back({"triangle", MakeTriangle(/*labeled=*/false)});

  auto score_ranked = [&](const std::string& name,
                          const std::vector<std::uint64_t>& ranked,
                          double seconds) {
    MeasureResult m;
    m.name = name;
    m.ranked_pairs = ranked.size();
    m.seconds = seconds;
    for (std::size_t k : options.precision_ks) {
      m.precision.push_back(PrecisionAtK(ranked, truth, k));
    }
    report.measures.push_back(std::move(m));
  };

  // The 9 pairwise census measures.
  for (const auto& structure : structures) {
    for (std::uint32_t r : options.radii) {
      PairwiseCensusOptions pairwise = options.pairwise;
      pairwise.k = r;
      pairwise.neighborhood = PairNeighborhood::kIntersection;
      Timer timer;
      auto counts = RunPairwisePtOpt(graph, structure.pattern, pairwise);
      if (!counts.ok()) return counts.status();
      double seconds = timer.ElapsedSeconds();
      std::vector<std::uint64_t> ranked =
          RankPairs(*counts, data.train_edge_keys);
      score_ranked(std::string(structure.name) + "@" + std::to_string(r),
                   ranked, seconds);
    }
  }

  // Jaccard coefficient baseline.
  {
    Timer timer;
    auto scores = ComputeJaccardScores(graph);
    std::sort(scores.begin(), scores.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    std::vector<std::uint64_t> ranked;
    for (const auto& [key, score] : scores) {
      if (data.train_edge_keys.count(key) == 0) ranked.push_back(key);
    }
    score_ranked("jaccard", ranked, timer.ElapsedSeconds());
  }

  // Random predictor.
  {
    Rng rng(options.seed);
    std::vector<std::uint64_t> ranked;
    std::size_t want = 0;
    for (std::size_t k : options.precision_ks) want = std::max(want, k);
    std::unordered_set<std::uint64_t> seen;
    std::size_t guard = 0;
    while (ranked.size() < want && guard < want * 100) {
      ++guard;
      NodeId a = static_cast<NodeId>(rng.NextBounded(graph.NumNodes()));
      NodeId b = static_cast<NodeId>(rng.NextBounded(graph.NumNodes()));
      if (a == b) continue;
      std::uint64_t key = PackPair(a, b);
      if (data.train_edge_keys.count(key) != 0) continue;
      if (seen.insert(key).second) ranked.push_back(key);
    }
    score_ranked("random", ranked, 0);
  }
  return report;
}

}  // namespace egocensus
