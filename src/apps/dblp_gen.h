#ifndef EGOCENSUS_APPS_DBLP_GEN_H_
#define EGOCENSUS_APPS_DBLP_GEN_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace egocensus {

/// Synthetic DBLP-like co-authorship workload standing in for the paper's
/// SIGMOD/VLDB/ICDE 2001-2010 crawl (Section V-B). Authors belong to
/// research communities; each simulated year produces papers whose author
/// teams mix community affinity, productivity-proportional (preferential)
/// selection and triadic closure — the mechanisms that make "common
/// nodes/edges/triangles within r hops" predictive of future collaboration.
/// Years 1..train_years form the training graph; an edge first co-occurring
/// in a later year between two training-graph authors is a test edge.
struct DblpOptions {
  std::uint32_t num_authors = 3000;
  std::uint32_t num_communities = 60;
  std::uint32_t num_years = 10;
  std::uint32_t train_years = 5;
  std::uint32_t papers_per_year = 350;
  /// Probability that a coauthor is drawn from outside the paper's
  /// community.
  double cross_community_prob = 0.08;
  /// Probability that a coauthor is picked by triadic closure (a coauthor
  /// of an author already on the paper) rather than fresh from the
  /// community.
  double closure_prob = 0.3;
  std::uint32_t min_team = 2;
  std::uint32_t max_team = 4;
  std::uint64_t seed = 2001;
};

struct DblpData {
  /// Undirected co-authorship graph over years [1, train_years], finalized.
  /// Node attribute "COMMUNITY" holds the community id.
  Graph train;
  /// New collaborations (absent from train) appearing in the test years,
  /// canonical (smaller id first), deduplicated.
  std::vector<std::pair<NodeId, NodeId>> test_edges;
  /// Packed training edges (PackPair keys) for membership tests.
  std::unordered_set<std::uint64_t> train_edge_keys;
};

DblpData GenerateDblp(const DblpOptions& options);

}  // namespace egocensus

#endif  // EGOCENSUS_APPS_DBLP_GEN_H_
