#ifndef EGOCENSUS_APPS_SIGNATURES_H_
#define EGOCENSUS_APPS_SIGNATURES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "census/census.h"
#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// Node signatures for subgraph-search pruning (Section I, "Graph
/// Indexing"): the counts of a fixed family of small patterns inside every
/// node's k-hop ego network form a per-node vector; a database node can be
/// the image of a query-pattern role only if its signature *dominates* the
/// role's own signature (census counts are monotone under the embedding of
/// the query's ego network into the data node's ego network).
struct SignatureOptions {
  std::uint32_t k = 1;
  CensusAlgorithm algorithm = CensusAlgorithm::kNdPvot;
};

/// signatures[n][i] = count of patterns[i] within S(n, k).
[[nodiscard]] Result<std::vector<std::vector<std::uint64_t>>> BuildNodeSignatures(
    const Graph& graph, std::span<const Pattern> patterns,
    const SignatureOptions& options);

/// Materializes a (prepared) pattern's positive skeleton as a concrete
/// graph: one node per variable (labels from label constraints, default
/// otherwise), one edge per positive structural edge. Negative edges and
/// predicates are dropped — the result over-approximates the structure,
/// keeping signature filtering sound.
Graph PatternToGraph(const Pattern& pattern);

/// Signature of one role (pattern node) of a query pattern: the census
/// counts around that node within the query's own skeleton.
[[nodiscard]] Result<std::vector<std::uint64_t>> RoleSignature(
    const Pattern& query, int role, std::span<const Pattern> patterns,
    const SignatureOptions& options);

/// Candidate nodes for `role`: nodes whose signature dominates the role's
/// component-wise. A sound (never drops a true image) necessary filter.
std::vector<NodeId> FilterCandidatesBySignature(
    const std::vector<std::vector<std::uint64_t>>& signatures,
    const std::vector<std::uint64_t>& role_signature);

}  // namespace egocensus

#endif  // EGOCENSUS_APPS_SIGNATURES_H_
