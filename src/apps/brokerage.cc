#include "apps/brokerage.h"

#include "census/census.h"

namespace egocensus {
namespace {

PatternPredicate LabelPredicate(int a, int b, bool equal) {
  PatternPredicate pred;
  pred.lhs = NodeAttrRef{a, "LABEL"};
  pred.op = equal ? PredicateOp::kEq : PredicateOp::kNe;
  pred.rhs = NodeAttrRef{b, "LABEL"};
  return pred;
}

/// Builds the open-triad pattern A -> B -> C, no A -> C, with the label
/// relations of the given role, subpattern {B}.
[[nodiscard]] Result<Pattern> MakeRolePattern(BrokerageRole role) {
  Pattern p("triad-" + std::string(BrokerageRoleName(role)));
  p.AddEdge("A", "B", /*directed=*/true);
  p.AddEdge("B", "C", /*directed=*/true);
  p.AddEdge("A", "C", /*directed=*/true, /*negated=*/true);
  int a = p.FindNode("A");
  int b = p.FindNode("B");
  int c = p.FindNode("C");
  switch (role) {
    case BrokerageRole::kCoordinator:
      p.AddPredicate(LabelPredicate(a, b, true));
      p.AddPredicate(LabelPredicate(b, c, true));
      break;
    case BrokerageRole::kGatekeeper:
      p.AddPredicate(LabelPredicate(a, b, false));
      p.AddPredicate(LabelPredicate(b, c, true));
      break;
    case BrokerageRole::kRepresentative:
      p.AddPredicate(LabelPredicate(a, b, true));
      p.AddPredicate(LabelPredicate(b, c, false));
      break;
    case BrokerageRole::kConsultant:
      p.AddPredicate(LabelPredicate(a, c, true));
      p.AddPredicate(LabelPredicate(a, b, false));
      break;
    case BrokerageRole::kLiaison:
      p.AddPredicate(LabelPredicate(a, b, false));
      p.AddPredicate(LabelPredicate(b, c, false));
      p.AddPredicate(LabelPredicate(a, c, false));
      break;
  }
  Status s = p.AddSubpattern("broker", {"B"});
  if (!s.ok()) return s;
  s = p.Prepare();
  if (!s.ok()) return s;
  return p;
}

}  // namespace

const char* BrokerageRoleName(BrokerageRole role) {
  switch (role) {
    case BrokerageRole::kCoordinator:
      return "coordinator";
    case BrokerageRole::kGatekeeper:
      return "gatekeeper";
    case BrokerageRole::kRepresentative:
      return "representative";
    case BrokerageRole::kConsultant:
      return "consultant";
    case BrokerageRole::kLiaison:
      return "liaison";
  }
  return "?";
}

[[nodiscard]] Result<BrokerageResult> ComputeBrokerage(const Graph& graph,
                                         const CensusOptions& base_options) {
  if (!graph.directed()) {
    return Status::InvalidArgument(
        "brokerage analysis requires a directed graph");
  }
  BrokerageResult result;
  result.counts.assign(graph.NumNodes(), {});
  auto focal = AllNodes(graph);
  for (int r = 0; r < kNumBrokerageRoles; ++r) {
    auto role = static_cast<BrokerageRole>(r);
    auto pattern = MakeRolePattern(role);
    if (!pattern.ok()) return pattern.status();
    CensusOptions options = base_options;
    options.k = 0;
    options.subpattern = "broker";
    auto census = RunCensus(graph, *pattern, focal, options);
    if (!census.ok()) return census.status();
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      result.counts[n][r] = census->counts[n];
    }
  }
  return result;
}

}  // namespace egocensus
