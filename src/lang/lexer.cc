#include "lang/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace egocensus {

bool Token::IsKeyword(std::string_view kw) const {
  return type == Type::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

// Multi-character lexemes, longest first.
constexpr std::array<std::string_view, 8> kMultiPunct = {
    "!->", "!<-", "<=", ">=", "!=", "<>", "->", "<-"};

constexpr std::string_view kSinglePunct = "-=<>{}[](),;.*!+/%";

}  // namespace

[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '?') {
      ++i;
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      if (i == start) {
        return Status::ParseError("'?' must be followed by a variable name (offset " +
                                  std::to_string(tok.offset) + ")");
      }
      tok.type = Token::Type::kVariable;
      tok.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t start = i;
      // Identifiers may contain '-' (pattern names like clq3-unlb), but a
      // '-' followed by '?'/'>' is an edge operator, not part of the name.
      while (i < n && IsIdentChar(source[i])) {
        if (source[i] == '-') {
          char next = i + 1 < n ? source[i + 1] : '\0';
          if (!(std::isalnum(static_cast<unsigned char>(next)) ||
                next == '_')) {
            break;
          }
          // "--" comment start also terminates the identifier.
          if (next == '-') break;
        }
        ++i;
      }
      tok.type = Token::Type::kIdentifier;
      tok.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      std::string text(source.substr(start, i - start));
      if (is_double) {
        tok.type = Token::Type::kDouble;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = Token::Type::kInteger;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
        tok.double_value = static_cast<double>(tok.int_value);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::size_t start = i;
      while (i < n && source[i] != quote) ++i;
      if (i == n) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = Token::Type::kString;
      tok.text = std::string(source.substr(start, i - start));
      ++i;  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }
    // Punctuation: longest match first.
    bool matched = false;
    for (std::string_view mp : kMultiPunct) {
      if (source.substr(i, mp.size()) == mp) {
        tok.type = Token::Type::kPunct;
        tok.text = std::string(mp);
        i += mp.size();
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (kSinglePunct.find(c) != std::string_view::npos) {
      tok.type = Token::Type::kPunct;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = Token::Type::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace egocensus
