#ifndef EGOCENSUS_LANG_ENGINE_H_
#define EGOCENSUS_LANG_ENGINE_H_

#include <optional>
#include <string_view>
#include <vector>

#include "census/census.h"
#include "census/pairwise.h"
#include "graph/distance_index.h"
#include "graph/graph.h"
#include "graph/profile_index.h"
#include "lang/analyzer.h"
#include "lang/ast.h"
#include "lang/result_table.h"
#include "util/status.h"

namespace egocensus {

/// The expensive per-graph indexes a QueryEngine consults: the node profile
/// index (matcher candidate filtering) and the 24-degree-center distance
/// index (PT-OPT seeding/clustering). Building them costs O(V + C*(V+E));
/// a long-running service builds them once per resident graph and hands a
/// const pointer to every per-request engine, so concurrent requests share
/// the indexes without sharing any mutable engine state (the daemon's
/// re-entrancy model, docs/SERVER.md). Immutable after Build.
struct GraphIndexes {
  ProfileIndex profiles;
  CenterDistanceIndex centers;

  static GraphIndexes Build(const Graph& graph);
};

/// Executes pattern census queries against a graph: parse -> analyze ->
/// plan (algorithm selection) -> evaluate.
///
/// Planning: with `auto_algorithm` (default) single-node censuses use
/// PT-OPT when the pattern carries label constraints or predicates (the
/// selective case where pattern-driven wins in Fig. 4(d)) and ND-PVOT
/// otherwise (the non-selective case of Fig. 4(c)); pairwise censuses
/// always use the pattern-driven evaluator. Setting auto_algorithm=false
/// uses census_options.algorithm verbatim.
///
/// Pairwise result contract: rows are emitted only for ordered pairs
/// (n1, n2), n1 != n2, with a nonzero count for at least one aggregate that
/// satisfy the WHERE clause; zero-count pairs and the diagonal are omitted
/// (the cross product is quadratic, and censuses are consumed top-K).
class QueryEngine {
 public:
  explicit QueryEngine(const Graph& graph) : graph_(graph) {}

  /// Engine borrowing pre-built shared indexes instead of lazily building
  /// its own. `shared` (and `graph`) must outlive the engine and must have
  /// been built over this exact graph. One engine still serves one request
  /// at a time (Execute mutates last_stats_/last_exec_); re-entrancy comes
  /// from constructing one cheap engine per request over the same shared
  /// indexes.
  QueryEngine(const Graph& graph, const GraphIndexes* shared)
      : graph_(graph), shared_indexes_(shared) {}

  /// Registers a library pattern usable by name in queries (inline PATTERN
  /// blocks shadow registered ones). The pattern must be prepared.
  void RegisterPattern(Pattern pattern) {
    registered_.push_back(std::move(pattern));
  }

  struct Options {
    CensusOptions census;
    PairwiseCensusOptions pairwise;
    bool auto_algorithm = true;
    /// Seed for WHERE RND() draws (deterministic per node scan order).
    std::uint64_t rnd_seed = 99;
  };

  /// Execution outcome of one census aggregate of the last single-table
  /// query: its exec status plus the per-focal completion tally. A governed
  /// query that hits its deadline/budget still produces a table; this is
  /// where callers learn it is partial and how partial.
  struct AggregateExec {
    Status status;  // OK, or kDeadlineExceeded/kResourceExhausted/kCancelled
    std::uint64_t complete = 0;  // focal nodes with exact counts
    std::uint64_t approx = 0;    // focal nodes with degraded estimates
    std::uint64_t pending = 0;   // focal nodes with lower-bound counts
    bool interrupted() const { return !status.ok(); }
  };

  [[nodiscard]] Result<ResultTable> Execute(std::string_view query_text,
                              const Options& options);
  [[nodiscard]] Result<ResultTable> Execute(std::string_view query_text) {
    return Execute(query_text, Options());
  }
  [[nodiscard]] Result<ResultTable> ExecuteParsed(const Query& query,
                                    const Options& options);
  [[nodiscard]] Result<ResultTable> ExecuteParsed(const Query& query) {
    return ExecuteParsed(query, Options());
  }

  /// Census statistics of the aggregates of the last single-table query, in
  /// SELECT order.
  const std::vector<CensusStats>& last_stats() const { return last_stats_; }

  /// Execution outcomes of the aggregates of the last single-table query,
  /// in SELECT order (empty for pairwise queries, which are ungoverned).
  const std::vector<AggregateExec>& last_exec() const { return last_exec_; }

  /// First non-OK aggregate exec status of the last query, or OK. The CLI
  /// exits non-zero on this even though Execute returned a (partial) table.
  [[nodiscard]] Status last_exec_status() const {
    for (const AggregateExec& exec : last_exec_) {
      if (!exec.status.ok()) return exec.status;
    }
    return Status::Ok();
  }

 private:
  [[nodiscard]] Result<ResultTable> ExecuteSingle(const AnalyzedQuery& analyzed,
                                    const Options& options);
  [[nodiscard]] Result<ResultTable> ExecutePairwise(const AnalyzedQuery& analyzed,
                                      const Options& options);

  /// Lazily built per-graph indexes, shared across queries on this engine:
  /// the node profile index (matcher candidate filtering) and a
  /// 24-degree-center distance index (PT-OPT seeding/clustering).
  const ProfileIndex& CachedProfiles();
  const CenterDistanceIndex& CachedCenters();

  const Graph& graph_;
  const GraphIndexes* shared_indexes_ = nullptr;
  std::vector<Pattern> registered_;
  std::vector<CensusStats> last_stats_;
  std::vector<AggregateExec> last_exec_;
  std::optional<ProfileIndex> profiles_cache_;
  std::optional<CenterDistanceIndex> centers_cache_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_ENGINE_H_
