#ifndef EGOCENSUS_LANG_MAINTAIN_H_
#define EGOCENSUS_LANG_MAINTAIN_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_census.h"
#include "lang/result_table.h"
#include "util/status.h"

namespace egocensus {

/// MAINTAIN execution mode of the query planner: instead of evaluating a
/// census query once against a static graph, a MaintainSession compiles it
/// into an IncrementalCensus over a DynamicGraph and keeps the result
/// up to date under an update stream.
///
/// Supported queries: single-table SELECT with exactly one COUNTP/COUNTSP
/// aggregate over SUBGRAPH(ID, k). The WHERE clause fixes the focal node
/// set at session creation (as in the static engine, including RND()
/// draws); nodes added later are not focal. The graph must be mutated only
/// through ApplyBatch once the session exists.
class MaintainSession {
 public:
  struct Options {
    /// k and subpattern are taken from the query; the compaction knobs of
    /// the maintainer are configured here.
    bool auto_compact = true;
    double compact_threshold = 0.25;
    /// Seed for WHERE RND() draws (deterministic per node scan order).
    std::uint64_t rnd_seed = 99;
    /// Optional resource governor, forwarded to the IncrementalCensus (one
    /// checkpoint per update; a stop aborts the batch between updates and
    /// keeps the applied prefix). Null = ungoverned.
    Governor* governor = nullptr;
  };

  /// Parses, analyzes, and plans `query_text`, runs the initial census,
  /// and returns a live session. `registered` supplies library patterns
  /// usable by name (inline PATTERN blocks shadow them). `graph` must
  /// outlive the session.
  [[nodiscard]] static Result<MaintainSession> Create(DynamicGraph* graph,
                                        std::string_view query_text,
                                        const Options& options,
                                        std::span<const Pattern> registered);
  [[nodiscard]] static Result<MaintainSession> Create(DynamicGraph* graph,
                                        std::string_view query_text,
                                        const Options& options) {
    return Create(graph, query_text, options, {});
  }
  [[nodiscard]] static Result<MaintainSession> Create(DynamicGraph* graph,
                                        std::string_view query_text) {
    return Create(graph, query_text, Options(), {});
  }

  /// Applies the updates and returns the count changes as a table with
  /// columns ID | OLD | NEW | DELTA (one row per focal node whose count
  /// changed, ascending by id).
  [[nodiscard]] Result<ResultTable> ApplyBatch(std::span<const GraphUpdate> updates);

  /// Current maintained result: ID | <aggregate> rows for every focal
  /// node, ascending by id.
  ResultTable CountsTable() const;

  /// Subscribes to the aggregated count deltas of every applied batch.
  void AddListener(IncrementalCensus::Listener listener) {
    census_.AddListener(std::move(listener));
  }

  /// Stats of the last ApplyBatch.
  const MaintenanceStats& last_stats() const { return last_stats_; }
  const IncrementalCensus& census() const { return census_; }

 private:
  MaintainSession(DynamicGraph* graph, IncrementalCensus census,
                  std::string count_name)
      : graph_(graph), census_(std::move(census)),
        count_name_(std::move(count_name)) {}

  DynamicGraph* graph_ = nullptr;
  IncrementalCensus census_;
  std::string count_name_;
  MaintenanceStats last_stats_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_MAINTAIN_H_
