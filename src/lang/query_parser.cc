#include "lang/query_parser.h"

#include <optional>

#include "lang/lexer.h"
#include "pattern/pattern_parser.h"
#include "util/strings.h"

namespace egocensus {
namespace {

class QueryParser {
 public:
  explicit QueryParser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  [[nodiscard]] Result<Query> Parse() {
    Query query;
    while (tokens_[pos_].IsKeyword("PATTERN")) {
      auto pattern = ParsePatternAt(tokens_, &pos_);
      if (!pattern.ok()) return pattern.status();
      query.patterns.push_back(std::move(pattern).value());
    }
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
    for (;;) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      query.select.push_back(std::move(item).value());
      if (!ConsumePunct(",")) break;
    }
    if (!ConsumeKeyword("FROM")) return Error("expected FROM");
    for (;;) {
      if (!ConsumeKeyword("nodes")) return Error("expected 'nodes' in FROM");
      std::string alias;
      if (ConsumeKeyword("AS")) {
        if (Peek().type != Token::Type::kIdentifier) {
          return Error("expected alias after AS");
        }
        alias = Next().text;
      }
      query.from_aliases.push_back(alias);
      if (!ConsumePunct(",")) break;
    }
    if (query.from_aliases.size() > 2) {
      return Error("at most two FROM tables are supported");
    }
    if (ConsumeKeyword("WHERE")) {
      auto where = ParseOr();
      if (!where.ok()) return where.status();
      query.where = std::move(where).value();
    }
    if (ConsumeKeyword("ORDER")) {
      if (!ConsumeKeyword("BY")) return Error("expected BY after ORDER");
      for (;;) {
        if (Peek().type != Token::Type::kInteger || Peek().int_value < 1) {
          return Error("ORDER BY expects a 1-based column index");
        }
        OrderBy order;
        order.column = static_cast<std::size_t>(Next().int_value);
        if (ConsumeKeyword("DESC")) {
          order.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        query.order_by.push_back(order);
        if (!ConsumePunct(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != Token::Type::kInteger || Peek().int_value < 0) {
        return Error("LIMIT expects a non-negative integer");
      }
      query.limit = static_cast<std::size_t>(Next().int_value);
    }
    ConsumePunct(";");
    if (Peek().type != Token::Type::kEnd) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumePunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }
  [[nodiscard]] Status Expect(std::string_view p) {
    if (!ConsumePunct(p)) return Error("expected '" + std::string(p) + "'");
    return Status::Ok();
  }

  /// Parses `ID` or `alias.ID`; returns the alias ("" for bare ID).
  [[nodiscard]] Result<std::string> ParseNodeRef() {
    if (Peek().IsKeyword("ID")) {
      Next();
      return std::string();
    }
    if (Peek().type != Token::Type::kIdentifier) {
      return Error("expected ID or alias.ID");
    }
    std::string alias = Next().text;
    Status s = Expect(".");
    if (!s.ok()) return s;
    if (!ConsumeKeyword("ID")) return Error("expected ID after alias.");
    return alias;
  }

  [[nodiscard]] Result<NeighborhoodSpec> ParseNeighborhood() {
    NeighborhoodSpec spec;
    if (ConsumeKeyword("SUBGRAPH")) {
      spec.kind = NeighborhoodSpec::Kind::kSubgraph;
    } else if (ConsumeKeyword("SUBGRAPH-INTERSECTION")) {
      spec.kind = NeighborhoodSpec::Kind::kIntersection;
    } else if (ConsumeKeyword("SUBGRAPH-UNION")) {
      spec.kind = NeighborhoodSpec::Kind::kUnion;
    } else {
      return Error("expected a SUBGRAPH function");
    }
    Status s = Expect("(");
    if (!s.ok()) return s;
    auto ref1 = ParseNodeRef();
    if (!ref1.ok()) return ref1.status();
    spec.ref1 = std::move(ref1).value();
    s = Expect(",");
    if (!s.ok()) return s;
    if (spec.kind != NeighborhoodSpec::Kind::kSubgraph) {
      auto ref2 = ParseNodeRef();
      if (!ref2.ok()) return ref2.status();
      spec.ref2 = std::move(ref2).value();
      s = Expect(",");
      if (!s.ok()) return s;
    }
    if (Peek().type != Token::Type::kInteger || Peek().int_value < 0) {
      return Error("expected non-negative radius k");
    }
    spec.k = static_cast<std::uint32_t>(Next().int_value);
    s = Expect(")");
    if (!s.ok()) return s;
    return spec;
  }

  [[nodiscard]] Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().IsKeyword("COUNTP") || Peek().IsKeyword("COUNTSP")) {
      bool subpattern = Peek().IsKeyword("COUNTSP");
      Next();
      item.kind = SelectItem::Kind::kCount;
      item.count.count_subpattern = subpattern;
      Status s = Expect("(");
      if (!s.ok()) return s;
      if (subpattern) {
        if (Peek().type != Token::Type::kIdentifier) {
          return Error("expected subpattern name");
        }
        item.count.subpattern = Next().text;
        s = Expect(",");
        if (!s.ok()) return s;
      }
      if (Peek().type != Token::Type::kIdentifier) {
        return Error("expected pattern name");
      }
      item.count.pattern = Next().text;
      s = Expect(",");
      if (!s.ok()) return s;
      auto spec = ParseNeighborhood();
      if (!spec.ok()) return spec.status();
      item.count.neighborhood = std::move(spec).value();
      s = Expect(")");
      if (!s.ok()) return s;
      return item;
    }
    auto ref = ParseNodeRef();
    if (!ref.ok()) return ref.status();
    item.kind = SelectItem::Kind::kId;
    item.alias = std::move(ref).value();
    return item;
  }

  // ---- WHERE expression, precedence OR < AND < NOT < comparison ----

  [[nodiscard]] Result<WhereExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left.status();
    WhereExprPtr node = std::move(left).value();
    while (ConsumeKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right.status();
      auto parent = std::make_unique<WhereExpr>();
      parent->kind = WhereExpr::Kind::kOr;
      parent->left = std::move(node);
      parent->right = std::move(right).value();
      node = std::move(parent);
    }
    return node;
  }

  [[nodiscard]] Result<WhereExprPtr> ParseAnd() {
    auto left = ParseUnary();
    if (!left.ok()) return left.status();
    WhereExprPtr node = std::move(left).value();
    while (ConsumeKeyword("AND")) {
      auto right = ParseUnary();
      if (!right.ok()) return right.status();
      auto parent = std::make_unique<WhereExpr>();
      parent->kind = WhereExpr::Kind::kAnd;
      parent->left = std::move(node);
      parent->right = std::move(right).value();
      node = std::move(parent);
    }
    return node;
  }

  [[nodiscard]] Result<WhereExprPtr> ParseUnary() {
    if (ConsumeKeyword("NOT")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      auto node = std::make_unique<WhereExpr>();
      node->kind = WhereExpr::Kind::kNot;
      node->left = std::move(inner).value();
      return node;
    }
    if (ConsumePunct("(")) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner.status();
      Status s = Expect(")");
      if (!s.ok()) return s;
      return inner;
    }
    return ParseComparison();
  }

  [[nodiscard]] Result<WhereExprPtr> ParseComparison() {
    auto lhs = ParseWhereOperand();
    if (!lhs.ok()) return lhs.status();
    std::optional<PredicateOp> op = ParseComparisonOp();
    if (!op.has_value()) return Error("expected comparison operator");
    auto rhs = ParseWhereOperand();
    if (!rhs.ok()) return rhs.status();
    auto node = std::make_unique<WhereExpr>();
    node->kind = WhereExpr::Kind::kCompare;
    node->lhs = std::move(lhs).value();
    node->op = *op;
    node->rhs = std::move(rhs).value();
    return node;
  }

  std::optional<PredicateOp> ParseComparisonOp() {
    const Token& tok = Peek();
    if (tok.type != Token::Type::kPunct) return std::nullopt;
    PredicateOp op;
    if (tok.text == "=") {
      op = PredicateOp::kEq;
    } else if (tok.text == "!=" || tok.text == "<>") {
      op = PredicateOp::kNe;
    } else if (tok.text == "<") {
      op = PredicateOp::kLt;
    } else if (tok.text == "<=") {
      op = PredicateOp::kLe;
    } else if (tok.text == ">") {
      op = PredicateOp::kGt;
    } else if (tok.text == ">=") {
      op = PredicateOp::kGe;
    } else {
      return std::nullopt;
    }
    ++pos_;
    return op;
  }

  [[nodiscard]] Result<WhereOperand> ParseWhereOperand() {
    WhereOperand operand;
    const Token& tok = Peek();
    if (tok.IsKeyword("RND")) {
      Next();
      Status s = Expect("(");
      if (!s.ok()) return s;
      s = Expect(")");
      if (!s.ok()) return s;
      operand.kind = WhereOperand::Kind::kRand;
      return operand;
    }
    if (tok.type == Token::Type::kIdentifier) {
      std::string first = Next().text;
      operand.kind = WhereOperand::Kind::kAttr;
      if (ConsumePunct(".")) {
        if (Peek().type != Token::Type::kIdentifier) {
          return Error("expected attribute after '.'");
        }
        operand.alias = first;
        operand.attr = ToUpper(Next().text);
      } else {
        operand.attr = ToUpper(first);
      }
      return operand;
    }
    bool negative = ConsumePunct("-");
    if (Peek().type == Token::Type::kInteger) {
      std::int64_t v = Next().int_value;
      operand.kind = WhereOperand::Kind::kConst;
      operand.value = negative ? -v : v;
      return operand;
    }
    if (Peek().type == Token::Type::kDouble) {
      double v = Next().double_value;
      operand.kind = WhereOperand::Kind::kConst;
      operand.value = negative ? -v : v;
      return operand;
    }
    if (Peek().type == Token::Type::kString && !negative) {
      operand.kind = WhereOperand::Kind::kConst;
      operand.value = Next().text;
      return operand;
    }
    return Error("expected WHERE operand");
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

[[nodiscard]] Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  QueryParser parser(*tokens);
  return parser.Parse();
}

}  // namespace egocensus
