#ifndef EGOCENSUS_LANG_ANALYZER_H_
#define EGOCENSUS_LANG_ANALYZER_H_

#include <span>
#include <vector>

#include "lang/ast.h"
#include "pattern/shape.h"
#include "util/status.h"

namespace egocensus {

/// Semantically validated query, with pattern names resolved against the
/// query's inline patterns and any externally registered patterns.
struct AnalyzedQuery {
  const Query* query = nullptr;
  bool pairwise = false;  // two FROM tables

  struct CountItem {
    std::size_t select_index = 0;  // position in query->select
    const Pattern* pattern = nullptr;
    const CountSpec* spec = nullptr;
    /// Combinatorial classification of the pattern (docs/FAST_PATH.md).
    /// Lets the execution layer anticipate fast-path routing — e.g. skip
    /// building PT center indexes an eligible aggregate will never use.
    PatternShape shape;
  };
  std::vector<CountItem> counts;
};

/// Validates the query:
///  - every alias referenced exists in FROM;
///  - single-table queries use only SUBGRAPH neighborhoods; two-table
///    queries use only SUBGRAPH-INTERSECTION/UNION referencing both aliases;
///  - pattern names resolve (inline patterns shadow registered ones);
///  - COUNTSP subpatterns exist in their patterns.
[[nodiscard]] Result<AnalyzedQuery> AnalyzeQuery(const Query& query,
                                   std::span<const Pattern> registered);

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_ANALYZER_H_
