#include "lang/analyzer.h"

#include <algorithm>

namespace egocensus {
namespace {

bool AliasKnown(const Query& query, const std::string& alias) {
  if (alias.empty()) return query.from_aliases.size() == 1;
  return std::find(query.from_aliases.begin(), query.from_aliases.end(),
                   alias) != query.from_aliases.end();
}

const Pattern* ResolvePattern(const Query& query,
                              std::span<const Pattern> registered,
                              const std::string& name) {
  for (const auto& p : query.patterns) {
    if (p.name() == name) return &p;
  }
  for (const auto& p : registered) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

[[nodiscard]] Status ValidateWhere(const Query& query, const WhereExpr* expr) {
  if (expr == nullptr) return Status::Ok();
  switch (expr->kind) {
    case WhereExpr::Kind::kAnd:
    case WhereExpr::Kind::kOr: {
      Status s = ValidateWhere(query, expr->left.get());
      if (!s.ok()) return s;
      return ValidateWhere(query, expr->right.get());
    }
    case WhereExpr::Kind::kNot:
      return ValidateWhere(query, expr->left.get());
    case WhereExpr::Kind::kCompare: {
      for (const WhereOperand* op : {&expr->lhs, &expr->rhs}) {
        if (op->kind == WhereOperand::Kind::kAttr &&
            !AliasKnown(query, op->alias)) {
          return Status::InvalidArgument("unknown table alias '" + op->alias +
                                         "' in WHERE");
        }
      }
      return Status::Ok();
    }
  }
  return Status::Internal("bad WHERE node");
}

}  // namespace

[[nodiscard]] Result<AnalyzedQuery> AnalyzeQuery(const Query& query,
                                   std::span<const Pattern> registered) {
  AnalyzedQuery analyzed;
  analyzed.query = &query;
  if (query.from_aliases.empty()) {
    return Status::InvalidArgument("query has no FROM table");
  }
  analyzed.pairwise = query.from_aliases.size() == 2;
  if (analyzed.pairwise &&
      (query.from_aliases[0].empty() || query.from_aliases[1].empty() ||
       query.from_aliases[0] == query.from_aliases[1])) {
    return Status::InvalidArgument(
        "two-table queries need two distinct aliases (FROM nodes AS n1, "
        "nodes AS n2)");
  }

  for (std::size_t i = 0; i < query.select.size(); ++i) {
    const SelectItem& item = query.select[i];
    if (item.kind == SelectItem::Kind::kId) {
      if (!AliasKnown(query, item.alias)) {
        return Status::InvalidArgument("unknown alias '" + item.alias +
                                       "' in SELECT");
      }
      continue;
    }
    const CountSpec& spec = item.count;
    const Pattern* pattern = ResolvePattern(query, registered, spec.pattern);
    if (pattern == nullptr) {
      return Status::NotFound("unknown pattern '" + spec.pattern + "'");
    }
    if (spec.count_subpattern &&
        pattern->FindSubpattern(spec.subpattern) == nullptr) {
      return Status::NotFound("pattern '" + spec.pattern +
                              "' has no subpattern '" + spec.subpattern + "'");
    }
    const NeighborhoodSpec& n = spec.neighborhood;
    if (analyzed.pairwise) {
      if (n.kind == NeighborhoodSpec::Kind::kSubgraph) {
        return Status::InvalidArgument(
            "two-table queries require SUBGRAPH-INTERSECTION or "
            "SUBGRAPH-UNION");
      }
      bool covers_both =
          (n.ref1 == query.from_aliases[0] && n.ref2 == query.from_aliases[1]) ||
          (n.ref1 == query.from_aliases[1] && n.ref2 == query.from_aliases[0]);
      if (!covers_both) {
        return Status::InvalidArgument(
            "pairwise neighborhood must reference both table aliases");
      }
    } else {
      if (n.kind != NeighborhoodSpec::Kind::kSubgraph) {
        return Status::InvalidArgument(
            "single-table queries support only SUBGRAPH neighborhoods");
      }
      if (!AliasKnown(query, n.ref1)) {
        return Status::InvalidArgument("unknown alias '" + n.ref1 +
                                       "' in SUBGRAPH");
      }
    }
    analyzed.counts.push_back({i, pattern, &spec, AnalyzeShape(*pattern)});
  }
  Status s = ValidateWhere(query, query.where.get());
  if (!s.ok()) return s;
  for (const auto& order : query.order_by) {
    if (order.column < 1 || order.column > query.select.size()) {
      return Status::InvalidArgument("ORDER BY column " +
                                     std::to_string(order.column) +
                                     " out of range");
    }
  }
  return analyzed;
}

}  // namespace egocensus
