#include "lang/maintain.h"

#include <utility>

#include "lang/analyzer.h"
#include "lang/query_parser.h"
#include "lang/where_eval.h"
#include "util/rng.h"

namespace egocensus {
namespace {

std::string CountColumnName(const CountSpec& spec) {
  std::string name =
      spec.count_subpattern
          ? "COUNTSP(" + spec.subpattern + "," + spec.pattern
          : "COUNTP(" + spec.pattern;
  name += "," + std::to_string(spec.neighborhood.k) + ")";
  return name;
}

}  // namespace

Result<MaintainSession> MaintainSession::Create(
    DynamicGraph* graph, std::string_view query_text, const Options& options,
    std::span<const Pattern> registered) {
  if (graph == nullptr) {
    return Status::InvalidArgument("MaintainSession: graph is null");
  }
  auto query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  auto analyzed = AnalyzeQuery(*query, registered);
  if (!analyzed.ok()) return analyzed.status();
  if (analyzed->pairwise) {
    return Status::Unimplemented(
        "MAINTAIN mode supports single-table queries only");
  }
  if (analyzed->counts.size() != 1) {
    return Status::Unimplemented(
        "MAINTAIN mode requires exactly one COUNT aggregate (got " +
        std::to_string(analyzed->counts.size()) + ")");
  }
  const AnalyzedQuery::CountItem& item = analyzed->counts.front();

  // Fix the focal set now, against the current dynamic topology and
  // attributes (mirrors the static engine's focal scan).
  Rng rng(options.rnd_seed);
  RowBinding binding;
  binding.aliases = &query->from_aliases;
  std::vector<NodeId> focal;
  for (NodeId n = 0; n < graph->NumNodes(); ++n) {
    if (graph->NodeRemoved(n)) continue;
    binding.n1 = n;
    if (EvalWhere(*graph, query->where.get(), binding, &rng)) {
      focal.push_back(n);
    }
  }

  IncrementalCensus::Options census_options;
  census_options.k = item.spec->neighborhood.k;
  census_options.subpattern =
      item.spec->count_subpattern ? item.spec->subpattern : "";
  census_options.auto_compact = options.auto_compact;
  census_options.compact_threshold = options.compact_threshold;
  census_options.governor = options.governor;
  auto census = IncrementalCensus::Create(graph, *item.pattern,
                                          census_options, std::move(focal));
  if (!census.ok()) return census.status();
  return MaintainSession(graph, std::move(census).value(),
                         CountColumnName(*item.spec));
}

Result<ResultTable> MaintainSession::ApplyBatch(
    std::span<const GraphUpdate> updates) {
  std::vector<CountDelta> deltas;
  auto stats = census_.ApplyBatch(updates, &deltas);
  if (!stats.ok()) return stats.status();
  last_stats_ = stats.value();

  ResultTable table({"ID", "OLD", "NEW", "DELTA"});
  for (const CountDelta& delta : deltas) {
    table.AddRow({AttributeValue(static_cast<std::int64_t>(delta.node)),
                  AttributeValue(static_cast<std::int64_t>(delta.new_count) -
                                 delta.delta),
                  AttributeValue(static_cast<std::int64_t>(delta.new_count)),
                  AttributeValue(delta.delta)});
  }
  return table;
}

ResultTable MaintainSession::CountsTable() const {
  ResultTable table({"ID", count_name_});
  const std::vector<std::uint64_t>& counts = census_.counts();
  for (NodeId n = 0; n < counts.size(); ++n) {
    if (!census_.IsFocal(n)) continue;
    table.AddRow({AttributeValue(static_cast<std::int64_t>(n)),
                  AttributeValue(static_cast<std::int64_t>(counts[n]))});
  }
  return table;
}

}  // namespace egocensus
