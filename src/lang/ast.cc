#include "lang/ast.h"

namespace egocensus {

const char* NeighborhoodKindName(NeighborhoodSpec::Kind kind) {
  switch (kind) {
    case NeighborhoodSpec::Kind::kSubgraph:
      return "SUBGRAPH";
    case NeighborhoodSpec::Kind::kIntersection:
      return "SUBGRAPH-INTERSECTION";
    case NeighborhoodSpec::Kind::kUnion:
      return "SUBGRAPH-UNION";
  }
  return "?";
}

}  // namespace egocensus
