#ifndef EGOCENSUS_LANG_QUERY_PARSER_H_
#define EGOCENSUS_LANG_QUERY_PARSER_H_

#include <string_view>

#include "lang/ast.h"
#include "util/status.h"

namespace egocensus {

/// Parses a full pattern census query: zero or more PATTERN blocks followed
/// by one SELECT statement, e.g.
///
///   PATTERN square { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }
///   SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes
///
///   SELECT n1.ID, n2.ID,
///          COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
///   FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID
///
/// Supported WHERE syntax: comparisons between node attribute references
/// (alias.ATTR or bare ATTR), constants and RND() (a per-evaluation uniform
/// draw in [0,1), the paper's focal-node selectivity construct), combined
/// with AND / OR / NOT and parentheses.
[[nodiscard]] Result<Query> ParseQuery(std::string_view text);

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_QUERY_PARSER_H_
