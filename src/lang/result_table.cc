#include "lang/result_table.h"

#include <algorithm>
#include <sstream>

#include "util/table_printer.h"

namespace egocensus {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<AttributeValue> row) {
  row.resize(columns_.size(), std::int64_t{0});
  rows_.push_back(std::move(row));
}

namespace {

double NumericValue(const AttributeValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return 0.0;
}

}  // namespace

void ResultTable::SortByColumnDesc(std::size_t col) {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [col](const auto& a, const auto& b) {
                     return NumericValue(a[col]) > NumericValue(b[col]);
                   });
}

void ResultTable::SortByColumns(
    const std::vector<std::pair<std::size_t, bool>>& keys) {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&keys](const auto& a, const auto& b) {
                     for (const auto& [col, descending] : keys) {
                       auto cmp = CompareAttributeValues(a[col], b[col]);
                       if (!cmp.has_value() || *cmp == 0) continue;
                       return descending ? *cmp > 0 : *cmp < 0;
                     }
                     return false;
                   });
}

void ResultTable::Truncate(std::size_t n) {
  if (rows_.size() > n) rows_.resize(n);
}

std::string ResultTable::ToString(std::size_t max_rows) const {
  TablePrinter printer(columns_);
  for (std::size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& v : rows_[r]) cells.push_back(AttributeValueToString(v));
    printer.AddRow(std::move(cells));
  }
  std::ostringstream os;
  printer.PrintText(os);
  if (rows_.size() > max_rows) {
    os << "... (" << rows_.size() - max_rows << " more rows)\n";
  }
  return os.str();
}

void ResultTable::WriteCsv(std::ostream& os) const {
  TablePrinter printer(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& v : row) cells.push_back(AttributeValueToString(v));
    printer.AddRow(std::move(cells));
  }
  printer.PrintCsv(os);
}

}  // namespace egocensus
