#ifndef EGOCENSUS_LANG_WHERE_EVAL_H_
#define EGOCENSUS_LANG_WHERE_EVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/attributes.h"
#include "graph/types.h"
#include "lang/ast.h"
#include "util/rng.h"

namespace egocensus {

/// Binding of table aliases to concrete nodes for WHERE evaluation.
struct RowBinding {
  const std::vector<std::string>* aliases = nullptr;
  NodeId n1 = kInvalidNode;
  NodeId n2 = kInvalidNode;

  std::optional<NodeId> Resolve(const std::string& alias) const {
    if (alias.empty() || alias == (*aliases)[0]) return n1;
    if (aliases->size() > 1 && alias == (*aliases)[1]) return n2;
    return std::nullopt;
  }
};

/// WHERE evaluation is a template over the graph type so the same
/// implementation serves the static QueryEngine (Graph) and the MAINTAIN
/// mode (DynamicGraph); `GraphT` must expose GetNodeAttribute(n, name).
template <typename GraphT>
std::optional<AttributeValue> WhereOperandValue(const GraphT& graph,
                                                const WhereOperand& operand,
                                                const RowBinding& binding,
                                                Rng* rng) {
  switch (operand.kind) {
    case WhereOperand::Kind::kConst:
      return operand.value;
    case WhereOperand::Kind::kRand:
      return AttributeValue(rng->NextDouble());
    case WhereOperand::Kind::kAttr: {
      auto node = binding.Resolve(operand.alias);
      if (!node.has_value()) return std::nullopt;
      return graph.GetNodeAttribute(*node, operand.attr);
    }
  }
  return std::nullopt;
}

template <typename GraphT>
bool EvalWhere(const GraphT& graph, const WhereExpr* expr,
               const RowBinding& binding, Rng* rng) {
  if (expr == nullptr) return true;
  switch (expr->kind) {
    case WhereExpr::Kind::kAnd:
      return EvalWhere(graph, expr->left.get(), binding, rng) &&
             EvalWhere(graph, expr->right.get(), binding, rng);
    case WhereExpr::Kind::kOr:
      return EvalWhere(graph, expr->left.get(), binding, rng) ||
             EvalWhere(graph, expr->right.get(), binding, rng);
    case WhereExpr::Kind::kNot:
      return !EvalWhere(graph, expr->left.get(), binding, rng);
    case WhereExpr::Kind::kCompare: {
      auto lhs = WhereOperandValue(graph, expr->lhs, binding, rng);
      auto rhs = WhereOperandValue(graph, expr->rhs, binding, rng);
      if (!lhs.has_value() || !rhs.has_value()) return false;
      auto cmp = CompareAttributeValues(*lhs, *rhs);
      if (!cmp.has_value()) return false;
      switch (expr->op) {
        case PredicateOp::kEq:
          return *cmp == 0;
        case PredicateOp::kNe:
          return *cmp != 0;
        case PredicateOp::kLt:
          return *cmp < 0;
        case PredicateOp::kLe:
          return *cmp <= 0;
        case PredicateOp::kGt:
          return *cmp > 0;
        case PredicateOp::kGe:
          return *cmp >= 0;
      }
      return false;
    }
  }
  return false;
}

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_WHERE_EVAL_H_
