#include "lang/engine.h"

#include <algorithm>
#include <optional>

#include "lang/query_parser.h"
#include "lang/where_eval.h"
#include "util/rng.h"

namespace egocensus {
namespace {

/// Selective patterns (label constraints or predicates) favor the
/// pattern-driven evaluator; non-selective patterns favor ND-PVOT.
bool PatternIsSelective(const Pattern& pattern) {
  for (int v = 0; v < pattern.NumNodes(); ++v) {
    if (pattern.LabelConstraint(v).has_value()) return true;
  }
  return !pattern.Predicates().empty();
}

std::vector<std::string> ColumnNames(const Query& query) {
  std::vector<std::string> names;
  for (const auto& item : query.select) {
    if (item.kind == SelectItem::Kind::kId) {
      names.push_back(item.alias.empty() ? "ID" : item.alias + ".ID");
    } else {
      std::string name =
          item.count.count_subpattern
              ? "COUNTSP(" + item.count.subpattern + "," + item.count.pattern
              : "COUNTP(" + item.count.pattern;
      name += "," + std::to_string(item.count.neighborhood.k) + ")";
      names.push_back(std::move(name));
    }
  }
  return names;
}

}  // namespace

Result<ResultTable> QueryEngine::Execute(std::string_view query_text,
                                         const Options& options) {
  auto query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return ExecuteParsed(*query, options);
}

GraphIndexes GraphIndexes::Build(const Graph& graph) {
  GraphIndexes indexes;
  indexes.profiles = ProfileIndex::Build(graph);
  indexes.centers = CenterDistanceIndex::Build(
      graph, PickHighestDegreeCenters(graph, 24));
  return indexes;
}

const ProfileIndex& QueryEngine::CachedProfiles() {
  if (shared_indexes_ != nullptr) return shared_indexes_->profiles;
  if (!profiles_cache_.has_value()) {
    profiles_cache_ = ProfileIndex::Build(graph_);
  }
  return *profiles_cache_;
}

const CenterDistanceIndex& QueryEngine::CachedCenters() {
  if (shared_indexes_ != nullptr) return shared_indexes_->centers;
  if (!centers_cache_.has_value()) {
    centers_cache_ = CenterDistanceIndex::Build(
        graph_, PickHighestDegreeCenters(graph_, 24));
  }
  return *centers_cache_;
}

Result<ResultTable> QueryEngine::ExecuteParsed(const Query& query,
                                               const Options& options) {
  auto analyzed = AnalyzeQuery(query, registered_);
  if (!analyzed.ok()) return analyzed.status();
  last_stats_.clear();
  last_exec_.clear();
  auto table = analyzed->pairwise ? ExecutePairwise(*analyzed, options)
                                  : ExecuteSingle(*analyzed, options);
  if (!table.ok()) return table;
  if (!query.order_by.empty()) {
    std::vector<std::pair<std::size_t, bool>> keys;
    for (const auto& order : query.order_by) {
      keys.emplace_back(order.column - 1, order.descending);
    }
    table->SortByColumns(keys);
  }
  if (query.limit.has_value()) table->Truncate(*query.limit);
  return table;
}

Result<ResultTable> QueryEngine::ExecuteSingle(const AnalyzedQuery& analyzed,
                                               const Options& options) {
  const Query& query = *analyzed.query;

  // Focal node selection.
  Rng rng(options.rnd_seed);
  RowBinding binding;
  binding.aliases = &query.from_aliases;
  std::vector<NodeId> focal;
  for (NodeId n = 0; n < graph_.NumNodes(); ++n) {
    binding.n1 = n;
    if (EvalWhere(graph_, query.where.get(), binding, &rng)) {
      focal.push_back(n);
    }
  }

  // Run each census aggregate.
  std::vector<std::vector<std::uint64_t>> count_columns;
  std::vector<std::vector<FocalState>> state_columns;
  for (const auto& item : analyzed.counts) {
    CensusOptions census = options.census;
    census.k = item.spec->neighborhood.k;
    census.subpattern =
        item.spec->count_subpattern ? item.spec->subpattern : "";
    if (options.auto_algorithm) {
      census.algorithm = PatternIsSelective(*item.pattern)
                             ? CensusAlgorithm::kPtOpt
                             : CensusAlgorithm::kNdPvot;
    }
    // An aggregate bound for the combinatorial fast path never touches the
    // PT center index, so don't pay its first-query build for one. The
    // pattern/option checks here mirror DecideFastPath; the graph-level
    // parallel-edge check is deliberately omitted (a multigraph falls back
    // to the generic engine, which then builds its own index inline).
    const bool fastpath_likely = census.fast_path != FastPathMode::kOff &&
                                 item.shape.eligible() &&
                                 census.subpattern.empty() &&
                                 !census.use_gql_matcher && !graph_.directed();
    // Share the engine's per-graph indexes across queries.
    if (census.profile_index == nullptr) {
      census.profile_index = &CachedProfiles();
    }
    if (census.center_index == nullptr && !fastpath_likely &&
        (census.algorithm == CensusAlgorithm::kPtOpt ||
         census.algorithm == CensusAlgorithm::kPtRnd)) {
      census.center_index = &CachedCenters();
    }
    auto result = RunCensus(graph_, *item.pattern, focal, census);
    if (!result.ok()) return result.status();
    last_stats_.push_back(result->stats);
    AggregateExec exec;
    exec.status = result->exec_status;
    for (NodeId n : focal) {
      switch (result->focal_state[n]) {
        case FocalState::kComplete: ++exec.complete; break;
        case FocalState::kApprox: ++exec.approx; break;
        case FocalState::kPending: ++exec.pending; break;
      }
    }
    last_exec_.push_back(std::move(exec));
    state_columns.push_back(std::move(result->focal_state));
    count_columns.push_back(std::move(result->counts));
  }

  // Interrupted aggregates get a trailing "<aggregate>.state" string column
  // (complete / approx / pending per focal node). Trailing, not adjacent,
  // so ORDER BY ordinals and the COUNT column layout stay stable whether or
  // not the query ran to completion.
  std::vector<std::string> names = ColumnNames(query);
  std::vector<std::size_t> state_of_count;  // count idx -> interrupted or ~0
  {
    std::size_t count_idx = 0;
    for (std::size_t i = 0; i < query.select.size(); ++i) {
      if (query.select[i].kind == SelectItem::Kind::kId) continue;
      if (last_exec_[count_idx].interrupted()) {
        state_of_count.push_back(count_idx);
        names.push_back(names[i] + ".state");
      }
      ++count_idx;
    }
  }

  ResultTable table(std::move(names));
  for (NodeId n : focal) {
    std::vector<AttributeValue> row;
    std::size_t count_idx = 0;
    for (const auto& item : query.select) {
      if (item.kind == SelectItem::Kind::kId) {
        row.emplace_back(static_cast<std::int64_t>(n));
      } else {
        row.emplace_back(
            static_cast<std::int64_t>(count_columns[count_idx][n]));
        ++count_idx;
      }
    }
    for (std::size_t idx : state_of_count) {
      row.emplace_back(std::string(FocalStateName(state_columns[idx][n])));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Result<ResultTable> QueryEngine::ExecutePairwise(const AnalyzedQuery& analyzed,
                                                 const Options& options) {
  const Query& query = *analyzed.query;

  std::vector<PairCounts> pair_columns;
  for (const auto& item : analyzed.counts) {
    PairwiseCensusOptions pairwise = options.pairwise;
    pairwise.k = item.spec->neighborhood.k;
    pairwise.subpattern =
        item.spec->count_subpattern ? item.spec->subpattern : "";
    pairwise.neighborhood =
        item.spec->neighborhood.kind == NeighborhoodSpec::Kind::kIntersection
            ? PairNeighborhood::kIntersection
            : PairNeighborhood::kUnion;
    if (pairwise.center_index == nullptr) {
      pairwise.center_index = &CachedCenters();
    }
    auto counts = RunPairwisePtOpt(graph_, *item.pattern, pairwise);
    if (!counts.ok()) return counts.status();
    pair_columns.push_back(std::move(counts).value());
  }

  // Union of nonzero pairs across all aggregates.
  std::vector<std::uint64_t> keys;
  {
    std::unordered_map<std::uint64_t, char> seen;
    for (const auto& column : pair_columns) {
      for (const auto& [key, count] : column) {
        if (seen.emplace(key, 1).second) keys.push_back(key);
      }
    }
  }
  std::sort(keys.begin(), keys.end());

  Rng rng(options.rnd_seed);
  RowBinding binding;
  binding.aliases = &query.from_aliases;
  ResultTable table(ColumnNames(query));
  auto emit = [&](NodeId n1, NodeId n2, std::uint64_t key) {
    binding.n1 = n1;
    binding.n2 = n2;
    if (!EvalWhere(graph_, query.where.get(), binding, &rng)) return;
    std::vector<AttributeValue> row;
    std::size_t count_idx = 0;
    for (const auto& item : query.select) {
      if (item.kind == SelectItem::Kind::kId) {
        NodeId n = item.alias == query.from_aliases[0] ? n1 : n2;
        row.emplace_back(static_cast<std::int64_t>(n));
      } else {
        auto it = pair_columns[count_idx].find(key);
        row.emplace_back(static_cast<std::int64_t>(
            it == pair_columns[count_idx].end() ? 0 : it->second));
        ++count_idx;
      }
    }
    table.AddRow(std::move(row));
  };
  for (std::uint64_t key : keys) {
    auto [a, b] = UnpackPair(key);
    emit(a, b, key);
    emit(b, a, key);
  }
  return table;
}

}  // namespace egocensus
