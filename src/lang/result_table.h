#ifndef EGOCENSUS_LANG_RESULT_TABLE_H_
#define EGOCENSUS_LANG_RESULT_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "graph/attributes.h"

namespace egocensus {

/// Tabular result of a pattern census query: named columns, rows of
/// dynamically typed values.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns = {});

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t NumRows() const { return rows_.size(); }
  std::size_t NumColumns() const { return columns_.size(); }

  void AddRow(std::vector<AttributeValue> row);

  const AttributeValue& At(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }
  const std::vector<AttributeValue>& Row(std::size_t row) const {
    return rows_[row];
  }

  /// Stable-sorts rows by a numeric column, descending (for top-K
  /// inspection of census counts).
  void SortByColumnDesc(std::size_t col);

  /// Stable-sorts rows by multiple (column, descending) keys, first key
  /// highest priority.
  void SortByColumns(const std::vector<std::pair<std::size_t, bool>>& keys);

  /// Keeps only the first `n` rows.
  void Truncate(std::size_t n);

  /// Renders up to `max_rows` rows as an aligned text table.
  std::string ToString(std::size_t max_rows = 20) const;

  void WriteCsv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<AttributeValue>> rows_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_RESULT_TABLE_H_
