#ifndef EGOCENSUS_LANG_LEXER_H_
#define EGOCENSUS_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace egocensus {

/// A lexical token of the pattern / query surface language.
struct Token {
  enum class Type {
    kIdentifier,  // SELECT, nodes, n1, LABEL, ...
    kVariable,    // ?A (text holds "A")
    kInteger,     // 42, also produced for the "42" in "-42" (parser handles
                  // unary minus)
    kDouble,      // 3.14
    kString,      // 'abc' or "abc" (text holds the unquoted content)
    kPunct,       // one of the operator/punctuation lexemes below
    kEnd,
  };

  Type type = Type::kEnd;
  std::string text;          // identifier/variable/string/punct lexeme
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;  // byte offset in the source, for error messages

  bool IsPunct(std::string_view p) const {
    return type == Type::kPunct && text == p;
  }
  /// Case-insensitive keyword test.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes pattern / query text. Recognized punctuation includes the
/// pattern edge operators (-, ->, <-, !-, !->, !<-), comparison operators
/// (=, !=, <>, <, <=, >, >=), and structural characters ({}[](),;.*).
/// Comments: "--" to end of line.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_LEXER_H_
