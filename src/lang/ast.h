#ifndef EGOCENSUS_LANG_AST_H_
#define EGOCENSUS_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/attributes.h"
#include "pattern/pattern.h"

namespace egocensus {

/// A search neighborhood expression (Section II): SUBGRAPH(n, k),
/// SUBGRAPH-INTERSECTION(n1, n2, k), or SUBGRAPH-UNION(n1, n2, k).
struct NeighborhoodSpec {
  enum class Kind { kSubgraph, kIntersection, kUnion };
  Kind kind = Kind::kSubgraph;
  std::string ref1;  // table alias of the first node ("" = the sole table)
  std::string ref2;  // second alias, for the pairwise kinds
  std::uint32_t k = 1;
};

const char* NeighborhoodKindName(NeighborhoodSpec::Kind kind);

/// A COUNTP(pattern, S) or COUNTSP(subpattern, pattern, S) aggregate.
struct CountSpec {
  bool count_subpattern = false;
  std::string subpattern;  // set when count_subpattern
  std::string pattern;
  NeighborhoodSpec neighborhood;
};

/// One item of the SELECT list: a node id or a census aggregate.
struct SelectItem {
  enum class Kind { kId, kCount };
  Kind kind = Kind::kId;
  std::string alias;  // for kId ("" = the sole table)
  CountSpec count;    // for kCount
};

/// Operand of a WHERE comparison.
struct WhereOperand {
  enum class Kind { kAttr, kConst, kRand };
  Kind kind = Kind::kConst;
  std::string alias;  // for kAttr; "" = the sole table
  std::string attr;   // for kAttr (upper-cased)
  AttributeValue value = std::int64_t{0};  // for kConst
};

/// Boolean WHERE expression tree.
struct WhereExpr {
  enum class Kind { kAnd, kOr, kNot, kCompare };
  Kind kind = Kind::kCompare;
  std::unique_ptr<WhereExpr> left;   // kAnd/kOr/kNot
  std::unique_ptr<WhereExpr> right;  // kAnd/kOr
  WhereOperand lhs, rhs;             // kCompare
  PredicateOp op = PredicateOp::kEq;
};

using WhereExprPtr = std::unique_ptr<WhereExpr>;

/// ORDER BY entry: 1-based SELECT column index + direction.
struct OrderBy {
  std::size_t column = 1;  // 1-based
  bool descending = false;
};

/// A parsed pattern census query: inline PATTERN declarations followed by
/// one SELECT statement.
struct Query {
  std::vector<Pattern> patterns;
  std::vector<SelectItem> select;
  std::vector<std::string> from_aliases;  // one or two entries
  WhereExprPtr where;                     // null = all nodes / pairs
  std::vector<OrderBy> order_by;          // applied in sequence priority
  std::optional<std::size_t> limit;       // LIMIT n
};

}  // namespace egocensus

#endif  // EGOCENSUS_LANG_AST_H_
