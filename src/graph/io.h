#ifndef EGOCENSUS_GRAPH_IO_H_
#define EGOCENSUS_GRAPH_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace egocensus {

/// Saves the topology and labels of a finalized graph to a text file.
/// Format (line oriented):
///   egocensus-graph 1 <directed 0|1> <num_nodes> <num_edges>
///   <labels: num_nodes space-separated integers, omitted when all zero>
///   one "u v" line per edge, in edge-id order
/// Dynamic attributes are not persisted (the evaluation workloads assign
/// them programmatically).
[[nodiscard]] Status SaveGraph(const Graph& graph, const std::string& path);

/// Loads a graph written by SaveGraph. The returned graph is finalized.
/// Malformed input fails with a ParseError naming the 1-based line number
/// and the offending token; trailing content after the edge list is an
/// error, never silently ignored.
[[nodiscard]] Result<Graph> LoadGraph(const std::string& path);

/// Stream-based core of LoadGraph; `source` names the input in errors.
[[nodiscard]] Result<Graph> ReadGraph(std::istream& in,
                        const std::string& source = "<stream>");

/// Writes the graph in Graphviz DOT format (for visualization of small
/// graphs / ego subgraphs). Nodes are annotated with their label when the
/// graph is labeled; at most `max_nodes` nodes are emitted.
[[nodiscard]] Status WriteDot(const Graph& graph, std::ostream& out,
                std::uint32_t max_nodes = 500);

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_IO_H_
