#ifndef EGOCENSUS_GRAPH_GENERATORS_H_
#define EGOCENSUS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace egocensus {

/// Options for the synthetic generators used throughout the evaluation. The
/// paper's synthetic workloads are preferential-attachment graphs with
/// |E| = 5 |V| and labels drawn uniformly at random from a small label set.
struct GeneratorOptions {
  std::uint32_t num_nodes = 0;
  /// Edges added per new node in preferential attachment (the paper uses 5,
  /// yielding |E| ~= 5 |V|).
  std::uint32_t edges_per_node = 5;
  /// Number of distinct labels; 0 or 1 produces an unlabeled graph.
  std::uint32_t num_labels = 1;
  std::uint64_t seed = 42;
  bool directed = false;
};

/// Barabasi-Albert preferential attachment: each new node attaches to
/// `edges_per_node` distinct existing nodes chosen with probability
/// proportional to degree. Labels are assigned uniformly at random.
/// The returned graph is finalized.
Graph GeneratePreferentialAttachment(const GeneratorOptions& options);

/// Erdos-Renyi G(n, m): `num_edges` distinct uniform random edges.
Graph GenerateErdosRenyi(std::uint32_t num_nodes, std::uint64_t num_edges,
                         std::uint32_t num_labels, std::uint64_t seed,
                         bool directed = false);

/// Watts-Strogatz small-world graph: a ring lattice where each node links
/// to its `neighbors_each_side` nearest ring neighbors on each side, with
/// every edge's far endpoint rewired uniformly at random with probability
/// `rewire_prob`. High clustering + short paths — a useful contrast to the
/// hub-dominated preferential-attachment workloads.
Graph GenerateWattsStrogatz(std::uint32_t num_nodes,
                            std::uint32_t neighbors_each_side,
                            double rewire_prob, std::uint32_t num_labels,
                            std::uint64_t seed);

/// R-MAT recursive-matrix graph (Chakrabarti et al.): `num_edges` edges
/// sampled by recursively descending the adjacency matrix with corner
/// probabilities (a, b, c, 1-a-b-c). Produces skewed, community-like
/// structure. Duplicate edges and self-loops are rejected and resampled.
Graph GenerateRmat(std::uint32_t scale_log2, std::uint64_t num_edges,
                   double a, double b, double c, std::uint32_t num_labels,
                   std::uint64_t seed);

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_GENERATORS_H_
