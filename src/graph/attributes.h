#ifndef EGOCENSUS_GRAPH_ATTRIBUTES_H_
#define EGOCENSUS_GRAPH_ATTRIBUTES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace egocensus {

/// A dynamically typed attribute value. The paper's data model stores
/// arbitrary attribute-value pairs on nodes and edges; attribute references
/// in queries are interpreted dynamically.
using AttributeValue = std::variant<std::int64_t, double, std::string>;

/// Returns a human-readable rendering of a value.
std::string AttributeValueToString(const AttributeValue& v);

/// Equality with numeric coercion between int64 and double (so a query
/// constant `3` matches a stored `3.0`). Strings compare only to strings.
bool AttributeValuesEqual(const AttributeValue& a, const AttributeValue& b);

/// Three-way comparison with the same coercion rules; returns std::nullopt
/// for incomparable types (string vs number).
std::optional<int> CompareAttributeValues(const AttributeValue& a,
                                          const AttributeValue& b);

/// Columnar store of dynamic attributes keyed by (element id, attribute
/// name). Attribute names are case-insensitive (normalized to upper case,
/// matching the SQL surface). Columns are created lazily on first write, so
/// the set of attributes never has to be pre-declared.
class AttributeTable {
 public:
  AttributeTable() = default;

  /// Sets attribute `name` of element `id` to `value`.
  void Set(std::uint32_t id, const std::string& name, AttributeValue value);

  /// Returns the value of attribute `name` for `id`, if present.
  std::optional<AttributeValue> Get(std::uint32_t id,
                                    const std::string& name) const;

  /// True if `id` has attribute `name`.
  bool Has(std::uint32_t id, const std::string& name) const;

  /// Names of all attributes that have been written at least once
  /// (upper-cased).
  std::vector<std::string> AttributeNames() const;

  /// Copies all attributes of `src_id` (in `src`) onto `dst_id` in this
  /// table. Used when materializing induced subgraphs.
  void CopyFrom(const AttributeTable& src, std::uint32_t src_id,
                std::uint32_t dst_id);

  /// Removes every attribute of every element (Graph::Reset).
  void Clear();

 private:
  struct Column {
    // Sparse: id -> value. Ego-subgraph extraction and selective attribute
    // use make dense vectors wasteful.
    std::unordered_map<std::uint32_t, AttributeValue> values;
  };

  const Column* FindColumn(const std::string& normalized_name) const;

  std::unordered_map<std::string, Column> columns_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_ATTRIBUTES_H_
