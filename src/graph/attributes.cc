#include "graph/attributes.h"

#include <cmath>

#include "util/strings.h"

namespace egocensus {

std::string AttributeValueToString(const AttributeValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    std::string s = std::to_string(*d);
    return s;
  }
  return std::get<std::string>(v);
}

namespace {

std::optional<double> AsNumber(const AttributeValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return std::nullopt;
}

}  // namespace

bool AttributeValuesEqual(const AttributeValue& a, const AttributeValue& b) {
  auto cmp = CompareAttributeValues(a, b);
  return cmp.has_value() && *cmp == 0;
}

std::optional<int> CompareAttributeValues(const AttributeValue& a,
                                          const AttributeValue& b) {
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) {
    int c = sa->compare(*sb);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (sa != nullptr || sb != nullptr) return std::nullopt;
  double na = *AsNumber(a);
  double nb = *AsNumber(b);
  if (na < nb) return -1;
  if (na > nb) return 1;
  return 0;
}

void AttributeTable::Set(std::uint32_t id, const std::string& name,
                         AttributeValue value) {
  columns_[ToUpper(name)].values[id] = std::move(value);
}

const AttributeTable::Column* AttributeTable::FindColumn(
    const std::string& normalized_name) const {
  auto it = columns_.find(normalized_name);
  return it == columns_.end() ? nullptr : &it->second;
}

std::optional<AttributeValue> AttributeTable::Get(
    std::uint32_t id, const std::string& name) const {
  const Column* col = FindColumn(ToUpper(name));
  if (col == nullptr) return std::nullopt;
  auto it = col->values.find(id);
  if (it == col->values.end()) return std::nullopt;
  return it->second;
}

bool AttributeTable::Has(std::uint32_t id, const std::string& name) const {
  return Get(id, name).has_value();
}

std::vector<std::string> AttributeTable::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, col] : columns_) names.push_back(name);
  return names;
}

void AttributeTable::Clear() { columns_.clear(); }

void AttributeTable::CopyFrom(const AttributeTable& src, std::uint32_t src_id,
                              std::uint32_t dst_id) {
  for (const auto& [name, col] : src.columns_) {
    auto it = col.values.find(src_id);
    if (it != col.values.end()) {
      columns_[name].values[dst_id] = it->second;
    }
  }
}

}  // namespace egocensus
