#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace egocensus {
namespace {

Label RandomLabel(Rng* rng, std::uint32_t num_labels) {
  if (num_labels <= 1) return kDefaultLabel;
  return static_cast<Label>(rng->NextBounded(num_labels));
}

std::uint64_t PackEdge(NodeId u, NodeId v, bool directed) {
  if (!directed && u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph GeneratePreferentialAttachment(const GeneratorOptions& options) {
  Rng rng(options.seed);
  Graph graph(options.directed);
  const std::uint32_t n = options.num_nodes;
  const std::uint32_t m = std::max<std::uint32_t>(1, options.edges_per_node);

  for (std::uint32_t i = 0; i < n; ++i) {
    graph.AddNode(RandomLabel(&rng, options.num_labels));
  }
  if (n == 0) {
    CheckOk(graph.Finalize(), "generator-built graph");
    return graph;
  }

  // endpoint_pool holds one entry per edge endpoint, so sampling uniformly
  // from it is degree-proportional sampling.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(n) * m * 2);

  const std::uint32_t seed_size = std::min(n, m + 1);
  // Seed clique over the first seed_size nodes.
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      graph.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  std::vector<NodeId> targets;
  for (NodeId u = seed_size; u < n; ++u) {
    targets.clear();
    const std::uint32_t want = std::min(m, u);  // cannot exceed older nodes
    std::uint32_t attempts = 0;
    while (targets.size() < want && attempts < want * 64) {
      ++attempts;
      NodeId candidate =
          endpoint_pool.empty()
              ? static_cast<NodeId>(rng.NextBounded(u))
              : endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (candidate == u) continue;
      if (std::find(targets.begin(), targets.end(), candidate) !=
          targets.end()) {
        continue;
      }
      targets.push_back(candidate);
    }
    // Fallback to uniform sampling if rejection stalled (tiny graphs).
    while (targets.size() < want) {
      NodeId candidate = static_cast<NodeId>(rng.NextBounded(u));
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (NodeId t : targets) {
      graph.AddEdge(u, t);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(t);
    }
  }
  CheckOk(graph.Finalize(), "generator-built graph");
  return graph;
}

Graph GenerateErdosRenyi(std::uint32_t num_nodes, std::uint64_t num_edges,
                         std::uint32_t num_labels, std::uint64_t seed,
                         bool directed) {
  Rng rng(seed);
  Graph graph(directed);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    graph.AddNode(RandomLabel(&rng, num_labels));
  }
  if (num_nodes < 2) {
    CheckOk(graph.Finalize(), "generator-built graph");
    return graph;
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1) /
      (directed ? 1 : 2);
  num_edges = std::min(num_edges, max_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::uint64_t added = 0;
  while (added < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    if (!seen.insert(PackEdge(u, v, directed)).second) continue;
    graph.AddEdge(u, v);
    ++added;
  }
  CheckOk(graph.Finalize(), "generator-built graph");
  return graph;
}

Graph GenerateWattsStrogatz(std::uint32_t num_nodes,
                            std::uint32_t neighbors_each_side,
                            double rewire_prob, std::uint32_t num_labels,
                            std::uint64_t seed) {
  Rng rng(seed);
  Graph graph(false);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    graph.AddNode(RandomLabel(&rng, num_labels));
  }
  if (num_nodes < 2) {
    CheckOk(graph.Finalize(), "generator-built graph");
    return graph;
  }
  neighbors_each_side =
      std::min(neighbors_each_side, (num_nodes - 1) / 2);
  std::unordered_set<std::uint64_t> seen;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (std::uint32_t j = 1; j <= neighbors_each_side; ++j) {
      NodeId v = (u + j) % num_nodes;
      if (rng.NextBool(rewire_prob)) {
        // Rewire the far endpoint; retry on self-loop/duplicate.
        for (int attempt = 0; attempt < 32; ++attempt) {
          NodeId w = static_cast<NodeId>(rng.NextBounded(num_nodes));
          if (w == u) continue;
          if (seen.count(PackEdge(u, w, false)) != 0) continue;
          v = w;
          break;
        }
      }
      if (v == u) continue;
      if (!seen.insert(PackEdge(u, v, false)).second) continue;
      graph.AddEdge(u, v);
    }
  }
  CheckOk(graph.Finalize(), "generator-built graph");
  return graph;
}

Graph GenerateRmat(std::uint32_t scale_log2, std::uint64_t num_edges,
                   double a, double b, double c, std::uint32_t num_labels,
                   std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t num_nodes = 1u << scale_log2;
  Graph graph(false);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    graph.AddNode(RandomLabel(&rng, num_labels));
  }
  if (num_nodes < 2) {
    CheckOk(graph.Finalize(), "generator-built graph");
    return graph;
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1) / 2;
  num_edges = std::min(num_edges, max_edges);
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t added = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = num_edges * 64 + 1024;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0, v = 0;
    for (std::uint32_t level = 0; level < scale_log2; ++level) {
      double p = rng.NextDouble();
      std::uint32_t bit_u = 0, bit_v = 0;
      if (p < a) {
        // top-left quadrant: both bits 0
      } else if (p < a + b) {
        bit_v = 1;
      } else if (p < a + b + c) {
        bit_u = 1;
      } else {
        bit_u = 1;
        bit_v = 1;
      }
      u = (u << 1) | bit_u;
      v = (v << 1) | bit_v;
    }
    if (u == v) continue;
    if (!seen.insert(PackEdge(u, v, false)).second) continue;
    graph.AddEdge(u, v);
    ++added;
  }
  CheckOk(graph.Finalize(), "generator-built graph");
  return graph;
}

}  // namespace egocensus
