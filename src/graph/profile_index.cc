#include "graph/profile_index.h"

namespace egocensus {

ProfileIndex ProfileIndex::Build(const Graph& graph) {
  ProfileIndex index;
  index.num_labels_ = graph.NumLabels();
  index.counts_.assign(
      static_cast<std::size_t>(graph.NumNodes()) * index.num_labels_, 0);
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    std::size_t base = static_cast<std::size_t>(n) * index.num_labels_;
    for (NodeId nbr : graph.Neighbors(n)) {
      ++index.counts_[base + graph.label(nbr)];
    }
  }
  return index;
}

}  // namespace egocensus
