#ifndef EGOCENSUS_GRAPH_PROFILE_INDEX_H_
#define EGOCENSUS_GRAPH_PROFILE_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace egocensus {

/// Node profile index (Section III-A): for each database node, the number of
/// neighbors per label, `P(n) = <|N^l1(n)|, ..., |N^lL(n)|>`. A database
/// node n is a candidate for pattern node v iff P(v) is contained in P(n).
/// Profiles are computed once per graph and kept as a flat row-major matrix.
///
/// Profiles use the undirected neighbor view so they remain a sound filter
/// for directed patterns as well.
class ProfileIndex {
 public:
  ProfileIndex() = default;

  /// Computes the profile of every node of `graph`.
  static ProfileIndex Build(const Graph& graph);

  /// Number of neighbors of `n` with label `l`.
  std::uint32_t Count(NodeId n, Label l) const {
    return counts_[static_cast<std::size_t>(n) * num_labels_ + l];
  }

  std::uint32_t num_labels() const { return num_labels_; }

 private:
  std::uint32_t num_labels_ = 0;
  std::vector<std::uint32_t> counts_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_PROFILE_INDEX_H_
