#ifndef EGOCENSUS_GRAPH_SUBGRAPH_H_
#define EGOCENSUS_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace egocensus {

/// An induced subgraph S together with the mapping from its local node ids
/// back to the parent graph. `graph` is finalized.
struct EgoSubgraph {
  Graph graph;
  std::vector<NodeId> to_global;  // local id -> parent id
};

/// Materializes induced subgraphs of a fixed parent graph. Keeps an
/// epoch-stamped global->local scratch map so repeated extraction (one per
/// focal node in ND-BAS) does not reallocate, and supports the `*Into`
/// variants that additionally recycle the output EgoSubgraph's buffers
/// (Graph::Reset) so a tight extraction loop settles into zero steady-state
/// allocation. Instances are not thread-safe; parallel engines keep one
/// extractor per worker.
class SubgraphExtractor {
 public:
  explicit SubgraphExtractor(const Graph& graph);

  /// Induced subgraph on `nodes` (duplicates ignored). Labels are always
  /// copied; node/edge attributes are copied when `copy_attributes` is set
  /// (needed when the pattern has non-LABEL attribute predicates).
  EgoSubgraph Extract(std::span<const NodeId> nodes,
                      bool copy_attributes = true);

  /// Extract into a caller-owned EgoSubgraph whose buffers are reused
  /// across calls. `out` must not alias the parent graph.
  void ExtractInto(std::span<const NodeId> nodes, bool copy_attributes,
                   EgoSubgraph* out);

  /// Induced subgraph on the k-hop neighborhood S(n, k).
  EgoSubgraph ExtractKHop(NodeId n, std::uint32_t k,
                          bool copy_attributes = true);

  /// ExtractKHop with output-buffer reuse (the ND-BAS hot loop).
  void ExtractKHopInto(NodeId n, std::uint32_t k, bool copy_attributes,
                       EgoSubgraph* out);

  /// Induced subgraph on N_k(n1) ∩ N_k(n2).
  EgoSubgraph ExtractIntersection(NodeId n1, NodeId n2, std::uint32_t k,
                                  bool copy_attributes = true);

  /// Induced subgraph on N_k(n1) ∪ N_k(n2).
  EgoSubgraph ExtractUnion(NodeId n1, NodeId n2, std::uint32_t k,
                           bool copy_attributes = true);

 private:
  const Graph& graph_;
  BfsWorkspace bfs1_;
  BfsWorkspace bfs2_;
  std::vector<NodeId> local_of_;
  std::vector<std::uint32_t> epoch_of_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> scratch_nodes_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_SUBGRAPH_H_
