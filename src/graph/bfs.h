#ifndef EGOCENSUS_GRAPH_BFS_H_
#define EGOCENSUS_GRAPH_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace egocensus {

/// Reusable breadth-first search workspace. The census algorithms run one
/// BFS per focal node over largely overlapping neighborhoods, so the
/// distance array is allocated once and reset lazily (only previously
/// visited entries are cleared between runs).
///
/// BFS expands the undirected neighbor view (Graph::Neighbors), matching the
/// paper's k-hop neighborhood definition. Run is a template over any
/// topology exposing NumNodes() and Neighbors(n), so the same workspace
/// drives both the static CSR Graph and the DynamicGraph overlay.
class BfsWorkspace {
 public:
  static constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  BfsWorkspace() = default;

  /// Runs BFS from `source` visiting nodes up to distance `max_depth`
  /// inclusive. Returns the visited nodes (including the source) in
  /// nondecreasing distance order. The result view is valid until the next
  /// Run call on this workspace.
  template <typename GraphT>
  const std::vector<NodeId>& Run(const GraphT& graph, NodeId source,
                                 std::uint32_t max_depth) {
    if (dist_.size() < graph.NumNodes()) {
      dist_.resize(graph.NumNodes(), kUnreached);
    }
    // Lazy reset: clear only what the previous run touched.
    for (NodeId n : visited_) dist_[n] = kUnreached;
    visited_.clear();

    dist_[source] = 0;
    visited_.push_back(source);
    // visited_ doubles as the BFS queue (it is already in frontier order).
    std::size_t head = 0;
    while (head < visited_.size()) {
      NodeId u = visited_[head++];
      std::uint32_t du = dist_[u];
      if (du == max_depth) continue;
      for (NodeId v : graph.Neighbors(u)) {
        if (dist_[v] == kUnreached) {
          dist_[v] = du + 1;
          visited_.push_back(v);
        }
      }
    }
    return visited_;
  }

  /// Distance of `n` from the last Run's source, or kUnreached.
  std::uint32_t DistanceTo(NodeId n) const {
    return n < dist_.size() ? dist_[n] : kUnreached;
  }

  bool Reached(NodeId n) const { return DistanceTo(n) != kUnreached; }

  /// Visited nodes from the last run, in BFS order.
  const std::vector<NodeId>& visited() const { return visited_; }

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> visited_;
};

/// Runs a full (unbounded) BFS from `source` and writes distances into
/// `out_dist` (resized to NumNodes; unreachable entries get `unreached`).
/// Used to build the center distance index.
void FullBfsDistances(const Graph& graph, NodeId source,
                      std::vector<std::uint16_t>* out_dist,
                      std::uint16_t unreached);

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_BFS_H_
