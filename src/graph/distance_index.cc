#include "graph/distance_index.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"

namespace egocensus {

CenterDistanceIndex CenterDistanceIndex::Build(const Graph& graph,
                                               std::vector<NodeId> centers) {
  CenterDistanceIndex index;
  index.centers_ = std::move(centers);
  const std::size_t num_centers = index.centers_.size();
  index.dist_.resize(num_centers * graph.NumNodes());
  std::vector<std::uint16_t> row;
  for (std::size_t c = 0; c < num_centers; ++c) {
    FullBfsDistances(graph, index.centers_[c], &row, kUnreached);
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      index.dist_[static_cast<std::size_t>(n) * num_centers + c] = row[n];
    }
  }
  return index;
}

std::vector<NodeId> PickHighestDegreeCenters(const Graph& graph,
                                             std::uint32_t count) {
  std::vector<NodeId> nodes(graph.NumNodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  count = std::min<std::uint32_t>(count, graph.NumNodes());
  std::partial_sort(nodes.begin(), nodes.begin() + count, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      return graph.Degree(a) != graph.Degree(b)
                                 ? graph.Degree(a) > graph.Degree(b)
                                 : a < b;
                    });
  nodes.resize(count);
  return nodes;
}

std::vector<NodeId> PickRandomCenters(const Graph& graph, std::uint32_t count,
                                      Rng* rng) {
  return rng->SampleWithoutReplacement(graph.NumNodes(),
                                       std::min(count, graph.NumNodes()));
}

}  // namespace egocensus
