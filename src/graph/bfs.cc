#include "graph/bfs.h"

namespace egocensus {

const std::vector<NodeId>& BfsWorkspace::Run(const Graph& graph, NodeId source,
                                             std::uint32_t max_depth) {
  if (dist_.size() < graph.NumNodes()) {
    dist_.resize(graph.NumNodes(), kUnreached);
  }
  // Lazy reset: clear only what the previous run touched.
  for (NodeId n : visited_) dist_[n] = kUnreached;
  visited_.clear();

  dist_[source] = 0;
  visited_.push_back(source);
  // visited_ doubles as the BFS queue (it is already in frontier order).
  std::size_t head = 0;
  while (head < visited_.size()) {
    NodeId u = visited_[head++];
    std::uint32_t du = dist_[u];
    if (du == max_depth) continue;
    for (NodeId v : graph.Neighbors(u)) {
      if (dist_[v] == kUnreached) {
        dist_[v] = du + 1;
        visited_.push_back(v);
      }
    }
  }
  return visited_;
}

void FullBfsDistances(const Graph& graph, NodeId source,
                      std::vector<std::uint16_t>* out_dist,
                      std::uint16_t unreached) {
  out_dist->assign(graph.NumNodes(), unreached);
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  (*out_dist)[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    NodeId u = queue[head++];
    std::uint16_t du = (*out_dist)[u];
    if (du + 1 >= unreached) continue;
    for (NodeId v : graph.Neighbors(u)) {
      if ((*out_dist)[v] == unreached) {
        (*out_dist)[v] = static_cast<std::uint16_t>(du + 1);
        queue.push_back(v);
      }
    }
  }
}

}  // namespace egocensus
