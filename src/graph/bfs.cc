#include "graph/bfs.h"

namespace egocensus {

void FullBfsDistances(const Graph& graph, NodeId source,
                      std::vector<std::uint16_t>* out_dist,
                      std::uint16_t unreached) {
  out_dist->assign(graph.NumNodes(), unreached);
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  (*out_dist)[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    NodeId u = queue[head++];
    std::uint16_t du = (*out_dist)[u];
    if (du + 1 >= unreached) continue;
    for (NodeId v : graph.Neighbors(u)) {
      if ((*out_dist)[v] == unreached) {
        (*out_dist)[v] = static_cast<std::uint16_t>(du + 1);
        queue.push_back(v);
      }
    }
  }
}

}  // namespace egocensus
