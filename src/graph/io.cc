#include "graph/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace egocensus {

[[nodiscard]] Status SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out << "egocensus-graph 1 " << (graph.directed() ? 1 : 0) << ' '
      << graph.NumNodes() << ' ' << graph.NumEdges() << '\n';
  bool any_label = false;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (graph.label(n) != kDefaultLabel) {
      any_label = true;
      break;
    }
  }
  out << (any_label ? 1 : 0) << '\n';
  if (any_label) {
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      out << graph.label(n) << (n + 1 == graph.NumNodes() ? '\n' : ' ');
    }
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    auto [u, v] = graph.EdgeEndpoints(e);
    out << u << ' ' << v << '\n';
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

namespace {

/// Line-tracking token reader for the graph format. Every parse error it
/// produces names the 1-based line number and the offending token, so a
/// malformed file reports exactly where it went wrong instead of a generic
/// "bad header" (or, worse, silently mis-reading).
class LineReader {
 public:
  LineReader(std::istream& in, const std::string& source)
      : in_(in), source_(source) {}

  /// Advances to the next line (possibly empty). False at end of input.
  bool NextLine() {
    if (!std::getline(in_, line_)) return false;
    ++line_no_;
    tokens_.clear();
    tokens_.str(line_);
    return true;
  }

  bool NextToken(std::string* out) {
    return static_cast<bool>(tokens_ >> *out);
  }

  [[nodiscard]] Status Error(const std::string& what) const {
    return Status::ParseError(source_ + " line " + std::to_string(line_no_) +
                              ": " + what);
  }

  /// Rejects trailing tokens on the current line, naming the first one.
  [[nodiscard]] Status ExpectEndOfLine() {
    std::string extra;
    if (tokens_ >> extra) {
      return Error("trailing token '" + extra + "'");
    }
    return Status::Ok();
  }

 private:
  std::istream& in_;
  std::string source_;
  std::string line_;
  std::istringstream tokens_;
  std::size_t line_no_ = 0;
};

/// Reads one unsigned decimal token <= max from the current line.
[[nodiscard]] Status ReadUint(LineReader& reader, const std::string& what,
                std::uint64_t max, std::uint64_t* out) {
  std::string token;
  if (!reader.NextToken(&token)) {
    return reader.Error("missing " + what);
  }
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return reader.Error("bad " + what + " '" + token +
                          "' (expected unsigned integer)");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > max) {
      return reader.Error(what + " '" + token + "' out of range (max " +
                          std::to_string(max) + ")");
    }
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

[[nodiscard]] Result<Graph> ReadGraph(std::istream& in, const std::string& source) {
  LineReader reader(in, source);

  // Header: egocensus-graph 1 <directed> <num_nodes> <num_edges>
  if (!reader.NextLine()) {
    return Status::ParseError(source + ": empty input (missing header)");
  }
  std::string magic;
  if (!reader.NextToken(&magic)) return reader.Error("missing magic");
  if (magic != "egocensus-graph") {
    return reader.Error("bad magic '" + magic +
                        "' (expected 'egocensus-graph')");
  }
  std::uint64_t version = 0, directed = 0, num_nodes = 0, num_edges = 0;
  if (Status s = ReadUint(reader, "format version", 0xFFFFFFFFull, &version);
      !s.ok()) {
    return s;
  }
  if (version != 1) {
    return reader.Error("unsupported format version " +
                        std::to_string(version));
  }
  if (Status s = ReadUint(reader, "directed flag", 1, &directed); !s.ok()) {
    return s;
  }
  if (Status s = ReadUint(reader, "node count", 0xFFFFFFFEull, &num_nodes);
      !s.ok()) {
    return s;
  }
  if (Status s = ReadUint(reader, "edge count", 0xFFFFFFFEull, &num_edges);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.ExpectEndOfLine(); !s.ok()) return s;

  // Has-labels flag line.
  if (!reader.NextLine()) {
    return Status::ParseError(source + ": missing has-labels line");
  }
  std::uint64_t has_labels = 0;
  if (Status s = ReadUint(reader, "has-labels flag", 1, &has_labels);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.ExpectEndOfLine(); !s.ok()) return s;

  Graph graph(directed != 0);
  graph.AddNodes(static_cast<std::uint32_t>(num_nodes));

  // Optional label line: num_nodes integers.
  if (has_labels != 0) {
    if (!reader.NextLine()) {
      return Status::ParseError(source + ": missing label line");
    }
    for (std::uint64_t n = 0; n < num_nodes; ++n) {
      std::uint64_t label = 0;
      if (Status s = ReadUint(reader,
                              "label for node " + std::to_string(n),
                              0xFFFFFFFFull, &label);
          !s.ok()) {
        return s;
      }
      if (Status s =
              graph.SetLabel(static_cast<NodeId>(n), static_cast<Label>(label));
          !s.ok()) {
        return s;
      }
    }
    if (Status s = reader.ExpectEndOfLine(); !s.ok()) return s;
  }

  // One "u v" line per edge.
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    if (!reader.NextLine()) {
      return Status::ParseError(
          source + ": truncated edge list (expected " +
          std::to_string(num_edges) + " edges, got " + std::to_string(e) +
          ")");
    }
    std::uint64_t u = 0, v = 0;
    if (Status s = ReadUint(reader, "edge source", 0xFFFFFFFEull, &u);
        !s.ok()) {
      return s;
    }
    if (Status s = ReadUint(reader, "edge target", 0xFFFFFFFEull, &v);
        !s.ok()) {
      return s;
    }
    if (u >= num_nodes || v >= num_nodes) {
      return reader.Error("edge endpoint out of range: " + std::to_string(u) +
                          " " + std::to_string(v) + " (graph has " +
                          std::to_string(num_nodes) + " nodes)");
    }
    if (Status s = reader.ExpectEndOfLine(); !s.ok()) return s;
    if (graph.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v)) ==
        kInvalidEdge) {
      return reader.Error("invalid edge " + std::to_string(u) + " " +
                          std::to_string(v));
    }
  }

  // Strict trailing-garbage detection: anything but blank lines after the
  // edge list is an error, not silently ignored.
  while (reader.NextLine()) {
    std::string extra;
    if (reader.NextToken(&extra)) {
      return reader.Error("trailing content '" + extra +
                          "' after edge list");
    }
  }

  if (Status s = graph.Finalize(); !s.ok()) return s;
  return graph;
}

[[nodiscard]] Result<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return ReadGraph(in, path);
}

[[nodiscard]] Status WriteDot(const Graph& graph, std::ostream& out,
                std::uint32_t max_nodes) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  const std::uint32_t limit = std::min(max_nodes, graph.NumNodes());
  const bool labeled = graph.NumLabels() > 1;
  const char* edge_op = graph.directed() ? " -> " : " -- ";
  out << (graph.directed() ? "digraph" : "graph") << " g {\n";
  for (NodeId n = 0; n < limit; ++n) {
    out << "  n" << n;
    if (labeled) out << " [label=\"" << n << ":" << graph.label(n) << "\"]";
    out << ";\n";
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    auto [u, v] = graph.EdgeEndpoints(e);
    if (u >= limit || v >= limit) continue;
    out << "  n" << u << edge_op << "n" << v << ";\n";
  }
  out << "}\n";
  if (!out) return Status::Internal("DOT write failed");
  return Status::Ok();
}

}  // namespace egocensus
