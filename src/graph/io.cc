#include "graph/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace egocensus {

Status SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out << "egocensus-graph 1 " << (graph.directed() ? 1 : 0) << ' '
      << graph.NumNodes() << ' ' << graph.NumEdges() << '\n';
  bool any_label = false;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (graph.label(n) != kDefaultLabel) {
      any_label = true;
      break;
    }
  }
  out << (any_label ? 1 : 0) << '\n';
  if (any_label) {
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      out << graph.label(n) << (n + 1 == graph.NumNodes() ? '\n' : ' ');
    }
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    auto [u, v] = graph.EdgeEndpoints(e);
    out << u << ' ' << v << '\n';
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string magic;
  int version = 0;
  int directed = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t num_edges = 0;
  in >> magic >> version >> directed >> num_nodes >> num_edges;
  if (!in || magic != "egocensus-graph" || version != 1) {
    return Status::ParseError("bad header in " + path);
  }
  int has_labels = 0;
  in >> has_labels;
  Graph graph(directed != 0);
  graph.AddNodes(num_nodes);
  if (has_labels != 0) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      Label l = 0;
      in >> l;
      if (!in) return Status::ParseError("truncated label list in " + path);
      graph.SetLabel(n, l);
    }
  }
  for (std::uint32_t e = 0; e < num_edges; ++e) {
    NodeId u = 0, v = 0;
    in >> u >> v;
    if (!in) return Status::ParseError("truncated edge list in " + path);
    if (graph.AddEdge(u, v) == kInvalidEdge) {
      return Status::ParseError("invalid edge in " + path);
    }
  }
  graph.Finalize();
  return graph;
}

Status WriteDot(const Graph& graph, std::ostream& out,
                std::uint32_t max_nodes) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  const std::uint32_t limit = std::min(max_nodes, graph.NumNodes());
  const bool labeled = graph.NumLabels() > 1;
  const char* edge_op = graph.directed() ? " -> " : " -- ";
  out << (graph.directed() ? "digraph" : "graph") << " g {\n";
  for (NodeId n = 0; n < limit; ++n) {
    out << "  n" << n;
    if (labeled) out << " [label=\"" << n << ":" << graph.label(n) << "\"]";
    out << ";\n";
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    auto [u, v] = graph.EdgeEndpoints(e);
    if (u >= limit || v >= limit) continue;
    out << "  n" << u << edge_op << "n" << v << ";\n";
  }
  out << "}\n";
  if (!out) return Status::Internal("DOT write failed");
  return Status::Ok();
}

}  // namespace egocensus
