#ifndef EGOCENSUS_GRAPH_TYPES_H_
#define EGOCENSUS_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace egocensus {

/// Node identifier: dense, 0-based.
using NodeId = std::uint32_t;

/// Edge identifier: dense, 0-based, in insertion order.
using EdgeId = std::uint32_t;

/// Node label drawn from a small finite label space.
using Label = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Default label for unlabeled graphs (every node shares it).
inline constexpr Label kDefaultLabel = 0;

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_TYPES_H_
