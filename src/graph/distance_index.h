#ifndef EGOCENSUS_GRAPH_DISTANCE_INDEX_H_
#define EGOCENSUS_GRAPH_DISTANCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace egocensus {

/// Center-based distance index (Section IV-B4): exact BFS distances from a
/// small set of pre-selected center nodes to every node. PT-OPT seeds its
/// traversal queues with the centers and uses the triangle inequality
/// d(m, n') <= d(m, c) + d(c, n') to tighten initial distance bounds; the
/// same distances provide the K-means feature vectors for pattern match
/// clustering.
class CenterDistanceIndex {
 public:
  static constexpr std::uint16_t kUnreached = 0xFFFF;

  CenterDistanceIndex() = default;

  /// Runs one full BFS per center. O(|C| * (V + E)).
  static CenterDistanceIndex Build(const Graph& graph,
                                   std::vector<NodeId> centers);

  std::size_t NumCenters() const { return centers_.size(); }
  const std::vector<NodeId>& centers() const { return centers_; }

  /// Exact hop distance from centers()[center_idx] to n (kUnreached if in a
  /// different component). Storage is node-major so that reading all
  /// centers' distances to one node (the hot pattern in PT-OPT's
  /// triangle-inequality initialization) touches one cache line.
  std::uint16_t Distance(std::size_t center_idx, NodeId n) const {
    return dist_[static_cast<std::size_t>(n) * centers_.size() + center_idx];
  }

  /// All centers' distances to `n`, contiguous.
  const std::uint16_t* DistancesTo(NodeId n) const {
    return dist_.data() + static_cast<std::size_t>(n) * centers_.size();
  }

 private:
  std::vector<NodeId> centers_;
  std::vector<std::uint16_t> dist_;  // node-major [node][center]
};

/// The paper's default center choice (DEG-CNTR): the `count` nodes with the
/// highest degrees.
std::vector<NodeId> PickHighestDegreeCenters(const Graph& graph,
                                             std::uint32_t count);

/// The RND-CNTR alternative evaluated in Fig. 4(f): uniformly random nodes.
std::vector<NodeId> PickRandomCenters(const Graph& graph, std::uint32_t count,
                                      Rng* rng);

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_DISTANCE_INDEX_H_
