#include "graph/graph.h"

#include <algorithm>

#include "util/strings.h"

namespace egocensus {

NodeId Graph::AddNode(Label label) {
  if (finalized_) return kInvalidNode;
  labels_.push_back(label);
  max_label_ = std::max(max_label_, label);
  // Recycle a stale adjacency row (left behind by Reset) when available so
  // repeated populate/finalize cycles keep the rows' capacity.
  if (build_out_.size() <= num_nodes_) {
    build_out_.emplace_back();
  } else {
    build_out_[num_nodes_].clear();
  }
  if (directed_) {
    if (build_in_.size() <= num_nodes_) {
      build_in_.emplace_back();
    } else {
      build_in_[num_nodes_].clear();
    }
  }
  return num_nodes_++;
}

NodeId Graph::AddNodes(std::uint32_t count, Label label) {
  if (finalized_) return kInvalidNode;
  NodeId first = num_nodes_;
  for (std::uint32_t i = 0; i < count; ++i) AddNode(label);
  return first;
}

EdgeId Graph::AddEdge(NodeId u, NodeId v) {
  if (finalized_) return kInvalidEdge;
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return kInvalidEdge;
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.emplace_back(u, v);
  build_out_[u].emplace_back(v, id);
  if (directed_) {
    build_in_[v].emplace_back(u, id);
  } else {
    build_out_[v].emplace_back(u, id);
  }
  return id;
}

Status Graph::SetLabel(NodeId n, Label label) {
  if (finalized_) {
    return Status::InvalidArgument("SetLabel: graph is already finalized");
  }
  if (n >= num_nodes_) return Status::OutOfRange("SetLabel: no such node");
  labels_[n] = label;
  max_label_ = std::max(max_label_, label);
  return Status::Ok();
}

void Graph::BuildCsr(
    std::uint32_t num_nodes,
    std::vector<std::vector<std::pair<NodeId, EdgeId>>>* adj, bool dedup,
    Csr* out) {
  out->offsets.assign(num_nodes + 1, 0);
  out->targets.clear();
  out->edge_ids.clear();
  std::size_t total = 0;
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    auto& list = (*adj)[n];
    std::sort(list.begin(), list.end());
    if (dedup) {
      list.erase(std::unique(list.begin(), list.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 list.end());
    }
    total += list.size();
  }
  out->targets.reserve(total);
  out->edge_ids.reserve(total);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    out->offsets[n] = static_cast<std::uint32_t>(out->targets.size());
    for (const auto& [nbr, eid] : (*adj)[n]) {
      out->targets.push_back(nbr);
      out->edge_ids.push_back(eid);
    }
  }
  out->offsets[num_nodes] = static_cast<std::uint32_t>(out->targets.size());
}

Status Graph::Finalize(bool release_build_buffers) {
  if (finalized_) {
    return Status::InvalidArgument("Finalize: graph is already finalized");
  }
  BuildCsr(num_nodes_, &build_out_, /*dedup=*/false, &out_);
  if (directed_) {
    BuildCsr(num_nodes_, &build_in_, /*dedup=*/false, &in_);
    // Combined undirected view: merge of in and out, deduplicated.
    std::vector<std::vector<std::pair<NodeId, EdgeId>>> comb(num_nodes_);
    for (NodeId n = 0; n < num_nodes_; ++n) {
      comb[n].reserve(build_out_[n].size() + build_in_[n].size());
      for (const auto& p : build_out_[n]) comb[n].push_back(p);
      for (const auto& p : build_in_[n]) comb[n].push_back(p);
    }
    BuildCsr(num_nodes_, &comb, /*dedup=*/true, &combined_);
  }
  if (release_build_buffers) {
    build_out_.clear();
    build_out_.shrink_to_fit();
    build_in_.clear();
    build_in_.shrink_to_fit();
  }
  finalized_ = true;
  return Status::Ok();
}

void Graph::Reset(bool directed) {
  directed_ = directed;
  finalized_ = false;
  num_nodes_ = 0;
  max_label_ = 0;
  labels_.clear();
  edges_.clear();
  // build_out_/build_in_ rows are kept and recycled lazily by AddNode; the
  // CSR vectors are rebuilt in place by the next Finalize. Stale CSR reads
  // are impossible because every accessor asserts finalized_.
  node_attributes_.Clear();
  edge_attributes_.Clear();
}

std::span<const NodeId> Graph::OutNeighbors(NodeId n) const {
  assert(finalized_);
  return out_.NeighborsOf(n);
}

std::span<const EdgeId> Graph::OutEdgeIds(NodeId n) const {
  assert(finalized_);
  return {out_.edge_ids.data() + out_.offsets[n],
          out_.edge_ids.data() + out_.offsets[n + 1]};
}

std::span<const NodeId> Graph::InNeighbors(NodeId n) const {
  assert(finalized_);
  return directed_ ? in_.NeighborsOf(n) : out_.NeighborsOf(n);
}

std::span<const NodeId> Graph::Neighbors(NodeId n) const {
  assert(finalized_);
  return directed_ ? combined_.NeighborsOf(n) : out_.NeighborsOf(n);
}

namespace {

bool SortedContains(std::span<const NodeId> nodes, NodeId target) {
  return std::binary_search(nodes.begin(), nodes.end(), target);
}

}  // namespace

bool Graph::HasEdge(NodeId u, NodeId v) const {
  return SortedContains(OutNeighbors(u), v);
}

bool Graph::HasUndirectedEdge(NodeId u, NodeId v) const {
  return SortedContains(Neighbors(u), v);
}

std::optional<EdgeId> Graph::FindEdge(NodeId u, NodeId v) const {
  assert(finalized_);
  auto nbrs = out_.NeighborsOf(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return std::nullopt;
  std::size_t idx = out_.offsets[u] + (it - nbrs.begin());
  return out_.edge_ids[idx];
}

std::optional<AttributeValue> Graph::GetNodeAttribute(
    NodeId n, const std::string& name) const {
  if (EqualsIgnoreCase(name, "LABEL")) {
    return AttributeValue(static_cast<std::int64_t>(labels_[n]));
  }
  if (EqualsIgnoreCase(name, "ID")) {
    return AttributeValue(static_cast<std::int64_t>(n));
  }
  return node_attributes_.Get(n, name);
}

}  // namespace egocensus
