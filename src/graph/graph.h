#ifndef EGOCENSUS_GRAPH_GRAPH_H_
#define EGOCENSUS_GRAPH_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/attributes.h"
#include "graph/types.h"
#include "util/status.h"

namespace egocensus {

/// In-memory property graph with the data model of Section II: directed or
/// undirected, dense node ids, a fast-path `label` per node plus arbitrary
/// dynamic attribute-value pairs on nodes and edges.
///
/// Lifecycle: populate with AddNode/AddEdge, then call Finalize() exactly
/// once. Finalize() converts the adjacency into a CSR layout with sorted
/// neighbor lists (enabling O(log d) HasEdge) and, for directed graphs,
/// builds a combined undirected adjacency used by neighborhood expansion
/// (the paper expands k-hop neighborhoods ignoring direction while pattern
/// edges keep their orientation). All read accessors require a finalized
/// graph.
///
/// Lifecycle misuse (mutation after Finalize(), double Finalize()) is
/// rejected with a reportable error rather than undefined behavior:
/// AddNode/AddNodes return kInvalidNode, AddEdge returns kInvalidEdge, and
/// SetLabel/Finalize return a non-OK Status. Service-mode callers (the
/// dynamic-update subsystem) rely on these guards.
class Graph {
 public:
  explicit Graph(bool directed = false) : directed_(directed) {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // --- Construction ---------------------------------------------------

  /// Adds one node and returns its id. Returns kInvalidNode if the graph is
  /// already finalized.
  NodeId AddNode(Label label = kDefaultLabel);

  /// Adds `count` nodes with the given label; returns the first new id (or
  /// kInvalidNode after Finalize()).
  NodeId AddNodes(std::uint32_t count, Label label = kDefaultLabel);

  /// Adds an edge u->v (directed) or u-v (undirected) and returns its id.
  /// Self-loops, out-of-range endpoints, and mutation after Finalize() are
  /// rejected with kInvalidEdge. Parallel edges are not deduplicated;
  /// callers that must avoid them should check HasEdge first (generators
  /// do).
  EdgeId AddEdge(NodeId u, NodeId v);

  /// Overrides the label of a node. Only valid before Finalize().
  [[nodiscard]] Status SetLabel(NodeId n, Label label);

  /// Sorts adjacency lists, flattens to CSR, and freezes the topology.
  /// Calling Finalize() twice returns an error and leaves the graph intact.
  /// `release_build_buffers` (default) frees the build-phase adjacency;
  /// graph objects recycled through Reset() pass false so the per-node
  /// buffers keep their capacity across populate/finalize cycles.
  [[nodiscard]] Status Finalize(bool release_build_buffers = true);

  /// Returns the graph to the empty, un-finalized state while keeping
  /// every allocated buffer (labels, edge list, CSR arrays, and — when the
  /// previous Finalize was called with release_build_buffers=false — the
  /// build-phase adjacency rows). This is the scratch-reuse path behind
  /// SubgraphExtractor::ExtractInto: repeated neighborhood extraction
  /// allocates only when a neighborhood outgrows every previous one.
  void Reset(bool directed);

  // --- Topology accessors (require Finalize()) ------------------------

  bool directed() const { return directed_; }
  bool finalized() const { return finalized_; }
  std::uint32_t NumNodes() const { return num_nodes_; }
  std::uint32_t NumEdges() const {
    return static_cast<std::uint32_t>(edges_.size());
  }

  /// Number of distinct labels in use (max label + 1).
  std::uint32_t NumLabels() const { return max_label_ + 1; }

  Label label(NodeId n) const { return labels_[n]; }

  /// Endpoints of edge e: (source, target) for directed, (u, v) as inserted
  /// for undirected.
  std::pair<NodeId, NodeId> EdgeEndpoints(EdgeId e) const { return edges_[e]; }

  /// Out-neighbors (directed) / all neighbors (undirected), sorted.
  std::span<const NodeId> OutNeighbors(NodeId n) const;

  /// Edge ids parallel to OutNeighbors(n).
  std::span<const EdgeId> OutEdgeIds(NodeId n) const;

  /// In-neighbors (directed) / all neighbors (undirected), sorted.
  std::span<const NodeId> InNeighbors(NodeId n) const;

  /// Undirected view: union of in- and out-neighbors, sorted, deduplicated.
  /// This is the N(x) used for k-hop neighborhood expansion.
  std::span<const NodeId> Neighbors(NodeId n) const;

  /// Degree in the undirected view (|Neighbors(n)|).
  std::uint32_t Degree(NodeId n) const {
    return static_cast<std::uint32_t>(Neighbors(n).size());
  }

  /// True if the directed edge u->v exists (undirected: u-v).
  bool HasEdge(NodeId u, NodeId v) const;

  /// True if u and v are adjacent ignoring direction.
  bool HasUndirectedEdge(NodeId u, NodeId v) const;

  /// Edge id of u->v (undirected: u-v) if present. If parallel edges exist,
  /// returns one of them.
  std::optional<EdgeId> FindEdge(NodeId u, NodeId v) const;

  // --- Attributes ------------------------------------------------------

  AttributeTable& node_attributes() { return node_attributes_; }
  const AttributeTable& node_attributes() const { return node_attributes_; }
  AttributeTable& edge_attributes() { return edge_attributes_; }
  const AttributeTable& edge_attributes() const { return edge_attributes_; }

  /// Node attribute lookup with the LABEL fast path: "LABEL" (any case)
  /// resolves to the structural label; "ID" resolves to the node id.
  std::optional<AttributeValue> GetNodeAttribute(NodeId n,
                                                 const std::string& name) const;

 private:
  struct Csr {
    std::vector<std::uint32_t> offsets;  // size num_nodes + 1
    std::vector<NodeId> targets;
    std::vector<EdgeId> edge_ids;  // parallel to targets (empty in combined)
    std::span<const NodeId> NeighborsOf(NodeId n) const {
      return {targets.data() + offsets[n], targets.data() + offsets[n + 1]};
    }
  };

  /// Flattens rows [0, num_nodes) of `adj` into `out`, reusing out's
  /// buffers. Rows of `adj` beyond num_nodes (stale scratch from a larger
  /// previous build) are ignored.
  static void BuildCsr(std::uint32_t num_nodes,
                       std::vector<std::vector<std::pair<NodeId, EdgeId>>>* adj,
                       bool dedup, Csr* out);

  bool directed_;
  bool finalized_ = false;
  std::uint32_t num_nodes_ = 0;
  Label max_label_ = 0;

  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;

  // Build-phase adjacency; cleared by Finalize().
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> build_out_;
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> build_in_;

  // Finalized CSR adjacency.
  Csr out_;
  Csr in_;        // directed only
  Csr combined_;  // directed only (undirected view)

  AttributeTable node_attributes_;
  AttributeTable edge_attributes_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_GRAPH_GRAPH_H_
