#include "graph/subgraph.h"

#include <algorithm>

#include "exec/failpoints.h"

namespace egocensus {

SubgraphExtractor::SubgraphExtractor(const Graph& graph)
    : graph_(graph),
      local_of_(graph.NumNodes(), kInvalidNode),
      epoch_of_(graph.NumNodes(), 0) {}

void SubgraphExtractor::ExtractInto(std::span<const NodeId> nodes,
                                    bool copy_attributes, EgoSubgraph* out) {
  ++epoch_;
  out->graph.Reset(graph_.directed());
  out->to_global.clear();
  out->to_global.reserve(nodes.size());
  for (NodeId g : nodes) {
    if (epoch_of_[g] == epoch_) continue;  // duplicate
    epoch_of_[g] = epoch_;
    local_of_[g] = static_cast<NodeId>(out->to_global.size());
    out->to_global.push_back(g);
    out->graph.AddNode(graph_.label(g));
  }
  // Induced edges: directed graphs copy every out-edge between members;
  // undirected graphs copy each member-member edge once (from the endpoint
  // with the smaller global id).
  for (NodeId g : out->to_global) {
    NodeId lu = local_of_[g];
    auto nbrs = graph_.OutNeighbors(g);
    auto eids = graph_.OutEdgeIds(g);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      NodeId h = nbrs[i];
      if (epoch_of_[h] != epoch_) continue;
      if (!graph_.directed() && h < g) continue;
      EdgeId local_edge = out->graph.AddEdge(lu, local_of_[h]);
      if (copy_attributes && local_edge != kInvalidEdge) {
        out->graph.edge_attributes().CopyFrom(graph_.edge_attributes(),
                                              eids[i], local_edge);
      }
    }
  }
  if (copy_attributes) {
    for (NodeId g : out->to_global) {
      out->graph.node_attributes().CopyFrom(graph_.node_attributes(), g,
                                            local_of_[g]);
    }
  }
  CheckOk(out->graph.Finalize(/*release_build_buffers=*/false), "extracted subgraph");
}

EgoSubgraph SubgraphExtractor::Extract(std::span<const NodeId> nodes,
                                       bool copy_attributes) {
  EgoSubgraph out;
  ExtractInto(nodes, copy_attributes, &out);
  return out;
}

EgoSubgraph SubgraphExtractor::ExtractKHop(NodeId n, std::uint32_t k,
                                           bool copy_attributes) {
  EgoSubgraph out;
  ExtractKHopInto(n, k, copy_attributes, &out);
  return out;
}

void SubgraphExtractor::ExtractKHopInto(NodeId n, std::uint32_t k,
                                        bool copy_attributes,
                                        EgoSubgraph* out) {
  EGO_FAILPOINT("extract/khop");
  const auto& nodes = bfs1_.Run(graph_, n, k);
  ExtractInto(nodes, copy_attributes, out);
}

EgoSubgraph SubgraphExtractor::ExtractIntersection(NodeId n1, NodeId n2,
                                                   std::uint32_t k,
                                                   bool copy_attributes) {
  bfs1_.Run(graph_, n1, k);
  const auto& nodes2 = bfs2_.Run(graph_, n2, k);
  scratch_nodes_.clear();
  for (NodeId n : nodes2) {
    if (bfs1_.Reached(n)) scratch_nodes_.push_back(n);
  }
  return Extract(scratch_nodes_, copy_attributes);
}

EgoSubgraph SubgraphExtractor::ExtractUnion(NodeId n1, NodeId n2,
                                            std::uint32_t k,
                                            bool copy_attributes) {
  const auto& nodes1 = bfs1_.Run(graph_, n1, k);
  scratch_nodes_.assign(nodes1.begin(), nodes1.end());
  const auto& nodes2 = bfs2_.Run(graph_, n2, k);
  for (NodeId n : nodes2) {
    if (!bfs1_.Reached(n)) scratch_nodes_.push_back(n);
  }
  return Extract(scratch_nodes_, copy_attributes);
}

}  // namespace egocensus
