#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace egocensus::net {

namespace {

// strerror() hands back a pointer into static storage — racy once the
// server has accept/worker threads formatting errors concurrently
// (concurrency-mt-unsafe). strerror_r is the reentrant form, but glibc's
// _GNU_SOURCE variant returns char* while the XSI variant returns int;
// overload dispatch on the actual signature keeps both building.
inline std::string StrErrorResult(char* result, const char* /*buf*/) {
  return result;  // GNU: may point into buf or immutable static storage
}
inline std::string StrErrorResult(int result, const char* buf) {
  return result == 0 ? buf : "unknown error";  // XSI: 0 = buf filled
}

std::string ErrnoMessage(int err) {
  char buf[256] = "unknown error";
  return StrErrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
}

std::string Errno(const std::string& what) {
  return what + ": " + ErrnoMessage(errno);
}

/// Resolves `host` to an IPv4 address ("localhost", dotted quad, or a
/// resolvable name). Empty host = wildcard.
[[nodiscard]] Status ResolveHost(const std::string& host, in_addr* out) {
  if (host.empty()) {
    out->s_addr = htonl(INADDR_ANY);
    return Status::Ok();
  }
  if (inet_pton(AF_INET, host.c_str(), out) == 1) return Status::Ok();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  int rc = getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "': " + gai_strerror(rc));
  }
  *out = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  freeaddrinfo(result);
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: a socket that rejects TCP_NODELAY still works, just with
  // Nagle latency.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string Endpoint::ToString() const {
  return (host.empty() ? std::string("0.0.0.0") : host) + ":" +
         std::to_string(port);
}

[[nodiscard]] Result<Endpoint> ParseEndpoint(const std::string& text) {
  std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--connect target '" + text +
                                   "' is not HOST:PORT");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  std::string port_text = text.substr(colon + 1);
  if (port_text.empty()) {
    return Status::InvalidArgument("--connect target '" + text +
                                   "' has an empty port");
  }
  std::uint32_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("--connect target '" + text +
                                     "' has a non-numeric port");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("--connect target '" + text +
                                     "' has a port above 65535");
    }
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

namespace {

/// Bounded connect: flip the socket non-blocking, start the handshake,
/// poll for writability, then read SO_ERROR for the actual outcome.
/// Restores blocking mode on success so the framed I/O path stays simple.
[[nodiscard]] Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                                        const Endpoint& endpoint,
                                        int timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(Errno("fcntl O_NONBLOCK"));
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::NotFound(Errno("cannot connect to " + endpoint.ToString()));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) return Status::Internal(Errno("poll (connect)"));
    if (ready == 0) {
      return Status::DeadlineExceeded("connect to " + endpoint.ToString() +
                                      " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::Internal(Errno("getsockopt SO_ERROR"));
    }
    if (err != 0) {
      return Status::NotFound("cannot connect to " + endpoint.ToString() +
                              ": " + ErrnoMessage(err));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::Internal(Errno("fcntl restore flags"));
  }
  return Status::Ok();
}

}  // namespace

Result<Socket> Socket::ConnectTcp(const Endpoint& endpoint,
                                  int connect_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  Status resolved = ResolveHost(endpoint.host, &addr.sin_addr);
  if (!resolved.ok()) return resolved;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  if (connect_timeout_ms > 0) {
    Status connected = ConnectWithTimeout(fd, addr, endpoint,
                                          connect_timeout_ms);
    if (!connected.ok()) {
      ::close(fd);
      return connected;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    Status status = Status::NotFound(
        Errno("cannot connect to " + endpoint.ToString()));
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return Socket(fd);
}

Status Socket::SetIoTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::Internal("timeout on a closed socket");
  if (timeout_ms < 0) {
    return Status::InvalidArgument("io timeout must be >= 0");
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("setsockopt SO_RCVTIMEO"));
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("setsockopt SO_SNDTIMEO"));
  }
  return Status::Ok();
}

Status Socket::SendFrame(const Message& message) {
  std::vector<std::uint8_t> frame = EncodeFrame(message);
  return SendRaw(frame.data(), frame.size());
}

Status Socket::SendRaw(const void* data, std::size_t size) {
  if (fd_ < 0) return Status::Internal("send on a closed socket");
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-response yields EPIPE, not a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out (io timeout)");
      }
      return Status::Internal(Errno("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Message> Socket::RecvFrame() {
  if (fd_ < 0) return Status::Internal("recv on a closed socket");
  while (true) {
    Message message;
    std::size_t consumed = 0;
    std::string error;
    DecodeResult decoded = TryDecodeFrame(buffer_.data(), buffer_.size(),
                                          &message, &consumed, &error);
    if (decoded == DecodeResult::kFrame) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return message;
    }
    if (decoded == DecodeResult::kCorrupt) {
      return Status::ParseError(error);
    }
    std::uint8_t chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out (io timeout)");
      }
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) {
      if (buffer_.empty()) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::ParseError(
          "peer closed the connection inside a frame (" +
          std::to_string(buffer_.size()) + " bytes of an incomplete frame)");
    }
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Listen(const Endpoint& endpoint, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  Status resolved = ResolveHost(endpoint.host, &addr.sin_addr);
  if (!resolved.ok()) return resolved;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        errno == EADDRINUSE
            ? Status::ResourceExhausted("port " +
                                        std::to_string(endpoint.port) +
                                        " is already in use")
            : Status::Internal(Errno("bind " + endpoint.ToString()));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = Status::Internal(Errno("listen"));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = Status::Internal(Errno("getsockname"));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Result<Socket> Listener::AcceptOnce(int timeout_ms) {
  if (fd_ < 0) return Status::Cancelled("listener closed");
  pollfd pfd{fd_, POLLIN, 0};
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    // EINTR is not a timeout: with timeout_ms == -1 a kNotFound here would
    // masquerade as a poll tick that cannot happen, and callers would spin
    // past their stop-flag check. Surface it distinctly.
    if (errno == EINTR) return Status::Interrupted("accept poll interrupted");
    return Status::Internal(Errno("poll"));
  }
  if (rc == 0) return Status::NotFound("accept timeout");
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    // EINVAL: the listener was shut down from another thread mid-accept.
    if (errno == EINVAL) return Status::Cancelled("listener shut down");
    return Status::Internal(Errno("accept"));
  }
  SetNoDelay(client);
  return Socket(client);
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown() first so a concurrently blocked AcceptOnce wakes with
    // EINVAL instead of racing a reused fd number.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace egocensus::net
