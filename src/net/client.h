#ifndef EGOCENSUS_NET_CLIENT_H_
#define EGOCENSUS_NET_CLIENT_H_

// Client side of the daemon protocol: one connection, synchronous
// request/response calls. Used by `ecensus remote`, the server tests, and
// bench/server_throughput — all three speak through exactly this surface,
// so the protocol has one encoder/decoder pair in the whole tree.

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"

namespace egocensus::net {

class Client {
 public:
  /// Transport knobs. The defaults match what an interactive CLI wants: a
  /// bounded connect (a blackholed server fails in seconds, not minutes)
  /// and unbounded I/O (census responses legitimately take as long as the
  /// request's own deadline allows).
  struct Options {
    int connect_timeout_ms = 5000;  ///< 0 = OS default blocking connect.
    int io_timeout_ms = 0;          ///< 0 = no send/recv timeout.
  };

  /// Connects to a running ecensusd (default Options).
  [[nodiscard]] static Result<Client> Connect(const Endpoint& endpoint);
  [[nodiscard]] static Result<Client> Connect(const Endpoint& endpoint,
                                              const Options& options);

  /// Sends one request frame and blocks for the response. Fails only on
  /// transport problems (send/recv); a server-side failure comes back as a
  /// successful Call whose message has type kError or kBusy.
  [[nodiscard]] Result<Message> Call(const Message& request);

  /// The connection's fd (tests use it to kill the link mid-request).
  int fd() const { return socket_.fd(); }

  /// Hard-closes the connection (the disconnect the server watches for).
  void Close() { socket_.Close(); }

  // -- Request builders (the header names of docs/SERVER.md) --------------

  /// QUERY against a loaded graph; `query_text` rides as the body. Optional
  /// census-shaping headers (deadline_ms, memory_budget_mb, threads,
  /// algorithm, matcher, top, seed, format, degrade-approx) are added by
  /// the caller before Call.
  static Message QueryRequest(const std::string& graph,
                              const std::string& query_text);

  /// UPDATE: an update stream (dynamic/update_stream.h text format) as the
  /// body.
  static Message UpdateRequest(const std::string& graph,
                               const std::string& updates_text);

  static Message StatusRequest();
  static Message MetricsRequest();
  static Message LoadRequest(const std::string& name, const std::string& path);
  static Message UnloadRequest(const std::string& name);
  static Message ShutdownRequest();

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

/// Maps a response back to a Status using its exec_status/code headers, so
/// the remote CLI exits with the same codes the local CLI would (2 for
/// kInvalidArgument usage errors, 1 for governed stops and everything
/// else). kResult with exec_status OK maps to Ok.
[[nodiscard]] Status ResponseToStatus(const Message& response);

/// Inverse of StatusCodeName, for statuses that crossed the wire as text.
/// Unknown names map to kInternal.
StatusCode StatusCodeFromName(const std::string& name);

/// The structured admission state a BUSY response carries (docs/SERVER.md,
/// "Retry guidance"), parsed back out of its headers.
struct BusyInfo {
  std::uint64_t retry_after_ms = 0;  // server's backoff hint
  std::uint64_t inflight = 0;        // executing requests at rejection time
  std::uint64_t capacity = 0;        // execution slots
  std::uint64_t queued = 0;          // waiters in the fair queue
  bool draining = false;             // server is drain-flushing; go elsewhere
  std::string request_id;            // echoed id of the rejected request
};

/// Parses a kBusy (or load-shaped kError) response's headers. Fields the
/// server did not send stay at their zero defaults.
BusyInfo BusyInfoFromResponse(const Message& response);

/// Capped jittered exponential backoff for BUSY (and optionally transport)
/// failures. All retries off by default: max_retries = 0 reproduces a
/// plain Connect + Call.
struct RetryPolicy {
  int max_retries = 0;                  ///< additional attempts after the 1st
  std::uint64_t budget_ms = 15000;      ///< total wall-clock incl. sleeps
  std::uint64_t base_backoff_ms = 50;   ///< first sleep (doubles per retry)
  std::uint64_t max_backoff_ms = 2000;  ///< exponential cap
  bool retry_transport = false;  ///< also retry connect/send/recv failures —
                                 ///< only safe when the request is idempotent
  std::uint64_t jitter_seed = 0;  ///< 0 = clock-seeded; fixed in tests
};

/// What a CallWithRetry actually did (tests and `--verbose` reporting).
struct RetryStats {
  int attempts = 0;            // Call round-trips issued (>= 1)
  std::uint64_t slept_ms = 0;  // total backoff slept
};

/// One logical request with retries: fresh connection per attempt, backoff
/// = max(exponential, server's retry_after_ms hint) jittered to [0.5, 1.5]x
/// so synchronized clients do not re-stampede a recovering server. Returns
/// the final response (possibly still kBusy once attempts or budget run
/// out) or the final transport error.
[[nodiscard]] Result<Message> CallWithRetry(const Endpoint& endpoint,
                                            const Message& request,
                                            const Client::Options& options,
                                            const RetryPolicy& policy,
                                            RetryStats* stats = nullptr);

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_CLIENT_H_
