#ifndef EGOCENSUS_NET_CLIENT_H_
#define EGOCENSUS_NET_CLIENT_H_

// Client side of the daemon protocol: one connection, synchronous
// request/response calls. Used by `ecensus remote`, the server tests, and
// bench/server_throughput — all three speak through exactly this surface,
// so the protocol has one encoder/decoder pair in the whole tree.

#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"

namespace egocensus::net {

class Client {
 public:
  /// Connects to a running ecensusd.
  [[nodiscard]] static Result<Client> Connect(const Endpoint& endpoint);

  /// Sends one request frame and blocks for the response. Fails only on
  /// transport problems (send/recv); a server-side failure comes back as a
  /// successful Call whose message has type kError or kBusy.
  [[nodiscard]] Result<Message> Call(const Message& request);

  /// The connection's fd (tests use it to kill the link mid-request).
  int fd() const { return socket_.fd(); }

  /// Hard-closes the connection (the disconnect the server watches for).
  void Close() { socket_.Close(); }

  // -- Request builders (the header names of docs/SERVER.md) --------------

  /// QUERY against a loaded graph; `query_text` rides as the body. Optional
  /// census-shaping headers (deadline_ms, memory_budget_mb, threads,
  /// algorithm, matcher, top, seed, format, degrade-approx) are added by
  /// the caller before Call.
  static Message QueryRequest(const std::string& graph,
                              const std::string& query_text);

  /// UPDATE: an update stream (dynamic/update_stream.h text format) as the
  /// body.
  static Message UpdateRequest(const std::string& graph,
                               const std::string& updates_text);

  static Message StatusRequest();
  static Message MetricsRequest();
  static Message LoadRequest(const std::string& name, const std::string& path);
  static Message UnloadRequest(const std::string& name);
  static Message ShutdownRequest();

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

/// Maps a response back to a Status using its exec_status/code headers, so
/// the remote CLI exits with the same codes the local CLI would (2 for
/// kInvalidArgument usage errors, 1 for governed stops and everything
/// else). kResult with exec_status OK maps to Ok.
[[nodiscard]] Status ResponseToStatus(const Message& response);

/// Inverse of StatusCodeName, for statuses that crossed the wire as text.
/// Unknown names map to kInternal.
StatusCode StatusCodeFromName(const std::string& name);

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_CLIENT_H_
