#include "net/queue.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <bit>
#include <chrono>

#include "exec/failpoints.h"
#include "util/timer.h"

namespace egocensus::net {
namespace {

/// True when the queued request's client has already hung up. Same probe
/// as the mid-execute DisconnectWatcher: POLLRDHUP catches half-closes,
/// and a zero-byte MSG_PEEK distinguishes "request pipelined behind this
/// one" (readable data) from "peer gone" (readable EOF).
bool ClientGone(int fd) {
  if (fd < 0) return false;
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN | POLLRDHUP;
  pfd.revents = 0;
  int rc = ::poll(&pfd, 1, 0);
  if (rc <= 0) return false;
  if ((pfd.revents & (POLLERR | POLLHUP | POLLRDHUP | POLLNVAL)) != 0) {
    return true;
  }
  if ((pfd.revents & POLLIN) != 0) {
    char probe = 0;
    ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    return n == 0;
  }
  return false;
}

std::size_t WaitBucket(std::uint64_t wait_us) {
  if (wait_us == 0) return 0;
  return std::min<std::size_t>(std::bit_width(wait_us), 32);
}

}  // namespace

const char* AdmitOutcomeName(AdmitOutcome outcome) {
  switch (outcome) {
    case AdmitOutcome::kGranted: return "granted";
    case AdmitOutcome::kOverflow: return "overflow";
    case AdmitOutcome::kDeadlineExpired: return "deadline";
    case AdmitOutcome::kDisconnected: return "disconnect";
    case AdmitOutcome::kDraining: return "draining";
  }
  return "?";
}

struct FairRequestQueue::Waiter {
  Tenant* tenant = nullptr;
  std::uint64_t bytes = 0;
  std::uint64_t deadline_us = 0;
  int client_fd = -1;
  bool queued = false;  // still linked into the tenant FIFO
  AdmitOutcome outcome = AdmitOutcome::kGranted;
  bool decided = false;  // granted or evicted
};

struct FairRequestQueue::Tenant {
  TenantQueueStats stats;
  std::deque<Waiter*> fifo;
  std::uint64_t deficit = 0;
  bool in_ring = false;
};

FairRequestQueue::FairRequestQueue(const QueueOptions& options)
    : options_(options) {
  if (options_.slots == 0) options_.slots = 1;
  if (options_.quantum == 0) options_.quantum = 1;
  if (options_.poll_ms <= 0) options_.poll_ms = 1;
}

FairRequestQueue::~FairRequestQueue() = default;

FairRequestQueue::Tenant& FairRequestQueue::TenantLocked(
    const std::string& tenant) {
  Tenant& t = tenants_[tenant];
  if (t.stats.tenant.empty()) t.stats.tenant = tenant;
  return t;
}

void FairRequestQueue::RecordWaitLocked(Tenant& tenant,
                                        std::uint64_t wait_us) {
  TenantQueueStats& s = tenant.stats;
  ++s.wait_count;
  s.wait_sum_us += wait_us;
  s.wait_max_us = std::max(s.wait_max_us, wait_us);
  ++s.wait_buckets[WaitBucket(wait_us)];
}

void FairRequestQueue::ScheduleLocked() {
  while (active_ < options_.slots && depth_ > 0) {
    Tenant* t = ring_.front();
    if (t->fifo.empty()) {
      // Emptied by grants or evictions since it was queued; drop it from
      // the ring and reset its deficit so an idle tenant never banks
      // credit toward a future burst.
      ring_.pop_front();
      t->in_ring = false;
      t->deficit = 0;
      continue;
    }
    if (t->deficit == 0) {
      // Out of credit this round: top up and rotate to the back.
      t->deficit = options_.quantum;
      ring_.pop_front();
      ring_.push_back(t);
      continue;
    }
    --t->deficit;  // cost = 1 request
    Waiter* w = t->fifo.front();
    t->fifo.pop_front();
    w->queued = false;
    --depth_;
    queued_bytes_ -= w->bytes;
    w->outcome = AdmitOutcome::kGranted;
    w->decided = true;
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    ++t->stats.granted;
  }
}

void FairRequestQueue::EvictLocked(Waiter* waiter, AdmitOutcome outcome) {
  Tenant& t = *waiter->tenant;
  auto it = std::find(t.fifo.begin(), t.fifo.end(), waiter);
  if (it != t.fifo.end()) t.fifo.erase(it);
  waiter->queued = false;
  --depth_;
  queued_bytes_ -= waiter->bytes;
  waiter->outcome = outcome;
  waiter->decided = true;
  switch (outcome) {
    case AdmitOutcome::kDeadlineExpired: ++t.stats.evicted_deadline; break;
    case AdmitOutcome::kDisconnected: ++t.stats.evicted_disconnect; break;
    case AdmitOutcome::kDraining: ++t.stats.evicted_drain; break;
    default: break;
  }
  // A freed queue position may unblock nothing by itself, but eviction of
  // a head-of-line waiter changes what the scheduler would grant next.
  ScheduleLocked();
}

AdmitOutcome FairRequestQueue::Acquire(const std::string& tenant,
                                       std::uint64_t bytes,
                                       std::uint64_t deadline_us,
                                       int client_fd,
                                       std::uint64_t* wait_us) {
  EGO_FAILPOINT("net/queue/enqueue");
  const std::uint64_t enqueue_us = Timer::NowMicros();
  *wait_us = 0;
  Waiter waiter;
  {
    MutexLock lock(mu_);
    Tenant& t = TenantLocked(tenant);
    ++t.stats.enqueued;
    if (draining_) {
      ++t.stats.evicted_drain;
      lock.Unlock();
      EGO_FAILPOINT("net/queue/evict");
      return AdmitOutcome::kDraining;
    }
    if (deadline_us != 0 && enqueue_us >= deadline_us) {
      // Dead on arrival: the deadline already covers zero execution time.
      ++t.stats.evicted_deadline;
      lock.Unlock();
      EGO_FAILPOINT("net/queue/evict");
      return AdmitOutcome::kDeadlineExpired;
    }
    if (depth_ == 0 && active_ < options_.slots) {
      // Fast path: idle slot and an empty queue — grant without queueing.
      // (Skipping the queue is fair here: nobody is waiting.)
      ++active_;
      peak_active_ = std::max(peak_active_, active_);
      ++t.stats.granted;
      RecordWaitLocked(t, 0);
      lock.Unlock();
      EGO_FAILPOINT("net/queue/dequeue");
      return AdmitOutcome::kGranted;
    }
    if (options_.max_depth == 0 || depth_ >= options_.max_depth ||
        queued_bytes_ + bytes > options_.max_bytes) {
      ++t.stats.busy_overflow;
      lock.Unlock();
      EGO_FAILPOINT("net/queue/evict");
      return AdmitOutcome::kOverflow;
    }

    waiter.tenant = &t;
    waiter.bytes = bytes;
    waiter.deadline_us = deadline_us;
    waiter.client_fd = client_fd;
    waiter.queued = true;
    t.fifo.push_back(&waiter);
    if (!t.in_ring) {
      t.deficit = options_.quantum;
      t.in_ring = true;
      ring_.push_back(&t);
    }
    ++depth_;
    queued_bytes_ += bytes;
    ScheduleLocked();  // a slot may already be free

    while (!waiter.decided) {
      lock.WaitFor(cv_, std::chrono::milliseconds(options_.poll_ms));
      if (waiter.decided) break;
      const std::uint64_t now = Timer::NowMicros();
      if (waiter.deadline_us != 0 && now >= waiter.deadline_us) {
        EvictLocked(&waiter, AdmitOutcome::kDeadlineExpired);
      } else if (ClientGone(waiter.client_fd)) {
        EvictLocked(&waiter, AdmitOutcome::kDisconnected);
      }
    }
    const std::uint64_t waited = Timer::NowMicros() - enqueue_us;
    *wait_us = waited;
    if (waiter.outcome == AdmitOutcome::kGranted) {
      RecordWaitLocked(t, waited);
    }
  }
  // Our enqueue or eviction may have let the scheduler grant other
  // waiters; wake them now instead of leaving them to their poll tick.
  cv_.notify_all();
  if (waiter.outcome == AdmitOutcome::kGranted) {
    EGO_FAILPOINT("net/queue/dequeue");
  } else {
    EGO_FAILPOINT("net/queue/evict");
  }
  return waiter.outcome;
}

void FairRequestQueue::Release() {
  {
    MutexLock lock(mu_);
    if (active_ > 0) --active_;
    ScheduleLocked();
  }
  cv_.notify_all();
}

void FairRequestQueue::BeginDrain() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

std::size_t FairRequestQueue::FlushForDrain() {
  std::size_t flushed = 0;
  {
    MutexLock lock(mu_);
    draining_ = true;
    for (auto& [name, t] : tenants_) {
      while (!t.fifo.empty()) {
        Waiter* w = t.fifo.front();
        t.fifo.pop_front();
        w->queued = false;
        --depth_;
        queued_bytes_ -= w->bytes;
        w->outcome = AdmitOutcome::kDraining;
        w->decided = true;
        ++t.stats.evicted_drain;
        ++flushed;
      }
    }
  }
  cv_.notify_all();
  return flushed;
}

bool FairRequestQueue::draining() const {
  MutexLock lock(mu_);
  return draining_;
}

bool FairRequestQueue::Idle() const {
  MutexLock lock(mu_);
  return depth_ == 0 && active_ == 0;
}

std::uint32_t FairRequestQueue::active() const {
  MutexLock lock(mu_);
  return active_;
}

std::uint32_t FairRequestQueue::peak_active() const {
  MutexLock lock(mu_);
  return peak_active_;
}

std::size_t FairRequestQueue::depth() const {
  MutexLock lock(mu_);
  return depth_;
}

std::uint64_t FairRequestQueue::queued_bytes() const {
  MutexLock lock(mu_);
  return queued_bytes_;
}

std::vector<TenantQueueStats> FairRequestQueue::TenantStats() const {
  MutexLock lock(mu_);
  std::vector<TenantQueueStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantQueueStats s = t.stats;
    s.depth = t.fifo.size();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace egocensus::net
