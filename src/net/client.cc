#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace egocensus::net {

Result<Client> Client::Connect(const Endpoint& endpoint) {
  return Connect(endpoint, Options{});
}

Result<Client> Client::Connect(const Endpoint& endpoint,
                               const Options& options) {
  auto socket = Socket::ConnectTcp(endpoint, options.connect_timeout_ms);
  if (!socket.ok()) return socket.status();
  if (options.io_timeout_ms > 0) {
    Status set = socket->SetIoTimeout(options.io_timeout_ms);
    if (!set.ok()) return set;
  }
  return Client(std::move(*socket));
}

Result<Message> Client::Call(const Message& request) {
  Status sent = socket_.SendFrame(request);
  if (!sent.ok()) return sent;
  return socket_.RecvFrame();
}

Message Client::QueryRequest(const std::string& graph,
                             const std::string& query_text) {
  Message request;
  request.type = FrameType::kQuery;
  request.headers["graph"] = graph;
  request.body = query_text;
  return request;
}

Message Client::UpdateRequest(const std::string& graph,
                              const std::string& updates_text) {
  Message request;
  request.type = FrameType::kUpdate;
  request.headers["graph"] = graph;
  request.body = updates_text;
  return request;
}

Message Client::StatusRequest() {
  Message request;
  request.type = FrameType::kStatus;
  return request;
}

Message Client::MetricsRequest() {
  Message request;
  request.type = FrameType::kMetrics;
  return request;
}

Message Client::LoadRequest(const std::string& name, const std::string& path) {
  Message request;
  request.type = FrameType::kLoad;
  request.headers["name"] = name;
  request.headers["path"] = path;
  return request;
}

Message Client::UnloadRequest(const std::string& name) {
  Message request;
  request.type = FrameType::kUnload;
  request.headers["name"] = name;
  return request;
}

Message Client::ShutdownRequest() {
  Message request;
  request.type = FrameType::kShutdown;
  return request;
}

StatusCode StatusCodeFromName(const std::string& name) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"OK", StatusCode::kOk},
      {"INVALID_ARGUMENT", StatusCode::kInvalidArgument},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"PARSE_ERROR", StatusCode::kParseError},
      {"OUT_OF_RANGE", StatusCode::kOutOfRange},
      {"INTERNAL", StatusCode::kInternal},
      {"UNIMPLEMENTED", StatusCode::kUnimplemented},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"RESOURCE_EXHAUSTED", StatusCode::kResourceExhausted},
      {"CANCELLED", StatusCode::kCancelled},
      {"INTERRUPTED", StatusCode::kInterrupted},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) return entry.code;
  }
  return StatusCode::kInternal;
}

[[nodiscard]] Status ResponseToStatus(const Message& response) {
  switch (response.type) {
    case FrameType::kResult: {
      std::string exec = response.Header("exec_status", "OK");
      if (exec == "OK") return Status::Ok();
      return Status(StatusCodeFromName(exec),
                    response.Header("exec_message",
                                    "census stopped early (" + exec + ")"));
    }
    case FrameType::kBusy:
      return Status::ResourceExhausted(
          response.body.empty() ? "server busy (admission control)"
                                : response.body);
    case FrameType::kError:
      return Status(StatusCodeFromName(response.Header("code", "INTERNAL")),
                    response.body);
    default:
      return Status::Internal(std::string("unexpected response frame ") +
                              FrameTypeName(response.type));
  }
}

namespace {

std::uint64_t HeaderUint(const Message& response, const char* name) {
  std::string text = response.Header(name, "");
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

BusyInfo BusyInfoFromResponse(const Message& response) {
  BusyInfo info;
  info.retry_after_ms = HeaderUint(response, "retry_after_ms");
  info.inflight = HeaderUint(response, "inflight");
  info.capacity = HeaderUint(response, "capacity");
  info.queued = HeaderUint(response, "queued");
  info.draining = response.Header("draining", "") == "1";
  info.request_id = response.Header("request_id", "");
  return info;
}

[[nodiscard]] Result<Message> CallWithRetry(const Endpoint& endpoint,
                                            const Message& request,
                                            const Client::Options& options,
                                            const RetryPolicy& policy,
                                            RetryStats* stats) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed_ms = [&start]() -> std::uint64_t {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              start)
            .count());
  };
  std::uint64_t seed = policy.jitter_seed;
  if (seed == 0) {
    seed = static_cast<std::uint64_t>(Clock::now().time_since_epoch().count());
  }
  Rng rng(seed);
  RetryStats local;
  RetryStats& tally = stats != nullptr ? *stats : local;
  tally = RetryStats{};

  Status last_transport = Status::Ok();
  Result<Message> last_response = Status::Internal("no attempt made");
  for (int attempt = 0;; ++attempt) {
    bool transport_failed = false;
    auto client = Client::Connect(endpoint, options);
    if (!client.ok()) {
      transport_failed = true;
      last_transport = client.status();
    } else {
      ++tally.attempts;
      last_response = client->Call(request);
      if (!last_response.ok()) {
        transport_failed = true;
        last_transport = last_response.status();
      } else if (last_response->type != FrameType::kBusy) {
        return last_response;  // RESULT or ERROR: terminal either way
      }
    }
    if (transport_failed && !policy.retry_transport) return last_transport;
    if (attempt >= policy.max_retries) break;

    // Backoff: exponential from base, capped, floored at the server's own
    // hint when we have one, then jittered to [0.5, 1.5]x.
    std::uint64_t backoff = policy.base_backoff_ms;
    for (int i = 0; i < attempt && backoff < policy.max_backoff_ms; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, policy.max_backoff_ms);
    if (!transport_failed) {
      backoff = std::max(backoff,
                         BusyInfoFromResponse(*last_response).retry_after_ms);
    }
    backoff = backoff / 2 + rng.NextBounded(backoff + 1);  // [0.5, 1.5]x
    if (elapsed_ms() + backoff > policy.budget_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    tally.slept_ms += backoff;
  }
  if (!last_response.ok() && !last_transport.ok()) return last_transport;
  return last_response;
}

}  // namespace egocensus::net
