#include "net/client.h"

#include <utility>

namespace egocensus::net {

Result<Client> Client::Connect(const Endpoint& endpoint) {
  auto socket = Socket::ConnectTcp(endpoint);
  if (!socket.ok()) return socket.status();
  return Client(std::move(*socket));
}

Result<Message> Client::Call(const Message& request) {
  Status sent = socket_.SendFrame(request);
  if (!sent.ok()) return sent;
  return socket_.RecvFrame();
}

Message Client::QueryRequest(const std::string& graph,
                             const std::string& query_text) {
  Message request;
  request.type = FrameType::kQuery;
  request.headers["graph"] = graph;
  request.body = query_text;
  return request;
}

Message Client::UpdateRequest(const std::string& graph,
                              const std::string& updates_text) {
  Message request;
  request.type = FrameType::kUpdate;
  request.headers["graph"] = graph;
  request.body = updates_text;
  return request;
}

Message Client::StatusRequest() {
  Message request;
  request.type = FrameType::kStatus;
  return request;
}

Message Client::MetricsRequest() {
  Message request;
  request.type = FrameType::kMetrics;
  return request;
}

Message Client::LoadRequest(const std::string& name, const std::string& path) {
  Message request;
  request.type = FrameType::kLoad;
  request.headers["name"] = name;
  request.headers["path"] = path;
  return request;
}

Message Client::UnloadRequest(const std::string& name) {
  Message request;
  request.type = FrameType::kUnload;
  request.headers["name"] = name;
  return request;
}

Message Client::ShutdownRequest() {
  Message request;
  request.type = FrameType::kShutdown;
  return request;
}

StatusCode StatusCodeFromName(const std::string& name) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"OK", StatusCode::kOk},
      {"INVALID_ARGUMENT", StatusCode::kInvalidArgument},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"PARSE_ERROR", StatusCode::kParseError},
      {"OUT_OF_RANGE", StatusCode::kOutOfRange},
      {"INTERNAL", StatusCode::kInternal},
      {"UNIMPLEMENTED", StatusCode::kUnimplemented},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"RESOURCE_EXHAUSTED", StatusCode::kResourceExhausted},
      {"CANCELLED", StatusCode::kCancelled},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) return entry.code;
  }
  return StatusCode::kInternal;
}

[[nodiscard]] Status ResponseToStatus(const Message& response) {
  switch (response.type) {
    case FrameType::kResult: {
      std::string exec = response.Header("exec_status", "OK");
      if (exec == "OK") return Status::Ok();
      return Status(StatusCodeFromName(exec),
                    response.Header("exec_message",
                                    "census stopped early (" + exec + ")"));
    }
    case FrameType::kBusy:
      return Status::ResourceExhausted(
          response.body.empty() ? "server busy (admission control)"
                                : response.body);
    case FrameType::kError:
      return Status(StatusCodeFromName(response.Header("code", "INTERNAL")),
                    response.body);
    default:
      return Status::Internal(std::string("unexpected response frame ") +
                              FrameTypeName(response.type));
  }
}

}  // namespace egocensus::net
