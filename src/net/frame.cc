#include "net/frame.h"

#include <cstring>

#include "util/strings.h"

namespace egocensus::net {

bool IsRequestType(FrameType type) {
  return (static_cast<std::uint8_t>(type) & 0x80) == 0;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kUpdate:
      return "UPDATE";
    case FrameType::kStatus:
      return "STATUS";
    case FrameType::kLoad:
      return "LOAD";
    case FrameType::kUnload:
      return "UNLOAD";
    case FrameType::kShutdown:
      return "SHUTDOWN";
    case FrameType::kMetrics:
      return "METRICS";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

namespace {

bool IsKnownType(std::uint8_t byte) {
  switch (static_cast<FrameType>(byte)) {
    case FrameType::kQuery:
    case FrameType::kUpdate:
    case FrameType::kStatus:
    case FrameType::kLoad:
    case FrameType::kUnload:
    case FrameType::kShutdown:
    case FrameType::kMetrics:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kBusy:
      return true;
  }
  return false;
}

}  // namespace

std::string Message::Header(const std::string& key,
                            const std::string& fallback) const {
  auto it = headers.find(key);
  return it == headers.end() ? fallback : it->second;
}

std::uint64_t Message::HeaderInt(const std::string& key,
                                 std::uint64_t fallback) const {
  auto it = headers.find(key);
  if (it == headers.end()) return fallback;
  const std::string& text = it->second;
  if (text.empty()) return fallback;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::uint8_t> EncodeFrame(const Message& message) {
  std::string payload;
  for (const auto& [key, value] : message.headers) {
    payload += key;
    payload += ": ";
    payload += value;
    payload += '\n';
  }
  payload += '\n';
  payload += message.body;

  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  frame[0] = kFrameMagic;
  frame[1] = static_cast<std::uint8_t>(message.type);
  std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  frame[2] = static_cast<std::uint8_t>(length & 0xFF);
  frame[3] = static_cast<std::uint8_t>((length >> 8) & 0xFF);
  frame[4] = static_cast<std::uint8_t>((length >> 16) & 0xFF);
  frame[5] = static_cast<std::uint8_t>((length >> 24) & 0xFF);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

DecodeResult TryDecodeFrame(const std::uint8_t* data, std::size_t size,
                            Message* message, std::size_t* consumed,
                            std::string* error) {
  if (size < 1) return DecodeResult::kNeedMore;
  if (data[0] != kFrameMagic) {
    *error = "bad frame magic 0x" + std::to_string(data[0]) +
             " (expected 0xEC); stream cannot resynchronize";
    return DecodeResult::kCorrupt;
  }
  if (size < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  if (!IsKnownType(data[1])) {
    *error = "unknown frame type 0x" + std::to_string(data[1]);
    return DecodeResult::kCorrupt;
  }
  std::uint32_t length = static_cast<std::uint32_t>(data[2]) |
                         (static_cast<std::uint32_t>(data[3]) << 8) |
                         (static_cast<std::uint32_t>(data[4]) << 16) |
                         (static_cast<std::uint32_t>(data[5]) << 24);
  if (length > kMaxFramePayload) {
    *error = "frame payload length " + std::to_string(length) +
             " exceeds the " + std::to_string(kMaxFramePayload) +
             "-byte cap";
    return DecodeResult::kCorrupt;
  }
  if (size < kFrameHeaderBytes + length) return DecodeResult::kNeedMore;

  message->type = static_cast<FrameType>(data[1]);
  message->headers.clear();
  message->body.clear();
  std::string_view payload(
      reinterpret_cast<const char*>(data + kFrameHeaderBytes), length);
  Status parsed = ParsePayload(payload, message);
  if (!parsed.ok()) {
    *error = parsed.message();
    return DecodeResult::kCorrupt;
  }
  *consumed = kFrameHeaderBytes + length;
  return DecodeResult::kFrame;
}

[[nodiscard]] Status ParsePayload(std::string_view payload, Message* message) {
  std::size_t pos = 0;
  while (true) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      return Status::ParseError(
          "frame payload ends inside the header block (no blank line)");
    }
    std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) break;  // blank line: headers done, body follows
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line (no ':'): " +
                                std::string(line.substr(0, 80)));
    }
    std::string key(StripWhitespace(line.substr(0, colon)));
    std::string value(StripWhitespace(line.substr(colon + 1)));
    if (key.empty()) {
      return Status::ParseError("empty header key in frame payload");
    }
    message->headers[std::move(key)] = std::move(value);
  }
  message->body.assign(payload.substr(pos));
  return Status::Ok();
}

}  // namespace egocensus::net
