#ifndef EGOCENSUS_NET_QUEUE_H_
#define EGOCENSUS_NET_QUEUE_H_

// Bounded, deadline-aware fair request queue (docs/SERVER.md, "Admission
// and queueing").
//
// The daemon used to reject any QUERY/UPDATE beyond max_inflight with an
// immediate BUSY, so a short burst became a wall of client-visible
// failures. FairRequestQueue turns that cliff into a bounded wait: each
// tenant (the validated `tenant` request header, or the default tenant)
// owns a FIFO sub-queue, and a deficit-round-robin scheduler drains the
// sub-queues into the execution slots so one chatty tenant cannot starve
// the rest. The queue is bounded twice — by depth and by queued payload
// bytes — and anything beyond the bound still gets the classic structured
// BUSY, now with a retry_after_ms hint.
//
// Waiters are the connection threads themselves: Acquire() blocks the
// calling thread until it is granted a slot or evicted. While queued, each
// waiter self-checks every poll_ms for the three ways a queued request can
// die early: its deadline expires (the wait is charged against the
// request's Governor deadline, so a request that would wake up dead is
// evicted as DEADLINE_EXCEEDED without executing), its client hangs up
// (cancel-on-disconnect works in the queue, not just mid-execute), or the
// server starts draining and flushes the queue. Grants win races: a
// request granted in the same tick its client vanished executes normally
// and is cancelled by the regular disconnect watcher.
//
// Failpoints (exec/failpoints.h): `net/queue/enqueue` fires once per
// Acquire, `net/queue/dequeue` once per grant, `net/queue/evict` once per
// non-grant outcome — so at quiescence enqueue hits equal dequeue plus
// evict hits exactly, the conservation law the chaos test asserts.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace egocensus::net {

struct QueueOptions {
  /// Concurrent execution slots (the server's max_inflight).
  std::uint32_t slots = 8;

  /// Requests that may wait beyond the slots. 0 restores the legacy
  /// reject-on-full behavior: no queueing, overflow at slot exhaustion.
  std::size_t max_depth = 64;

  /// Total request payload bytes that may sit queued at once.
  std::uint64_t max_bytes = 32ull << 20;

  /// DRR quantum: requests granted per tenant per scheduling round. With
  /// the default 1 the scheduler is plain round-robin across backlogged
  /// tenants; larger values trade fairness granularity for FIFO runs.
  std::uint64_t quantum = 1;

  /// Waiter self-check period (deadline expiry, client disconnect, drain
  /// flush). Small: it bounds how long a dead request occupies the queue.
  int poll_ms = 5;
};

/// Why Acquire() returned without a grant — mapped by the server onto
/// structured BUSY/ERROR responses.
enum class AdmitOutcome : std::uint8_t {
  kGranted,          // slot held; caller must Release()
  kOverflow,         // depth or byte bound hit -> BUSY + retry_after_ms
  kDeadlineExpired,  // dead on arrival or died waiting -> ERROR
  kDisconnected,     // client hung up while queued -> no response possible
  kDraining,         // server drain in progress -> BUSY (do not retry here)
};

const char* AdmitOutcomeName(AdmitOutcome outcome);

/// Monotone per-tenant accounting, surfaced in STATUS ("tenants") and the
/// Prometheus exposition. wait_buckets is a log2 histogram of granted
/// queue waits in microseconds: bucket 0 counts zero-wait grants, bucket
/// b >= 1 counts waits in [2^(b-1), 2^b).
struct TenantQueueStats {
  std::string tenant;
  std::uint64_t depth = 0;  // currently queued (point-in-time)
  std::uint64_t enqueued = 0;
  std::uint64_t granted = 0;
  std::uint64_t busy_overflow = 0;
  std::uint64_t evicted_deadline = 0;
  std::uint64_t evicted_disconnect = 0;
  std::uint64_t evicted_drain = 0;
  std::uint64_t wait_count = 0;
  std::uint64_t wait_sum_us = 0;
  std::uint64_t wait_max_us = 0;
  std::array<std::uint64_t, 33> wait_buckets{};
};

class FairRequestQueue {
 public:
  explicit FairRequestQueue(const QueueOptions& options);

  /// Out-of-line: tenants_ maps to the forward-declared Tenant, so the
  /// destructor must instantiate where Tenant is complete (queue.cc).
  ~FairRequestQueue();

  FairRequestQueue(const FairRequestQueue&) = delete;
  FairRequestQueue& operator=(const FairRequestQueue&) = delete;

  /// Blocks until a slot is granted or the request is evicted. `bytes` is
  /// the request payload size (charged against max_bytes while queued);
  /// `deadline_us` is the request's absolute steady-clock deadline in
  /// Timer::NowMicros() terms (0 = none); `client_fd` (-1 = none) is
  /// polled for hangup while queued. On return `*wait_us` holds the time
  /// spent in Acquire. Only kGranted holds a slot; pair it with Release().
  [[nodiscard]] AdmitOutcome Acquire(const std::string& tenant,
                                     std::uint64_t bytes,
                                     std::uint64_t deadline_us, int client_fd,
                                     std::uint64_t* wait_us);

  /// Frees a granted slot and wakes the scheduler.
  void Release();

  /// Drain phase 1: new Acquire() calls return kDraining immediately;
  /// already-queued waiters keep being served as slots free.
  void BeginDrain();

  /// Drain phase 2: evicts every still-queued waiter with kDraining (the
  /// server answers them with BUSY). Returns the number flushed.
  std::size_t FlushForDrain();

  bool draining() const;

  /// True when nothing is queued and no slot is held.
  bool Idle() const;

  std::uint32_t active() const;
  std::uint32_t peak_active() const;
  std::size_t depth() const;
  std::uint64_t queued_bytes() const;

  /// Snapshot of every tenant ever seen, sorted by tenant name.
  std::vector<TenantQueueStats> TenantStats() const;

  const QueueOptions& options() const { return options_; }

 private:
  struct Waiter;
  struct Tenant;

  /// Grants free slots to queued waiters in DRR order.
  void ScheduleLocked() EGO_REQUIRES(mu_);

  /// Removes a still-queued waiter from its tenant FIFO.
  void EvictLocked(Waiter* waiter, AdmitOutcome outcome) EGO_REQUIRES(mu_);

  /// Looks up / creates the per-tenant state.
  Tenant& TenantLocked(const std::string& tenant) EGO_REQUIRES(mu_);

  void RecordWaitLocked(Tenant& tenant, std::uint64_t wait_us)
      EGO_REQUIRES(mu_);

  /// Normalized in the constructor, read-only afterwards.
  // egolint: no-guard(immutable after construction, read lock-free)
  QueueOptions options_;

  mutable Mutex mu_;
  std::condition_variable cv_;
  bool draining_ EGO_GUARDED_BY(mu_) = false;
  std::uint32_t active_ EGO_GUARDED_BY(mu_) = 0;
  std::uint32_t peak_active_ EGO_GUARDED_BY(mu_) = 0;
  std::size_t depth_ EGO_GUARDED_BY(mu_) = 0;
  std::uint64_t queued_bytes_ EGO_GUARDED_BY(mu_) = 0;

  /// Tenant states live for the process lifetime (tenant names are
  /// validated to <= 64 bytes, so cardinality is operator-controlled).
  /// std::map: node stability lets Waiter/ring hold Tenant pointers.
  std::map<std::string, Tenant> tenants_ EGO_GUARDED_BY(mu_);

  /// DRR ring of tenants with queued work, in visit order.
  std::deque<Tenant*> ring_ EGO_GUARDED_BY(mu_);
};

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_QUEUE_H_
