#ifndef EGOCENSUS_NET_REQUEST_CONTEXT_H_
#define EGOCENSUS_NET_REQUEST_CONTEXT_H_

// Per-request attribution state (docs/SERVER.md, "Request telemetry").
//
// Every dispatched frame gets a RequestContext carrying its request id —
// client-propagated via the `request_id` header when valid, otherwise
// server-assigned — plus the timing, sizing, and execution facts the
// handlers accumulate. The server threads the context through dispatch →
// handler → governor (Governor::SetAnnotation), echoes the id on every
// response, and renders the context into the one canonical wide log event
// and, past the latency threshold, into the slow-query ring.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace egocensus::net {

/// One phase of a request's server-side span tree, relative to the moment
/// the frame was dispatched (begin_us = 0). Built from request-local data
/// (queue wait, execute window, per-aggregate census phase timings), never
/// from the global tracer, so capture is race-free against concurrent
/// requests.
struct PhaseSpan {
  std::string name;
  std::uint64_t begin_us = 0;
  std::uint64_t dur_us = 0;
};

struct RequestContext {
  std::string id;          // echoed in the response's request_id header
  const char* verb = "?";  // FrameTypeName of the request frame
  std::string graph;       // graph/name header ("" for STATUS/SHUTDOWN)
  std::string tenant;      // validated `tenant` header or the default
                           // tenant; "" for verbs that bypass the queue

  std::uint64_t received_us = 0;    // dispatch time (steady clock)
  std::uint64_t deadline_us = 0;    // absolute clamped deadline (0 = none),
                                    // anchored at received_us so queue wait
                                    // is charged against the budget
  std::uint64_t queue_wait_us = 0;  // measured fair-queue wait
  std::uint64_t exec_begin_us = 0;  // handler past admission + graph lock
  std::uint64_t bytes_in = 0;

  // Filled by QUERY/UPDATE handlers for the wide event.
  std::uint32_t threads = 0;
  std::uint32_t pattern_nodes = 0;  // largest pattern across aggregates
  std::uint32_t k = 0;              // largest neighborhood radius
  std::uint64_t rows = 0;
  std::uint64_t fastpath_routed = 0;
  std::uint64_t fastpath_generic = 0;

  std::vector<PhaseSpan> spans;

  /// Counter deltas of the obs registry across this request's execution
  /// (empty when obs is off or compiled out) — the "per-phase snapshot
  /// delta" section of the wide event and the slow-query capture.
  std::map<std::string, std::uint64_t> obs_delta;

  /// Microseconds spent before execution began (admission + registry +
  /// graph-lock wait); 0 for handlers that never mark exec_begin_us.
  std::uint64_t QueueMicros() const {
    return exec_begin_us > received_us ? exec_begin_us - received_us : 0;
  }

  void AddSpan(std::string name, std::uint64_t begin_us,
               std::uint64_t dur_us) {
    spans.push_back(PhaseSpan{std::move(name), begin_us, dur_us});
  }
};

/// A client-supplied request id is taken verbatim only when it is sane to
/// echo through headers, logs, and exposition labels: non-empty, at most 64
/// bytes, characters from [A-Za-z0-9._:-].
inline bool ValidRequestId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
              c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Tenant names travel the same paths as request ids (headers, STATUS
/// JSON, exposition labels), so the same sanity rule applies. The fair
/// queue keys sub-queues on this value; an invalid or missing header falls
/// back to kDefaultTenant rather than erroring, so untagged traffic shares
/// one sub-queue instead of being rejected.
inline constexpr const char* kDefaultTenant = "default";

inline bool ValidTenant(std::string_view tenant) {
  return ValidRequestId(tenant);
}

/// Server-assigned id: `r<start-hex>-<seq>`. The prefix (the daemon's start
/// time in micros, hex) distinguishes restarts; the sequence number makes
/// ids unique across concurrent connections within one process.
inline std::string FormatRequestId(std::uint64_t server_start_us,
                                   std::uint64_t sequence) {
  static const char* kHex = "0123456789abcdef";
  std::string prefix;
  for (std::uint64_t v = server_start_us; v != 0; v >>= 4) {
    prefix.insert(prefix.begin(), kHex[v & 0xF]);
  }
  if (prefix.empty()) prefix = "0";
  return "r" + prefix + "-" + std::to_string(sequence);
}

// Canonical response composition. Every ERROR/BUSY the server emits is
// built here so the request id lands on every response unconditionally —
// egolint's request-discipline check rejects bare FrameType::kError /
// kBusy assignments outside this header, which keeps future handlers and
// queue paths honest (docs/STATIC_ANALYSIS.md).

/// ERROR carrying the status code, message, and request id. A non-zero
/// `retry_after_ms` marks the failure as load-induced (e.g. a deadline
/// that expired in the queue): clients may retry after the hint.
inline Message ErrorResponse(const RequestContext& ctx, const Status& status,
                             std::uint64_t retry_after_ms = 0) {
  Message response;
  response.type = FrameType::kError;
  response.headers["code"] = StatusCodeName(status.code());
  response.headers["request_id"] = ctx.id;
  if (retry_after_ms > 0) {
    response.headers["retry_after_ms"] = std::to_string(retry_after_ms);
  }
  response.body = status.message();
  return response;
}

/// Structured BUSY: the admission/queueing state a client needs to back
/// off intelligently (docs/SERVER.md, "Retry guidance").
inline Message BusyResponse(const RequestContext& ctx, std::uint64_t inflight,
                            std::uint64_t capacity, std::uint64_t queued,
                            std::uint64_t retry_after_ms, bool draining,
                            const std::string& reason) {
  Message response;
  response.type = FrameType::kBusy;
  response.headers["request_id"] = ctx.id;
  response.headers["inflight"] = std::to_string(inflight);
  response.headers["capacity"] = std::to_string(capacity);
  response.headers["queued"] = std::to_string(queued);
  response.headers["retry_after_ms"] = std::to_string(retry_after_ms);
  if (draining) response.headers["draining"] = "1";
  response.body = reason;
  return response;
}

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_REQUEST_CONTEXT_H_
