#ifndef EGOCENSUS_NET_REGISTRY_H_
#define EGOCENSUS_NET_REGISTRY_H_

// Named registry of resident graphs — the state the daemon exists to keep
// warm. Each entry holds the mutable DynamicGraph, a materialized immutable
// snapshot for queries, and the pre-built GraphIndexes over that snapshot,
// so a QUERY costs zero load/index work (the 10x the bench measures against
// per-process execution).
//
// Locking, two levels:
//  * The registry map itself is guarded by a plain Mutex held only for
//    lookup/insert/erase — never across a census.
//  * Each entry carries a SharedMutex: QUERY holds it shared for the
//    whole census (any number in parallel), UPDATE holds it exclusive while
//    mutating + re-materializing + re-indexing. UPDATE therefore serializes
//    against in-flight QUERYs per graph and queries never observe a
//    half-applied batch.
//
// Entries are handed out as shared_ptr, so UNLOAD only removes the name:
// requests already inside the entry finish against the old snapshot and the
// memory dies with the last reference.
//
// Both levels are compile-time contracts: the mutexes are the annotated
// util/mutex.h capabilities and every guarded field carries EGO_GUARDED_BY,
// so a QUERY path touching the snapshot without the entry lock fails the
// clang -Werror=thread-safety build (docs/STATIC_ANALYSIS.md).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "lang/engine.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace egocensus::net {

/// One resident graph. Fields guarded by `mutex` as annotated; `name` is
/// immutable after construction.
struct GraphEntry {
  // egolint: no-guard(immutable after construction, read lock-free)
  std::string name;

  /// Guards the graph state below: shared for QUERY, exclusive for UPDATE.
  SharedMutex mutex;

  /// Ground truth under updates.
  DynamicGraph dynamic EGO_GUARDED_BY(mutex);

  /// Materialized immutable view of `dynamic` + indexes over it. Rebuilt
  /// under the exclusive lock after every UPDATE batch; QueryEngines borrow
  /// both for the duration of a shared lock.
  Graph snapshot EGO_GUARDED_BY(mutex);
  GraphIndexes indexes EGO_GUARDED_BY(mutex);

  /// Monotone update-batch counter (0 = as loaded).
  std::uint64_t updates_applied EGO_GUARDED_BY(mutex) = 0;

  /// Fast-path routing outcomes per census aggregate served against this
  /// graph (docs/FAST_PATH.md). Atomic, not mutex-guarded: concurrent
  /// QUERYs hold the lock shared and increment these in parallel.
  std::atomic<std::uint64_t> fastpath_routed{0};
  std::atomic<std::uint64_t> fastpath_generic{0};

  GraphEntry(std::string graph_name, Graph loaded)
      : name(std::move(graph_name)), dynamic(std::move(loaded)) {
    // Materialized inline rather than via RefreshSnapshot(): no other
    // thread can reach the entry during construction, so the lock
    // RefreshSnapshot() requires would be pure overhead here.
    snapshot = dynamic.Materialize();
    indexes = GraphIndexes::Build(snapshot);
  }

  /// Re-materializes `snapshot` + `indexes` from `dynamic` after an UPDATE
  /// batch, under the exclusive lock the annotation demands.
  void RefreshSnapshot() EGO_REQUIRES(mutex) {
    snapshot = dynamic.Materialize();
    indexes = GraphIndexes::Build(snapshot);
  }
};

/// Summary row for STATUS.
struct GraphSummary {
  std::string name;
  std::uint32_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t version = 0;          // DynamicGraph mutation counter
  std::uint64_t updates_applied = 0;  // applied UPDATE batches
  std::uint64_t fastpath_routed = 0;  // aggregates taken by the fast path
  std::uint64_t fastpath_generic = 0;  // aggregates run by a generic engine
};

class GraphRegistry {
 public:
  /// Loads `path` and registers it as `name`. Fails with kInvalidArgument
  /// if the name is taken (unload first; silent replacement would yank a
  /// graph out from under concurrent clients by surprise).
  [[nodiscard]] Status LoadFromFile(const std::string& name,
                                    const std::string& path);

  /// Registers an already-built graph (tests, bench).
  [[nodiscard]] Status Add(const std::string& name, Graph graph);

  /// Removes `name` from the registry. In-flight requests holding the
  /// entry finish normally.
  [[nodiscard]] Status Unload(const std::string& name);

  /// Looks up `name`. kNotFound names the known graphs so clients can
  /// self-diagnose a typo from the error alone.
  [[nodiscard]] Result<std::shared_ptr<GraphEntry>> Get(
      const std::string& name) const;

  /// Snapshot of every entry (locks each entry shared, briefly).
  std::vector<GraphSummary> Summaries() const;

  std::size_t size() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<GraphEntry>> entries_
      EGO_GUARDED_BY(mutex_);
};

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_REGISTRY_H_
