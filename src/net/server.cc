#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "dynamic/update_stream.h"
#include "exec/governor.h"
#include "lang/engine.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "util/build_info.h"
#include "util/strings.h"
#include "util/timer.h"
#if EGO_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/prometheus.h"
#endif

namespace egocensus::net {

namespace {

/// Applies a server-wide cap to a per-request limit. 0 means "uncapped" on
/// both sides: no cap passes the request through, no request limit adopts
/// the cap (a server with caps never runs an unbounded request).
std::uint64_t ClampLimit(std::uint64_t requested, std::uint64_t cap) {
  if (cap == 0) return requested;
  if (requested == 0) return cap;
  return std::min(requested, cap);
}

/// Payload bytes a message encodes to (headers + separators + body), for
/// the ring buffer's bytes_in/bytes_out without re-encoding the frame.
std::uint64_t PayloadBytes(const Message& message) {
  std::uint64_t bytes = 1 + message.body.size();  // blank separator line
  for (const auto& [key, value] : message.headers) {
    bytes += key.size() + 2 + value.size() + 1;  // "key: value\n"
  }
  return bytes;
}

/// Watches a client socket while its request executes; a hangup cancels
/// the request's governor at the next cooperative checkpoint. Polls with
/// POLLRDHUP (half-close detection) plus a zero-byte MSG_PEEK probe on
/// POLLIN so pipelined request bytes are not mistaken for a disconnect.
class DisconnectWatcher {
 public:
  DisconnectWatcher(int fd, Governor* governor, int poll_ms,
                    std::atomic<std::uint64_t>* cancel_counter)
      : fd_(fd), governor_(governor), poll_ms_(poll_ms),
        cancel_counter_(cancel_counter) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~DisconnectWatcher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

  DisconnectWatcher(const DisconnectWatcher&) = delete;
  DisconnectWatcher& operator=(const DisconnectWatcher&) = delete;

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      pollfd pfd{fd_, POLLIN | POLLRDHUP, 0};
      int rc = ::poll(&pfd, 1, poll_ms_);
      if (rc < 0) continue;  // EINTR: retry
      if (rc == 0) continue;  // tick: re-check stop flag
      if ((pfd.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0) {
        Cancel();
        return;
      }
      if ((pfd.revents & POLLIN) != 0) {
        char probe;
        ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n == 0) {  // orderly EOF
          Cancel();
          return;
        }
        // n > 0: the client pipelined its next request; keep watching but
        // back off to plain hangup polling (POLLIN would spin otherwise).
        if (n > 0) {
          pollfd hup{fd_, POLLRDHUP, 0};
          ::poll(&hup, 1, poll_ms_);
        }
      }
    }
  }

  void Cancel() {
    governor_->RequestCancel();
    cancel_counter_->fetch_add(1, std::memory_order_relaxed);
  }

  int fd_;
  Governor* governor_;
  int poll_ms_;
  std::atomic<std::uint64_t>* cancel_counter_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// RAII release of a granted fair-queue slot: Dispatch holds it across the
/// handler, and release (not the response send) is what frees the slot for
/// the scheduler to grant on.
class QueueSlot {
 public:
  explicit QueueSlot(FairRequestQueue* queue) : queue_(queue) {}
  ~QueueSlot() { queue_->Release(); }
  QueueSlot(const QueueSlot&) = delete;
  QueueSlot& operator=(const QueueSlot&) = delete;

 private:
  FairRequestQueue* queue_;
};

/// Parses the census-shaping headers shared by the CLI and the wire
/// protocol into QueryEngine options. Returns the first invalid header as
/// a status.
[[nodiscard]] Status QueryOptionsFromHeaders(const Message& request,
                                             QueryEngine::Options* options) {
  options->rnd_seed = request.HeaderInt("seed", 99);
  options->census.num_threads =
      static_cast<std::uint32_t>(request.HeaderInt("threads", 1));
  std::string algorithm = request.Header("algorithm", "");
  if (!algorithm.empty()) {
    options->auto_algorithm = false;
    static const std::map<std::string, CensusAlgorithm> kNames = {
        {"nd-bas", CensusAlgorithm::kNdBas},
        {"nd-pvot", CensusAlgorithm::kNdPvot},
        {"nd-diff", CensusAlgorithm::kNdDiff},
        {"pt-bas", CensusAlgorithm::kPtBas},
        {"pt-opt", CensusAlgorithm::kPtOpt},
        {"pt-rnd", CensusAlgorithm::kPtRnd},
    };
    auto it = kNames.find(ToLower(algorithm));
    if (it == kNames.end()) {
      return Status::InvalidArgument("unknown algorithm " + algorithm);
    }
    options->census.algorithm = it->second;
  }
  std::string matcher = ToLower(request.Header("matcher", "cn"));
  if (matcher == "gql") {
    options->census.use_gql_matcher = true;
  } else if (matcher != "cn") {
    return Status::InvalidArgument("unknown matcher " + matcher +
                                   " (expected cn or gql)");
  }
  // Fast-path routing, mirroring the CLI rule: an explicit algorithm or
  // matcher header without a fast_path header pins the fast path off, so a
  // client that picked an engine gets that engine.
  std::string fast_path = ToLower(request.Header("fast_path", ""));
  if (fast_path.empty()) {
    if (request.HasHeader("algorithm") || request.HasHeader("matcher")) {
      options->census.fast_path = FastPathMode::kOff;
    }
  } else if (fast_path == "auto") {
    options->census.fast_path = FastPathMode::kAuto;
  } else if (fast_path == "force") {
    options->census.fast_path = FastPathMode::kForce;
  } else if (fast_path == "off") {
    options->census.fast_path = FastPathMode::kOff;
  } else {
    return Status::InvalidArgument("unknown fast_path " + fast_path +
                                   " (expected auto, force or off)");
  }
  if (request.HasHeader("degrade-approx")) {
    options->census.degrade_to_approx = true;
    std::uint64_t permille = request.HeaderInt("degrade-approx", 0);
    if (permille > 0 && permille <= 1000) {
      options->census.degrade_sample_rate =
          static_cast<double>(permille) / 1000.0;
    }
  }
  return Status::Ok();
}

/// Highest sortable column for top-N (mirrors the CLI: trailing .state
/// columns of interrupted governed runs do not sort).
std::size_t TopSortColumn(const ResultTable& table) {
  std::size_t cols = table.NumColumns();
  while (cols > 0 && EndsWith(table.columns()[cols - 1], ".state")) --cols;
  return cols;
}

/// Exposition label-value escaping for the always-compiled daemon families
/// (graph names are user strings). Kept local so this file never touches
/// the obs exporter outside its EGO_OBS_ENABLED gate.
std::string PromLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::uint64_t SecondsToMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

/// The exec_status a response reduces to in telemetry (ring, log event):
/// BUSY beats everything, then the handler's exec_status, then the error
/// code, then OK.
std::string ResponseExecStatus(const Message& response) {
  if (response.type == FrameType::kBusy) return "BUSY";
  return response.Header(
      "exec_status",
      response.Header(
          "code", response.type == FrameType::kError ? "INTERNAL" : "OK"));
}

}  // namespace

namespace {
QueueOptions QueueOptionsFrom(const CensusServer::Options& options) {
  QueueOptions queue;
  queue.slots = options.max_inflight;
  queue.max_depth = options.queue_depth;
  queue.max_bytes = options.queue_bytes;
  queue.quantum = options.queue_quantum;
  queue.poll_ms = options.queue_poll_ms;
  return queue;
}
}  // namespace

CensusServer::CensusServer(Options options)
    : options_(std::move(options)), queue_(QueueOptionsFrom(options_)) {}

CensusServer::~CensusServer() {
  RequestShutdown();
  Wait();
}

Status CensusServer::Start() {
  Status listening = listener_.Listen(options_.listen);
  if (!listening.ok()) return listening;
  started_micros_ = Timer::NowMicros();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void CensusServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void CensusServer::RequestShutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
}

CensusServer::DrainResult CensusServer::Drain(std::uint64_t drain_ms) {
  draining_.store(true, std::memory_order_relaxed);
  queue_.BeginDrain();
  DrainResult result;
  const std::uint64_t deadline_us = Timer::NowMicros() + drain_ms * 1000;
  // Phase 1: serve. Queued requests keep being granted as slots free; new
  // arrivals already bounce with BUSY (draining).
  while (!queue_.Idle() && Timer::NowMicros() < deadline_us) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  result.completed = queue_.Idle();
  // Phase 2: flush. Whatever is still queued at the deadline gets BUSY;
  // still-executing requests wind down on their own governors.
  result.flushed = queue_.FlushForDrain();
  // Phase 3: settle. Releasing a slot precedes the response send, so give
  // connection threads a bounded window to put the final RESULT/BUSY bytes
  // on the wire before shutdown hangs up the sockets: wait until the
  // completed counter stops moving (two quiet ticks), capped by a grace
  // budget on top of the drain deadline.
  const std::uint64_t grace_us =
      Timer::NowMicros() + std::max<std::uint64_t>(drain_ms * 250, 500'000);
  std::uint64_t last = completed_.load(std::memory_order_relaxed);
  int quiet = 0;
  while (quiet < 2 && Timer::NowMicros() < grace_us) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    std::uint64_t now = completed_.load(std::memory_order_relaxed);
    if (now == last && queue_.Idle()) {
      ++quiet;
    } else {
      quiet = 0;
      last = now;
    }
  }
  RequestShutdown();
  return result;
}

CensusServer::Counters CensusServer::counters() const {
  Counters counters;
  counters.connections = connections_count_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  counters.protocol_errors =
      protocol_errors_.load(std::memory_order_relaxed);
  counters.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  return counters;
}

std::deque<CensusServer::RequestRecord> CensusServer::RecentRequests() const {
  MutexLock lock(ring_mutex_);
  return ring_;
}

void CensusServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    // Draining: stop accepting. Closing the listener here is safe — the
    // accept thread owns it — and turns new connection attempts into
    // ECONNREFUSED instead of a socket that would only ever see BUSY.
    if (draining_.load(std::memory_order_relaxed) && listener_.valid()) {
      listener_.Close();
    }
    Result<Socket> accepted = Status::NotFound("listener closed for drain");
    if (listener_.valid()) {
      accepted = listener_.AcceptOnce(/*timeout_ms=*/100);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Reap finished connections so a long-lived daemon's list stays small.
    {
      MutexLock lock(connections_mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          (*it)->thread.join();
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!accepted.ok()) continue;  // timeout tick or transient error
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(*accepted);
    Connection* raw = connection.get();
    {
      MutexLock lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
  // Shutdown: hang up every live connection so blocked RecvFrames return,
  // then join the workers.
  std::list<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->socket.fd(), SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  listener_.Close();
}

void CensusServer::ServeConnection(Connection* connection) {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    auto request = connection->socket.RecvFrame();
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kParseError) {
        // Corrupt framing: report once (best effort), then drop the
        // connection — a byte stream cannot resynchronize mid-garbage.
        // The error never reached Dispatch, so stamp a fresh server id.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        RequestContext ctx;
        ctx.id = FormatRequestId(
            started_micros_,
            request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
        Status sent = connection->socket.SendFrame(
            ErrorResponse(ctx, request.status()));
        (void)sent;  // the peer may already be gone
      }
      break;  // clean EOF, corrupt stream, or socket error
    }
    if (!IsRequestType(request->type)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      RequestContext ctx;
      ctx.id = FormatRequestId(
          started_micros_,
          request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
      Status sent = connection->socket.SendFrame(ErrorResponse(
          ctx, Status::InvalidArgument(std::string("frame type ") +
                                       FrameTypeName(request->type) +
                                       " is a response type")));
      (void)sent;
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    bool close_after = false;
    Message response =
        Dispatch(*request, connection->socket.fd(), &close_after);
    Status sent = connection->socket.SendFrame(response);
    if (sent.ok()) completed_.fetch_add(1, std::memory_order_relaxed);
    if (close_after || !sent.ok()) break;
  }
  // Leave the socket open: the accept loop joins this thread and destroys
  // the connection (closing the fd) when it reaps. Closing here would race
  // with the shutdown path, which hangs up every fd still in the list — and
  // a concurrently recycled fd number could hijack an unrelated descriptor.
  connection->done.store(true, std::memory_order_release);
}

Message CensusServer::Dispatch(const Message& request, int client_fd,
                               bool* close_after) {
  Timer timer;
  RequestContext ctx;
  ctx.received_us = Timer::NowMicros();
  ctx.verb = FrameTypeName(request.type);
  ctx.graph = request.Header("graph", request.Header("name", ""));
  ctx.bytes_in = PayloadBytes(request);
  ctx.id = request.Header("request_id", "");
  if (!ValidRequestId(ctx.id)) {
    ctx.id = FormatRequestId(
        started_micros_,
        request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  std::uint8_t verb_byte = static_cast<std::uint8_t>(request.type);
  if (verb_byte < verb_counts_.size()) {
    verb_counts_[verb_byte].fetch_add(1, std::memory_order_relaxed);
  }

  Message response;
  switch (request.type) {
    case FrameType::kQuery:
    case FrameType::kUpdate: {
      ctx.tenant = request.Header("tenant", "");
      if (!ValidTenant(ctx.tenant)) ctx.tenant = kDefaultTenant;
      // Absolute deadline anchored at frame receipt, computed before
      // admission: time spent queued is charged against the same budget
      // the Governor enforces, and a request whose deadline dies in the
      // queue is evicted without ever executing.
      std::uint64_t deadline_ms = ClampLimit(
          request.HeaderInt("deadline_ms", 0), options_.max_deadline_ms);
      if (deadline_ms > 0) {
        ctx.deadline_us = ctx.received_us + deadline_ms * 1000;
      }
      AdmitOutcome admitted =
          queue_.Acquire(ctx.tenant, ctx.bytes_in, ctx.deadline_us, client_fd,
                         &ctx.queue_wait_us);
      switch (admitted) {
        case AdmitOutcome::kGranted: {
          QueueSlot slot(&queue_);
          response = request.type == FrameType::kQuery
                         ? HandleQuery(request, client_fd, ctx)
                         : HandleUpdate(request, client_fd, ctx);
          break;
        }
        case AdmitOutcome::kOverflow:
          busy_rejected_.fetch_add(1, std::memory_order_relaxed);
          response = BusyResponse(
              ctx, inflight(), options_.max_inflight, queue_.depth(),
              RetryAfterMsHint(), /*draining=*/false,
              "queue full: " + std::to_string(queue_.depth()) +
                  " requests queued behind " +
                  std::to_string(options_.max_inflight) +
                  " in flight; retry later");
          break;
        case AdmitOutcome::kDraining:
          busy_rejected_.fetch_add(1, std::memory_order_relaxed);
          response = BusyResponse(
              ctx, inflight(), options_.max_inflight, queue_.depth(),
              RetryAfterMsHint(), /*draining=*/true,
              "server draining: retry against another instance");
          break;
        case AdmitOutcome::kDeadlineExpired:
          response = ErrorResponse(
              ctx,
              Status::DeadlineExceeded(
                  "request " + ctx.id + ": deadline expired after " +
                      std::to_string(ctx.queue_wait_us / 1000) +
                      " ms queued, before execution began"),
              RetryAfterMsHint());
          response.headers["stop_reason"] =
              StopReasonName(StopReason::kDeadlineExceeded);
          break;
        case AdmitOutcome::kDisconnected:
          // The client is gone; compose the ERROR anyway so telemetry
          // records a terminal outcome (the send fails and the connection
          // closes).
          disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
          response = ErrorResponse(
              ctx, Status::Cancelled(
                       "request " + ctx.id +
                       ": client disconnected while queued"));
          response.headers["stop_reason"] =
              StopReasonName(StopReason::kCancelled);
          break;
      }
      break;
    }
    case FrameType::kStatus:
      response = HandleStatus(request, ctx);
      break;
    case FrameType::kMetrics:
      response = HandleMetrics(request, ctx);
      break;
    case FrameType::kLoad:
      response = HandleLoad(request, ctx);
      break;
    case FrameType::kUnload:
      response = HandleUnload(request, ctx);
      break;
    case FrameType::kShutdown:
      response.type = FrameType::kResult;
      response.body = "shutting down\n";
      RequestShutdown();
      *close_after = true;
      break;
    default:
      response = ErrorResponse(ctx, Status::InvalidArgument(
          std::string("unhandled frame type ") +
          FrameTypeName(request.type)));
      break;
  }
  response.headers["server"] = BuildInfoString();
  // Every response — RESULT, ERROR, BUSY — echoes the request id, so a
  // client can correlate any outcome with the server's log and metrics.
  response.headers["request_id"] = ctx.id;
  FinishRequest(ctx, request, response,
                static_cast<std::uint64_t>(timer.ElapsedMicros()));
  return response;
}

Message CensusServer::HandleQuery(const Message& request, int client_fd,
                                  RequestContext& ctx) {
  std::string graph_name = request.Header("graph", "");
  if (graph_name.empty()) {
    return ErrorResponse(ctx, 
        Status::InvalidArgument("QUERY requires a 'graph' header"));
  }
  if (request.body.empty()) {
    return ErrorResponse(ctx, Status::InvalidArgument(
        "QUERY requires the query text as the frame body"));
  }
  auto entry = registry_.Get(graph_name);
  if (!entry.ok()) return ErrorResponse(ctx, entry.status());

  QueryEngine::Options options;
  Status parsed = QueryOptionsFromHeaders(request, &options);
  if (!parsed.ok()) return ErrorResponse(ctx, parsed);
  options.census.num_threads = static_cast<std::uint32_t>(ClampLimit(
      options.census.num_threads, options_.max_threads));

  // Every remote query is governed: even without explicit limits the
  // governor carries the cancel-on-disconnect token, and the server caps
  // apply regardless of what the client asked for. The deadline is the
  // absolute one computed at dispatch — queue wait already spent part of
  // the budget.
  Governor governor;
  governor.SetAnnotation("request " + ctx.id);
  governor.SetQueueWaitMicros(ctx.queue_wait_us);
  if (ctx.deadline_us > 0) {
    governor.SetDeadline(Deadline::AtMicros(ctx.deadline_us));
  }
  std::uint64_t budget_mb = ClampLimit(request.HeaderInt("memory_budget_mb", 0),
                                       options_.max_memory_budget_mb);
  if (budget_mb > 0) {
    governor.SetMemoryLimitBytes(budget_mb * 1024ull * 1024ull);
  }
  options.census.governor = &governor;

  // Shared lock: concurrent QUERYs run together; UPDATE waits for all of
  // them and vice versa.
  GraphEntry& graph = **entry;
  SharedMutexLock lock(graph.mutex);
  ctx.exec_begin_us = Timer::NowMicros();
#if EGO_OBS_ENABLED
  obs::MetricsSnapshot before;
  if (obs::Enabled()) before = obs::Registry::Global().Snapshot();
#endif
  Message response;
  {
    DisconnectWatcher watcher(client_fd, &governor,
                              options_.disconnect_poll_ms,
                              &disconnect_cancels_);
    QueryEngine engine(graph.snapshot, &graph.indexes);
    auto table = engine.Execute(request.body, options);
    if (!table.ok()) return ErrorResponse(ctx, table.status());

    Status exec_status = engine.last_exec_status();
    std::uint64_t complete = 0, approx = 0, pending = 0;
    for (const QueryEngine::AggregateExec& exec : engine.last_exec()) {
      complete += exec.complete;
      approx += exec.approx;
      pending += exec.pending;
    }
    // Per-graph routing tallies (surfaced in STATUS): one count per census
    // aggregate, attributed to the engine that actually ran it.
    std::uint64_t routed = 0, generic = 0;
    std::uint64_t phase_offset_us = ctx.QueueMicros();
    std::size_t aggregate = 0;
    for (const CensusStats& stats : engine.last_stats()) {
      if (stats.fastpath_routed != 0) {
        ++routed;
      } else {
        ++generic;
      }
      if (stats.threads_used > ctx.threads) ctx.threads = stats.threads_used;
      if (stats.pattern_nodes > ctx.pattern_nodes) {
        ctx.pattern_nodes = stats.pattern_nodes;
      }
      if (stats.k > ctx.k) ctx.k = stats.k;
      // Per-aggregate phase spans, laid out sequentially from the measured
      // phase durations (aggregates of one query do run in sequence; the
      // offsets are therefore approximate only across parse/format gaps).
      const std::string prefix = "agg" + std::to_string(aggregate++) + "/";
      const std::pair<const char*, double> phases[] = {
          {"match", stats.match_seconds},
          {"index", stats.index_seconds},
          {"census", stats.census_seconds}};
      for (const auto& [phase, seconds] : phases) {
        std::uint64_t dur = SecondsToMicros(seconds);
        if (dur == 0) continue;
        ctx.AddSpan(prefix + phase, phase_offset_us, dur);
        phase_offset_us += dur;
      }
    }
    ctx.fastpath_routed = routed;
    ctx.fastpath_generic = generic;
    graph.fastpath_routed.fetch_add(routed, std::memory_order_relaxed);
    graph.fastpath_generic.fetch_add(generic,
                                         std::memory_order_relaxed);
    if (request.HasHeader("top") && TopSortColumn(*table) >= 2) {
      table->SortByColumnDesc(TopSortColumn(*table) - 1);
    }
    ctx.rows = table->NumRows();
    response.type = FrameType::kResult;
    response.headers["exec_status"] = StatusCodeName(exec_status.code());
    if (!exec_status.ok()) {
      response.headers["exec_message"] = exec_status.message();
    }
    response.headers["stop_reason"] = StopReasonName(governor.reason());
    response.headers["rows"] = std::to_string(table->NumRows());
    response.headers["focal_complete"] = std::to_string(complete);
    response.headers["focal_approx"] = std::to_string(approx);
    response.headers["focal_pending"] = std::to_string(pending);
    response.headers["fastpath_routed"] = std::to_string(routed);
    response.headers["graph_version"] =
        std::to_string(graph.dynamic.version());
    std::ostringstream body;
    if (request.Header("format", "csv") == "text") {
      std::size_t limit = request.HasHeader("top")
                              ? static_cast<std::size_t>(
                                    request.HeaderInt("top", 20))
                              : table->NumRows();
      body << table->ToString(limit);
    } else {
      table->WriteCsv(body);
    }
    response.body = body.str();
  }
#if EGO_OBS_ENABLED
  // Counter deltas across the execution window: what this request added to
  // the registry, attributable because the graph lock and admission gate
  // do not serialize concurrent queries — the delta is exact only for the
  // metrics this request touched alone, so treat overlapping-traffic
  // deltas as attribution hints, not invariants.
  if (obs::Enabled()) {
    obs::MetricsSnapshot after = obs::Registry::Global().Snapshot();
    for (const auto& [name, value] : after.counters) {
      auto it = before.counters.find(name);
      std::uint64_t prior = it == before.counters.end() ? 0 : it->second;
      if (value > prior) ctx.obs_delta[name] = value - prior;
    }
  }
#endif
  return response;
}

Message CensusServer::HandleUpdate(const Message& request, int client_fd,
                                   RequestContext& ctx) {
  std::string graph_name = request.Header("graph", "");
  if (graph_name.empty()) {
    return ErrorResponse(ctx, 
        Status::InvalidArgument("UPDATE requires a 'graph' header"));
  }
  auto entry = registry_.Get(graph_name);
  if (!entry.ok()) return ErrorResponse(ctx, entry.status());

  std::istringstream body(request.body);
  auto updates = ParseUpdateStream(body);
  if (!updates.ok()) return ErrorResponse(ctx, updates.status());

  Governor governor;
  governor.SetAnnotation("request " + ctx.id);
  governor.SetQueueWaitMicros(ctx.queue_wait_us);
  if (ctx.deadline_us > 0) {
    governor.SetDeadline(Deadline::AtMicros(ctx.deadline_us));
  }

  // Exclusive lock: the batch is atomic with respect to queries — they see
  // the graph before it or after it, never between two of its updates.
  GraphEntry& graph = **entry;
  SharedMutexExclusiveLock lock(graph.mutex);
  ctx.exec_begin_us = Timer::NowMicros();
  ctx.threads = 1;
  std::uint64_t applied = 0, noop = 0;
  Status exec_status = Status::Ok();
  {
    DisconnectWatcher watcher(client_fd, &governor,
                              options_.disconnect_poll_ms,
                              &disconnect_cancels_);
    for (const GraphUpdate& update : *updates) {
      if (governor.Checkpoint() != StopReason::kNone) {
        exec_status = governor.ToStatus("update batch");
        break;
      }
      auto result = graph.dynamic.Apply(update);
      if (!result.ok()) {
        exec_status = result.status();
        break;
      }
      if (*result) {
        ++applied;
      } else {
        ++noop;
      }
    }
  }
  if (applied > 0) {
    if (graph.dynamic.DeltaFraction() > 0.25) graph.dynamic.Compact();
    graph.RefreshSnapshot();
    ++graph.updates_applied;
  }

  Message response;
  response.type = FrameType::kResult;
  response.headers["exec_status"] = StatusCodeName(exec_status.code());
  if (!exec_status.ok()) {
    response.headers["exec_message"] = exec_status.message();
  }
  response.headers["stop_reason"] = StopReasonName(governor.reason());
  response.headers["applied"] = std::to_string(applied);
  response.headers["noop"] = std::to_string(noop);
  response.headers["nodes"] = std::to_string(graph.dynamic.NumNodes());
  response.headers["edges"] = std::to_string(graph.dynamic.NumEdges());
  response.headers["graph_version"] =
      std::to_string(graph.dynamic.version());
  response.body = "applied " + std::to_string(applied) + " updates (" +
                  std::to_string(noop) + " no-ops)\n";
  return response;
}

Message CensusServer::HandleStatus(const Message& request,
                                   RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  Message response;
  response.type = FrameType::kResult;
  response.headers["content"] = "application/json";
  // `slow_trace: <request_id>` (empty value = newest capture) swaps the
  // body for that slow query's Chrome trace (docs/OBSERVABILITY.md).
  if (request.HasHeader("slow_trace")) {
    std::string trace = SlowQueryTraceJson(request.Header("slow_trace", ""));
    if (trace.empty()) {
      return ErrorResponse(ctx, Status::NotFound(
          "no slow-query capture for request id '" +
          request.Header("slow_trace", "") + "'"));
    }
    response.body = std::move(trace);
    return response;
  }
  response.body = StatusJson();
  return response;
}

Message CensusServer::HandleMetrics(const Message& request,
                                    RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  Message response;
  response.type = FrameType::kResult;
  response.headers["content"] = "text/plain; version=0.0.4";
  std::ostringstream os;
  WriteDaemonExposition(os);
#if EGO_OBS_ENABLED
  // The engine-level registry families render from a point-in-time shard
  // merge — recording threads never block on exposition.
  if (obs::Enabled()) {
    obs::WritePrometheus(obs::Registry::Global().Snapshot(), os);
  }
#endif
  response.body = os.str();
  return response;
}

Message CensusServer::HandleLoad(const Message& request, RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  std::string name = request.Header("name", "");
  std::string path = request.Header("path", "");
  if (name.empty() || path.empty()) {
    return ErrorResponse(ctx, Status::InvalidArgument(
        "LOAD requires 'name' and 'path' headers"));
  }
  Status loaded = registry_.LoadFromFile(name, path);
  if (!loaded.ok()) return ErrorResponse(ctx, loaded);
  Message response;
  response.type = FrameType::kResult;
  response.body = "loaded '" + name + "' from " + path + "\n";
  return response;
}

Message CensusServer::HandleUnload(const Message& request,
                                   RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  std::string name = request.Header("name", "");
  if (name.empty()) {
    return ErrorResponse(ctx, 
        Status::InvalidArgument("UNLOAD requires a 'name' header"));
  }
  Status unloaded = registry_.Unload(name);
  if (!unloaded.ok()) return ErrorResponse(ctx, unloaded);
  Message response;
  response.type = FrameType::kResult;
  response.body = "unloaded '" + name + "'\n";
  return response;
}

std::string CensusServer::StatusJson() const {
  BuildInfo build = GetBuildInfo();
  Counters counters = this->counters();
  std::ostringstream os;
  os << "{\n";
  // Versioned STATUS schema (docs/SERVER.md): bump on any rename/removal;
  // additive fields keep the version. 2 added the fair-queue admission
  // fields, the tenants array, and tenant/queue_us on recent entries.
  os << "  \"schema\": 2,\n";
  os << "  \"server\": {\"build\": \"" << JsonEscape(BuildInfoString())
     << "\", \"git\": \"" << JsonEscape(build.git_describe)
     << "\", \"build_type\": \"" << JsonEscape(build.build_type)
     << "\", \"obs\": " << (build.obs_enabled ? "true" : "false")
     << ", \"failpoints\": " << (build.failpoints_enabled ? "true" : "false")
     << ", \"protocol\": " << kProtocolVersion
     << ", \"pid\": " << ::getpid()
     << ", \"uptime_us\": " << (Timer::NowMicros() - started_micros_)
     << "},\n";
  os << "  \"admission\": {\"inflight\": " << inflight()
     << ", \"capacity\": " << options_.max_inflight
     << ", \"peak_inflight\": " << queue_.peak_active()
     << ", \"queued\": " << queue_.depth()
     << ", \"queue_capacity\": " << options_.queue_depth
     << ", \"queued_bytes\": " << queue_.queued_bytes()
     << ", \"queue_bytes_capacity\": " << options_.queue_bytes
     << ", \"draining\": " << (draining() ? "true" : "false")
     << ", \"busy_rejected\": " << counters.busy_rejected << "},\n";
  os << "  \"tenants\": [";
  {
    bool first_tenant = true;
    for (const TenantQueueStats& t : queue_.TenantStats()) {
      if (!first_tenant) os << ", ";
      first_tenant = false;
      os << "{\"tenant\": \"" << JsonEscape(t.tenant)
         << "\", \"queued\": " << t.depth << ", \"enqueued\": " << t.enqueued
         << ", \"granted\": " << t.granted
         << ", \"busy_overflow\": " << t.busy_overflow
         << ", \"evicted\": {\"deadline\": " << t.evicted_deadline
         << ", \"disconnect\": " << t.evicted_disconnect
         << ", \"drain\": " << t.evicted_drain
         << "}, \"wait\": {\"count\": " << t.wait_count
         << ", \"sum_us\": " << t.wait_sum_us
         << ", \"max_us\": " << t.wait_max_us << "}}";
    }
  }
  os << "],\n";
  os << "  \"caps\": {\"max_deadline_ms\": " << options_.max_deadline_ms
     << ", \"max_memory_budget_mb\": " << options_.max_memory_budget_mb
     << ", \"max_threads\": " << options_.max_threads << "},\n";
  os << "  \"counters\": {\"connections\": " << counters.connections
     << ", \"requests\": " << counters.requests
     << ", \"completed\": " << counters.completed
     << ", \"protocol_errors\": " << counters.protocol_errors
     << ", \"disconnect_cancels\": " << counters.disconnect_cancels
     << ", \"verbs\": {";
  {
    static constexpr FrameType kVerbs[] = {
        FrameType::kQuery,  FrameType::kUpdate,   FrameType::kStatus,
        FrameType::kLoad,   FrameType::kUnload,   FrameType::kShutdown,
        FrameType::kMetrics};
    bool first_verb = true;
    for (FrameType verb : kVerbs) {
      if (!first_verb) os << ", ";
      first_verb = false;
      os << "\"" << FrameTypeName(verb) << "\": " << VerbCount(verb);
    }
  }
  os << "}},\n";
  os << "  \"graphs\": [";
  bool first = true;
  for (const GraphSummary& graph : registry_.Summaries()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << JsonEscape(graph.name)
       << "\", \"nodes\": " << graph.nodes << ", \"edges\": " << graph.edges
       << ", \"version\": " << graph.version
       << ", \"updates_applied\": " << graph.updates_applied
       << ", \"fastpath\": {\"routed\": " << graph.fastpath_routed
       << ", \"generic\": " << graph.fastpath_generic << "}}";
  }
  os << "],\n";
  os << "  \"recent\": [";
  first = true;
  for (const RequestRecord& record : RecentRequests()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"request_id\": \"" << JsonEscape(record.request_id)
       << "\", \"type\": \"" << JsonEscape(record.type) << "\", \"graph\": \""
       << JsonEscape(record.graph) << "\", \"tenant\": \""
       << JsonEscape(record.tenant) << "\", \"exec_status\": \""
       << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
       << JsonEscape(record.stop_reason)
       << "\", \"latency_us\": " << record.latency_us
       << ", \"queue_us\": " << record.queue_us
       << ", \"bytes_in\": " << record.bytes_in
       << ", \"bytes_out\": " << record.bytes_out << "}";
  }
  os << "],\n";
  os << "  \"slow_queries\": [";
  first = true;
  for (const SlowQueryRecord& record : SlowQueries()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"request_id\": \"" << JsonEscape(record.request_id)
       << "\", \"type\": \"" << JsonEscape(record.type) << "\", \"graph\": \""
       << JsonEscape(record.graph) << "\", \"exec_status\": \""
       << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
       << JsonEscape(record.stop_reason)
       << "\", \"latency_us\": " << record.latency_us
       << ", \"spans\": " << record.spans.size() << "}";
  }
  os << "]";
#if EGO_OBS_ENABLED
  if (obs::Enabled()) {
    os << ",\n  \"metrics\": ";
    obs::Registry::Global().Snapshot().WriteJson(os);
  }
#endif
  os << "\n}\n";
  return os.str();
}

std::uint64_t CensusServer::VerbCount(FrameType type) const {
  std::uint8_t byte = static_cast<std::uint8_t>(type);
  if (byte >= verb_counts_.size()) return 0;
  return verb_counts_[byte].load(std::memory_order_relaxed);
}

std::deque<CensusServer::SlowQueryRecord> CensusServer::SlowQueries() const {
  MutexLock lock(slow_mutex_);
  return slow_ring_;
}

std::string CensusServer::SlowQueryTraceJson(
    const std::string& request_id) const {
  SlowQueryRecord record;
  {
    MutexLock lock(slow_mutex_);
    if (slow_ring_.empty()) return "";
    if (request_id.empty() || request_id == "latest") {
      record = slow_ring_.front();
    } else {
      bool found = false;
      for (const SlowQueryRecord& candidate : slow_ring_) {
        if (candidate.request_id == request_id) {
          record = candidate;
          found = true;
          break;
        }
      }
      if (!found) return "";
    }
  }
  // Chrome trace-event JSON (chrome://tracing, Perfetto): one complete
  // ("ph":"X") event per span plus a request-spanning root, all on one
  // logical track, timestamps absolute on the server's steady clock.
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "  {\"name\": \"" << JsonEscape(record.type) << " "
     << JsonEscape(record.request_id) << "\", \"ph\": \"X\", \"ts\": "
     << record.received_us << ", \"dur\": " << record.latency_us
     << ", \"pid\": 1, \"tid\": 1, \"args\": {\"graph\": \""
     << JsonEscape(record.graph) << "\", \"exec_status\": \""
     << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
     << JsonEscape(record.stop_reason) << "\"}}";
  for (const PhaseSpan& span : record.spans) {
    os << ",\n  {\"name\": \"" << JsonEscape(span.name)
       << "\", \"ph\": \"X\", \"ts\": " << (record.received_us + span.begin_us)
       << ", \"dur\": " << span.dur_us << ", \"pid\": 1, \"tid\": 1}";
  }
  os << "\n]}\n";
  return os.str();
}

void CensusServer::WriteDaemonExposition(std::ostream& os) const {
  Counters counters = this->counters();
  os << "# HELP egocensus_daemon_uptime_seconds seconds since Start()\n"
     << "# TYPE egocensus_daemon_uptime_seconds gauge\n"
     << "egocensus_daemon_uptime_seconds "
     << static_cast<double>(Timer::NowMicros() - started_micros_) / 1e6
     << "\n";
  os << "# HELP egocensus_daemon_inflight executing QUERY/UPDATE requests\n"
     << "# TYPE egocensus_daemon_inflight gauge\n"
     << "egocensus_daemon_inflight " << inflight() << "\n";
  os << "# HELP egocensus_daemon_requests_total dispatched frames by verb\n"
     << "# TYPE egocensus_daemon_requests_total counter\n";
  static constexpr FrameType kVerbs[] = {
      FrameType::kQuery,  FrameType::kUpdate,   FrameType::kStatus,
      FrameType::kLoad,   FrameType::kUnload,   FrameType::kShutdown,
      FrameType::kMetrics};
  for (FrameType verb : kVerbs) {
    os << "egocensus_daemon_requests_total{verb=\"" << FrameTypeName(verb)
       << "\"} " << VerbCount(verb) << "\n";
  }
  os << "# HELP egocensus_daemon_connections_total accepted sockets\n"
     << "# TYPE egocensus_daemon_connections_total counter\n"
     << "egocensus_daemon_connections_total " << counters.connections << "\n";
  os << "# HELP egocensus_daemon_busy_rejected_total admission rejections\n"
     << "# TYPE egocensus_daemon_busy_rejected_total counter\n"
     << "egocensus_daemon_busy_rejected_total " << counters.busy_rejected
     << "\n";
  os << "# HELP egocensus_daemon_draining 1 while a graceful drain is in "
        "progress\n"
     << "# TYPE egocensus_daemon_draining gauge\n"
     << "egocensus_daemon_draining " << (draining() ? 1 : 0) << "\n";
  const std::vector<TenantQueueStats> tenants = queue_.TenantStats();
  os << "# HELP egocensus_daemon_queue_depth requests queued per tenant\n"
     << "# TYPE egocensus_daemon_queue_depth gauge\n";
  for (const TenantQueueStats& t : tenants) {
    os << "egocensus_daemon_queue_depth{tenant=\"" << PromLabel(t.tenant)
       << "\"} " << t.depth << "\n";
  }
  os << "# HELP egocensus_daemon_queue_granted_total execution slots "
        "granted per tenant\n"
     << "# TYPE egocensus_daemon_queue_granted_total counter\n";
  for (const TenantQueueStats& t : tenants) {
    os << "egocensus_daemon_queue_granted_total{tenant=\""
       << PromLabel(t.tenant) << "\"} " << t.granted << "\n";
  }
  os << "# HELP egocensus_daemon_queue_rejected_total requests that left "
        "the queue without executing, by reason\n"
     << "# TYPE egocensus_daemon_queue_rejected_total counter\n";
  for (const TenantQueueStats& t : tenants) {
    const std::pair<const char*, std::uint64_t> reasons[] = {
        {"overflow", t.busy_overflow},
        {"deadline", t.evicted_deadline},
        {"disconnect", t.evicted_disconnect},
        {"drain", t.evicted_drain}};
    for (const auto& [reason, count] : reasons) {
      os << "egocensus_daemon_queue_rejected_total{tenant=\""
         << PromLabel(t.tenant) << "\",reason=\"" << reason << "\"} " << count
         << "\n";
    }
  }
  // Queue-wait histogram per tenant, cumulative buckets in the same log2
  // layout as the obs exporter: upper bounds 0, 2^b - 1, +Inf.
  os << "# HELP egocensus_daemon_queue_wait_us fair-queue wait of granted "
        "requests\n"
     << "# TYPE egocensus_daemon_queue_wait_us histogram\n";
  for (const TenantQueueStats& t : tenants) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < t.wait_buckets.size(); ++b) {
      cumulative += t.wait_buckets[b];
      std::uint64_t upper = b == 0 ? 0 : (1ull << b) - 1;
      os << "egocensus_daemon_queue_wait_us_bucket{tenant=\""
         << PromLabel(t.tenant) << "\",le=\"" << upper << "\"} " << cumulative
         << "\n";
    }
    os << "egocensus_daemon_queue_wait_us_bucket{tenant=\""
       << PromLabel(t.tenant) << "\",le=\"+Inf\"} " << t.wait_count << "\n";
    os << "egocensus_daemon_queue_wait_us_sum{tenant=\""
       << PromLabel(t.tenant) << "\"} " << t.wait_sum_us << "\n";
    os << "egocensus_daemon_queue_wait_us_count{tenant=\""
       << PromLabel(t.tenant) << "\"} " << t.wait_count << "\n";
  }
  os << "# HELP egocensus_daemon_protocol_errors_total corrupt frames\n"
     << "# TYPE egocensus_daemon_protocol_errors_total counter\n"
     << "egocensus_daemon_protocol_errors_total " << counters.protocol_errors
     << "\n";
  os << "# HELP egocensus_daemon_disconnect_cancels_total censuses cancelled "
        "by client hangup\n"
     << "# TYPE egocensus_daemon_disconnect_cancels_total counter\n"
     << "egocensus_daemon_disconnect_cancels_total "
     << counters.disconnect_cancels << "\n";
  os << "# HELP egocensus_daemon_fastpath_total census aggregates by graph "
        "and routing\n"
     << "# TYPE egocensus_daemon_fastpath_total counter\n";
  for (const GraphSummary& graph : registry_.Summaries()) {
    os << "egocensus_daemon_fastpath_total{graph=\"" << PromLabel(graph.name)
       << "\",route=\"routed\"} " << graph.fastpath_routed << "\n";
    os << "egocensus_daemon_fastpath_total{graph=\"" << PromLabel(graph.name)
       << "\",route=\"generic\"} " << graph.fastpath_generic << "\n";
  }
  std::size_t slow = 0;
  {
    MutexLock lock(slow_mutex_);
    slow = slow_ring_.size();
  }
  os << "# HELP egocensus_daemon_slow_queries captured slow-query ring size\n"
     << "# TYPE egocensus_daemon_slow_queries gauge\n"
     << "egocensus_daemon_slow_queries " << slow << "\n";
}

std::uint64_t CensusServer::RetryAfterMsHint() const {
  std::uint64_t ewma_us = exec_ewma_us_.load(std::memory_order_relaxed);
  if (ewma_us == 0) ewma_us = 50'000;  // no history yet: assume 50 ms
  // Rough time until a new arrival would reach a slot: the backlog spread
  // across the slots, plus one residual execution.
  const std::uint64_t pending = queue_.depth() + queue_.active();
  const std::uint64_t slots = std::max<std::uint32_t>(options_.max_inflight, 1);
  const std::uint64_t hint_ms = ewma_us * (pending / slots + 1) / 1000;
  return std::clamp<std::uint64_t>(hint_ms, 25, 10'000);
}

void CensusServer::FinishRequest(const RequestContext& ctx,
                                 const Message& request,
                                 const Message& response,
                                 std::uint64_t latency_us) {
  const std::string exec_status = ResponseExecStatus(response);
  const std::string stop_reason = response.Header("stop_reason", "none");
  const std::uint64_t bytes_out = PayloadBytes(response);
  // QueueMicros spans dispatch -> exec begin, so it includes both the
  // fair-queue wait and the graph-lock wait; for requests evicted before
  // execution it is zero and the measured queue wait is the whole story.
  const std::uint64_t queue_us =
      std::min(std::max(ctx.QueueMicros(), ctx.queue_wait_us), latency_us);
  const std::uint64_t execute_us =
      ctx.exec_begin_us == 0 ? 0 : latency_us - queue_us;

  // Feed the retry_after_ms estimator: an EWMA (7/8 old, 1/8 new) of
  // execute time for requests that actually ran. Racy read-modify-write is
  // fine — this is a hint, not an invariant.
  if (execute_us > 0 && (request.type == FrameType::kQuery ||
                         request.type == FrameType::kUpdate)) {
    std::uint64_t prev = exec_ewma_us_.load(std::memory_order_relaxed);
    std::uint64_t next = prev == 0 ? execute_us : (prev * 7 + execute_us) / 8;
    exec_ewma_us_.store(next, std::memory_order_relaxed);
  }

  RequestRecord record;
  record.request_id = ctx.id;
  record.type = ctx.verb;
  record.graph = ctx.graph;
  record.tenant = ctx.tenant;
  record.exec_status = exec_status;
  record.stop_reason = stop_reason;
  record.latency_us = latency_us;
  record.queue_us = queue_us;
  record.bytes_in = ctx.bytes_in;
  record.bytes_out = bytes_out;
  {
    MutexLock lock(ring_mutex_);
    ring_.push_front(std::move(record));
    while (ring_.size() > options_.ring_capacity) ring_.pop_back();
  }

#if EGO_OBS_ENABLED
  // Request-scoped registry families, labeled by verb/graph so the METRICS
  // exposition can slice traffic (docs/OBSERVABILITY.md).
  if (obs::Enabled()) {
    const std::vector<std::pair<std::string_view, std::string_view>> labels =
        {{"verb", ctx.verb}, {"graph", ctx.graph}};
    obs::CounterAdd(obs::LabeledName("server/requests", labels), 1);
    obs::HistogramRecord(obs::LabeledName("server/latency_us", labels),
                         latency_us);
    obs::CounterAdd(obs::LabeledName("server/bytes_out", labels), bytes_out);
    if (exec_status != "OK") {
      obs::CounterAdd(obs::LabeledName("server/request_errors", labels), 1);
    }
  }
#endif

  // The canonical wide event: one line per request (docs/OBSERVABILITY.md,
  // "Request telemetry"). No-op unless a sink is configured.
  obs::Logger& logger = obs::Logger::Global();
  if (logger.enabled()) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    if (response.type == FrameType::kBusy) level = obs::LogLevel::kWarn;
    if (response.type == FrameType::kError) level = obs::LogLevel::kError;
    if (logger.ShouldLog(level)) {
      obs::LogEvent event("request");
      event.Str("request_id", ctx.id)
          .Str("verb", ctx.verb)
          .Str("graph", ctx.graph)
          .Str("status", exec_status);
      if (!ctx.tenant.empty()) event.Str("tenant", ctx.tenant);
      event.Str("stop_reason", stop_reason)
          .Int("queue_us", queue_us)
          .Int("execute_us", execute_us)
          .Int("latency_us", latency_us)
          .Int("bytes_in", ctx.bytes_in)
          .Int("bytes_out", bytes_out);
      if (response.HasHeader("exec_message")) {
        event.Str("exec_message", response.Header("exec_message", ""));
      }
      if (request.type == FrameType::kQuery) {
        event.Int("rows", ctx.rows)
            .Int("threads", ctx.threads)
            .Int("pattern_nodes", ctx.pattern_nodes)
            .Int("k", ctx.k)
            .Int("fastpath_routed", ctx.fastpath_routed)
            .Int("fastpath_generic", ctx.fastpath_generic);
      }
      if (!ctx.obs_delta.empty()) {
        std::string deltas = "{";
        bool first = true;
        for (const auto& [name, value] : ctx.obs_delta) {
          if (!first) deltas += ",";
          first = false;
          deltas += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
        }
        deltas += "}";
        event.Raw("obs", deltas);
      }
      logger.Write(level, event);
    }
  }

  // Slow-query capture: the request's span tree + metric deltas, bounded
  // ring, retrievable via STATUS (headers slow_trace / the slow_queries
  // summary array).
  if (options_.slow_query_threshold_ms > 0 &&
      latency_us >= options_.slow_query_threshold_ms * 1000) {
    SlowQueryRecord slow;
    slow.request_id = ctx.id;
    slow.type = ctx.verb;
    slow.graph = ctx.graph;
    slow.exec_status = exec_status;
    slow.stop_reason = stop_reason;
    slow.received_us = ctx.received_us;
    slow.latency_us = latency_us;
    slow.spans = ctx.spans;
    if (queue_us > 0) {
      slow.spans.insert(slow.spans.begin(), PhaseSpan{"queue", 0, queue_us});
    }
    if (execute_us > 0) {
      slow.spans.insert(slow.spans.begin() + (queue_us > 0 ? 1 : 0),
                        PhaseSpan{"execute", queue_us, execute_us});
    }
    slow.counters = ctx.obs_delta;
    MutexLock lock(slow_mutex_);
    slow_ring_.push_front(std::move(slow));
    while (slow_ring_.size() > options_.slow_ring_capacity) {
      slow_ring_.pop_back();
    }
  }
}

}  // namespace egocensus::net
