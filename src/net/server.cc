#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "dynamic/update_stream.h"
#include "exec/governor.h"
#include "lang/engine.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "util/build_info.h"
#include "util/strings.h"
#include "util/timer.h"
#if EGO_OBS_ENABLED
#include "obs/metrics.h"
#include "obs/prometheus.h"
#endif

namespace egocensus::net {

namespace {

/// Applies a server-wide cap to a per-request limit. 0 means "uncapped" on
/// both sides: no cap passes the request through, no request limit adopts
/// the cap (a server with caps never runs an unbounded request).
std::uint64_t ClampLimit(std::uint64_t requested, std::uint64_t cap) {
  if (cap == 0) return requested;
  if (requested == 0) return cap;
  return std::min(requested, cap);
}

/// Payload bytes a message encodes to (headers + separators + body), for
/// the ring buffer's bytes_in/bytes_out without re-encoding the frame.
std::uint64_t PayloadBytes(const Message& message) {
  std::uint64_t bytes = 1 + message.body.size();  // blank separator line
  for (const auto& [key, value] : message.headers) {
    bytes += key.size() + 2 + value.size() + 1;  // "key: value\n"
  }
  return bytes;
}

Message ErrorResponse(const Status& status) {
  Message response;
  response.type = FrameType::kError;
  response.headers["code"] = StatusCodeName(status.code());
  response.body = status.message();
  return response;
}

/// Watches a client socket while its request executes; a hangup cancels
/// the request's governor at the next cooperative checkpoint. Polls with
/// POLLRDHUP (half-close detection) plus a zero-byte MSG_PEEK probe on
/// POLLIN so pipelined request bytes are not mistaken for a disconnect.
class DisconnectWatcher {
 public:
  DisconnectWatcher(int fd, Governor* governor, int poll_ms,
                    std::atomic<std::uint64_t>* cancel_counter)
      : fd_(fd), governor_(governor), poll_ms_(poll_ms),
        cancel_counter_(cancel_counter) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~DisconnectWatcher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

  DisconnectWatcher(const DisconnectWatcher&) = delete;
  DisconnectWatcher& operator=(const DisconnectWatcher&) = delete;

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      pollfd pfd{fd_, POLLIN | POLLRDHUP, 0};
      int rc = ::poll(&pfd, 1, poll_ms_);
      if (rc < 0) continue;  // EINTR: retry
      if (rc == 0) continue;  // tick: re-check stop flag
      if ((pfd.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0) {
        Cancel();
        return;
      }
      if ((pfd.revents & POLLIN) != 0) {
        char probe;
        ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n == 0) {  // orderly EOF
          Cancel();
          return;
        }
        // n > 0: the client pipelined its next request; keep watching but
        // back off to plain hangup polling (POLLIN would spin otherwise).
        if (n > 0) {
          pollfd hup{fd_, POLLRDHUP, 0};
          ::poll(&hup, 1, poll_ms_);
        }
      }
    }
  }

  void Cancel() {
    governor_->RequestCancel();
    cancel_counter_->fetch_add(1, std::memory_order_relaxed);
  }

  int fd_;
  Governor* governor_;
  int poll_ms_;
  std::atomic<std::uint64_t>* cancel_counter_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// RAII slot in the admission gate.
class AdmissionSlot {
 public:
  AdmissionSlot(std::atomic<std::uint32_t>* inflight, std::uint32_t cap)
      : inflight_(inflight) {
    std::uint32_t now = inflight_->fetch_add(1, std::memory_order_relaxed);
    admitted_ = now < cap;
    if (!admitted_) inflight_->fetch_sub(1, std::memory_order_relaxed);
  }
  ~AdmissionSlot() {
    if (admitted_) inflight_->fetch_sub(1, std::memory_order_relaxed);
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool admitted() const { return admitted_; }

 private:
  std::atomic<std::uint32_t>* inflight_;
  bool admitted_ = false;
};

/// Parses the census-shaping headers shared by the CLI and the wire
/// protocol into QueryEngine options. Returns the first invalid header as
/// a status.
[[nodiscard]] Status QueryOptionsFromHeaders(const Message& request,
                                             QueryEngine::Options* options) {
  options->rnd_seed = request.HeaderInt("seed", 99);
  options->census.num_threads =
      static_cast<std::uint32_t>(request.HeaderInt("threads", 1));
  std::string algorithm = request.Header("algorithm", "");
  if (!algorithm.empty()) {
    options->auto_algorithm = false;
    static const std::map<std::string, CensusAlgorithm> kNames = {
        {"nd-bas", CensusAlgorithm::kNdBas},
        {"nd-pvot", CensusAlgorithm::kNdPvot},
        {"nd-diff", CensusAlgorithm::kNdDiff},
        {"pt-bas", CensusAlgorithm::kPtBas},
        {"pt-opt", CensusAlgorithm::kPtOpt},
        {"pt-rnd", CensusAlgorithm::kPtRnd},
    };
    auto it = kNames.find(ToLower(algorithm));
    if (it == kNames.end()) {
      return Status::InvalidArgument("unknown algorithm " + algorithm);
    }
    options->census.algorithm = it->second;
  }
  std::string matcher = ToLower(request.Header("matcher", "cn"));
  if (matcher == "gql") {
    options->census.use_gql_matcher = true;
  } else if (matcher != "cn") {
    return Status::InvalidArgument("unknown matcher " + matcher +
                                   " (expected cn or gql)");
  }
  // Fast-path routing, mirroring the CLI rule: an explicit algorithm or
  // matcher header without a fast_path header pins the fast path off, so a
  // client that picked an engine gets that engine.
  std::string fast_path = ToLower(request.Header("fast_path", ""));
  if (fast_path.empty()) {
    if (request.HasHeader("algorithm") || request.HasHeader("matcher")) {
      options->census.fast_path = FastPathMode::kOff;
    }
  } else if (fast_path == "auto") {
    options->census.fast_path = FastPathMode::kAuto;
  } else if (fast_path == "force") {
    options->census.fast_path = FastPathMode::kForce;
  } else if (fast_path == "off") {
    options->census.fast_path = FastPathMode::kOff;
  } else {
    return Status::InvalidArgument("unknown fast_path " + fast_path +
                                   " (expected auto, force or off)");
  }
  if (request.HasHeader("degrade-approx")) {
    options->census.degrade_to_approx = true;
    std::uint64_t permille = request.HeaderInt("degrade-approx", 0);
    if (permille > 0 && permille <= 1000) {
      options->census.degrade_sample_rate =
          static_cast<double>(permille) / 1000.0;
    }
  }
  return Status::Ok();
}

/// Highest sortable column for top-N (mirrors the CLI: trailing .state
/// columns of interrupted governed runs do not sort).
std::size_t TopSortColumn(const ResultTable& table) {
  std::size_t cols = table.NumColumns();
  while (cols > 0 && EndsWith(table.columns()[cols - 1], ".state")) --cols;
  return cols;
}

/// Exposition label-value escaping for the always-compiled daemon families
/// (graph names are user strings). Kept local so this file never touches
/// the obs exporter outside its EGO_OBS_ENABLED gate.
std::string PromLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::uint64_t SecondsToMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

/// The exec_status a response reduces to in telemetry (ring, log event):
/// BUSY beats everything, then the handler's exec_status, then the error
/// code, then OK.
std::string ResponseExecStatus(const Message& response) {
  if (response.type == FrameType::kBusy) return "BUSY";
  return response.Header(
      "exec_status",
      response.Header(
          "code", response.type == FrameType::kError ? "INTERNAL" : "OK"));
}

}  // namespace

CensusServer::CensusServer(Options options) : options_(std::move(options)) {}

CensusServer::~CensusServer() {
  RequestShutdown();
  Wait();
}

Status CensusServer::Start() {
  Status listening = listener_.Listen(options_.listen);
  if (!listening.ok()) return listening;
  started_micros_ = Timer::NowMicros();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void CensusServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void CensusServer::RequestShutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
}

CensusServer::Counters CensusServer::counters() const {
  Counters counters;
  counters.connections = connections_count_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  counters.protocol_errors =
      protocol_errors_.load(std::memory_order_relaxed);
  counters.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  return counters;
}

std::deque<CensusServer::RequestRecord> CensusServer::RecentRequests() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return ring_;
}

void CensusServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.AcceptOnce(/*timeout_ms=*/100);
    // Reap finished connections so a long-lived daemon's list stays small.
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          (*it)->thread.join();
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!accepted.ok()) continue;  // timeout tick or transient error
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(*accepted);
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
  // Shutdown: hang up every live connection so blocked RecvFrames return,
  // then join the workers.
  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->socket.fd(), SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  listener_.Close();
}

void CensusServer::ServeConnection(Connection* connection) {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    auto request = connection->socket.RecvFrame();
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kParseError) {
        // Corrupt framing: report once (best effort), then drop the
        // connection — a byte stream cannot resynchronize mid-garbage.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Status sent = connection->socket.SendFrame(
            ErrorResponse(request.status()));
        (void)sent;  // the peer may already be gone
      }
      break;  // clean EOF, corrupt stream, or socket error
    }
    if (!IsRequestType(request->type)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Status sent = connection->socket.SendFrame(ErrorResponse(
          Status::InvalidArgument(std::string("frame type ") +
                                  FrameTypeName(request->type) +
                                  " is a response type")));
      (void)sent;
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    bool close_after = false;
    Message response =
        Dispatch(*request, connection->socket.fd(), &close_after);
    Status sent = connection->socket.SendFrame(response);
    if (sent.ok()) completed_.fetch_add(1, std::memory_order_relaxed);
    if (close_after || !sent.ok()) break;
  }
  // Leave the socket open: the accept loop joins this thread and destroys
  // the connection (closing the fd) when it reaps. Closing here would race
  // with the shutdown path, which hangs up every fd still in the list — and
  // a concurrently recycled fd number could hijack an unrelated descriptor.
  connection->done.store(true, std::memory_order_release);
}

Message CensusServer::Dispatch(const Message& request, int client_fd,
                               bool* close_after) {
  Timer timer;
  RequestContext ctx;
  ctx.received_us = Timer::NowMicros();
  ctx.verb = FrameTypeName(request.type);
  ctx.graph = request.Header("graph", request.Header("name", ""));
  ctx.bytes_in = PayloadBytes(request);
  ctx.id = request.Header("request_id", "");
  if (!ValidRequestId(ctx.id)) {
    ctx.id = FormatRequestId(
        started_micros_,
        request_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  std::uint8_t verb_byte = static_cast<std::uint8_t>(request.type);
  if (verb_byte < verb_counts_.size()) {
    verb_counts_[verb_byte].fetch_add(1, std::memory_order_relaxed);
  }

  Message response;
  switch (request.type) {
    case FrameType::kQuery:
    case FrameType::kUpdate: {
      AdmissionSlot slot(&inflight_, options_.max_inflight);
      if (!slot.admitted()) {
        busy_rejected_.fetch_add(1, std::memory_order_relaxed);
        response.type = FrameType::kBusy;
        response.headers["inflight"] = std::to_string(inflight());
        response.headers["capacity"] = std::to_string(options_.max_inflight);
        response.body = "admission control: " +
                        std::to_string(options_.max_inflight) +
                        " requests already in flight; retry later";
        break;
      }
      response = request.type == FrameType::kQuery
                     ? HandleQuery(request, client_fd, ctx)
                     : HandleUpdate(request, client_fd, ctx);
      break;
    }
    case FrameType::kStatus:
      response = HandleStatus(request, ctx);
      break;
    case FrameType::kMetrics:
      response = HandleMetrics(request, ctx);
      break;
    case FrameType::kLoad:
      response = HandleLoad(request, ctx);
      break;
    case FrameType::kUnload:
      response = HandleUnload(request, ctx);
      break;
    case FrameType::kShutdown:
      response.type = FrameType::kResult;
      response.body = "shutting down\n";
      RequestShutdown();
      *close_after = true;
      break;
    default:
      response = ErrorResponse(Status::InvalidArgument(
          std::string("unhandled frame type ") +
          FrameTypeName(request.type)));
      break;
  }
  response.headers["server"] = BuildInfoString();
  // Every response — RESULT, ERROR, BUSY — echoes the request id, so a
  // client can correlate any outcome with the server's log and metrics.
  response.headers["request_id"] = ctx.id;
  FinishRequest(ctx, request, response,
                static_cast<std::uint64_t>(timer.ElapsedMicros()));
  return response;
}

Message CensusServer::HandleQuery(const Message& request, int client_fd,
                                  RequestContext& ctx) {
  std::string graph_name = request.Header("graph", "");
  if (graph_name.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("QUERY requires a 'graph' header"));
  }
  if (request.body.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "QUERY requires the query text as the frame body"));
  }
  auto entry = registry_.Get(graph_name);
  if (!entry.ok()) return ErrorResponse(entry.status());

  QueryEngine::Options options;
  Status parsed = QueryOptionsFromHeaders(request, &options);
  if (!parsed.ok()) return ErrorResponse(parsed);
  options.census.num_threads = static_cast<std::uint32_t>(ClampLimit(
      options.census.num_threads, options_.max_threads));

  // Every remote query is governed: even without explicit limits the
  // governor carries the cancel-on-disconnect token, and the server caps
  // apply regardless of what the client asked for.
  Governor governor;
  governor.SetAnnotation("request " + ctx.id);
  std::uint64_t deadline_ms =
      ClampLimit(request.HeaderInt("deadline_ms", 0), options_.max_deadline_ms);
  if (deadline_ms > 0) {
    governor.SetDeadline(Deadline::AfterMillis(deadline_ms));
  }
  std::uint64_t budget_mb = ClampLimit(request.HeaderInt("memory_budget_mb", 0),
                                       options_.max_memory_budget_mb);
  if (budget_mb > 0) {
    governor.SetMemoryLimitBytes(budget_mb * 1024ull * 1024ull);
  }
  options.census.governor = &governor;

  // Shared lock: concurrent QUERYs run together; UPDATE waits for all of
  // them and vice versa.
  std::shared_lock<std::shared_mutex> lock((*entry)->mutex);
  ctx.exec_begin_us = Timer::NowMicros();
#if EGO_OBS_ENABLED
  obs::MetricsSnapshot before;
  if (obs::Enabled()) before = obs::Registry::Global().Snapshot();
#endif
  Message response;
  {
    DisconnectWatcher watcher(client_fd, &governor,
                              options_.disconnect_poll_ms,
                              &disconnect_cancels_);
    QueryEngine engine((*entry)->snapshot, &(*entry)->indexes);
    auto table = engine.Execute(request.body, options);
    if (!table.ok()) return ErrorResponse(table.status());

    Status exec_status = engine.last_exec_status();
    std::uint64_t complete = 0, approx = 0, pending = 0;
    for (const QueryEngine::AggregateExec& exec : engine.last_exec()) {
      complete += exec.complete;
      approx += exec.approx;
      pending += exec.pending;
    }
    // Per-graph routing tallies (surfaced in STATUS): one count per census
    // aggregate, attributed to the engine that actually ran it.
    std::uint64_t routed = 0, generic = 0;
    std::uint64_t phase_offset_us = ctx.QueueMicros();
    std::size_t aggregate = 0;
    for (const CensusStats& stats : engine.last_stats()) {
      if (stats.fastpath_routed != 0) {
        ++routed;
      } else {
        ++generic;
      }
      if (stats.threads_used > ctx.threads) ctx.threads = stats.threads_used;
      if (stats.pattern_nodes > ctx.pattern_nodes) {
        ctx.pattern_nodes = stats.pattern_nodes;
      }
      if (stats.k > ctx.k) ctx.k = stats.k;
      // Per-aggregate phase spans, laid out sequentially from the measured
      // phase durations (aggregates of one query do run in sequence; the
      // offsets are therefore approximate only across parse/format gaps).
      const std::string prefix = "agg" + std::to_string(aggregate++) + "/";
      const std::pair<const char*, double> phases[] = {
          {"match", stats.match_seconds},
          {"index", stats.index_seconds},
          {"census", stats.census_seconds}};
      for (const auto& [phase, seconds] : phases) {
        std::uint64_t dur = SecondsToMicros(seconds);
        if (dur == 0) continue;
        ctx.AddSpan(prefix + phase, phase_offset_us, dur);
        phase_offset_us += dur;
      }
    }
    ctx.fastpath_routed = routed;
    ctx.fastpath_generic = generic;
    (*entry)->fastpath_routed.fetch_add(routed, std::memory_order_relaxed);
    (*entry)->fastpath_generic.fetch_add(generic,
                                         std::memory_order_relaxed);
    if (request.HasHeader("top") && TopSortColumn(*table) >= 2) {
      table->SortByColumnDesc(TopSortColumn(*table) - 1);
    }
    ctx.rows = table->NumRows();
    response.type = FrameType::kResult;
    response.headers["exec_status"] = StatusCodeName(exec_status.code());
    if (!exec_status.ok()) {
      response.headers["exec_message"] = exec_status.message();
    }
    response.headers["stop_reason"] = StopReasonName(governor.reason());
    response.headers["rows"] = std::to_string(table->NumRows());
    response.headers["focal_complete"] = std::to_string(complete);
    response.headers["focal_approx"] = std::to_string(approx);
    response.headers["focal_pending"] = std::to_string(pending);
    response.headers["fastpath_routed"] = std::to_string(routed);
    response.headers["graph_version"] =
        std::to_string((*entry)->dynamic.version());
    std::ostringstream body;
    if (request.Header("format", "csv") == "text") {
      std::size_t limit = request.HasHeader("top")
                              ? static_cast<std::size_t>(
                                    request.HeaderInt("top", 20))
                              : table->NumRows();
      body << table->ToString(limit);
    } else {
      table->WriteCsv(body);
    }
    response.body = body.str();
  }
#if EGO_OBS_ENABLED
  // Counter deltas across the execution window: what this request added to
  // the registry, attributable because the graph lock and admission gate
  // do not serialize concurrent queries — the delta is exact only for the
  // metrics this request touched alone, so treat overlapping-traffic
  // deltas as attribution hints, not invariants.
  if (obs::Enabled()) {
    obs::MetricsSnapshot after = obs::Registry::Global().Snapshot();
    for (const auto& [name, value] : after.counters) {
      auto it = before.counters.find(name);
      std::uint64_t prior = it == before.counters.end() ? 0 : it->second;
      if (value > prior) ctx.obs_delta[name] = value - prior;
    }
  }
#endif
  return response;
}

Message CensusServer::HandleUpdate(const Message& request, int client_fd,
                                   RequestContext& ctx) {
  std::string graph_name = request.Header("graph", "");
  if (graph_name.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("UPDATE requires a 'graph' header"));
  }
  auto entry = registry_.Get(graph_name);
  if (!entry.ok()) return ErrorResponse(entry.status());

  std::istringstream body(request.body);
  auto updates = ParseUpdateStream(body);
  if (!updates.ok()) return ErrorResponse(updates.status());

  Governor governor;
  governor.SetAnnotation("request " + ctx.id);
  std::uint64_t deadline_ms =
      ClampLimit(request.HeaderInt("deadline_ms", 0), options_.max_deadline_ms);
  if (deadline_ms > 0) {
    governor.SetDeadline(Deadline::AfterMillis(deadline_ms));
  }

  // Exclusive lock: the batch is atomic with respect to queries — they see
  // the graph before it or after it, never between two of its updates.
  std::unique_lock<std::shared_mutex> lock((*entry)->mutex);
  ctx.exec_begin_us = Timer::NowMicros();
  ctx.threads = 1;
  std::uint64_t applied = 0, noop = 0;
  Status exec_status = Status::Ok();
  {
    DisconnectWatcher watcher(client_fd, &governor,
                              options_.disconnect_poll_ms,
                              &disconnect_cancels_);
    for (const GraphUpdate& update : *updates) {
      if (governor.Checkpoint() != StopReason::kNone) {
        exec_status = governor.ToStatus("update batch");
        break;
      }
      auto result = (*entry)->dynamic.Apply(update);
      if (!result.ok()) {
        exec_status = result.status();
        break;
      }
      if (*result) {
        ++applied;
      } else {
        ++noop;
      }
    }
  }
  if (applied > 0) {
    if ((*entry)->dynamic.DeltaFraction() > 0.25) (*entry)->dynamic.Compact();
    (*entry)->RefreshSnapshot();
    ++(*entry)->updates_applied;
  }

  Message response;
  response.type = FrameType::kResult;
  response.headers["exec_status"] = StatusCodeName(exec_status.code());
  if (!exec_status.ok()) {
    response.headers["exec_message"] = exec_status.message();
  }
  response.headers["stop_reason"] = StopReasonName(governor.reason());
  response.headers["applied"] = std::to_string(applied);
  response.headers["noop"] = std::to_string(noop);
  response.headers["nodes"] = std::to_string((*entry)->dynamic.NumNodes());
  response.headers["edges"] = std::to_string((*entry)->dynamic.NumEdges());
  response.headers["graph_version"] =
      std::to_string((*entry)->dynamic.version());
  response.body = "applied " + std::to_string(applied) + " updates (" +
                  std::to_string(noop) + " no-ops)\n";
  return response;
}

Message CensusServer::HandleStatus(const Message& request,
                                   RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  Message response;
  response.type = FrameType::kResult;
  response.headers["content"] = "application/json";
  // `slow_trace: <request_id>` (empty value = newest capture) swaps the
  // body for that slow query's Chrome trace (docs/OBSERVABILITY.md).
  if (request.HasHeader("slow_trace")) {
    std::string trace = SlowQueryTraceJson(request.Header("slow_trace", ""));
    if (trace.empty()) {
      return ErrorResponse(Status::NotFound(
          "no slow-query capture for request id '" +
          request.Header("slow_trace", "") + "'"));
    }
    response.body = std::move(trace);
    return response;
  }
  response.body = StatusJson();
  return response;
}

Message CensusServer::HandleMetrics(const Message& request,
                                    RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  Message response;
  response.type = FrameType::kResult;
  response.headers["content"] = "text/plain; version=0.0.4";
  std::ostringstream os;
  WriteDaemonExposition(os);
#if EGO_OBS_ENABLED
  // The engine-level registry families render from a point-in-time shard
  // merge — recording threads never block on exposition.
  if (obs::Enabled()) {
    obs::WritePrometheus(obs::Registry::Global().Snapshot(), os);
  }
#endif
  response.body = os.str();
  return response;
}

Message CensusServer::HandleLoad(const Message& request, RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  std::string name = request.Header("name", "");
  std::string path = request.Header("path", "");
  if (name.empty() || path.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "LOAD requires 'name' and 'path' headers"));
  }
  Status loaded = registry_.LoadFromFile(name, path);
  if (!loaded.ok()) return ErrorResponse(loaded);
  Message response;
  response.type = FrameType::kResult;
  response.body = "loaded '" + name + "' from " + path + "\n";
  return response;
}

Message CensusServer::HandleUnload(const Message& request,
                                   RequestContext& ctx) {
  ctx.exec_begin_us = Timer::NowMicros();
  std::string name = request.Header("name", "");
  if (name.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("UNLOAD requires a 'name' header"));
  }
  Status unloaded = registry_.Unload(name);
  if (!unloaded.ok()) return ErrorResponse(unloaded);
  Message response;
  response.type = FrameType::kResult;
  response.body = "unloaded '" + name + "'\n";
  return response;
}

std::string CensusServer::StatusJson() const {
  BuildInfo build = GetBuildInfo();
  Counters counters = this->counters();
  std::ostringstream os;
  os << "{\n";
  // Versioned STATUS schema (docs/SERVER.md): bump on any rename/removal;
  // additive fields keep the version.
  os << "  \"schema\": 1,\n";
  os << "  \"server\": {\"build\": \"" << JsonEscape(BuildInfoString())
     << "\", \"git\": \"" << JsonEscape(build.git_describe)
     << "\", \"build_type\": \"" << JsonEscape(build.build_type)
     << "\", \"obs\": " << (build.obs_enabled ? "true" : "false")
     << ", \"failpoints\": " << (build.failpoints_enabled ? "true" : "false")
     << ", \"protocol\": " << kProtocolVersion
     << ", \"pid\": " << ::getpid()
     << ", \"uptime_us\": " << (Timer::NowMicros() - started_micros_)
     << "},\n";
  os << "  \"admission\": {\"inflight\": " << inflight()
     << ", \"capacity\": " << options_.max_inflight
     << ", \"busy_rejected\": " << counters.busy_rejected << "},\n";
  os << "  \"caps\": {\"max_deadline_ms\": " << options_.max_deadline_ms
     << ", \"max_memory_budget_mb\": " << options_.max_memory_budget_mb
     << ", \"max_threads\": " << options_.max_threads << "},\n";
  os << "  \"counters\": {\"connections\": " << counters.connections
     << ", \"requests\": " << counters.requests
     << ", \"completed\": " << counters.completed
     << ", \"protocol_errors\": " << counters.protocol_errors
     << ", \"disconnect_cancels\": " << counters.disconnect_cancels
     << ", \"verbs\": {";
  {
    static constexpr FrameType kVerbs[] = {
        FrameType::kQuery,  FrameType::kUpdate,   FrameType::kStatus,
        FrameType::kLoad,   FrameType::kUnload,   FrameType::kShutdown,
        FrameType::kMetrics};
    bool first_verb = true;
    for (FrameType verb : kVerbs) {
      if (!first_verb) os << ", ";
      first_verb = false;
      os << "\"" << FrameTypeName(verb) << "\": " << VerbCount(verb);
    }
  }
  os << "}},\n";
  os << "  \"graphs\": [";
  bool first = true;
  for (const GraphSummary& graph : registry_.Summaries()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << JsonEscape(graph.name)
       << "\", \"nodes\": " << graph.nodes << ", \"edges\": " << graph.edges
       << ", \"version\": " << graph.version
       << ", \"updates_applied\": " << graph.updates_applied
       << ", \"fastpath\": {\"routed\": " << graph.fastpath_routed
       << ", \"generic\": " << graph.fastpath_generic << "}}";
  }
  os << "],\n";
  os << "  \"recent\": [";
  first = true;
  for (const RequestRecord& record : RecentRequests()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"request_id\": \"" << JsonEscape(record.request_id)
       << "\", \"type\": \"" << JsonEscape(record.type) << "\", \"graph\": \""
       << JsonEscape(record.graph) << "\", \"exec_status\": \""
       << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
       << JsonEscape(record.stop_reason)
       << "\", \"latency_us\": " << record.latency_us
       << ", \"bytes_in\": " << record.bytes_in
       << ", \"bytes_out\": " << record.bytes_out << "}";
  }
  os << "],\n";
  os << "  \"slow_queries\": [";
  first = true;
  for (const SlowQueryRecord& record : SlowQueries()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"request_id\": \"" << JsonEscape(record.request_id)
       << "\", \"type\": \"" << JsonEscape(record.type) << "\", \"graph\": \""
       << JsonEscape(record.graph) << "\", \"exec_status\": \""
       << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
       << JsonEscape(record.stop_reason)
       << "\", \"latency_us\": " << record.latency_us
       << ", \"spans\": " << record.spans.size() << "}";
  }
  os << "]";
#if EGO_OBS_ENABLED
  if (obs::Enabled()) {
    os << ",\n  \"metrics\": ";
    obs::Registry::Global().Snapshot().WriteJson(os);
  }
#endif
  os << "\n}\n";
  return os.str();
}

std::uint64_t CensusServer::VerbCount(FrameType type) const {
  std::uint8_t byte = static_cast<std::uint8_t>(type);
  if (byte >= verb_counts_.size()) return 0;
  return verb_counts_[byte].load(std::memory_order_relaxed);
}

std::deque<CensusServer::SlowQueryRecord> CensusServer::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  return slow_ring_;
}

std::string CensusServer::SlowQueryTraceJson(
    const std::string& request_id) const {
  SlowQueryRecord record;
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    if (slow_ring_.empty()) return "";
    if (request_id.empty() || request_id == "latest") {
      record = slow_ring_.front();
    } else {
      bool found = false;
      for (const SlowQueryRecord& candidate : slow_ring_) {
        if (candidate.request_id == request_id) {
          record = candidate;
          found = true;
          break;
        }
      }
      if (!found) return "";
    }
  }
  // Chrome trace-event JSON (chrome://tracing, Perfetto): one complete
  // ("ph":"X") event per span plus a request-spanning root, all on one
  // logical track, timestamps absolute on the server's steady clock.
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "  {\"name\": \"" << JsonEscape(record.type) << " "
     << JsonEscape(record.request_id) << "\", \"ph\": \"X\", \"ts\": "
     << record.received_us << ", \"dur\": " << record.latency_us
     << ", \"pid\": 1, \"tid\": 1, \"args\": {\"graph\": \""
     << JsonEscape(record.graph) << "\", \"exec_status\": \""
     << JsonEscape(record.exec_status) << "\", \"stop_reason\": \""
     << JsonEscape(record.stop_reason) << "\"}}";
  for (const PhaseSpan& span : record.spans) {
    os << ",\n  {\"name\": \"" << JsonEscape(span.name)
       << "\", \"ph\": \"X\", \"ts\": " << (record.received_us + span.begin_us)
       << ", \"dur\": " << span.dur_us << ", \"pid\": 1, \"tid\": 1}";
  }
  os << "\n]}\n";
  return os.str();
}

void CensusServer::WriteDaemonExposition(std::ostream& os) const {
  Counters counters = this->counters();
  os << "# HELP egocensus_daemon_uptime_seconds seconds since Start()\n"
     << "# TYPE egocensus_daemon_uptime_seconds gauge\n"
     << "egocensus_daemon_uptime_seconds "
     << static_cast<double>(Timer::NowMicros() - started_micros_) / 1e6
     << "\n";
  os << "# HELP egocensus_daemon_inflight executing QUERY/UPDATE requests\n"
     << "# TYPE egocensus_daemon_inflight gauge\n"
     << "egocensus_daemon_inflight " << inflight() << "\n";
  os << "# HELP egocensus_daemon_requests_total dispatched frames by verb\n"
     << "# TYPE egocensus_daemon_requests_total counter\n";
  static constexpr FrameType kVerbs[] = {
      FrameType::kQuery,  FrameType::kUpdate,   FrameType::kStatus,
      FrameType::kLoad,   FrameType::kUnload,   FrameType::kShutdown,
      FrameType::kMetrics};
  for (FrameType verb : kVerbs) {
    os << "egocensus_daemon_requests_total{verb=\"" << FrameTypeName(verb)
       << "\"} " << VerbCount(verb) << "\n";
  }
  os << "# HELP egocensus_daemon_connections_total accepted sockets\n"
     << "# TYPE egocensus_daemon_connections_total counter\n"
     << "egocensus_daemon_connections_total " << counters.connections << "\n";
  os << "# HELP egocensus_daemon_busy_rejected_total admission rejections\n"
     << "# TYPE egocensus_daemon_busy_rejected_total counter\n"
     << "egocensus_daemon_busy_rejected_total " << counters.busy_rejected
     << "\n";
  os << "# HELP egocensus_daemon_protocol_errors_total corrupt frames\n"
     << "# TYPE egocensus_daemon_protocol_errors_total counter\n"
     << "egocensus_daemon_protocol_errors_total " << counters.protocol_errors
     << "\n";
  os << "# HELP egocensus_daemon_disconnect_cancels_total censuses cancelled "
        "by client hangup\n"
     << "# TYPE egocensus_daemon_disconnect_cancels_total counter\n"
     << "egocensus_daemon_disconnect_cancels_total "
     << counters.disconnect_cancels << "\n";
  os << "# HELP egocensus_daemon_fastpath_total census aggregates by graph "
        "and routing\n"
     << "# TYPE egocensus_daemon_fastpath_total counter\n";
  for (const GraphSummary& graph : registry_.Summaries()) {
    os << "egocensus_daemon_fastpath_total{graph=\"" << PromLabel(graph.name)
       << "\",route=\"routed\"} " << graph.fastpath_routed << "\n";
    os << "egocensus_daemon_fastpath_total{graph=\"" << PromLabel(graph.name)
       << "\",route=\"generic\"} " << graph.fastpath_generic << "\n";
  }
  std::size_t slow = 0;
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    slow = slow_ring_.size();
  }
  os << "# HELP egocensus_daemon_slow_queries captured slow-query ring size\n"
     << "# TYPE egocensus_daemon_slow_queries gauge\n"
     << "egocensus_daemon_slow_queries " << slow << "\n";
}

void CensusServer::FinishRequest(const RequestContext& ctx,
                                 const Message& request,
                                 const Message& response,
                                 std::uint64_t latency_us) {
  const std::string exec_status = ResponseExecStatus(response);
  const std::string stop_reason = response.Header("stop_reason", "none");
  const std::uint64_t bytes_out = PayloadBytes(response);
  const std::uint64_t queue_us = std::min(ctx.QueueMicros(), latency_us);
  const std::uint64_t execute_us =
      ctx.exec_begin_us == 0 ? 0 : latency_us - queue_us;

  RequestRecord record;
  record.request_id = ctx.id;
  record.type = ctx.verb;
  record.graph = ctx.graph;
  record.exec_status = exec_status;
  record.stop_reason = stop_reason;
  record.latency_us = latency_us;
  record.bytes_in = ctx.bytes_in;
  record.bytes_out = bytes_out;
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.push_front(std::move(record));
    while (ring_.size() > options_.ring_capacity) ring_.pop_back();
  }

#if EGO_OBS_ENABLED
  // Request-scoped registry families, labeled by verb/graph so the METRICS
  // exposition can slice traffic (docs/OBSERVABILITY.md).
  if (obs::Enabled()) {
    const std::vector<std::pair<std::string_view, std::string_view>> labels =
        {{"verb", ctx.verb}, {"graph", ctx.graph}};
    obs::CounterAdd(obs::LabeledName("server/requests", labels), 1);
    obs::HistogramRecord(obs::LabeledName("server/latency_us", labels),
                         latency_us);
    obs::CounterAdd(obs::LabeledName("server/bytes_out", labels), bytes_out);
    if (exec_status != "OK") {
      obs::CounterAdd(obs::LabeledName("server/request_errors", labels), 1);
    }
  }
#endif

  // The canonical wide event: one line per request (docs/OBSERVABILITY.md,
  // "Request telemetry"). No-op unless a sink is configured.
  obs::Logger& logger = obs::Logger::Global();
  if (logger.enabled()) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    if (response.type == FrameType::kBusy) level = obs::LogLevel::kWarn;
    if (response.type == FrameType::kError) level = obs::LogLevel::kError;
    if (logger.ShouldLog(level)) {
      obs::LogEvent event("request");
      event.Str("request_id", ctx.id)
          .Str("verb", ctx.verb)
          .Str("graph", ctx.graph)
          .Str("status", exec_status)
          .Str("stop_reason", stop_reason)
          .Int("queue_us", queue_us)
          .Int("execute_us", execute_us)
          .Int("latency_us", latency_us)
          .Int("bytes_in", ctx.bytes_in)
          .Int("bytes_out", bytes_out);
      if (response.HasHeader("exec_message")) {
        event.Str("exec_message", response.Header("exec_message", ""));
      }
      if (request.type == FrameType::kQuery) {
        event.Int("rows", ctx.rows)
            .Int("threads", ctx.threads)
            .Int("pattern_nodes", ctx.pattern_nodes)
            .Int("k", ctx.k)
            .Int("fastpath_routed", ctx.fastpath_routed)
            .Int("fastpath_generic", ctx.fastpath_generic);
      }
      if (!ctx.obs_delta.empty()) {
        std::string deltas = "{";
        bool first = true;
        for (const auto& [name, value] : ctx.obs_delta) {
          if (!first) deltas += ",";
          first = false;
          deltas += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
        }
        deltas += "}";
        event.Raw("obs", deltas);
      }
      logger.Write(level, event);
    }
  }

  // Slow-query capture: the request's span tree + metric deltas, bounded
  // ring, retrievable via STATUS (headers slow_trace / the slow_queries
  // summary array).
  if (options_.slow_query_threshold_ms > 0 &&
      latency_us >= options_.slow_query_threshold_ms * 1000) {
    SlowQueryRecord slow;
    slow.request_id = ctx.id;
    slow.type = ctx.verb;
    slow.graph = ctx.graph;
    slow.exec_status = exec_status;
    slow.stop_reason = stop_reason;
    slow.received_us = ctx.received_us;
    slow.latency_us = latency_us;
    slow.spans = ctx.spans;
    if (queue_us > 0) {
      slow.spans.insert(slow.spans.begin(), PhaseSpan{"queue", 0, queue_us});
    }
    if (execute_us > 0) {
      slow.spans.insert(slow.spans.begin() + (queue_us > 0 ? 1 : 0),
                        PhaseSpan{"execute", queue_us, execute_us});
    }
    slow.counters = ctx.obs_delta;
    std::lock_guard<std::mutex> lock(slow_mutex_);
    slow_ring_.push_front(std::move(slow));
    while (slow_ring_.size() > options_.slow_ring_capacity) {
      slow_ring_.pop_back();
    }
  }
}

}  // namespace egocensus::net
