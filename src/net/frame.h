#ifndef EGOCENSUS_NET_FRAME_H_
#define EGOCENSUS_NET_FRAME_H_

// Wire protocol of the census daemon (docs/SERVER.md): length-prefixed
// binary frames carrying a text header block plus an opaque body.
//
// Frame layout (integers little-endian):
//
//   byte  0      magic 0xEC
//   byte  1      frame type (FrameType)
//   bytes 2..5   u32 payload length N (at most kMaxFramePayload)
//   bytes 6..6+N payload
//
// The magic byte rejects garbage streams on the first byte instead of
// interpreting random data as a length; the length cap rejects hostile or
// corrupt prefixes before any allocation. Payloads are themselves framed as
// RFC-822-style text — `key: value` header lines, a blank line, then the
// body — so every message is printable and greppable while the outer frame
// stays binary-safe (bodies may contain anything, including blank lines).
//
// This header is transport-agnostic on purpose: encode/decode work on byte
// buffers, so unit tests exercise truncation/corruption handling without a
// socket in sight (net/socket.h does the actual I/O).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace egocensus::net {

/// Protocol revision, carried in every HELLO-free exchange via the server's
/// STATUS payload and bumped on any incompatible frame/header change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// First byte of every frame.
inline constexpr std::uint8_t kFrameMagic = 0xEC;

/// Hard cap on a frame payload: anything larger is a protocol error, not an
/// allocation. Census results over the wire are CSV/JSON text; 64 MiB is
/// orders of magnitude above any legitimate response.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Bytes before the payload: magic + type + u32 length.
inline constexpr std::size_t kFrameHeaderBytes = 6;

/// Request frames (client -> server) occupy 0x01..0x7F; response frames
/// (server -> client) occupy 0x81..0xFF, so a frame's direction is visible
/// from its type byte alone.
enum class FrameType : std::uint8_t {
  // Requests.
  kQuery = 0x01,     // run a census/language query against a loaded graph
  kUpdate = 0x02,    // apply an update stream to a loaded graph
  kStatus = 0x03,    // server + registry + metrics snapshot (JSON body)
  kLoad = 0x04,      // load a graph file into the registry under a name
  kUnload = 0x05,    // drop a named graph from the registry
  kShutdown = 0x06,  // orderly daemon shutdown
  kMetrics = 0x07,   // Prometheus text exposition of the metrics registry
  // Responses.
  kResult = 0x81,  // success; body carries the rendered result
  kError = 0x82,   // request failed; headers carry the status code
  kBusy = 0x83,    // admission control rejected the request
};

/// True for the request half of the type space.
bool IsRequestType(FrameType type);

/// Human-readable frame-type name ("QUERY", "RESULT", ...).
const char* FrameTypeName(FrameType type);

/// One decoded message: a frame type plus the parsed payload. Headers are
/// case-sensitive lowercase keys; repeated keys keep the last value.
struct Message {
  FrameType type = FrameType::kError;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header accessors with defaults (missing key = fallback).
  std::string Header(const std::string& key, const std::string& fallback) const;
  std::uint64_t HeaderInt(const std::string& key, std::uint64_t fallback) const;
  bool HasHeader(const std::string& key) const {
    return headers.find(key) != headers.end();
  }
};

/// Serializes `message` into a complete frame (header + payload).
/// Header keys/values must not contain '\n' (values are not escaped; the
/// protocol keeps structured data in the body).
std::vector<std::uint8_t> EncodeFrame(const Message& message);

/// Outcome of TryDecodeFrame: a frame needs more bytes, decoded cleanly, or
/// the stream is unrecoverably corrupt (bad magic / oversized length).
enum class DecodeResult : std::uint8_t {
  kNeedMore = 0,
  kFrame,
  kCorrupt,
};

/// Attempts to decode one frame from the front of `buffer`. On kFrame the
/// decoded message is stored in `*message`, `*consumed` is the byte count
/// of the frame, and the caller erases the prefix. On kNeedMore nothing is
/// consumed. On kCorrupt `*error` names the problem (bad magic, oversized
/// or malformed payload) and the connection must be torn down — framing
/// cannot resynchronize inside a byte stream.
DecodeResult TryDecodeFrame(const std::uint8_t* data, std::size_t size,
                            Message* message, std::size_t* consumed,
                            std::string* error);

/// Splits a payload into headers + body (the inverse of EncodeFrame's
/// payload rendering). Malformed header lines (no ':') fail.
[[nodiscard]] Status ParsePayload(std::string_view payload, Message* message);

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_FRAME_H_
