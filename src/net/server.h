#ifndef EGOCENSUS_NET_SERVER_H_
#define EGOCENSUS_NET_SERVER_H_

// ecensusd's engine room: a multi-client census server over the net/frame
// protocol (docs/SERVER.md).
//
// Threading model: one accept thread plus one thread per live connection —
// not an event loop, because a census request is seconds of CPU, not
// microseconds of I/O, so the bound that matters is admission control on
// in-flight work, not descriptor fan-in. Heavy requests (QUERY/UPDATE)
// pass through a bounded per-tenant fair queue (net/queue.h) feeding
// Options::max_inflight execution slots: a burst waits briefly instead of
// failing, one tenant cannot starve the rest, queue wait is charged
// against the request's deadline, and anything beyond the depth/byte
// bounds still gets a structured BUSY — now with a retry_after_ms hint —
// so the daemon never queues unboundedly. Cheap requests
// (STATUS/LOAD/UNLOAD/SHUTDOWN) bypass the queue so the daemon stays
// observable and administrable while saturated, including during a
// graceful drain (Drain): stop accepting, serve or BUSY-flush the queue
// within a budget, then shut down.
//
// Every QUERY/UPDATE runs under its own exec::Governor built from the
// request's deadline_ms / memory_budget_mb / threads headers, each clamped
// by the server-wide caps, with a disconnect watcher polling the client
// socket: a client that vanishes mid-request cancels its census at the
// next cooperative checkpoint instead of burning the server for nothing.
//
// Graph state lives in the GraphRegistry (net/registry.h): QUERY holds an
// entry's lock shared, UPDATE exclusive, so updates serialize against
// in-flight queries per graph and queries always see a consistent
// snapshot + indexes.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/queue.h"
#include "net/registry.h"
#include "net/request_context.h"
#include "net/socket.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace egocensus::net {

class CensusServer {
 public:
  struct Options {
    /// Listen endpoint; port 0 binds an ephemeral port (read via port()).
    Endpoint listen;

    /// Admission cap: QUERY/UPDATE requests executing at once. Beyond it,
    /// requests wait in the fair queue (or get BUSY once that fills).
    std::uint32_t max_inflight = 8;

    /// Requests that may wait beyond the execution slots, across all
    /// tenants. 0 restores the legacy reject-on-full behavior.
    std::size_t queue_depth = 64;

    /// Total request payload bytes that may sit queued at once.
    std::uint64_t queue_bytes = 32ull << 20;

    /// DRR quantum: requests granted per tenant per scheduling round.
    std::uint64_t queue_quantum = 1;

    /// Queued-waiter self-check period (deadline expiry, client
    /// disconnect, drain flush).
    int queue_poll_ms = 5;

    // Server-wide caps clamping the per-request limits. 0 = uncapped: the
    // request's own header applies verbatim (and an uncapped request stays
    // uncapped).
    std::uint64_t max_deadline_ms = 0;
    std::uint64_t max_memory_budget_mb = 0;
    std::uint32_t max_threads = 0;

    /// Entries kept in the recent-request ring surfaced by STATUS.
    std::size_t ring_capacity = 64;

    /// Disconnect-watcher poll period. Small: this bounds how long a
    /// cancelled client's census keeps running.
    int disconnect_poll_ms = 5;

    /// Requests slower than this capture their span tree + metric deltas
    /// into the slow-query ring (docs/OBSERVABILITY.md, "Request
    /// telemetry"). 0 disables capture.
    std::uint64_t slow_query_threshold_ms = 0;

    /// Entries kept in the slow-query ring.
    std::size_t slow_ring_capacity = 16;
  };

  /// Execution counters (monotone since Start), surfaced by STATUS and by
  /// tests asserting on server behavior without scraping JSON.
  struct Counters {
    std::uint64_t connections = 0;        // accepted sockets
    std::uint64_t requests = 0;           // frames dispatched
    std::uint64_t completed = 0;          // responses sent
    std::uint64_t busy_rejected = 0;      // admission-control rejections
    std::uint64_t protocol_errors = 0;    // corrupt/truncated frames
    std::uint64_t disconnect_cancels = 0; // censuses cancelled by hangup
  };

  /// One recent request, as surfaced in STATUS "recent" (newest first).
  struct RequestRecord {
    std::string request_id;   // server-assigned or client-propagated id
    std::string type;         // frame-type name
    std::string graph;        // graph header ("" for STATUS/SHUTDOWN)
    std::string tenant;       // fair-queue tenant ("" for bypass verbs)
    std::string exec_status;  // StatusCodeName of the outcome
    std::string stop_reason;  // StopReasonName ("none" unless governed stop)
    std::uint64_t latency_us = 0;
    std::uint64_t queue_us = 0;   // fair-queue + graph-lock wait
    std::uint64_t bytes_in = 0;   // request payload bytes
    std::uint64_t bytes_out = 0;  // response payload bytes
  };

  /// One captured slow request: the ring entry behind STATUS
  /// "slow_queries" and the Chrome-trace dump (SlowQueryTraceJson). Spans
  /// are request-local (queue wait, execute window, per-aggregate census
  /// phases), so capture never races the global tracer; counters are the
  /// request's obs snapshot delta (empty when obs is off or compiled out).
  struct SlowQueryRecord {
    std::string request_id;
    std::string type;
    std::string graph;
    std::string exec_status;
    std::string stop_reason;
    std::uint64_t received_us = 0;  // server clock at dispatch
    std::uint64_t latency_us = 0;
    std::vector<PhaseSpan> spans;
    std::map<std::string, std::uint64_t> counters;
  };

  explicit CensusServer(Options options);
  ~CensusServer();

  CensusServer(const CensusServer&) = delete;
  CensusServer& operator=(const CensusServer&) = delete;

  /// Binds + listens + spawns the accept thread. Fails (without leaking a
  /// thread) when the port is taken or the host does not resolve.
  [[nodiscard]] Status Start();

  /// Blocks until the server has fully shut down (RequestShutdown from any
  /// thread, or a SHUTDOWN frame).
  void Wait();

  /// Initiates shutdown: stop accepting, hang up live connections, join
  /// workers. Safe from any thread; idempotent. (Not async-signal-safe —
  /// signal handlers should set a flag and let the main thread call this;
  /// see ecensusd.)
  void RequestShutdown();

  /// Outcome of a graceful drain.
  struct DrainResult {
    bool completed = false;    // queue emptied within the budget
    std::size_t flushed = 0;   // queued requests answered BUSY instead
  };

  /// Graceful drain (the SIGTERM path): stop accepting new connections and
  /// reject new QUERY/UPDATE frames with BUSY, serve the already-queued
  /// requests for up to `drain_ms`, BUSY-flush whatever is still queued at
  /// the deadline, wait briefly for in-flight responses to reach the wire,
  /// then RequestShutdown. Blocks until shutdown is initiated; call Wait()
  /// afterwards as usual. Safe from any thread except the accept thread.
  DrainResult Drain(std::uint64_t drain_ms);

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  bool ShutdownRequested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Bound port (valid after Start; resolves ephemeral binds).
  std::uint16_t port() const { return listener_.port(); }

  /// Graph registry; pre-load graphs before Start or via LOAD frames after.
  GraphRegistry& registry() { return registry_; }

  Counters counters() const;

  /// Currently executing QUERY/UPDATE requests.
  std::uint32_t inflight() const { return queue_.active(); }

  /// The fair admission queue (tests assert on depth/peak/tenant stats).
  const FairRequestQueue& queue() const { return queue_; }

  /// The STATUS response body (tests call this directly; the daemon's
  /// monitoring surface is exactly this JSON).
  std::string StatusJson() const;

  /// Recent requests, newest first (the STATUS ring).
  std::deque<RequestRecord> RecentRequests() const;

  /// Captured slow requests, newest first.
  std::deque<SlowQueryRecord> SlowQueries() const;

  /// The captured slow request rendered as a Chrome trace (one complete
  /// event per phase span). Empty `request_id` = most recent capture;
  /// unknown id = empty string.
  std::string SlowQueryTraceJson(const std::string& request_id) const;

  /// Requests dispatched per frame verb since Start (indexed by the
  /// request-type byte; response types are always 0).
  std::uint64_t VerbCount(FrameType type) const;

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);

  /// Dispatches one request frame; returns the response to send.
  /// `client_fd` powers the disconnect watcher; `*close_after` is set by
  /// SHUTDOWN.
  Message Dispatch(const Message& request, int client_fd, bool* close_after);

  Message HandleQuery(const Message& request, int client_fd,
                      RequestContext& ctx);
  Message HandleUpdate(const Message& request, int client_fd,
                       RequestContext& ctx);
  Message HandleStatus(const Message& request, RequestContext& ctx);
  Message HandleMetrics(const Message& request, RequestContext& ctx);
  Message HandleLoad(const Message& request, RequestContext& ctx);
  Message HandleUnload(const Message& request, RequestContext& ctx);

  /// End-of-request bookkeeping, one call per dispatched frame: the STATUS
  /// ring entry, request-scoped metrics, the wide log event, and (past the
  /// threshold) the slow-query capture.
  void FinishRequest(const RequestContext& ctx, const Message& request,
                     const Message& response, std::uint64_t latency_us);

  /// How long an overflowed/dead-on-arrival client should wait before
  /// retrying: queue pressure ahead of it times an EWMA of recent execute
  /// times, clamped to [25ms, 10s].
  std::uint64_t RetryAfterMsHint() const;

  /// The always-compiled daemon families of the METRICS exposition
  /// (uptime, per-verb requests, per-graph fastpath routing) — available
  /// even when the obs registry is off or compiled out.
  void WriteDaemonExposition(std::ostream& os) const;

  // egolint: no-guard(immutable after construction, read lock-free)
  Options options_;
  /// Owned by the accept thread after Start (AcceptLoop closes it).
  // egolint: no-guard(accept-thread-owned after Start)
  Listener listener_;
  /// Internally synchronized (its own mutex_ capability).
  // egolint: no-guard(internally synchronized, see net/registry.h)
  GraphRegistry registry_;
  /// Internally synchronized (its own mu_ capability).
  // egolint: no-guard(internally synchronized, see net/queue.h)
  FairRequestQueue queue_;
  /// Written once in Start before any worker thread exists.
  // egolint: no-guard(written before threads start, read-only after)
  std::uint64_t started_micros_ = 0;

  /// Touched only by Start and the shutdown path, serialized by shutdown_.
  // egolint: no-guard(Start/Wait lifecycle only, never concurrent)
  std::thread accept_thread_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> draining_{false};

  Mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_
      EGO_GUARDED_BY(connections_mutex_);

  /// EWMA of QUERY/UPDATE execute time feeding retry_after_ms hints.
  std::atomic<std::uint64_t> exec_ewma_us_{0};
  std::atomic<std::uint64_t> connections_count_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> busy_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnect_cancels_{0};

  /// Per-verb dispatch tallies, indexed by the request-type byte
  /// (0x01..0x07). Slot 0 is unused.
  std::array<std::atomic<std::uint64_t>, 8> verb_counts_{};

  /// Sequence for server-assigned request ids (net/request_context.h).
  std::atomic<std::uint64_t> request_seq_{0};

  mutable Mutex ring_mutex_;
  std::deque<RequestRecord> ring_ EGO_GUARDED_BY(ring_mutex_);

  mutable Mutex slow_mutex_;
  std::deque<SlowQueryRecord> slow_ring_ EGO_GUARDED_BY(slow_mutex_);
};

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_SERVER_H_
