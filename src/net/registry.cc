#include "net/registry.h"

#include <utility>

#include "graph/io.h"

namespace egocensus::net {

Status GraphRegistry::LoadFromFile(const std::string& name,
                                   const std::string& path) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) return graph.status();
  return Add(name, std::move(*graph));
}

Status GraphRegistry::Add(const std::string& name, Graph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  auto entry = std::make_shared<GraphEntry>(name, std::move(graph));
  MutexLock lock(mutex_);
  auto [it, inserted] = entries_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already loaded (unload it first)");
  }
  return Status::Ok();
}

Status GraphRegistry::Unload(const std::string& name) {
  MutexLock lock(mutex_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("graph '" + name + "' is not loaded");
  }
  return Status::Ok();
}

Result<std::shared_ptr<GraphEntry>> GraphRegistry::Get(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second;
  std::string known;
  for (const auto& [known_name, entry] : entries_) {
    if (!known.empty()) known += ", ";
    known += known_name;
  }
  return Status::NotFound("graph '" + name + "' is not loaded (loaded: " +
                          (known.empty() ? "none" : known) + ")");
}

std::vector<GraphSummary> GraphRegistry::Summaries() const {
  std::vector<std::shared_ptr<GraphEntry>> entries;
  {
    MutexLock lock(mutex_);
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) entries.push_back(entry);
  }
  std::vector<GraphSummary> summaries;
  summaries.reserve(entries.size());
  for (const auto& entry : entries) {
    SharedMutexLock lock(entry->mutex);
    GraphSummary summary;
    summary.name = entry->name;
    summary.nodes = entry->dynamic.NumNodes();
    summary.edges = entry->dynamic.NumEdges();
    summary.version = entry->dynamic.version();
    summary.updates_applied = entry->updates_applied;
    summary.fastpath_routed =
        entry->fastpath_routed.load(std::memory_order_relaxed);
    summary.fastpath_generic =
        entry->fastpath_generic.load(std::memory_order_relaxed);
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

std::size_t GraphRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace egocensus::net
