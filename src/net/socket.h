#ifndef EGOCENSUS_NET_SOCKET_H_
#define EGOCENSUS_NET_SOCKET_H_

// Thin Status-returning RAII wrappers over POSIX TCP sockets: exactly the
// surface the daemon and its client need (connect, listen/accept, framed
// send/receive, disconnect detection) and nothing more. All blocking; the
// server gets concurrency from threads, not an event loop — census
// requests are seconds of CPU, so reactor-style multiplexing would buy
// nothing over a thread per connection bounded by admission control.

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace egocensus::net {

/// A "host:port" endpoint. Parse accepts "127.0.0.1:7471", ":7471"
/// (wildcard host) and "localhost:7471".
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string ToString() const;
};

/// Parses HOST:PORT. Fails with kInvalidArgument on a missing/garbage port
/// (the CLI maps that to exit code 2).
[[nodiscard]] Result<Endpoint> ParseEndpoint(const std::string& text);

/// One connected stream socket (owning the fd). Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to a TCP endpoint (with TCP_NODELAY: frames are whole
  /// requests, Nagle only adds latency). `connect_timeout_ms` > 0 bounds
  /// the handshake (non-blocking connect + poll), failing with
  /// kDeadlineExceeded when the peer never answers the SYN — the
  /// blackholed-server case a plain connect() would ride out for minutes.
  /// 0 keeps the OS default blocking connect.
  [[nodiscard]] static Result<Socket> ConnectTcp(const Endpoint& endpoint,
                                                 int connect_timeout_ms = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Bounds every subsequent send/recv (SO_SNDTIMEO / SO_RCVTIMEO): a
  /// stalled peer turns into kDeadlineExceeded from SendFrame/RecvFrame
  /// instead of a thread parked forever. 0 restores fully blocking I/O.
  [[nodiscard]] Status SetIoTimeout(int timeout_ms);

  /// Sends one complete frame. Partial writes are retried until done.
  [[nodiscard]] Status SendFrame(const Message& message);

  /// Receives one complete frame, buffering across short reads. Fails with
  /// kNotFound on clean EOF before any byte of a frame (peer closed),
  /// kParseError on corrupt framing or EOF inside a frame (truncation),
  /// kDeadlineExceeded when an I/O timeout (SetIoTimeout) expires,
  /// kInternal on other socket errors.
  [[nodiscard]] Result<Message> RecvFrame();

  /// Sends raw bytes (tests use this to write deliberately broken frames).
  [[nodiscard]] Status SendRaw(const void* data, std::size_t size);

  /// Half-closes the write side (sends FIN; reads still drain).
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;  // bytes received past the last frame
};

/// Listening TCP socket. Binding port 0 picks an ephemeral port, readable
/// via port() afterwards — tests and the smoke job never race on a fixed
/// port that way.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. Fails with kResourceExhausted when the port is in
  /// use (EADDRINUSE), kInvalidArgument on an unresolvable host.
  [[nodiscard]] Status Listen(const Endpoint& endpoint, int backlog = 64);

  /// Accepts one connection, blocking at most `timeout_ms` (-1 = forever).
  /// Returns kNotFound on timeout (the accept loop's poll tick),
  /// kInterrupted when a signal cut the poll short (re-check stop flags
  /// and call again — with timeout -1 a kNotFound here would look like a
  /// timeout that cannot happen), kCancelled after Close() from another
  /// thread.
  [[nodiscard]] Result<Socket> AcceptOnce(int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Owner-thread close. Not safe concurrently with AcceptOnce: the accept
  /// loop polls with a finite timeout and re-checks its stop flag each
  /// tick, so shutdown never needs a cross-thread close.
  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace egocensus::net

#endif  // EGOCENSUS_NET_SOCKET_H_
