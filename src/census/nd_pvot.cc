#include <algorithm>
#include <vector>

#include "census/engines.h"
#include "exec/failpoints.h"
#include "graph/bfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {

// ND-PVOT (Section IV-A1 / Algorithm 2): find all matches once, index them
// by the image of a pivot pattern node, then BFS each focal node's k-hop
// neighborhood and count the indexed matches, skipping containment checks
// whenever the triangle bound d(n, n') + max_v <= k guarantees containment.
// When the bound fails, only the anchors u with d_P(pivot, u) >= k - d + 1
// (the "distant" sets) need explicit distance checks, because pattern
// distances upper-bound match distances in the graph.
//
// With a subpattern, the pivot is chosen among the subpattern nodes and all
// distances are measured to subpattern nodes only (Appendix B).
//
// The per-focal-node counting loop is sharded across the pool: pivot
// selection, the distant sets and the PMI are built once and read-only
// thereafter; each worker owns a BFS workspace and writes counts[n] only
// for its own focal nodes, so counts are identical for any worker count.
CensusResult RunNdPvot(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const Pattern& pattern = *ctx.pattern;
  const std::uint32_t k = ctx.options->k;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  bool match_interrupted = false;
  MatchSet matches = FindMatchesTimed(ctx, &result.stats, &match_interrupted);
  if (match_interrupted) {
    // A partial match set would undercount everywhere; keep all kPending.
    FinishExecStatus(ctx, "ND-PVOT", &result);
    return result;
  }
  MatchAnchors anchors(&matches, ctx.anchor_nodes);

  // Pivot: anchor pattern node minimizing the maximum pattern distance to
  // the other anchors.
  Timer timer;
  obs::ScopedSpan index_span("census/index");
  const auto& anchor_nodes = ctx.anchor_nodes;
  int pivot = anchor_nodes[0];
  std::uint32_t max_v = 0;
  {
    std::uint32_t best = Pattern::kUnreachable;
    for (int x : anchor_nodes) {
      std::uint32_t ecc = 0;
      for (int y : anchor_nodes) {
        ecc = std::max(ecc, pattern.Distance(x, y));
      }
      if (ecc < best) {
        best = ecc;
        pivot = x;
      }
    }
    max_v = best;
  }

  // distant[i] = anchor positions u (indices into the anchor list) with
  // d_P(pivot, u) >= i, for i in [1, max_v].
  std::vector<std::vector<int>> distant(max_v + 1);
  for (std::uint32_t i = 1; i <= max_v; ++i) {
    for (int j = 0; j < anchors.NumAnchors(); ++j) {
      if (pattern.Distance(pivot, anchor_nodes[j]) >= i) {
        distant[i].push_back(j);
      }
    }
  }

  PatternMatchIndex pmi = PatternMatchIndex::BuildOnNode(matches, pivot);
  result.stats.index_seconds = timer.ElapsedSeconds();
  index_span.End();

  timer.Reset();
  EGO_SPAN("census/count");
  auto process = [&](NodeId n, BfsWorkspace& bfs, CensusStats& stats) {
    bfs.Run(graph, n, k);
    EGO_HIST_RECORD("census/neighborhood_size", bfs.visited().size());
    stats.nodes_expanded += bfs.visited().size();
    stats.peak_neighborhood =
        std::max<std::uint64_t>(stats.peak_neighborhood, bfs.visited().size());
    std::uint64_t count = 0;
    for (NodeId visited : bfs.visited()) {
      auto mids = pmi.MatchesAt(visited);
      if (mids.empty()) continue;
      std::uint32_t d = bfs.DistanceTo(visited);
      if (d + max_v <= k) {
        count += mids.size();  // containment guaranteed, no checks
        continue;
      }
      const auto& check_set = distant[k - d + 1];
      for (std::uint32_t mid : mids) {
        bool inside = true;
        for (int j : check_set) {
          ++stats.containment_checks;
          if (!bfs.Reached(anchors.Anchor(mid, j))) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
    }
    result.counts[n] = count;
    result.focal_state[n] = FocalState::kComplete;
  };
  // One checkpoint per focal node; a stop leaves the rest kPending. The BFS
  // workspace is the per-worker footprint, charged at its high-water mark.
  auto run_range = [&](std::size_t begin, std::size_t end, BfsWorkspace& bfs,
                       CensusStats& stats, ScratchCharge& charge) {
    for (std::size_t i = begin; i < end; ++i) {
      EGO_FAILPOINT("census/focal");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      if (!charge.Update(gov, graph.NumNodes() * sizeof(NodeId))) return;
      process(ctx.focal[i], bfs, stats);
    }
  };
  if (ctx.pool == nullptr) {
    BfsWorkspace bfs;
    ScratchCharge charge;
    run_range(0, ctx.focal.size(), bfs, result.stats, charge);
  } else {
    std::vector<BfsWorkspace> bfs(ctx.pool->NumWorkers());
    std::vector<CensusStats> stats(ctx.pool->NumWorkers());
    std::vector<ScratchCharge> charges(ctx.pool->NumWorkers());
    ctx.pool->ParallelFor(
        0, ctx.focal.size(), /*grain=*/8, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          run_range(begin, end, bfs[worker], stats[worker], charges[worker]);
        });
    for (const auto& s : stats) result.stats.Merge(s);
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  FinishExecStatus(ctx, "ND-PVOT", &result);
  return result;
}

}  // namespace egocensus::internal
