#include "census/pt_common.h"

#include <algorithm>

#include "census/kmeans.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/timer.h"

namespace egocensus::internal {

PtParams PtParamsFromCensusOptions(const CensusOptions& options) {
  PtParams p;
  p.k = options.k;
  p.best_first = options.algorithm != CensusAlgorithm::kPtRnd;
  p.num_centers = options.num_centers;
  p.num_cluster_centers = options.num_cluster_centers;
  p.random_centers = options.random_centers;
  p.clustering = options.clustering;
  p.num_clusters = options.num_clusters;
  p.kmeans_iterations = options.kmeans_iterations;
  p.seed = options.seed;
  p.center_index = options.center_index;
  p.cluster_center_index = options.cluster_center_index;
  return p;
}

PtParams PtParamsFromPairwiseOptions(const PairwiseCensusOptions& options) {
  PtParams p;
  p.k = options.k;
  p.best_first = options.best_first;
  p.num_centers = options.num_centers;
  p.num_cluster_centers = options.num_cluster_centers;
  p.random_centers = options.random_centers;
  p.clustering = options.clustering;
  p.num_clusters = options.num_clusters;
  p.kmeans_iterations = options.kmeans_iterations;
  p.seed = options.seed;
  p.center_index = options.center_index;
  p.cluster_center_index = options.cluster_center_index;
  return p;
}

PtSetup BuildPtSetup(const Graph& graph, const Pattern& pattern,
                     const MatchAnchors& anchors, const PtParams& params) {
  EGO_SPAN("census/index");
  PtSetup setup;
  const std::size_t num_matches = anchors.NumMatches();
  const int t = anchors.NumAnchors();

  // Center distance index.
  Timer timer;
  const std::size_t centers_needed = std::max<std::size_t>(
      params.num_centers, params.clustering == ClusteringMode::kKMeans
                              ? params.num_cluster_centers
                              : 0);
  setup.center_index = params.center_index;
  if (setup.center_index == nullptr && centers_needed > 0) {
    Rng center_rng(params.seed);
    std::vector<NodeId> centers =
        params.random_centers
            ? PickRandomCenters(graph,
                                static_cast<std::uint32_t>(centers_needed),
                                &center_rng)
            : PickHighestDegreeCenters(
                  graph, static_cast<std::uint32_t>(centers_needed));
    setup.local_index = CenterDistanceIndex::Build(graph, std::move(centers));
    setup.center_index = &setup.local_index;
  }
  setup.index_seconds = timer.ElapsedSeconds();

  // Pattern-distance shortcut matrix between anchor positions.
  const auto& anchor_nodes = anchors.anchor_nodes();
  setup.anchor_dist.assign(static_cast<std::size_t>(t) * t, params.k + 1);
  for (int j = 0; j < t; ++j) {
    for (int l = 0; l < t; ++l) {
      std::uint32_t d = pattern.Distance(anchor_nodes[j], anchor_nodes[l]);
      setup.anchor_dist[static_cast<std::size_t>(j) * t + l] =
          std::min(d, params.k + 1);
    }
  }

  if (num_matches == 0) return setup;

  // Cluster the matches.
  Rng rng(params.seed + 1);
  std::uint32_t num_clusters = params.num_clusters;
  if (num_clusters == 0) {
    // Paper default: |M| / 4; capped so Lloyd's O(M * K * dim) stays
    // tractable when M is large.
    num_clusters = static_cast<std::uint32_t>(
        std::clamp<std::size_t>(num_matches / 4, 1, 1024));
  }
  num_clusters = std::min<std::uint32_t>(
      num_clusters, static_cast<std::uint32_t>(num_matches));

  std::vector<std::uint32_t> assignment(num_matches, 0);
  bool clustered = false;
  switch (params.clustering) {
    case ClusteringMode::kNone:
      break;
    case ClusteringMode::kRandom:
      // egolint: no-checkpoint(one RNG draw per match, setup before counting)
      for (std::size_t m = 0; m < num_matches; ++m) {
        assignment[m] =
            static_cast<std::uint32_t>(rng.NextBounded(num_clusters));
      }
      clustered = true;
      break;
    case ClusteringMode::kKMeans: {
      const CenterDistanceIndex* feature_index =
          params.cluster_center_index != nullptr ? params.cluster_center_index
                                                 : setup.center_index;
      const std::size_t feature_centers =
          feature_index == nullptr
              ? 0
              : std::min<std::size_t>(params.num_cluster_centers,
                                      feature_index->NumCenters());
      if (feature_centers == 0) break;  // no features: degenerate to none
      const std::size_t dim = feature_centers * static_cast<std::size_t>(t);
      std::vector<float> features(num_matches * dim);
      // egolint: no-checkpoint(one-time feature build, setup before counting)
      for (std::size_t m = 0; m < num_matches; ++m) {
        float* f = features.data() + m * dim;
        for (std::size_t c = 0; c < feature_centers; ++c) {
          for (int j = 0; j < t; ++j) {
            std::uint16_t d = feature_index->Distance(c, anchors.Anchor(m, j));
            f[c * t + j] = static_cast<float>(std::min<std::uint16_t>(d, 255));
          }
        }
      }
      assignment = KMeansCluster(features, num_matches, dim, num_clusters,
                                 params.kmeans_iterations, &rng);
      clustered = true;
      break;
    }
  }

  if (!clustered) {
    setup.clusters.resize(num_matches);
    // egolint: no-checkpoint(O(matches) singleton-cluster fill, setup pass)
    for (std::uint32_t m = 0; m < num_matches; ++m) {
      setup.clusters[m].push_back(m);
    }
  } else {
    setup.clusters.resize(num_clusters);
    // egolint: no-checkpoint(O(matches) cluster-assignment fill, setup pass)
    for (std::uint32_t m = 0; m < num_matches; ++m) {
      setup.clusters[assignment[m]].push_back(m);
    }
    setup.clusters.erase(
        std::remove_if(setup.clusters.begin(), setup.clusters.end(),
                       [](const auto& g) { return g.empty(); }),
        setup.clusters.end());
  }
  return setup;
}

}  // namespace egocensus::internal
