#include <algorithm>
#include <optional>
#include <vector>

#include "census/engines.h"
#include "census/pt_common.h"
#include "exec/failpoints.h"
#include "census/pt_expander.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {

// PT-OPT / PT-RND (Section IV-B / Algorithm 4): cluster the pattern matches
// (K-means over center-distance feature vectors), then for each cluster run
// one simultaneous traversal computing, for every node near the cluster, its
// distances to all cluster anchors; a node's count increases once per match
// whose anchors all lie within k hops. PT-RND replaces the best-first queue
// with random pops, isolating the contribution of best-first ordering
// (Fig. 4(d)).
//
// Clusters are independent, so the parallel path shards the cluster list;
// each worker owns an expander (its traversal state is per-instance) plus a
// private count vector, and the vectors are summed in worker order after the
// loop. The PMD relaxation converges to the unique exact-distance fixpoint
// regardless of pop order, so counts are identical to the serial run for any
// worker count (and for PT-RND's randomized pops); only traversal stats like
// pops/reinsertions may differ, which the determinism contract excludes.
CensusResult RunPtOpt(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const Pattern& pattern = *ctx.pattern;
  const CensusOptions& options = *ctx.options;
  const std::uint32_t k = options.k;
  const std::vector<char>& is_focal = *ctx.is_focal;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  bool match_interrupted = false;
  MatchSet matches = FindMatchesTimed(ctx, &result.stats, &match_interrupted);
  if (match_interrupted) {
    FinishExecStatus(ctx, "PT-OPT", &result);
    return result;
  }
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  if (anchors.NumMatches() == 0) {
    MarkAllFocal(ctx, &result, FocalState::kComplete);
    return result;
  }

  PtParams params = PtParamsFromCensusOptions(options);
  PtSetup setup = BuildPtSetup(graph, pattern, anchors, params);
  result.stats.index_seconds = setup.index_seconds;
  if (obs::Enabled()) {
    static const obs::HistogramHandle cluster_hist(
        "census/pt/cluster_size");
    // egolint: no-checkpoint(O(clusters) metric recording, no match work)
    for (const auto& cluster : setup.clusters) {
      cluster_hist.Record(cluster.size());
    }
  }

  Timer timer;
  EGO_SPAN("census/count");
  ExpanderOptions expander_options;
  expander_options.k = k;
  expander_options.best_first = params.best_first;
  expander_options.centers = setup.center_index;
  expander_options.num_centers = params.num_centers;
  expander_options.seed = params.seed + 2;

  struct Scratch {
    std::optional<SimultaneousExpander> expander;
    std::vector<std::vector<NodeId>> anchor_sets;
    std::vector<NodeId> buffer;
    CensusStats stats;
    ScratchCharge charge;  // high-water footprint of the expander state
  };
  // Processes one cluster, accumulating into `counts` (the shared result
  // vector when serial, a per-worker private vector when parallel).
  auto process = [&](const std::vector<std::uint32_t>& cluster, Scratch& s,
                     std::uint64_t* counts) {
    s.anchor_sets.clear();
    for (std::uint32_t mid : cluster) {
      anchors.Get(mid, &s.buffer);
      s.anchor_sets.push_back(s.buffer);
    }
    SimultaneousExpander& expander = *s.expander;
    expander.Expand(s.anchor_sets, &setup.anchor_dist);
    EGO_HIST_RECORD("census/pt/expansion_size", expander.NumVisited());
    s.stats.peak_neighborhood = std::max<std::uint64_t>(
        s.stats.peak_neighborhood, expander.NumVisited());
    const auto& match_anchor_idx = expander.match_anchor_indices();
    for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
      NodeId n = expander.VisitedNode(slot);
      if (!is_focal[n]) continue;
      for (const auto& idx : match_anchor_idx) {
        bool near = true;
        for (std::uint32_t a : idx) {
          ++s.stats.containment_checks;
          if (expander.Pmd(slot, a) > k) {
            near = false;
            break;
          }
        }
        if (near) ++counts[n];
      }
    }
  };

  // Counts accumulate contributions across clusters, so completion is
  // all-or-nothing (like PT-BAS): an interrupted run leaves every focal
  // node kPending with lower-bound counts.
  auto run_range = [&](std::size_t begin, std::size_t end, Scratch& s,
                       std::uint64_t* counts) {
    for (std::size_t c = begin; c < end; ++c) {
      EGO_FAILPOINT("census/cluster");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      // Simultaneous-expansion distance table: per-visited-node rows over
      // the cluster's anchors, plus the private count vector.
      if (!s.charge.Update(
              gov, static_cast<std::uint64_t>(graph.NumNodes()) *
                       sizeof(std::uint64_t) +
                   s.expander->NumVisited() *
                       setup.clusters[c].size() * sizeof(std::uint32_t))) {
        return;
      }
      process(setup.clusters[c], s, counts);
    }
  };
  if (ctx.pool == nullptr) {
    Scratch scratch;
    scratch.expander.emplace(graph, expander_options);
    run_range(0, setup.clusters.size(), scratch, result.counts.data());
    scratch.stats.nodes_expanded = scratch.expander->stats().pops;
    scratch.stats.reinsertions = scratch.expander->stats().reinsertions;
    result.stats.Merge(scratch.stats);
  } else {
    const unsigned workers = ctx.pool->NumWorkers();
    std::vector<Scratch> scratch(workers);
    for (auto& s : scratch) s.expander.emplace(graph, expander_options);
    std::vector<std::vector<std::uint64_t>> counts(
        workers, std::vector<std::uint64_t>(graph.NumNodes(), 0));
    ctx.pool->ParallelFor(
        0, setup.clusters.size(), /*grain=*/1, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          run_range(begin, end, scratch[worker], counts[worker].data());
        });
    for (unsigned w = 0; w < workers; ++w) {
      EGO_FAILPOINT("census/merge");
      scratch[w].stats.nodes_expanded = scratch[w].expander->stats().pops;
      scratch[w].stats.reinsertions = scratch[w].expander->stats().reinsertions;
      for (NodeId n = 0; n < graph.NumNodes(); ++n) {
        result.counts[n] += counts[w][n];
      }
      result.stats.Merge(scratch[w].stats);
    }
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  if (gov == nullptr || !gov->stopped()) {
    MarkAllFocal(ctx, &result, FocalState::kComplete);
  }
  FinishExecStatus(ctx, "PT-OPT", &result);
  return result;
}

}  // namespace egocensus::internal
