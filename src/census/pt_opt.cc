#include <algorithm>

#include "census/engines.h"
#include "census/pt_common.h"
#include "census/pt_expander.h"
#include "util/timer.h"

namespace egocensus::internal {

// PT-OPT / PT-RND (Section IV-B / Algorithm 4): cluster the pattern matches
// (K-means over center-distance feature vectors), then for each cluster run
// one simultaneous traversal computing, for every node near the cluster, its
// distances to all cluster anchors; a node's count increases once per match
// whose anchors all lie within k hops. PT-RND replaces the best-first queue
// with random pops, isolating the contribution of best-first ordering
// (Fig. 4(d)).
CensusResult RunPtOpt(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const Pattern& pattern = *ctx.pattern;
  const CensusOptions& options = *ctx.options;
  const std::uint32_t k = options.k;
  const std::vector<char>& is_focal = *ctx.is_focal;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);

  MatchSet matches = FindMatchesTimed(ctx, &result.stats);
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  if (anchors.NumMatches() == 0) return result;

  PtParams params = PtParamsFromCensusOptions(options);
  PtSetup setup = BuildPtSetup(graph, pattern, anchors, params);
  result.stats.index_seconds = setup.index_seconds;

  Timer timer;
  ExpanderOptions expander_options;
  expander_options.k = k;
  expander_options.best_first = params.best_first;
  expander_options.centers = setup.center_index;
  expander_options.num_centers = params.num_centers;
  expander_options.seed = params.seed + 2;
  SimultaneousExpander expander(graph, expander_options);

  std::vector<std::vector<NodeId>> anchor_sets;
  std::vector<NodeId> buffer;
  for (const auto& cluster : setup.clusters) {
    anchor_sets.clear();
    for (std::uint32_t mid : cluster) {
      anchors.Get(mid, &buffer);
      anchor_sets.push_back(buffer);
    }
    expander.Expand(anchor_sets, &setup.anchor_dist);
    const auto& match_anchor_idx = expander.match_anchor_indices();
    for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
      NodeId n = expander.VisitedNode(slot);
      if (!is_focal[n]) continue;
      for (const auto& idx : match_anchor_idx) {
        bool near = true;
        for (std::uint32_t a : idx) {
          ++result.stats.containment_checks;
          if (expander.Pmd(slot, a) > k) {
            near = false;
            break;
          }
        }
        if (near) ++result.counts[n];
      }
    }
  }
  result.stats.nodes_expanded = expander.stats().pops;
  result.stats.reinsertions = expander.stats().reinsertions;
  result.stats.census_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus::internal
