#include <unordered_set>

#include "census/engines.h"
#include "graph/bfs.h"
#include "util/timer.h"

namespace egocensus::internal {

// ND-DIFF (Section IV-A2 / Algorithm 3): exploit overlap between the
// neighborhoods of consecutive focal nodes. Matches are indexed under every
// anchor image. Walking a chain of adjacent focal nodes, the match set of
// the current node is derived from the previous node's set by (1) adding
// matches anchored at nodes in N_k(current) - N_k(prev) that are fully
// contained in N_k(current), and (2) removing matches with an anchor in
// N_k(prev) - N_k(current).
CensusResult RunNdDiff(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const std::uint32_t k = ctx.options->k;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);

  MatchSet matches = FindMatchesTimed(ctx, &result.stats);
  MatchAnchors anchors(&matches, ctx.anchor_nodes);

  Timer timer;
  PatternMatchIndex pmi = PatternMatchIndex::BuildOnAnchors(anchors);
  result.stats.index_seconds = timer.ElapsedSeconds();

  timer.Reset();
  std::vector<char> pending(graph.NumNodes(), 0);
  for (NodeId n : ctx.focal) pending[n] = 1;

  BfsWorkspace bfs_a;
  BfsWorkspace bfs_b;
  BfsWorkspace* current_bfs = &bfs_a;
  BfsWorkspace* prev_bfs = &bfs_b;

  std::unordered_set<std::uint32_t> current_set;

  auto contained = [&](std::uint32_t mid, const BfsWorkspace& bfs) {
    for (int j = 0; j < anchors.NumAnchors(); ++j) {
      if (!bfs.Reached(anchors.Anchor(mid, j))) return false;
    }
    return true;
  };

  std::size_t scan = 0;  // next focal index to consider for a fresh start
  bool have_prev = false;
  NodeId current = kInvalidNode;

  std::size_t processed = 0;
  const std::size_t total = ctx.focal.size();
  while (processed < total) {
    if (current == kInvalidNode) {
      while (scan < total && !pending[ctx.focal[scan]]) ++scan;
      current = ctx.focal[scan];
      have_prev = false;
    }
    pending[current] = 0;
    ++processed;

    current_bfs->Run(graph, current, k);
    result.stats.nodes_expanded += current_bfs->visited().size();

    if (!have_prev) {
      current_set.clear();
      for (NodeId n : current_bfs->visited()) {
        for (std::uint32_t mid : pmi.MatchesAt(n)) {
          ++result.stats.containment_checks;
          if (contained(mid, *current_bfs)) current_set.insert(mid);
        }
      }
    } else {
      // N1 = N_k(current) - N_k(prev): candidate additions.
      for (NodeId n : current_bfs->visited()) {
        if (prev_bfs->Reached(n)) continue;
        for (std::uint32_t mid : pmi.MatchesAt(n)) {
          ++result.stats.containment_checks;
          if (contained(mid, *current_bfs)) current_set.insert(mid);
        }
      }
      // N2 = N_k(prev) - N_k(current): removals.
      for (NodeId n : prev_bfs->visited()) {
        if (current_bfs->Reached(n)) continue;
        for (std::uint32_t mid : pmi.MatchesAt(n)) {
          current_set.erase(mid);
        }
      }
    }
    result.counts[current] = current_set.size();

    // Prefer an unprocessed focal neighbor to keep neighborhoods shared.
    NodeId next = kInvalidNode;
    for (NodeId nbr : graph.Neighbors(current)) {
      if (pending[nbr]) {
        next = nbr;
        break;
      }
    }
    if (next != kInvalidNode) {
      std::swap(current_bfs, prev_bfs);
      have_prev = true;
      current = next;
    } else {
      current = kInvalidNode;  // fresh start next iteration
    }
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus::internal
