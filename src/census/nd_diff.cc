#include <algorithm>
#include <unordered_set>
#include <vector>

#include "census/engines.h"
#include "exec/failpoints.h"
#include "graph/bfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {

// ND-DIFF (Section IV-A2 / Algorithm 3): exploit overlap between the
// neighborhoods of consecutive focal nodes. Matches are indexed under every
// anchor image. Walking a chain of adjacent focal nodes, the match set of
// the current node is derived from the previous node's set by (1) adding
// matches anchored at nodes in N_k(current) - N_k(prev) that are fully
// contained in N_k(current), and (2) removing matches with an anchor in
// N_k(prev) - N_k(current).
//
// Chain decomposition only affects how much work is shared, never the
// per-node result: counts[n] is always |{m : anchors(m) subset of N_k(n)}|.
// The parallel path therefore shards the focal list into contiguous slices,
// one chain walk per slice, with per-worker scratch (two BFS workspaces, the
// running match set, and an epoch-stamped pending mask). Workers write
// counts[n] only for nodes of their own slice, so results stay identical to
// the serial run for any worker count; chains just cannot cross slice
// boundaries, which costs a little sharing but no correctness.
CensusResult RunNdDiff(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const std::uint32_t k = ctx.options->k;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  bool match_interrupted = false;
  MatchSet matches = FindMatchesTimed(ctx, &result.stats, &match_interrupted);
  if (match_interrupted) {
    // A partial match set would undercount everywhere; keep all kPending.
    FinishExecStatus(ctx, "ND-DIFF", &result);
    return result;
  }
  MatchAnchors anchors(&matches, ctx.anchor_nodes);

  Timer timer;
  obs::ScopedSpan index_span("census/index");
  PatternMatchIndex pmi = PatternMatchIndex::BuildOnAnchors(anchors);
  result.stats.index_seconds = timer.ElapsedSeconds();
  index_span.End();

  timer.Reset();
  EGO_SPAN("census/count");
  auto contained = [&](std::uint32_t mid, const BfsWorkspace& bfs) {
    for (int j = 0; j < anchors.NumAnchors(); ++j) {
      if (!bfs.Reached(anchors.Anchor(mid, j))) return false;
    }
    return true;
  };

  struct DiffScratch {
    BfsWorkspace bfs_a;
    BfsWorkspace bfs_b;
    std::unordered_set<std::uint32_t> current_set;
    std::vector<std::uint32_t> pending_epoch;
    std::uint32_t epoch = 0;
    ScratchCharge charge;  // high-water footprint of the walk state
  };

  // Run the chain walk over focal indices [begin, end).
  auto process_range = [&](std::size_t begin, std::size_t end, DiffScratch& s,
                           CensusStats& stats) {
    if (s.pending_epoch.size() < graph.NumNodes()) {
      s.pending_epoch.assign(graph.NumNodes(), 0);
    }
    const std::uint32_t epoch = ++s.epoch;
    // egolint: no-checkpoint(O(chunk) epoch stores; chain walk below polls)
    for (std::size_t i = begin; i < end; ++i) {
      s.pending_epoch[ctx.focal[i]] = epoch;
    }
    auto pending = [&](NodeId n) { return s.pending_epoch[n] == epoch; };

    BfsWorkspace* current_bfs = &s.bfs_a;
    BfsWorkspace* prev_bfs = &s.bfs_b;
    std::unordered_set<std::uint32_t>& current_set = s.current_set;

    std::size_t scan = begin;  // next focal index for a fresh chain start
    bool have_prev = false;
    NodeId current = kInvalidNode;
    // Chain bookkeeping for the sharing metrics: a "chain" is a maximal run
    // of focal nodes derived differentially from one fresh set; its length
    // distribution and the fresh/diff step counts expose how much work
    // ND-DIFF actually shares (sharing ratio = diff_steps / focal nodes).
    static const obs::HistogramHandle chain_hist("census/nd-diff/chain_len");
    static const obs::CounterHandle fresh_counter(
        "census/nd-diff/fresh_sets");
    static const obs::CounterHandle diff_counter("census/nd-diff/diff_steps");
    std::uint64_t chain_len = 0;

    std::size_t processed = 0;
    const std::size_t total = end - begin;
    while (processed < total) {
      // One checkpoint per focal node: a stop abandons the chain mid-walk
      // and every unprocessed node of this slice stays kPending. The walk
      // state (two BFS frontiers + the running match set + the epoch mask)
      // is the engine's memory footprint, charged at its high-water mark.
      EGO_FAILPOINT("census/focal");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      if (!s.charge.Update(
              gov, 3 * static_cast<std::uint64_t>(graph.NumNodes()) *
                           sizeof(std::uint32_t) +
                       s.current_set.size() * 2 * sizeof(std::uint64_t))) {
        return;
      }
      if (current == kInvalidNode) {
        while (scan < end && !pending(ctx.focal[scan])) ++scan;
        current = ctx.focal[scan];
        have_prev = false;
        if (chain_len > 0) chain_hist.Record(chain_len);
        chain_len = 0;
      }
      s.pending_epoch[current] = 0;
      ++processed;
      ++chain_len;

      current_bfs->Run(graph, current, k);
      EGO_HIST_RECORD("census/neighborhood_size",
                      current_bfs->visited().size());
      stats.nodes_expanded += current_bfs->visited().size();
      stats.peak_neighborhood = std::max<std::uint64_t>(
          stats.peak_neighborhood, current_bfs->visited().size());

      if (!have_prev) {
        fresh_counter.Add(1);
        current_set.clear();
        for (NodeId n : current_bfs->visited()) {
          for (std::uint32_t mid : pmi.MatchesAt(n)) {
            ++stats.containment_checks;
            if (contained(mid, *current_bfs)) current_set.insert(mid);
          }
        }
      } else {
        diff_counter.Add(1);
        // N1 = N_k(current) - N_k(prev): candidate additions.
        for (NodeId n : current_bfs->visited()) {
          if (prev_bfs->Reached(n)) continue;
          for (std::uint32_t mid : pmi.MatchesAt(n)) {
            ++stats.containment_checks;
            if (contained(mid, *current_bfs)) current_set.insert(mid);
          }
        }
        // N2 = N_k(prev) - N_k(current): removals.
        for (NodeId n : prev_bfs->visited()) {
          if (current_bfs->Reached(n)) continue;
          for (std::uint32_t mid : pmi.MatchesAt(n)) {
            current_set.erase(mid);
          }
        }
      }
      result.counts[current] = current_set.size();
      result.focal_state[current] = FocalState::kComplete;

      // Prefer an unprocessed focal neighbor to keep neighborhoods shared.
      NodeId next = kInvalidNode;
      for (NodeId nbr : graph.Neighbors(current)) {
        if (pending(nbr)) {
          next = nbr;
          break;
        }
      }
      if (next != kInvalidNode) {
        std::swap(current_bfs, prev_bfs);
        have_prev = true;
        current = next;
      } else {
        current = kInvalidNode;  // fresh start next iteration
      }
    }
    if (chain_len > 0) chain_hist.Record(chain_len);
  };

  if (ctx.pool == nullptr) {
    DiffScratch scratch;
    process_range(0, ctx.focal.size(), scratch, result.stats);
  } else {
    const unsigned workers = ctx.pool->NumWorkers();
    // Coarse grain: differential sharing pays off only along long chains,
    // so keep slices big while still giving the pool room to balance.
    const std::size_t grain =
        std::max<std::size_t>(32, ctx.focal.size() / (workers * 8));
    std::vector<DiffScratch> scratch(workers);
    std::vector<CensusStats> stats(workers);
    ctx.pool->ParallelFor(
        0, ctx.focal.size(), grain, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          process_range(begin, end, scratch[worker], stats[worker]);
        });
    for (const auto& s : stats) result.stats.Merge(s);
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  FinishExecStatus(ctx, "ND-DIFF", &result);
  return result;
}

}  // namespace egocensus::internal
