#include <algorithm>

#include "census/engines.h"
#include "graph/bfs.h"
#include "util/timer.h"

namespace egocensus::internal {

// PT-BAS (Section IV-B): process each pattern match independently. For a
// match with anchors m_1..m_t, BFS each anchor's k-hop neighborhood, pick
// the anchor m_min with the fewest k-hop neighbors, and test every node in
// its neighborhood for reachability within k hops from every other anchor.
CensusResult RunPtBas(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const std::uint32_t k = ctx.options->k;
  const std::vector<char>& is_focal = *ctx.is_focal;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);

  MatchSet matches = FindMatchesTimed(ctx, &result.stats);
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  const int t = anchors.NumAnchors();

  Timer timer;
  std::vector<BfsWorkspace> bfs(t);
  for (std::size_t m = 0; m < anchors.NumMatches(); ++m) {
    int min_idx = 0;
    std::size_t min_size = 0;
    for (int j = 0; j < t; ++j) {
      bfs[j].Run(graph, anchors.Anchor(m, j), k);
      result.stats.nodes_expanded += bfs[j].visited().size();
      if (j == 0 || bfs[j].visited().size() < min_size) {
        min_idx = j;
        min_size = bfs[j].visited().size();
      }
    }
    for (NodeId n : bfs[min_idx].visited()) {
      if (!is_focal[n]) continue;
      bool near = true;
      for (int j = 0; j < t; ++j) {
        if (j == min_idx) continue;
        ++result.stats.containment_checks;
        if (!bfs[j].Reached(n)) {
          near = false;
          break;
        }
      }
      if (near) ++result.counts[n];
    }
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus::internal
