#include <algorithm>
#include <vector>

#include "census/engines.h"
#include "exec/failpoints.h"
#include "graph/bfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {

// PT-BAS (Section IV-B): process each pattern match independently. For a
// match with anchors m_1..m_t, BFS each anchor's k-hop neighborhood, pick
// the anchor m_min with the fewest k-hop neighbors, and test every node in
// its neighborhood for reachability within k hops from every other anchor.
//
// Matches are independent, so the parallel path shards the match list;
// different matches can increment the same node's count, so each worker
// accumulates into a private count vector and the vectors are summed in
// worker order afterwards. Integer addition is order-insensitive, so the
// totals are identical to the serial run for any worker count.
CensusResult RunPtBas(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const std::uint32_t k = ctx.options->k;
  const std::vector<char>& is_focal = *ctx.is_focal;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  bool match_interrupted = false;
  MatchSet matches = FindMatchesTimed(ctx, &result.stats, &match_interrupted);
  if (match_interrupted) {
    FinishExecStatus(ctx, "PT-BAS", &result);
    return result;
  }
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  const int t = anchors.NumAnchors();

  Timer timer;
  EGO_SPAN("census/count");
  auto process = [&](std::size_t m, std::vector<BfsWorkspace>& bfs,
                     std::uint64_t* counts, CensusStats& stats) {
    int min_idx = 0;
    std::size_t min_size = 0;
    for (int j = 0; j < t; ++j) {
      bfs[j].Run(graph, anchors.Anchor(m, j), k);
      EGO_HIST_RECORD("census/neighborhood_size", bfs[j].visited().size());
      stats.nodes_expanded += bfs[j].visited().size();
      stats.peak_neighborhood = std::max<std::uint64_t>(
          stats.peak_neighborhood, bfs[j].visited().size());
      if (j == 0 || bfs[j].visited().size() < min_size) {
        min_idx = j;
        min_size = bfs[j].visited().size();
      }
    }
    for (NodeId n : bfs[min_idx].visited()) {
      if (!is_focal[n]) continue;
      bool near = true;
      for (int j = 0; j < t; ++j) {
        if (j == min_idx) continue;
        ++stats.containment_checks;
        if (!bfs[j].Reached(n)) {
          near = false;
          break;
        }
      }
      if (near) ++counts[n];
    }
  };

  // Counts accumulate contributions across matches, so completion is
  // all-or-nothing: an interrupted run leaves every focal node kPending and
  // its counts are lower bounds (matches processed so far), never wrong.
  auto run_range = [&](std::size_t begin, std::size_t end,
                       std::vector<BfsWorkspace>& bfs, std::uint64_t* counts,
                       CensusStats& stats, ScratchCharge& charge) {
    for (std::size_t m = begin; m < end; ++m) {
      EGO_FAILPOINT("census/cluster");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      // t BFS workspaces + the private count vector.
      if (!charge.Update(gov, static_cast<std::uint64_t>(graph.NumNodes()) *
                                  (t * sizeof(NodeId) +
                                   sizeof(std::uint64_t)))) {
        return;
      }
      process(m, bfs, counts, stats);
    }
  };
  if (ctx.pool == nullptr) {
    std::vector<BfsWorkspace> bfs(t);
    ScratchCharge charge;
    run_range(0, anchors.NumMatches(), bfs, result.counts.data(),
              result.stats, charge);
  } else {
    const unsigned workers = ctx.pool->NumWorkers();
    std::vector<std::vector<BfsWorkspace>> bfs(workers);
    for (auto& b : bfs) b.resize(t);
    std::vector<std::vector<std::uint64_t>> counts(
        workers, std::vector<std::uint64_t>(graph.NumNodes(), 0));
    std::vector<CensusStats> stats(workers);
    std::vector<ScratchCharge> charges(workers);
    ctx.pool->ParallelFor(
        0, anchors.NumMatches(), /*grain=*/4, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          run_range(begin, end, bfs[worker], counts[worker].data(),
                    stats[worker], charges[worker]);
        });
    for (unsigned w = 0; w < workers; ++w) {
      EGO_FAILPOINT("census/merge");
      for (NodeId n = 0; n < graph.NumNodes(); ++n) {
        result.counts[n] += counts[w][n];
      }
      result.stats.Merge(stats[w]);
    }
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  if (gov == nullptr || !gov->stopped()) {
    MarkAllFocal(ctx, &result, FocalState::kComplete);
  }
  FinishExecStatus(ctx, "PT-BAS", &result);
  return result;
}

}  // namespace egocensus::internal
