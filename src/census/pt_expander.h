#ifndef EGOCENSUS_CENSUS_PT_EXPANDER_H_
#define EGOCENSUS_CENSUS_PT_EXPANDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/distance_index.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace egocensus::internal {

/// Parameters of the simultaneous neighborhood traversal of Algorithm 4.
struct ExpanderOptions {
  std::uint32_t k = 1;
  /// Best-first (array priority queue on score = sum of PMD values) vs
  /// random queue order (PT-RND).
  bool best_first = true;
  /// Center distance index and how many of its centers to use for PMD
  /// seeding / triangle-inequality initialization (0 disables centers).
  const CenterDistanceIndex* centers = nullptr;
  std::size_t num_centers = 0;
  std::uint64_t seed = 7;
};

struct ExpanderStats {
  std::uint64_t pops = 0;
  std::uint64_t reinsertions = 0;  // pops of a node already processed at an
                                   // equal-or-better score
  std::uint64_t relaxations = 0;   // PMD entries improved
};

/// Simultaneous best-first traversal around a *cluster* of pattern matches
/// (Sections IV-B1..IV-B5). Maintains, for every discovered database node,
/// the vector PMD of upper-bound distances to each distinct anchor node of
/// the cluster, capped at k+1. Seeds the queue with the anchors (with
/// pattern-distance shortcuts between anchors of the same match) and the
/// centers (with exact center distances), applies triangle-inequality
/// initialization to newly discovered nodes, and relaxes until fixpoint.
/// After Expand(), PMD values equal exact distances wherever those are
/// <= k (larger values are clamped to k+1).
///
/// Thread-safety: all traversal state is per-instance, so distinct
/// expanders may expand different clusters of the same graph concurrently
/// (the parallel PT-OPT engine keeps one per worker); the fixpoint is
/// pop-order independent, so results do not depend on which instance or
/// thread handled a cluster. A single instance is not re-entrant.
class SimultaneousExpander {
 public:
  SimultaneousExpander(const Graph& graph, const ExpanderOptions& options);

  /// Expands around the matches of one cluster. `anchor_sets[m]` holds the
  /// anchor node ids of the m-th match. `anchor_pattern_dist`, when
  /// non-null, is a t*t row-major matrix (t = per-match anchor count) of
  /// pattern-graph distances between anchor positions, used for the
  /// distance-shortcut initialization (values capped at k+1 by the caller).
  void Expand(const std::vector<std::vector<NodeId>>& anchor_sets,
              const std::vector<std::uint32_t>* anchor_pattern_dist);

  // --- Results, valid until the next Expand() ---

  std::size_t NumVisited() const { return slot_nodes_.size(); }
  NodeId VisitedNode(std::size_t slot) const { return slot_nodes_[slot]; }

  /// Distinct anchor nodes of the cluster.
  const std::vector<NodeId>& cluster_anchors() const {
    return cluster_anchors_;
  }

  /// For the m-th match of the cluster: indices of its anchors within
  /// cluster_anchors().
  const std::vector<std::vector<std::uint32_t>>& match_anchor_indices() const {
    return match_anchor_indices_;
  }

  /// PMD of visited slot w.r.t. cluster anchor index a; k+1 means "> k".
  std::uint8_t Pmd(std::size_t slot, std::size_t a) const {
    return pmd_[slot * cluster_anchors_.size() + a];
  }

  const ExpanderStats& stats() const { return stats_; }

 private:
  std::uint32_t SlotOf(NodeId n);  // creates + initializes on first touch

  const Graph& graph_;
  ExpanderOptions options_;
  Rng rng_;
  ExpanderStats stats_;

  std::uint8_t far_;  // k+1, the PMD cap

  // Dense epoch-stamped node -> slot map (reset is O(1) per Expand).
  std::vector<std::uint32_t> slot_of_;
  std::vector<std::uint32_t> slot_epoch_;
  std::uint32_t epoch_ = 0;

  // Per-expansion state.
  std::vector<NodeId> cluster_anchors_;
  std::vector<std::vector<std::uint32_t>> match_anchor_indices_;
  std::vector<NodeId> slot_nodes_;
  std::vector<std::uint8_t> pmd_;             // slot-major
  std::vector<std::uint32_t> current_score_;  // per slot, kept incrementally
  std::vector<std::uint32_t> processed_score_;
  // center_anchor_dist_[c * num_anchors + a] = d(center c, anchor a),
  // capped at 254 to keep uint8 arithmetic safe. Only centers that can
  // possibly produce a bound below k+1 for this cluster (min_a d(c, a) <= k)
  // are kept; useful_centers_ holds their indices in the distance index.
  std::vector<std::uint8_t> center_anchor_dist_;
  std::vector<std::uint32_t> useful_centers_;
};

}  // namespace egocensus::internal

#endif  // EGOCENSUS_CENSUS_PT_EXPANDER_H_
