#ifndef EGOCENSUS_CENSUS_APPROX_H_
#define EGOCENSUS_CENSUS_APPROX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "census/census.h"
#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// Result of an approximate census: per-node unbiased count estimates.
struct ApproximateCensusResult {
  /// estimates[n] = (matches sampled in S(n,k)) / sample_rate.
  std::vector<double> estimates;
  CensusStats stats;
  std::uint64_t sampled_matches = 0;
};

struct ApproximateCensusOptions {
  std::uint32_t k = 1;
  std::string subpattern;
  /// Bernoulli sampling probability per match, in (0, 1]. 1.0 degenerates
  /// to the exact census.
  double sample_rate = 0.1;
  std::uint64_t seed = 13;
  /// Optional resource governor (see CensusOptions::governor). The
  /// per-focal counting loop polls Checkpoint(); on stop the run returns
  /// the governor's status instead of a partial estimate (a truncated
  /// estimate would silently bias the scaled counts). Not owned.
  Governor* governor = nullptr;
};

/// Approximation for very large graphs (the paper's Section VII future
/// work): find all matches once, keep each independently with probability
/// `sample_rate`, run the pivot-indexed census over the sampled matches
/// only, and scale counts by 1/sample_rate.
///
/// The estimator is unbiased per node (each match contributes to a node's
/// count independently of the others) with relative standard error
/// ~ sqrt((1 - p) / (p * count)), so nodes with large counts — the ones
/// ego-census analyses rank on — are estimated accurately while the census
/// pass does a `sample_rate` fraction of the containment work.
[[nodiscard]] Result<ApproximateCensusResult> RunApproximateCensus(
    const Graph& graph, const Pattern& pattern, std::span<const NodeId> focal,
    const ApproximateCensusOptions& options);

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_APPROX_H_
