#include "census/pt_expander.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/bucket_queue.h"

namespace egocensus::internal {

namespace {
constexpr std::uint32_t kNotProcessed =
    std::numeric_limits<std::uint32_t>::max();
}  // namespace

SimultaneousExpander::SimultaneousExpander(const Graph& graph,
                                           const ExpanderOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  assert(options_.k <= 253);
  far_ = static_cast<std::uint8_t>(options_.k + 1);
  if (options_.centers == nullptr) options_.num_centers = 0;
  options_.num_centers =
      std::min(options_.num_centers,
               options_.centers != nullptr ? options_.centers->NumCenters()
                                           : std::size_t{0});
  slot_of_.resize(graph.NumNodes());
  slot_epoch_.resize(graph.NumNodes(), 0);
}

std::uint32_t SimultaneousExpander::SlotOf(NodeId n) {
  if (slot_epoch_[n] == epoch_) return slot_of_[n];
  slot_epoch_[n] = epoch_;
  const std::size_t num_anchors = cluster_anchors_.size();
  std::uint32_t slot = static_cast<std::uint32_t>(slot_nodes_.size());
  slot_of_[n] = slot;
  slot_nodes_.push_back(n);
  std::size_t base = pmd_.size();
  pmd_.resize(base + num_anchors, far_);
  processed_score_.push_back(kNotProcessed);
  // Triangle-inequality initialization (Section IV-B4):
  //   PMD_m[n] <= min_c d(m, c) + d(c, n).
  for (std::size_t ci = 0; ci < useful_centers_.size(); ++ci) {
    std::uint32_t dc =
        options_.centers->Distance(useful_centers_[ci], n);
    if (dc >= far_) continue;  // bound cannot beat the k+1 cap
    const std::uint8_t* cad = center_anchor_dist_.data() + ci * num_anchors;
    for (std::size_t a = 0; a < num_anchors; ++a) {
      std::uint32_t bound = dc + cad[a];
      if (bound < pmd_[base + a]) {
        pmd_[base + a] = static_cast<std::uint8_t>(bound);
      }
    }
  }
  // Score maintained incrementally from here on.
  std::uint32_t score = 0;
  for (std::size_t a = 0; a < num_anchors; ++a) score += pmd_[base + a];
  current_score_.push_back(score);
  return slot;
}

void SimultaneousExpander::Expand(
    const std::vector<std::vector<NodeId>>& anchor_sets,
    const std::vector<std::uint32_t>* anchor_pattern_dist) {
  ++epoch_;
  slot_nodes_.clear();
  pmd_.clear();
  current_score_.clear();
  processed_score_.clear();

  // Distinct anchors of the cluster.
  cluster_anchors_.clear();
  match_anchor_indices_.assign(anchor_sets.size(), {});
  {
    std::unordered_map<NodeId, std::uint32_t> anchor_idx;
    for (std::size_t m = 0; m < anchor_sets.size(); ++m) {
      for (NodeId a : anchor_sets[m]) {
        auto [it, inserted] = anchor_idx.try_emplace(
            a, static_cast<std::uint32_t>(cluster_anchors_.size()));
        if (inserted) cluster_anchors_.push_back(a);
        match_anchor_indices_[m].push_back(it->second);
      }
    }
  }
  const std::size_t num_anchors = cluster_anchors_.size();
  if (num_anchors == 0) return;

  // Center-to-anchor distances, clamped so uint8 sums stay in range. A
  // center whose distance to every cluster anchor is >= k can never supply
  // a bound below the k+1 cap (d(m,c) + d(c,n) >= k+1 once d(c,n) >= 1,
  // and the d(c,n) = 0 case is the center's own seeded slot), so only
  // useful centers participate in per-node initialization.
  useful_centers_.clear();
  center_anchor_dist_.clear();
  for (std::size_t c = 0; c < options_.num_centers; ++c) {
    bool useful = false;
    for (std::size_t a = 0; a < num_anchors; ++a) {
      if (options_.centers->Distance(c, cluster_anchors_[a]) < options_.k) {
        useful = true;
        break;
      }
    }
    if (!useful) continue;
    useful_centers_.push_back(static_cast<std::uint32_t>(c));
    for (std::size_t a = 0; a < num_anchors; ++a) {
      std::uint16_t d = options_.centers->Distance(c, cluster_anchors_[a]);
      center_anchor_dist_.push_back(
          static_cast<std::uint8_t>(std::min<std::uint16_t>(d, 254)));
    }
  }

  auto set_pmd = [&](std::uint32_t slot, std::size_t a, std::uint8_t value) {
    std::uint8_t& cell = pmd_[static_cast<std::size_t>(slot) * num_anchors + a];
    if (value < cell) {
      current_score_[slot] -= cell - value;
      cell = value;
    }
  };

  // Anchor slots: self-distance 0 plus pattern-distance shortcuts between
  // anchors of the same match (Section IV-B2).
  for (std::size_t a = 0; a < num_anchors; ++a) {
    set_pmd(SlotOf(cluster_anchors_[a]), a, 0);
  }
  if (anchor_pattern_dist != nullptr) {
    for (std::size_t m = 0; m < anchor_sets.size(); ++m) {
      const auto& idx = match_anchor_indices_[m];
      const std::size_t t = idx.size();
      for (std::size_t j = 0; j < t; ++j) {
        std::uint32_t slot = slot_of_[anchor_sets[m][j]];
        for (std::size_t l = 0; l < t; ++l) {
          set_pmd(slot, idx[l],
                  static_cast<std::uint8_t>(std::min<std::uint32_t>(
                      (*anchor_pattern_dist)[j * t + l], far_)));
        }
      }
    }
  }
  // Center slots (SlotOf's triangle init yields the exact center-to-anchor
  // distances because d(c, c) = 0 contributes d(c, m) itself).
  for (std::size_t c = 0; c < options_.num_centers; ++c) {
    SlotOf(options_.centers->centers()[c]);
  }

  // Queues: array-based bucket priority queue (best-first) or a random-pop
  // vector (PT-RND).
  BucketQueue<std::uint32_t> bq(static_cast<std::size_t>(far_) * num_anchors);
  std::vector<std::uint32_t> rq;
  std::vector<char> in_rq;
  auto push_slot = [&](std::uint32_t slot) {
    if (options_.best_first) {
      bq.Push(slot, current_score_[slot]);
    } else {
      if (in_rq.size() < slot_nodes_.size()) {
        in_rq.resize(slot_nodes_.size(), 0);
      }
      if (!in_rq[slot]) {
        in_rq[slot] = 1;
        rq.push_back(slot);
      }
    }
  };
  for (std::uint32_t slot = 0; slot < slot_nodes_.size(); ++slot) {
    push_slot(slot);
  }

  std::vector<std::uint8_t> row(num_anchors);
  for (;;) {
    std::uint32_t slot;
    if (options_.best_first) {
      if (bq.Empty()) break;
      std::size_t popped_score;
      slot = bq.PopMin(&popped_score);
      if (popped_score != current_score_[slot]) continue;  // stale entry
    } else {
      if (rq.empty()) break;
      std::size_t pick = rng_.NextBounded(rq.size());
      slot = rq[pick];
      rq[pick] = rq.back();
      rq.pop_back();
      in_rq[slot] = 0;
    }
    ++stats_.pops;
    if (processed_score_[slot] != kNotProcessed) {
      if (processed_score_[slot] <= current_score_[slot]) continue;
      ++stats_.reinsertions;
    }
    processed_score_[slot] = current_score_[slot];

    // Expand only if some anchor is strictly within k: otherwise every
    // neighbor would receive distances >= k+1, which the cap already
    // encodes (Algorithm 4's "far" test). `row` caches this node's PMD
    // values + 1 (the candidate distances for its neighbors); pmd_ may
    // reallocate while neighbors are being created.
    {
      const std::uint8_t* prow =
          pmd_.data() + static_cast<std::size_t>(slot) * num_anchors;
      bool can_expand = false;
      for (std::size_t a = 0; a < num_anchors; ++a) {
        // prow[a] <= far_ <= 254, so +1 cannot overflow.
        row[a] = static_cast<std::uint8_t>(prow[a] + 1);
        if (prow[a] < options_.k) can_expand = true;
      }
      if (!can_expand) continue;
    }

    NodeId n = slot_nodes_[slot];
    for (NodeId nbr : graph_.Neighbors(n)) {
      bool is_new = slot_epoch_[nbr] != epoch_;
      std::uint32_t ns = SlotOf(nbr);
      std::uint8_t* nrow =
          pmd_.data() + static_cast<std::size_t>(ns) * num_anchors;
      // Branchless min so the compiler can vectorize the byte lanes.
      std::uint32_t improvement = 0;
      for (std::size_t a = 0; a < num_anchors; ++a) {
        std::uint8_t old = nrow[a];
        std::uint8_t nv = row[a] < old ? row[a] : old;
        improvement += static_cast<std::uint32_t>(old - nv);
        nrow[a] = nv;
      }
      if (is_new || improvement > 0) {
        stats_.relaxations += improvement > 0;
        current_score_[ns] -= improvement;
        push_slot(ns);
      }
    }
  }
}

}  // namespace egocensus::internal
