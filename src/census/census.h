#ifndef EGOCENSUS_CENSUS_CENSUS_H_
#define EGOCENSUS_CENSUS_CENSUS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exec/governor.h"
#include "graph/distance_index.h"
#include "graph/graph.h"
#include "graph/profile_index.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// The six query evaluation algorithms of Sections IV and V.
enum class CensusAlgorithm {
  kNdBas,   // node-driven baseline: extract S(n,k), match inside
  kNdPvot,  // node-driven pivot indexing (Algorithm 2)
  kNdDiff,  // node-driven differential counting (Algorithm 3)
  kPtBas,   // pattern-driven baseline
  kPtOpt,   // pattern-driven, all optimizations (Algorithm 4)
  kPtRnd,   // PT-OPT with random instead of best-first queue order
};

const char* CensusAlgorithmName(CensusAlgorithm algorithm);

/// Routing of the combinatorial fast path for <= 4-node unlabeled patterns
/// (src/census/fastpath/, docs/FAST_PATH.md). kAuto routes eligible
/// censuses to the closed-form kernels (counts stay bit-identical to the
/// generic engines; stats.num_matches is 0 because no matcher runs);
/// kForce errors with InvalidArgument when the census is ineligible;
/// kOff always dispatches CensusOptions::algorithm.
enum class FastPathMode : std::uint8_t { kAuto = 0, kForce, kOff };

const char* FastPathModeName(FastPathMode mode);

/// Pattern-match clustering mode for the pattern-driven algorithms
/// (Section IV-B5 / Fig. 4(g)).
enum class ClusteringMode {
  kNone,    // NO-CLUST: process each match independently
  kRandom,  // RND-CLUST: random assignment into num_clusters groups
  kKMeans,  // OPT-CLUST: K-means over center-distance feature vectors
};

struct CensusOptions {
  CensusAlgorithm algorithm = CensusAlgorithm::kNdPvot;

  /// Combinatorial fast-path routing (see FastPathMode). `algorithm` is
  /// the engine used when the fast path does not take the census.
  FastPathMode fast_path = FastPathMode::kAuto;

  /// Neighborhood radius k of SUBGRAPH(ID, k).
  std::uint32_t k = 1;

  /// Worker threads for the counting phase (the matching phase is always
  /// single-threaded). 1 = serial (default), 0 = hardware concurrency,
  /// n > 1 = exactly n workers. Per-node counts and num_matches are
  /// bit-identical for every value; see docs/PARALLEL.md for the reduction
  /// argument.
  std::uint32_t num_threads = 1;

  /// COUNTSP subpattern name; empty means count the whole pattern (COUNTP).
  std::string subpattern;

  /// Match with the GQL baseline matcher instead of the CN matcher. The
  /// match sets are identical (both are exact); this exists so the
  /// CN-vs-GQL cost gap (candidate-set scans vs candidate-neighbor
  /// intersections) is observable end-to-end, e.g. via
  /// `ecensus query --matcher gql --metrics -`.
  bool use_gql_matcher = false;

  // ---- Pattern-driven parameters (PT-OPT / PT-RND) ----

  /// Number of centers used for PMD initialization (paper default: 12;
  /// 0 disables center seeding). Fig. 4(f) sweeps this.
  std::uint32_t num_centers = 12;

  /// Number of centers used to build K-means feature vectors. Fig. 4(f)
  /// holds this fixed while sweeping num_centers to isolate the two
  /// effects.
  std::uint32_t num_cluster_centers = 12;

  /// DEG-CNTR (false) vs RND-CNTR (true).
  bool random_centers = false;

  ClusteringMode clustering = ClusteringMode::kKMeans;

  /// Number of clusters; 0 = auto (num_matches / 4, capped at 1024 to keep
  /// Lloyd's algorithm tractable; the paper uses num_matches / 4).
  std::uint32_t num_clusters = 0;

  /// K-means iterations (paper: 10).
  std::uint32_t kmeans_iterations = 10;

  std::uint64_t seed = 7;

  /// Optional prebuilt center index (must have at least
  /// max(num_centers, num_cluster_centers) centers). When null the engine
  /// builds one; its build time is reported in stats.index_seconds.
  const CenterDistanceIndex* center_index = nullptr;

  /// Optional separate index supplying the K-means feature centers. When
  /// null, features use center_index. Fig. 4(f) sweeps num_centers while
  /// keeping the clustering features pinned to a fixed index, isolating the
  /// PMD-initialization effect from clustering quality.
  const CenterDistanceIndex* cluster_center_index = nullptr;

  /// Optional prebuilt node-profile index for the matcher (amortizes
  /// profile computation across repeated censuses on the same graph; the
  /// QueryEngine caches and supplies one automatically).
  const ProfileIndex* profile_index = nullptr;

  // ---- Resource governance (docs/ROBUSTNESS.md) ----

  /// Optional resource governor (deadline / memory budget / cancel token).
  /// When set, the matcher, the counting engines and the worker pool
  /// checkpoint cooperatively; when the governor stops, RunCensus returns
  /// the partial CensusResult built so far with per-focal completion state
  /// and a non-OK exec_status. Null = ungoverned (the historical behavior;
  /// one pointer test per checkpoint).
  Governor* governor = nullptr;

  /// On a deadline/budget stop (not an explicit cancel), re-cover the focal
  /// nodes the exact engine did not finish with the sampling-based
  /// approximate census (src/census/approx.*): their counts become
  /// estimates and their state kApprox, so the query degrades instead of
  /// leaving holes. The degraded pass is ungoverned but cheap: its cost is
  /// sample_rate-proportional.
  bool degrade_to_approx = false;

  /// Match-sampling rate for the degraded pass.
  double degrade_sample_rate = 0.1;
};

/// Completion state of one focal node's count in a (possibly interrupted)
/// census. Ungoverned and uninterrupted runs mark every focal kComplete.
enum class FocalState : std::uint8_t {
  kPending = 0,   // not finished: count is a lower bound (possibly 0)
  kComplete = 1,  // exact: bit-identical to an uninterrupted run
  kApprox = 2,    // degraded: sampling-based estimate
};

const char* FocalStateName(FocalState state);

struct CensusStats {
  std::uint64_t num_matches = 0;     // |M| found by the matcher
  double match_seconds = 0;          // pattern-match time
  double index_seconds = 0;          // PMI / center-index build time
  double census_seconds = 0;         // neighborhood counting time
  std::uint64_t nodes_expanded = 0;  // BFS visits (ND) or queue pops (PT)
  std::uint64_t reinsertions = 0;    // PT: re-pops of an already-processed
                                     // node (the cost best-first minimizes)
  std::uint64_t containment_checks = 0;

  /// Censuses answered by the combinatorial fast path (0 or 1 per run;
  /// sums across aggregates/merges). Lets callers — the daemon's per-graph
  /// routing counters, the stats CSV — see which engine actually ran.
  std::uint64_t fastpath_routed = 0;

  // ---- Peak metrics (max-merged, not summed) ----

  /// Worker threads used by the counting phase.
  std::uint32_t threads_used = 1;
  /// Query attribution: pattern size and neighborhood radius of the census
  /// that produced these stats, so per-request telemetry (docs/SERVER.md,
  /// "Request telemetry") reports shape/k without re-parsing the query.
  /// Max-merged: worker shards inherit the run's values, and a
  /// degraded-pass merge keeps the exact pass's attribution.
  std::uint32_t pattern_nodes = 0;
  std::uint32_t k = 0;
  /// Largest per-unit working set seen: the biggest k-hop neighborhood
  /// (node-driven) or simultaneous-expansion footprint (pattern-driven).
  std::uint64_t peak_neighborhood = 0;

  double TotalSeconds() const {
    return match_seconds + index_seconds + census_seconds;
  }

  /// Accumulates `other` into this: counters and times are summed, peak
  /// metrics are max-ed. Used by the parallel per-worker reduction (worker
  /// stats carry zero match/index time, so the sums stay correct) and by
  /// benchmark aggregation across repeated runs.
  void Merge(const CensusStats& other) {
    num_matches += other.num_matches;
    match_seconds += other.match_seconds;
    index_seconds += other.index_seconds;
    census_seconds += other.census_seconds;
    nodes_expanded += other.nodes_expanded;
    reinsertions += other.reinsertions;
    containment_checks += other.containment_checks;
    fastpath_routed += other.fastpath_routed;
    if (other.threads_used > threads_used) threads_used = other.threads_used;
    if (other.pattern_nodes > pattern_nodes) pattern_nodes = other.pattern_nodes;
    if (other.k > k) k = other.k;
    if (other.peak_neighborhood > peak_neighborhood) {
      peak_neighborhood = other.peak_neighborhood;
    }
  }
};

struct CensusResult {
  /// counts[n] = number of matches whose anchor images lie in S(n, k);
  /// sized NumNodes, zero for non-focal nodes.
  std::vector<std::uint64_t> counts;
  CensusStats stats;

  /// Per-node completion state, sized NumNodes (non-focal nodes stay
  /// kPending with count 0). On an uninterrupted run every focal node is
  /// kComplete; after a governor stop, kComplete nodes' counts are still
  /// bit-identical to an uninterrupted run, kPending nodes' counts are
  /// lower bounds, kApprox nodes carry degraded estimates.
  std::vector<FocalState> focal_state;

  /// OK for a complete census; kDeadlineExceeded / kResourceExhausted /
  /// kCancelled when a governor stopped it early (counts/focal_state then
  /// hold the partial result — RunCensus returns the partial result as a
  /// value, not as an error, so callers keep what was computed).
  Status exec_status;

  bool complete() const { return exec_status.ok(); }
};

/// Runs an ego-centric pattern census: for every focal node n, counts the
/// matches of `pattern` whose anchor images are contained in the k-hop
/// neighborhood S(n, k). `pattern` must be prepared.
[[nodiscard]] Result<CensusResult> RunCensus(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> focal,
                               const CensusOptions& options);

/// Convenience: the full node set [0, NumNodes).
std::vector<NodeId> AllNodes(const Graph& graph);

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_CENSUS_H_
