#ifndef EGOCENSUS_CENSUS_ENGINES_H_
#define EGOCENSUS_CENSUS_ENGINES_H_

// Internal header: per-algorithm census engine entry points, dispatched by
// RunCensus. Each engine receives the prepared pattern, the focal node set
// (as both a list and a bitmap) and the resolved anchor pattern nodes.

#include <span>
#include <vector>

#include "census/census.h"
#include "census/pmi.h"
#include "graph/graph.h"
#include "match/match_set.h"
#include "util/thread_pool.h"

namespace egocensus::internal {

struct CensusContext {
  const Graph* graph = nullptr;
  const Pattern* pattern = nullptr;
  std::span<const NodeId> focal;
  const std::vector<char>* is_focal = nullptr;  // bitmap over NodeId
  std::vector<int> anchor_nodes;                // resolved anchors
  const CensusOptions* options = nullptr;
  /// Worker pool for the counting phase; null means serial. Engines that
  /// use it must keep per-worker scratch (sized pool->NumWorkers()) and
  /// merge order-insensitively so counts are identical to the serial run.
  ThreadPool* pool = nullptr;

  /// Resource governor from CensusOptions; null = ungoverned.
  Governor* governor() const { return options->governor; }
};

/// Sizes result->focal_state (all kPending) alongside counts. Every engine
/// calls this first; focal nodes are marked kComplete as (or after) they
/// finish.
void InitFocalState(const CensusContext& ctx, CensusResult* result);

/// Marks every focal node of ctx with `state` (PT engines: completion is
/// all-or-nothing because counts accumulate across matches/clusters).
void MarkAllFocal(const CensusContext& ctx, CensusResult* result,
                  FocalState state);

/// Fills result->exec_status from the governor (OK when ungoverned or not
/// stopped); `engine` names the interrupted operation in the message.
void FinishExecStatus(const CensusContext& ctx, const char* engine,
                      CensusResult* result);

CensusResult RunNdBas(const CensusContext& ctx);
CensusResult RunNdPvot(const CensusContext& ctx);
CensusResult RunNdDiff(const CensusContext& ctx);
CensusResult RunPtBas(const CensusContext& ctx);
/// Handles both kPtOpt and kPtRnd (queue order selected by
/// ctx.options->algorithm).
CensusResult RunPtOpt(const CensusContext& ctx);

/// Shared: runs the selected matcher (CN or GQL) under the context's
/// governor and records timing/num_matches into stats. If the governor
/// stopped the matcher mid-search, *interrupted (optional) is set and the
/// returned set is the valid prefix found — engines must then skip counting
/// (counting a partial match set would produce wrong per-focal counts, not
/// partial ones) and report via FinishExecStatus.
MatchSet FindMatchesTimed(const CensusContext& ctx, CensusStats* stats,
                          bool* interrupted = nullptr);

}  // namespace egocensus::internal

#endif  // EGOCENSUS_CENSUS_ENGINES_H_
