#ifndef EGOCENSUS_CENSUS_ENGINES_H_
#define EGOCENSUS_CENSUS_ENGINES_H_

// Internal header: per-algorithm census engine entry points, dispatched by
// RunCensus. Each engine receives the prepared pattern, the focal node set
// (as both a list and a bitmap) and the resolved anchor pattern nodes.

#include <span>
#include <vector>

#include "census/census.h"
#include "census/pmi.h"
#include "graph/graph.h"
#include "match/match_set.h"
#include "util/thread_pool.h"

namespace egocensus::internal {

struct CensusContext {
  const Graph* graph = nullptr;
  const Pattern* pattern = nullptr;
  std::span<const NodeId> focal;
  const std::vector<char>* is_focal = nullptr;  // bitmap over NodeId
  std::vector<int> anchor_nodes;                // resolved anchors
  const CensusOptions* options = nullptr;
  /// Worker pool for the counting phase; null means serial. Engines that
  /// use it must keep per-worker scratch (sized pool->NumWorkers()) and
  /// merge order-insensitively so counts are identical to the serial run.
  ThreadPool* pool = nullptr;
};

CensusResult RunNdBas(const CensusContext& ctx);
CensusResult RunNdPvot(const CensusContext& ctx);
CensusResult RunNdDiff(const CensusContext& ctx);
CensusResult RunPtBas(const CensusContext& ctx);
/// Handles both kPtOpt and kPtRnd (queue order selected by
/// ctx.options->algorithm).
CensusResult RunPtOpt(const CensusContext& ctx);

/// Shared: runs the CN matcher and records timing/num_matches into stats.
MatchSet FindMatchesTimed(const CensusContext& ctx, CensusStats* stats);

}  // namespace egocensus::internal

#endif  // EGOCENSUS_CENSUS_ENGINES_H_
