#ifndef EGOCENSUS_CENSUS_PAIRWISE_H_
#define EGOCENSUS_CENSUS_PAIRWISE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "census/census.h"
#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// Pairwise search neighborhoods of Section II: SUBGRAPH-INTERSECTION and
/// SUBGRAPH-UNION.
enum class PairNeighborhood { kIntersection, kUnion };

/// Canonical packing of an unordered node pair (smaller id in the high
/// word).
inline std::uint64_t PackPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

inline std::pair<NodeId, NodeId> UnpackPair(std::uint64_t key) {
  return {static_cast<NodeId>(key >> 32),
          static_cast<NodeId>(key & 0xFFFFFFFFu)};
}

/// Sparse pairwise census result: packed unordered pair -> count. Pairs
/// with count 0 are absent.
using PairCounts = std::unordered_map<std::uint64_t, std::uint64_t>;

struct PairwiseCensusOptions {
  std::uint32_t k = 1;
  PairNeighborhood neighborhood = PairNeighborhood::kIntersection;
  /// COUNTSP subpattern name; empty counts the whole pattern.
  std::string subpattern;

  // Pattern-driven machinery (same knobs as CensusOptions).
  std::uint32_t num_centers = 12;
  std::uint32_t num_cluster_centers = 12;
  bool random_centers = false;
  ClusteringMode clustering = ClusteringMode::kKMeans;
  std::uint32_t num_clusters = 0;
  std::uint32_t kmeans_iterations = 10;
  std::uint64_t seed = 7;
  bool best_first = true;
  const CenterDistanceIndex* center_index = nullptr;
  /// See CensusOptions::cluster_center_index.
  const CenterDistanceIndex* cluster_center_index = nullptr;
  /// Optional resource governor (see CensusOptions::governor). Every
  /// engine's outer cluster/match/pair loop polls Checkpoint(); on stop the
  /// run returns the governor's status — pairwise counts are sparse maps,
  /// so a partial result is indistinguishable from "those pairs are zero".
  /// Not owned.
  Governor* governor = nullptr;
};

/// Pattern-driven pairwise census over ALL unordered node pairs, returning
/// only pairs with nonzero counts (Appendix B: intersection adds each match
/// to every pair in N[M] x N[M]; union pairs two nodes whose neighborhoods
/// jointly cover the anchors).
///
/// UNION caveat: pairs where one endpoint's k-neighborhood contains no
/// anchor of a match at all are omitted for that match (the paper's
/// partitioning into two non-empty parts has the same effect); the
/// node-driven engines below compute the unrestricted semantics for
/// explicit pairs.
[[nodiscard]] Result<PairCounts> RunPairwisePtOpt(const Graph& graph, const Pattern& pattern,
                                    const PairwiseCensusOptions& options);

/// Pattern-driven baseline (per-match independent BFS traversals), same
/// output contract as RunPairwisePtOpt.
[[nodiscard]] Result<PairCounts> RunPairwisePtBas(const Graph& graph, const Pattern& pattern,
                                    const PairwiseCensusOptions& options);

/// Node-driven baseline for an explicit pair list: materializes the
/// intersection/union subgraph of each pair and matches inside it (whole
/// pattern), or brute-force checks global matches (subpattern).
[[nodiscard]] Result<std::vector<std::uint64_t>> RunPairwiseNdBas(
    const Graph& graph, const Pattern& pattern,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const PairwiseCensusOptions& options);

/// ND-PVOT adapted to pairs (Appendix B): BFS both endpoints, replace
/// d(n, n') by max (intersection) or min (union) of the two distances in
/// the containment-avoidance bound.
[[nodiscard]] Result<std::vector<std::uint64_t>> RunPairwiseNdPvot(
    const Graph& graph, const Pattern& pattern,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const PairwiseCensusOptions& options);

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_PAIRWISE_H_
