#ifndef EGOCENSUS_CENSUS_PT_COMMON_H_
#define EGOCENSUS_CENSUS_PT_COMMON_H_

// Internal: setup shared by the pattern-driven engines (single-node and
// pairwise): center selection / distance index construction, match
// clustering, and the pattern-distance shortcut matrix.

#include <cstdint>
#include <vector>

#include "census/census.h"
#include "census/pairwise.h"
#include "census/pmi.h"
#include "graph/distance_index.h"
#include "graph/graph.h"

namespace egocensus::internal {

/// The pattern-driven knobs, unified across CensusOptions and
/// PairwiseCensusOptions.
struct PtParams {
  std::uint32_t k = 1;
  bool best_first = true;
  std::uint32_t num_centers = 12;
  std::uint32_t num_cluster_centers = 12;
  bool random_centers = false;
  ClusteringMode clustering = ClusteringMode::kKMeans;
  std::uint32_t num_clusters = 0;
  std::uint32_t kmeans_iterations = 10;
  std::uint64_t seed = 7;
  const CenterDistanceIndex* center_index = nullptr;
  const CenterDistanceIndex* cluster_center_index = nullptr;
};

PtParams PtParamsFromCensusOptions(const CensusOptions& options);
PtParams PtParamsFromPairwiseOptions(const PairwiseCensusOptions& options);

struct PtSetup {
  CenterDistanceIndex local_index;  // backing storage when built here
  const CenterDistanceIndex* center_index = nullptr;  // may stay null
  std::vector<std::vector<std::uint32_t>> clusters;   // match ids per cluster
  std::vector<std::uint32_t> anchor_dist;  // t*t pattern distances, capped k+1
  double index_seconds = 0;                // center index build time
};

/// Builds the center index (unless supplied), clusters the matches, and
/// fills the shortcut matrix.
PtSetup BuildPtSetup(const Graph& graph, const Pattern& pattern,
                     const MatchAnchors& anchors, const PtParams& params);

}  // namespace egocensus::internal

#endif  // EGOCENSUS_CENSUS_PT_COMMON_H_
