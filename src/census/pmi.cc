#include "census/pmi.h"

#include <algorithm>
#include <numeric>

namespace egocensus {

[[nodiscard]] Result<std::vector<int>> ResolveAnchorNodes(const Pattern& pattern,
                                            const std::string& subpattern) {
  if (subpattern.empty()) {
    std::vector<int> all(pattern.NumNodes());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const std::vector<int>* members = pattern.FindSubpattern(subpattern);
  if (members == nullptr) {
    return Status::NotFound("pattern " + pattern.name() +
                            " has no subpattern named " + subpattern);
  }
  return *members;
}

PatternMatchIndex PatternMatchIndex::BuildOnNode(const MatchSet& matches,
                                                 int v) {
  PatternMatchIndex index;
  // egolint: no-checkpoint(single linear index-build pass; engines poll)
  for (std::size_t i = 0; i < matches.size(); ++i) {
    index.index_[matches.Image(i, v)].push_back(
        static_cast<std::uint32_t>(i));
  }
  return index;
}

PatternMatchIndex PatternMatchIndex::BuildOnAnchors(
    const MatchAnchors& anchors) {
  PatternMatchIndex index;
  // egolint: no-checkpoint(single linear index-build pass; engines poll)
  for (std::size_t i = 0; i < anchors.NumMatches(); ++i) {
    for (int j = 0; j < anchors.NumAnchors(); ++j) {
      // Anchor images within a match are distinct (matches are injective),
      // so no per-match deduplication is needed.
      index.index_[anchors.Anchor(i, j)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  return index;
}

}  // namespace egocensus
