#ifndef EGOCENSUS_CENSUS_TOPK_H_
#define EGOCENSUS_CENSUS_TOPK_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "census/census.h"
#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// Result of a top-K ego-centric census.
struct TopKResult {
  /// The K focal nodes with the highest census counts, sorted by count
  /// descending (ties by node id ascending), with their exact counts.
  std::vector<std::pair<NodeId, std::uint64_t>> top;
  CensusStats stats;
  /// Number of focal nodes whose exact count had to be evaluated; the
  /// remaining |focal| - exact_evaluations nodes were pruned by their upper
  /// bounds. This is the quantity the early-termination saves.
  std::uint64_t exact_evaluations = 0;
};

struct TopKOptions {
  std::uint32_t k = 1;          // neighborhood radius
  std::size_t top_k = 10;       // how many nodes to return
  std::string subpattern;       // COUNTSP subpattern (empty = whole pattern)
  /// Optional resource governor (see CensusOptions::governor). Both the
  /// bounding pass and the exact-evaluation pass poll Checkpoint(); on stop
  /// the run returns the governor's status — a truncated top-K would be
  /// silently wrong, not partially useful. Not owned.
  Governor* governor = nullptr;
};

/// Top-K query evaluation (the paper's Section VII future work): identify
/// the `top_k` focal nodes with the highest pattern census counts without
/// computing every exact count.
///
/// Threshold-style algorithm on top of the ND-PVOT machinery:
///   1. one BFS pass per focal node computes an upper bound on its count —
///      the sum of |PMI_pivot(n')| over the visited nodes n'; for nodes
///      where every visited pivot image satisfies d(n, n') + max_v <= k the
///      bound is already exact (Algorithm 2's containment-avoidance test);
///   2. focal nodes are processed in decreasing bound order, evaluating
///      exact counts (a second bounded BFS with containment checks) and
///      maintaining the current K best; evaluation stops as soon as the
///      K-th best exact count is at least the next upper bound.
///
/// The result is exact. The savings come from never running containment
/// checks for pruned nodes; on skewed (preferential-attachment) graphs the
/// bound order prunes the vast majority of focal nodes.
[[nodiscard]] Result<TopKResult> RunTopKCensus(const Graph& graph, const Pattern& pattern,
                                 std::span<const NodeId> focal,
                                 const TopKOptions& options);

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_TOPK_H_
