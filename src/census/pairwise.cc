#include "census/pairwise.h"

#include <algorithm>

#include "census/pmi.h"
#include "census/pt_common.h"
#include "census/pt_expander.h"
#include "graph/bfs.h"
#include "graph/subgraph.h"
#include "match/cn_matcher.h"
#include "util/timer.h"

namespace egocensus {
namespace {

using internal::BuildPtSetup;
using internal::ExpanderOptions;
using internal::PtParams;
using internal::PtParamsFromPairwiseOptions;
using internal::PtSetup;
using internal::SimultaneousExpander;

struct Prepared {
  MatchSet matches{0};
  std::vector<int> anchor_nodes;
};

[[nodiscard]] Result<Prepared> PrepareMatches(const Graph& graph, const Pattern& pattern,
                                const std::string& subpattern) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto anchor_nodes = ResolveAnchorNodes(pattern, subpattern);
  if (!anchor_nodes.ok()) return anchor_nodes.status();
  Prepared prepared;
  prepared.anchor_nodes = std::move(anchor_nodes).value();
  CnMatcher matcher;
  prepared.matches = matcher.FindMatches(graph, pattern);
  return prepared;
}

/// Adds +1 for every unordered pair from `nodes` (all of which contain the
/// match in their intersection neighborhood).
void EmitIntersectionPairs(const std::vector<NodeId>& nodes,
                           PairCounts* counts) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      ++(*counts)[PackPair(nodes[i], nodes[j])];
    }
  }
}

/// Groups: (coverage mask over the match's anchors) -> nodes with exactly
/// that nonzero mask. Adds +1 for every unordered pair whose joint coverage
/// is complete.
void EmitUnionPairs(
    const std::vector<std::pair<std::uint16_t, std::vector<NodeId>>>& groups,
    std::uint16_t full_mask, PairCounts* counts) {
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::size_t gj = gi; gj < groups.size(); ++gj) {
      if ((groups[gi].first | groups[gj].first) != full_mask) continue;
      const auto& a = groups[gi].second;
      const auto& b = groups[gj].second;
      if (gi == gj) {
        for (std::size_t i = 0; i < a.size(); ++i) {
          for (std::size_t j = i + 1; j < a.size(); ++j) {
            ++(*counts)[PackPair(a[i], a[j])];
          }
        }
      } else {
        for (NodeId x : a) {
          for (NodeId y : b) {
            ++(*counts)[PackPair(x, y)];
          }
        }
      }
    }
  }
}

std::vector<std::pair<std::uint16_t, std::vector<NodeId>>> GroupByMask(
    const std::vector<std::pair<NodeId, std::uint16_t>>& node_masks) {
  std::unordered_map<std::uint16_t, std::vector<NodeId>> map;
  for (const auto& [n, mask] : node_masks) {
    if (mask != 0) map[mask].push_back(n);
  }
  std::vector<std::pair<std::uint16_t, std::vector<NodeId>>> groups;
  groups.reserve(map.size());
  for (auto& [mask, nodes] : map) {
    groups.emplace_back(mask, std::move(nodes));
  }
  return groups;
}

}  // namespace

[[nodiscard]] Result<PairCounts> RunPairwisePtOpt(const Graph& graph, const Pattern& pattern,
                                    const PairwiseCensusOptions& options) {
  auto prepared = PrepareMatches(graph, pattern, options.subpattern);
  if (!prepared.ok()) return prepared.status();
  MatchAnchors anchors(&prepared->matches, prepared->anchor_nodes);
  PairCounts counts;
  if (anchors.NumMatches() == 0) return counts;

  PtParams params = PtParamsFromPairwiseOptions(options);
  PtSetup setup = BuildPtSetup(graph, pattern, anchors, params);

  ExpanderOptions expander_options;
  expander_options.k = options.k;
  expander_options.best_first = params.best_first;
  expander_options.centers = setup.center_index;
  expander_options.num_centers = params.num_centers;
  expander_options.seed = params.seed + 2;
  SimultaneousExpander expander(graph, expander_options);

  const std::uint32_t k = options.k;
  Governor* gov = options.governor;
  std::vector<std::vector<NodeId>> anchor_sets;
  std::vector<NodeId> buffer;
  std::vector<NodeId> full_nodes;
  std::vector<std::pair<NodeId, std::uint16_t>> node_masks;
  for (const auto& cluster : setup.clusters) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("pairwise census (pt-opt)");
    }
    anchor_sets.clear();
    for (std::uint32_t mid : cluster) {
      anchors.Get(mid, &buffer);
      anchor_sets.push_back(buffer);
    }
    expander.Expand(anchor_sets, &setup.anchor_dist);
    const auto& match_anchor_idx = expander.match_anchor_indices();
    for (const auto& idx : match_anchor_idx) {
      if (options.neighborhood == PairNeighborhood::kIntersection) {
        full_nodes.clear();
        for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
          bool near = true;
          for (std::uint32_t a : idx) {
            if (expander.Pmd(slot, a) > k) {
              near = false;
              break;
            }
          }
          if (near) full_nodes.push_back(expander.VisitedNode(slot));
        }
        EmitIntersectionPairs(full_nodes, &counts);
      } else {
        node_masks.clear();
        const std::uint16_t full_mask =
            static_cast<std::uint16_t>((1u << idx.size()) - 1);
        for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
          std::uint16_t mask = 0;
          for (std::size_t j = 0; j < idx.size(); ++j) {
            if (expander.Pmd(slot, idx[j]) <= k) {
              mask = static_cast<std::uint16_t>(mask | (1u << j));
            }
          }
          if (mask != 0) {
            node_masks.emplace_back(expander.VisitedNode(slot), mask);
          }
        }
        EmitUnionPairs(GroupByMask(node_masks), full_mask, &counts);
      }
    }
  }
  return counts;
}

[[nodiscard]] Result<PairCounts> RunPairwisePtBas(const Graph& graph, const Pattern& pattern,
                                    const PairwiseCensusOptions& options) {
  auto prepared = PrepareMatches(graph, pattern, options.subpattern);
  if (!prepared.ok()) return prepared.status();
  MatchAnchors anchors(&prepared->matches, prepared->anchor_nodes);
  PairCounts counts;
  const int t = anchors.NumAnchors();
  const std::uint32_t k = options.k;

  Governor* gov = options.governor;
  std::vector<BfsWorkspace> bfs(t);
  std::vector<NodeId> full_nodes;
  std::vector<std::pair<NodeId, std::uint16_t>> node_masks;
  for (std::size_t m = 0; m < anchors.NumMatches(); ++m) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("pairwise census (pt-bas)");
    }
    int min_idx = 0;
    for (int j = 0; j < t; ++j) {
      bfs[j].Run(graph, anchors.Anchor(m, j), k);
      if (bfs[j].visited().size() < bfs[min_idx].visited().size()) {
        min_idx = j;
      }
    }
    if (options.neighborhood == PairNeighborhood::kIntersection) {
      full_nodes.clear();
      for (NodeId n : bfs[min_idx].visited()) {
        bool near = true;
        for (int j = 0; j < t; ++j) {
          if (j != min_idx && !bfs[j].Reached(n)) {
            near = false;
            break;
          }
        }
        if (near) full_nodes.push_back(n);
      }
      EmitIntersectionPairs(full_nodes, &counts);
    } else {
      // Union: collect coverage masks over the union of all anchors'
      // neighborhoods.
      std::unordered_map<NodeId, std::uint16_t> masks;
      for (int j = 0; j < t; ++j) {
        for (NodeId n : bfs[j].visited()) {
          masks[n] = static_cast<std::uint16_t>(masks[n] | (1u << j));
        }
      }
      node_masks.assign(masks.begin(), masks.end());
      EmitUnionPairs(GroupByMask(node_masks),
                     static_cast<std::uint16_t>((1u << t) - 1), &counts);
    }
  }
  return counts;
}

[[nodiscard]] Result<std::vector<std::uint64_t>> RunPairwiseNdBas(
    const Graph& graph, const Pattern& pattern,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const PairwiseCensusOptions& options) {
  const bool whole_pattern = options.subpattern.empty();
  std::vector<std::uint64_t> counts(pairs.size(), 0);
  const std::uint32_t k = options.k;

  Governor* gov = options.governor;
  if (whole_pattern) {
    SubgraphExtractor extractor(graph);
    const bool need_attrs = pattern.HasGeneralPredicates();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
        return gov->ToStatus("pairwise census (nd-bas)");
      }
      EgoSubgraph sub =
          options.neighborhood == PairNeighborhood::kIntersection
              ? extractor.ExtractIntersection(pairs[i].first, pairs[i].second,
                                              k, need_attrs)
              : extractor.ExtractUnion(pairs[i].first, pairs[i].second, k,
                                       need_attrs);
      CnMatcher matcher;
      counts[i] = matcher.FindMatches(sub.graph, pattern).size();
    }
    return counts;
  }

  auto prepared = PrepareMatches(graph, pattern, options.subpattern);
  if (!prepared.ok()) return prepared.status();
  MatchAnchors anchors(&prepared->matches, prepared->anchor_nodes);
  BfsWorkspace bfs1, bfs2;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("pairwise census (nd-bas)");
    }
    bfs1.Run(graph, pairs[i].first, k);
    bfs2.Run(graph, pairs[i].second, k);
    std::uint64_t count = 0;
    for (std::size_t m = 0; m < anchors.NumMatches(); ++m) {
      bool inside = true;
      for (int j = 0; j < anchors.NumAnchors(); ++j) {
        NodeId a = anchors.Anchor(m, j);
        bool covered =
            options.neighborhood == PairNeighborhood::kIntersection
                ? (bfs1.Reached(a) && bfs2.Reached(a))
                : (bfs1.Reached(a) || bfs2.Reached(a));
        if (!covered) {
          inside = false;
          break;
        }
      }
      if (inside) ++count;
    }
    counts[i] = count;
  }
  return counts;
}

[[nodiscard]] Result<std::vector<std::uint64_t>> RunPairwiseNdPvot(
    const Graph& graph, const Pattern& pattern,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const PairwiseCensusOptions& options) {
  auto prepared = PrepareMatches(graph, pattern, options.subpattern);
  if (!prepared.ok()) return prepared.status();
  MatchAnchors anchors(&prepared->matches, prepared->anchor_nodes);
  const auto& anchor_nodes = prepared->anchor_nodes;
  const std::uint32_t k = options.k;
  const bool intersection =
      options.neighborhood == PairNeighborhood::kIntersection;

  // Pivot and distant sets exactly as in the single-node ND-PVOT.
  int pivot = anchor_nodes[0];
  std::uint32_t max_v = 0;
  {
    std::uint32_t best = Pattern::kUnreachable;
    for (int x : anchor_nodes) {
      std::uint32_t ecc = 0;
      for (int y : anchor_nodes) ecc = std::max(ecc, pattern.Distance(x, y));
      if (ecc < best) {
        best = ecc;
        pivot = x;
      }
    }
    max_v = best;
  }
  std::vector<std::vector<int>> distant(max_v + 1);
  for (std::uint32_t i = 1; i <= max_v; ++i) {
    for (int j = 0; j < anchors.NumAnchors(); ++j) {
      if (pattern.Distance(pivot, anchor_nodes[j]) >= i) {
        distant[i].push_back(j);
      }
    }
  }
  PatternMatchIndex pmi =
      PatternMatchIndex::BuildOnNode(prepared->matches, pivot);

  std::vector<std::uint64_t> counts(pairs.size(), 0);
  Governor* gov = options.governor;
  BfsWorkspace bfs1, bfs2;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("pairwise census (nd-pvot)");
    }
    bfs1.Run(graph, pairs[i].first, k);
    bfs2.Run(graph, pairs[i].second, k);
    std::uint64_t count = 0;
    auto covered = [&](NodeId n) {
      return intersection ? (bfs1.Reached(n) && bfs2.Reached(n))
                          : (bfs1.Reached(n) || bfs2.Reached(n));
    };
    auto process = [&](NodeId visited) {
      auto mids = pmi.MatchesAt(visited);
      if (mids.empty()) return;
      // Intersection: d = max of the two distances; union: d = min.
      std::uint32_t d1 = bfs1.DistanceTo(visited);
      std::uint32_t d2 = bfs2.DistanceTo(visited);
      std::uint32_t d = intersection ? std::max(d1, d2) : std::min(d1, d2);
      if (d + max_v <= k) {
        count += mids.size();
        return;
      }
      const auto& check_set = distant[k - d + 1];
      for (std::uint32_t mid : mids) {
        bool inside = true;
        for (int j : check_set) {
          if (!covered(anchors.Anchor(mid, j))) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
    };
    if (intersection) {
      for (NodeId n : bfs1.visited()) {
        if (bfs2.Reached(n)) process(n);
      }
    } else {
      for (NodeId n : bfs1.visited()) process(n);
      for (NodeId n : bfs2.visited()) {
        if (!bfs1.Reached(n)) process(n);
      }
    }
    counts[i] = count;
  }
  return counts;
}

}  // namespace egocensus
