#ifndef EGOCENSUS_CENSUS_KMEANS_H_
#define EGOCENSUS_CENSUS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace egocensus {

/// Lloyd's K-means over dense row-major float feature vectors, used to
/// cluster pattern matches by their center-distance feature vectors
/// F(M) = <d(c_1, m_1), ..., d(c_|C|, m_|V_P|)> (Section IV-B5).
///
/// Returns the cluster assignment of each point. Clusters that become empty
/// keep their previous centroid. Deterministic given the Rng seed.
std::vector<std::uint32_t> KMeansCluster(const std::vector<float>& features,
                                         std::size_t num_points,
                                         std::size_t dim, std::uint32_t k,
                                         std::uint32_t iterations, Rng* rng);

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_KMEANS_H_
