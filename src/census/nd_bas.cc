#include <algorithm>

#include "census/engines.h"
#include "graph/subgraph.h"
#include "match/cn_matcher.h"
#include "util/timer.h"

namespace egocensus::internal {

// ND-BAS (Section IV-A): for every focal node, extract the induced k-hop
// subgraph S(n, k) and run the pattern matcher inside it. This repeats the
// work of overlapping neighborhoods and is the paper's slow baseline.
//
// With a subpattern the full pattern may extend outside S(n, k), so the
// baseline instead matches once globally and brute-force checks, for every
// (focal node, match) pair, whether all anchor images lie within k hops —
// the O(|V_sigma| * |M| * |V_P|) cost that Section IV-A1 calls impractical.
CensusResult RunNdBas(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const Pattern& pattern = *ctx.pattern;
  const std::uint32_t k = ctx.options->k;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);

  const bool whole_pattern =
      static_cast<int>(ctx.anchor_nodes.size()) == pattern.NumNodes();

  Timer timer;
  if (whole_pattern) {
    SubgraphExtractor extractor(graph);
    const bool need_attrs = pattern.HasGeneralPredicates();
    for (NodeId n : ctx.focal) {
      EgoSubgraph sub = extractor.ExtractKHop(n, k, need_attrs);
      CnMatcher matcher;
      MatchSet matches = matcher.FindMatches(sub.graph, pattern);
      result.counts[n] = matches.size();
      result.stats.nodes_expanded += sub.graph.NumNodes();
    }
    result.stats.census_seconds = timer.ElapsedSeconds();
    return result;
  }

  MatchSet matches = FindMatchesTimed(ctx, &result.stats);
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  timer.Reset();
  BfsWorkspace bfs;
  for (NodeId n : ctx.focal) {
    bfs.Run(graph, n, k);
    result.stats.nodes_expanded += bfs.visited().size();
    std::uint64_t count = 0;
    for (std::size_t m = 0; m < anchors.NumMatches(); ++m) {
      bool inside = true;
      for (int j = 0; j < anchors.NumAnchors(); ++j) {
        ++result.stats.containment_checks;
        if (!bfs.Reached(anchors.Anchor(m, j))) {
          inside = false;
          break;
        }
      }
      if (inside) ++count;
    }
    result.counts[n] = count;
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus::internal
