#include <algorithm>
#include <optional>
#include <vector>

#include "census/engines.h"
#include "exec/failpoints.h"
#include "graph/subgraph.h"
#include "match/cn_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {

// ND-BAS (Section IV-A): for every focal node, extract the induced k-hop
// subgraph S(n, k) and run the pattern matcher inside it. This repeats the
// work of overlapping neighborhoods and is the paper's slow baseline.
//
// With a subpattern the full pattern may extend outside S(n, k), so the
// baseline instead matches once globally and brute-force checks, for every
// (focal node, match) pair, whether all anchor images lie within k hops —
// the O(|V_sigma| * |M| * |V_P|) cost that Section IV-A1 calls impractical.
//
// Both paths are data-parallel across focal nodes: each worker owns a
// scratch slot (extractor + matcher + subgraph buffers, or a BFS
// workspace) that is reused across its focal nodes, and writes only
// counts[n] for the nodes it processed, so results are identical to the
// serial run for any worker count. The serial path is the one-slot special
// case — hoisting the scratch out of the loop is what removes the
// per-focal-node allocation churn the original baseline had.
CensusResult RunNdBas(const CensusContext& ctx) {
  const Graph& graph = *ctx.graph;
  const Pattern& pattern = *ctx.pattern;
  const std::uint32_t k = ctx.options->k;

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  const bool whole_pattern =
      static_cast<int>(ctx.anchor_nodes.size()) == pattern.NumNodes();

  Timer timer;
  if (whole_pattern) {
    const bool need_attrs = pattern.HasGeneralPredicates();
    struct Scratch {
      std::optional<SubgraphExtractor> extractor;
      CnMatcher matcher;
      EgoSubgraph sub;
      CensusStats stats;
      ScratchCharge charge;  // high-water footprint of the reused buffers
    };
    // Counts and completion are recorded only when the focal node finishes
    // cleanly, so a budget/matcher stop mid-node leaves it kPending and its
    // count untouched (still bit-identical for every completed node).
    auto process = [&](NodeId n, Scratch& s) {
      s.extractor->ExtractKHopInto(n, k, need_attrs, &s.sub);
      EGO_HIST_RECORD("census/neighborhood_size", s.sub.graph.NumNodes());
      s.stats.nodes_expanded += s.sub.graph.NumNodes();
      s.stats.peak_neighborhood = std::max<std::uint64_t>(
          s.stats.peak_neighborhood, s.sub.graph.NumNodes());
      // Extraction footprint: adjacency (~2 ids/edge) + node remaps.
      if (!s.charge.Update(gov, s.sub.graph.NumNodes() * 4 *
                                    sizeof(NodeId) +
                                s.sub.graph.NumEdges() * 2 * sizeof(NodeId))) {
        return;
      }
      MatchOptions match_options;
      match_options.governor = gov;
      MatchSet matches =
          s.matcher.FindMatches(s.sub.graph, pattern, match_options);
      if (s.matcher.interrupted()) return;
      result.counts[n] = matches.size();
      result.focal_state[n] = FocalState::kComplete;
    };
    // One checkpoint per focal node; a stop leaves the remaining nodes
    // kPending without touching them.
    auto run_range = [&](std::size_t begin, std::size_t end, Scratch& s) {
      for (std::size_t i = begin; i < end; ++i) {
        EGO_FAILPOINT("census/focal");
        if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
        process(ctx.focal[i], s);
      }
    };
    EGO_SPAN("census/count");
    if (ctx.pool == nullptr) {
      Scratch scratch;
      scratch.extractor.emplace(graph);
      run_range(0, ctx.focal.size(), scratch);
      result.stats.Merge(scratch.stats);
    } else {
      std::vector<Scratch> scratch(ctx.pool->NumWorkers());
      for (auto& s : scratch) s.extractor.emplace(graph);
      ctx.pool->ParallelFor(
          0, ctx.focal.size(), /*grain=*/2, gov,
          [&](std::size_t begin, std::size_t end, unsigned worker) {
            run_range(begin, end, scratch[worker]);
          });
      for (const auto& s : scratch) result.stats.Merge(s.stats);
    }
    result.stats.census_seconds = timer.ElapsedSeconds();
    FinishExecStatus(ctx, "ND-BAS", &result);
    return result;
  }

  bool match_interrupted = false;
  MatchSet matches = FindMatchesTimed(ctx, &result.stats, &match_interrupted);
  if (match_interrupted) {
    // A partial global match set would undercount every focal node, so no
    // counting happens: the whole census stays kPending.
    FinishExecStatus(ctx, "ND-BAS", &result);
    return result;
  }
  MatchAnchors anchors(&matches, ctx.anchor_nodes);
  timer.Reset();
  EGO_SPAN("census/count");
  auto process = [&](NodeId n, BfsWorkspace& bfs, CensusStats& stats,
                     ScratchCharge& charge) {
    bfs.Run(graph, n, k);
    EGO_HIST_RECORD("census/neighborhood_size", bfs.visited().size());
    stats.nodes_expanded += bfs.visited().size();
    stats.peak_neighborhood =
        std::max<std::uint64_t>(stats.peak_neighborhood, bfs.visited().size());
    std::uint64_t count = 0;
    for (std::size_t m = 0; m < anchors.NumMatches(); ++m) {
      bool inside = true;
      for (int j = 0; j < anchors.NumAnchors(); ++j) {
        ++stats.containment_checks;
        if (!bfs.Reached(anchors.Anchor(m, j))) {
          inside = false;
          break;
        }
      }
      if (inside) ++count;
    }
    result.counts[n] = count;
    result.focal_state[n] = FocalState::kComplete;
  };
  auto run_range = [&](std::size_t begin, std::size_t end, BfsWorkspace& bfs,
                       CensusStats& stats, ScratchCharge& charge) {
    for (std::size_t i = begin; i < end; ++i) {
      EGO_FAILPOINT("census/focal");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      NodeId n = ctx.focal[i];
      // BFS workspace footprint (visited list + per-node marks).
      if (!charge.Update(gov, graph.NumNodes() * sizeof(NodeId))) return;
      process(n, bfs, stats, charge);
    }
  };
  if (ctx.pool == nullptr) {
    BfsWorkspace bfs;
    ScratchCharge charge;
    run_range(0, ctx.focal.size(), bfs, result.stats, charge);
  } else {
    std::vector<BfsWorkspace> bfs(ctx.pool->NumWorkers());
    std::vector<CensusStats> stats(ctx.pool->NumWorkers());
    std::vector<ScratchCharge> charges(ctx.pool->NumWorkers());
    ctx.pool->ParallelFor(
        0, ctx.focal.size(), /*grain=*/4, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          run_range(begin, end, bfs[worker], stats[worker], charges[worker]);
        });
    for (const auto& s : stats) result.stats.Merge(s);
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  FinishExecStatus(ctx, "ND-BAS", &result);
  return result;
}

}  // namespace egocensus::internal
