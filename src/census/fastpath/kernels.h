#ifndef EGOCENSUS_CENSUS_FASTPATH_KERNELS_H_
#define EGOCENSUS_CENSUS_FASTPATH_KERNELS_H_

// Per-ego-network motif counting kernels (docs/FAST_PATH.md).
//
// For one focal node the kernel materializes the induced subgraph of
// S(n, k) as a local sorted CSR (reusing its buffers across focal nodes,
// like SubgraphExtractor) and counts every connected <= 4-node shape with
// closed-form formulas over degrees, per-edge triangle counts, and one
// per-edge DFS for 4-cliques — no backtracking matcher. Matching a pattern
// whose anchor images must lie inside S(n, k) is equivalent to matching in
// the induced subgraph G[S(n, k)], so the local counts are bit-identical
// to the generic engines' per-focal counts (the property tests assert
// this at 1/2/8 threads).

#include <cstdint>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "pattern/shape.h"

namespace egocensus::internal::fastpath {

/// How much of the cascade a shape needs: degrees only, per-edge triangle
/// counts, or the full 4-node suite.
enum class CountLevel : std::uint8_t {
  kNodes = 0,     // singleton
  kDegrees = 1,   // edge, non-induced wedge
  kTriangles = 2, // triangle, induced wedge
  kFour = 3,      // every 4-node shape
};

CountLevel LevelForShape(const PatternShape& shape);

/// Subgraph-copy counts (not necessarily induced) of each connected
/// <= 4-node shape inside one ego-network's induced subgraph. Fields past
/// the requested CountLevel stay zero.
struct MotifCounts {
  std::uint64_t nodes = 0;     // |S(n, k)|
  std::uint64_t edges = 0;     // m
  std::uint64_t wedge = 0;     // sum_v C(d_v, 2)
  std::uint64_t triangle = 0;
  std::uint64_t path4 = 0;
  std::uint64_t claw = 0;
  std::uint64_t paw = 0;
  std::uint64_t cycle4 = 0;
  std::uint64_t diamond = 0;
  std::uint64_t clique4 = 0;
};

/// Projects MotifCounts onto one shape, applying the induced-count
/// reconstruction (inclusion-exclusion over denser supershapes) when the
/// pattern negates its complement.
std::uint64_t ShapeCount(const MotifCounts& counts, const PatternShape& shape);

/// Reusable per-worker kernel: Build() one ego-network, then Count() it.
/// Not thread-safe; parallel engines keep one kernel per worker.
class EgoKernel {
 public:
  explicit EgoKernel(const Graph& graph) : graph_(&graph) {}

  /// BFS to depth k from `focal` and materialize the induced local CSR
  /// (nodes relabeled in increasing global-id order, so neighbor rows stay
  /// sorted without a per-row sort).
  void Build(NodeId focal, std::uint32_t k);

  /// Counts motifs of the built ego-network up to `level`.
  MotifCounts Count(CountLevel level);

  std::uint32_t NumLocalNodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Current footprint of the reused buffers, for ScratchCharge.
  std::uint64_t ScratchBytes() const;

 private:
  const Graph* graph_;
  BfsWorkspace bfs_;

  // Ego membership: nodes_ holds S sorted by global id; local_of_ is a
  // stamped global->local map reset lazily per Build (SubgraphExtractor's
  // epoch idiom, without the Graph object).
  std::vector<NodeId> nodes_;
  std::vector<std::uint32_t> local_of_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;

  // Local induced CSR; adjacency rows are sorted by local id.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> adj_;

  // Counting scratch.
  std::vector<std::uint64_t> tri_of_node_;  // 2 * (#triangles at v)
  std::vector<std::uint32_t> paths_to_;     // Chiba-Nishizeki L[] array
  std::vector<std::uint32_t> touched_;
  std::vector<std::uint32_t> mark_;         // per-edge-DFS common-neighbor marks
  std::vector<std::uint32_t> common_;
};

}  // namespace egocensus::internal::fastpath

#endif  // EGOCENSUS_CENSUS_FASTPATH_KERNELS_H_
