#include "census/fastpath/fastpath.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "census/fastpath/kernels.h"
#include "exec/failpoints.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace egocensus::internal {
namespace {

/// The closed-form kernels assume simple adjacency (Graph::AddEdge does
/// not deduplicate parallel inserts). Finalized rows are sorted, so one
/// linear scan over the CSR detects duplicates.
bool HasParallelEdges(const Graph& graph) {
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    std::span<const NodeId> row = graph.Neighbors(n);
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] == row[i - 1]) return true;
    }
  }
  return false;
}

}  // namespace

FastPathDecision DecideFastPath(const Graph& graph, const Pattern& pattern,
                                const CensusOptions& options) {
  FastPathDecision decision;
  if (!options.subpattern.empty()) {
    decision.reject_reason = "COUNTSP subpattern census";
    return decision;
  }
  if (options.use_gql_matcher) {
    // --matcher gql exists to observe the GQL cost end-to-end; honoring it
    // means actually running that matcher.
    decision.reject_reason = "explicit GQL matcher";
    return decision;
  }
  decision.shape = AnalyzeShape(pattern);
  if (!decision.shape.eligible()) {
    decision.reject_reason = decision.shape.reject_reason;
    return decision;
  }
  if (graph.directed()) {
    decision.reject_reason = "directed graph";
    return decision;
  }
  if (HasParallelEdges(graph)) {
    decision.reject_reason = "graph has parallel edges";
    return decision;
  }
  decision.routed = true;
  return decision;
}

CensusResult RunFastPath(const CensusContext& ctx, const PatternShape& shape) {
  const Graph& graph = *ctx.graph;
  const std::uint32_t k = ctx.options->k;
  const fastpath::CountLevel level = fastpath::LevelForShape(shape);

  CensusResult result;
  result.counts.assign(graph.NumNodes(), 0);
  InitFocalState(ctx, &result);
  Governor* const gov = ctx.governor();

  Timer timer;
  struct Scratch {
    std::optional<fastpath::EgoKernel> kernel;
    CensusStats stats;
    ScratchCharge charge;  // high-water footprint of the reused buffers
  };
  // Counts and completion are recorded only when the focal node finishes
  // cleanly, so a budget stop mid-node leaves it kPending and its count
  // untouched (same contract as the node-driven engines).
  auto process = [&](NodeId n, Scratch& s) {
    s.kernel->Build(n, k);
    EGO_HIST_RECORD("census/neighborhood_size", s.kernel->NumLocalNodes());
    s.stats.nodes_expanded += s.kernel->NumLocalNodes();
    s.stats.peak_neighborhood = std::max<std::uint64_t>(
        s.stats.peak_neighborhood, s.kernel->NumLocalNodes());
    if (!s.charge.Update(gov, s.kernel->ScratchBytes())) return;
    const fastpath::MotifCounts counts = s.kernel->Count(level);
    result.counts[n] = fastpath::ShapeCount(counts, shape);
    result.focal_state[n] = FocalState::kComplete;
  };
  // One checkpoint per focal node; a stop leaves the remaining nodes
  // kPending without touching them.
  auto run_range = [&](std::size_t begin, std::size_t end, Scratch& s) {
    for (std::size_t i = begin; i < end; ++i) {
      EGO_FAILPOINT("census/focal");
      if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) return;
      process(ctx.focal[i], s);
    }
  };
  EGO_SPAN("census/count");
  if (ctx.pool == nullptr) {
    Scratch scratch;
    scratch.kernel.emplace(graph);
    run_range(0, ctx.focal.size(), scratch);
    result.stats.Merge(scratch.stats);
  } else {
    std::vector<Scratch> scratch(ctx.pool->NumWorkers());
    for (auto& s : scratch) s.kernel.emplace(graph);
    ctx.pool->ParallelFor(
        0, ctx.focal.size(), /*grain=*/4, gov,
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          run_range(begin, end, scratch[worker]);
        });
    for (const auto& s : scratch) result.stats.Merge(s.stats);
  }
  result.stats.census_seconds = timer.ElapsedSeconds();
  FinishExecStatus(ctx, "FASTPATH", &result);
  return result;
}

}  // namespace egocensus::internal
