#ifndef EGOCENSUS_CENSUS_FASTPATH_FASTPATH_H_
#define EGOCENSUS_CENSUS_FASTPATH_FASTPATH_H_

// Internal header: fast-path routing decision + engine entry point,
// dispatched by RunCensus ahead of the generic algorithms
// (docs/FAST_PATH.md).

#include "census/engines.h"
#include "pattern/shape.h"

namespace egocensus::internal {

/// Outcome of the routing check RunCensus makes before dispatching.
struct FastPathDecision {
  bool routed = false;
  PatternShape shape;
  /// Why the census stays on the generic engines (static string, set when
  /// !routed): the pattern's reject reason or a graph/options condition.
  const char* reject_reason = "";
};

/// True when the fast path can answer this census bit-identically: the
/// pattern classifies to a <= 4-node shape, the census covers the whole
/// pattern with the CN match semantics, and the graph is undirected with
/// no parallel edges (the formulas assume simple adjacency). Does not
/// consult options.fast_path — the caller applies the tri-state.
FastPathDecision DecideFastPath(const Graph& graph, const Pattern& pattern,
                                const CensusOptions& options);

/// Combinatorial census engine: per focal node, builds the induced
/// ego-network and evaluates the shape's closed-form count. Same
/// parallelization, governance, and partial-result contract as the
/// node-driven engines (per-focal checkpoints; counts recorded only on
/// clean completion). stats.num_matches stays 0: no matcher runs.
CensusResult RunFastPath(const CensusContext& ctx, const PatternShape& shape);

}  // namespace egocensus::internal

#endif  // EGOCENSUS_CENSUS_FASTPATH_FASTPATH_H_
