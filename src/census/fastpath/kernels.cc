#include "census/fastpath/kernels.h"

#include <algorithm>
#include <span>

namespace egocensus::internal::fastpath {
namespace {

std::uint64_t Choose2(std::uint64_t d) { return d * (d - 1) / 2; }
std::uint64_t Choose3(std::uint64_t d) {
  return d < 3 ? 0 : d * (d - 1) * (d - 2) / 6;
}

/// Size of the intersection of two sorted rows (standard merge).
std::uint32_t IntersectCount(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Intersection of two sorted rows restricted to values > floor.
void IntersectAbove(std::span<const std::uint32_t> a,
                    std::span<const std::uint32_t> b, std::uint32_t floor,
                    std::vector<std::uint32_t>* out) {
  out->clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (a[i] > floor) out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

CountLevel LevelForShape(const PatternShape& shape) {
  switch (shape.id) {
    case ShapeId::kSingleton:
      return CountLevel::kNodes;
    case ShapeId::kEdge:
      return CountLevel::kDegrees;
    case ShapeId::kWedge:
      return shape.induced ? CountLevel::kTriangles : CountLevel::kDegrees;
    case ShapeId::kTriangle:
      return CountLevel::kTriangles;
    default:
      return CountLevel::kFour;
  }
}

std::uint64_t ShapeCount(const MotifCounts& c, const PatternShape& shape) {
  if (!shape.induced) {
    switch (shape.id) {
      case ShapeId::kSingleton:
        return c.nodes;
      case ShapeId::kEdge:
        return c.edges;
      case ShapeId::kWedge:
        return c.wedge;
      case ShapeId::kTriangle:
        return c.triangle;
      case ShapeId::kPath4:
        return c.path4;
      case ShapeId::kClaw:
        return c.claw;
      case ShapeId::kPaw:
        return c.paw;
      case ShapeId::kCycle4:
        return c.cycle4;
      case ShapeId::kDiamond:
        return c.diamond;
      case ShapeId::kClique4:
        return c.clique4;
      case ShapeId::kGeneric:
        return 0;
    }
    return 0;
  }
  // Induced counts by inclusion-exclusion: subtract, for each strictly
  // denser shape on the same node count, (copies of this shape inside it)
  // x (its induced count). Derivations in docs/FAST_PATH.md.
  const std::uint64_t k4 = c.clique4;
  const std::uint64_t diamond = c.diamond - 6 * k4;
  const std::uint64_t cycle4 = c.cycle4 - diamond - 3 * k4;
  const std::uint64_t paw = c.paw - 4 * diamond - 12 * k4;
  const std::uint64_t claw = c.claw - paw - 2 * diamond - 4 * k4;
  const std::uint64_t path4 =
      c.path4 - 2 * paw - 4 * cycle4 - 6 * diamond - 12 * k4;
  switch (shape.id) {
    case ShapeId::kWedge:
      return c.wedge - 3 * c.triangle;
    case ShapeId::kPath4:
      return path4;
    case ShapeId::kClaw:
      return claw;
    case ShapeId::kPaw:
      return paw;
    case ShapeId::kCycle4:
      return cycle4;
    case ShapeId::kDiamond:
      return diamond;
    // Complete skeletons canonicalize to non-induced in AnalyzeShape, but
    // answer them anyway (the counts coincide).
    case ShapeId::kSingleton:
      return c.nodes;
    case ShapeId::kEdge:
      return c.edges;
    case ShapeId::kTriangle:
      return c.triangle;
    case ShapeId::kClique4:
      return k4;
    case ShapeId::kGeneric:
      return 0;
  }
  return 0;
}

void EgoKernel::Build(NodeId focal, std::uint32_t k) {
  const std::vector<NodeId>& visited = bfs_.Run(*graph_, focal, k);
  nodes_.assign(visited.begin(), visited.end());
  // Local ids in increasing global-id order: the parent's sorted neighbor
  // rows then map to sorted local rows for free.
  std::sort(nodes_.begin(), nodes_.end());

  if (local_of_.size() < graph_->NumNodes()) {
    local_of_.resize(graph_->NumNodes(), 0);
    stamp_.resize(graph_->NumNodes(), 0);
  }
  if (++epoch_ == 0) {  // stamp wraparound: invalidate everything once
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    local_of_[nodes_[i]] = static_cast<std::uint32_t>(i);
    stamp_[nodes_[i]] = epoch_;
  }

  offsets_.clear();
  adj_.clear();
  offsets_.push_back(0);
  for (NodeId member : nodes_) {
    for (NodeId g : graph_->Neighbors(member)) {
      if (stamp_[g] == epoch_) adj_.push_back(local_of_[g]);
    }
    offsets_.push_back(static_cast<std::uint32_t>(adj_.size()));
  }
}

MotifCounts EgoKernel::Count(CountLevel level) {
  MotifCounts c;
  const std::uint32_t n = NumLocalNodes();
  c.nodes = n;
  if (level == CountLevel::kNodes) return c;

  auto deg = [this](std::uint32_t v) { return offsets_[v + 1] - offsets_[v]; };
  auto row = [this, &deg](std::uint32_t v) {
    return std::span<const std::uint32_t>(adj_.data() + offsets_[v], deg(v));
  };

  std::uint64_t degree_sum = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t d = deg(v);
    degree_sum += d;
    c.wedge += Choose2(d);
    if (level == CountLevel::kFour) c.claw += Choose3(d);
  }
  c.edges = degree_sum / 2;
  if (level == CountLevel::kDegrees) return c;

  // Per-edge triangle counts tri_e = |N(u) cap N(v)|; each triangle is
  // seen by its three edges, so sum_e tri_e = 3T and sum_{e at v} = 2 t_v.
  tri_of_node_.assign(n, 0);
  std::uint64_t tri_sum = 0;   // 3T
  std::uint64_t mid_pairs = 0; // sum_e (d_u - 1)(d_v - 1)
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v : row(u)) {
      if (v <= u) continue;  // one visit per unordered edge
      const std::uint64_t tri = IntersectCount(row(u), row(v));
      tri_sum += tri;
      tri_of_node_[u] += tri;
      tri_of_node_[v] += tri;
      if (level == CountLevel::kFour) {
        c.diamond += Choose2(tri);
        mid_pairs += static_cast<std::uint64_t>(deg(u) - 1) * (deg(v) - 1);
      }
    }
  }
  c.triangle = tri_sum / 3;
  if (level == CountLevel::kTriangles) return c;

  // Paw = triangle + pendant edge, rooted at the triangle vertex carrying
  // the tail; P4 counted at its middle edge (subtract the closed 2-paths).
  c.path4 = mid_pairs - tri_sum;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t d = deg(v);
    if (d > 2) c.paw += (tri_of_node_[v] / 2) * (d - 2);
  }

  // 4-cycles (Chiba-Nishizeki): for each u, count 2-paths u-v-w with
  // w > u; C(L[w], 2) pairs of distinct middles close a cycle. Each cycle
  // is found at both of its diagonals' smaller endpoints, hence / 2. The
  // sum of C(L, 2) accumulates incrementally: raising L by one adds L.
  paths_to_.assign(n, 0);
  std::uint64_t cycle_pairs = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    touched_.clear();
    for (std::uint32_t v : row(u)) {
      for (std::uint32_t w : row(v)) {
        if (w <= u) continue;
        if (paths_to_[w] == 0) touched_.push_back(w);
        cycle_pairs += paths_to_[w]++;
      }
    }
    for (std::uint32_t w : touched_) paths_to_[w] = 0;
  }
  c.cycle4 = cycle_pairs / 2;

  // 4-cliques by per-edge DFS: for the edge (u, v), u < v, mark the common
  // neighbors above v; every adjacent marked pair completes a clique. Each
  // K4 is counted exactly once, at its two smallest vertices.
  mark_.assign(n, 0);
  std::uint32_t token = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v : row(u)) {
      if (v <= u) continue;
      IntersectAbove(row(u), row(v), v, &common_);
      if (common_.size() < 2) continue;
      ++token;
      for (std::uint32_t w : common_) mark_[w] = token;
      for (std::uint32_t w : common_) {
        for (std::uint32_t x : row(w)) {
          if (x > w && mark_[x] == token) ++c.clique4;
        }
      }
    }
  }
  return c;
}

std::uint64_t EgoKernel::ScratchBytes() const {
  auto bytes = [](const auto& vec) {
    return vec.capacity() * sizeof(vec[0]);
  };
  return bytes(nodes_) + bytes(local_of_) + bytes(stamp_) + bytes(offsets_) +
         bytes(adj_) + bytes(tri_of_node_) + bytes(paths_to_) +
         bytes(touched_) + bytes(mark_) + bytes(common_) +
         graph_->NumNodes() * sizeof(std::uint32_t);  // BFS dist array
}

}  // namespace egocensus::internal::fastpath
