#include "census/kmeans.h"

#include <algorithm>
#include <limits>

namespace egocensus {

std::vector<std::uint32_t> KMeansCluster(const std::vector<float>& features,
                                         std::size_t num_points,
                                         std::size_t dim, std::uint32_t k,
                                         std::uint32_t iterations, Rng* rng) {
  std::vector<std::uint32_t> assignment(num_points, 0);
  if (num_points == 0 || k == 0) return assignment;
  k = std::min<std::uint32_t>(k, static_cast<std::uint32_t>(num_points));
  if (k == 1) return assignment;

  // Initialize centroids from k distinct random points.
  std::vector<float> centroids(static_cast<std::size_t>(k) * dim);
  {
    auto picks = rng->SampleWithoutReplacement(
        static_cast<std::uint32_t>(num_points), k);
    for (std::uint32_t c = 0; c < k; ++c) {
      std::copy_n(features.begin() + static_cast<std::size_t>(picks[c]) * dim,
                  dim, centroids.begin() + static_cast<std::size_t>(c) * dim);
    }
  }

  std::vector<float> sums(static_cast<std::size_t>(k) * dim);
  std::vector<std::uint32_t> sizes(k);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    bool moved = false;
    for (std::size_t p = 0; p < num_points; ++p) {
      const float* f = features.data() + p * dim;
      float best = std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const float* cent = centroids.data() + static_cast<std::size_t>(c) * dim;
        float d2 = 0;
        for (std::size_t j = 0; j < dim; ++j) {
          float diff = f[j] - cent[j];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      if (assignment[p] != best_c) {
        assignment[p] = best_c;
        moved = true;
      }
    }
    if (!moved) break;
    std::fill(sums.begin(), sums.end(), 0.f);
    std::fill(sizes.begin(), sizes.end(), 0u);
    for (std::size_t p = 0; p < num_points; ++p) {
      std::uint32_t c = assignment[p];
      ++sizes[c];
      const float* f = features.data() + p * dim;
      float* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t j = 0; j < dim; ++j) s[j] += f[j];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;  // keep previous centroid
      float inv = 1.f / static_cast<float>(sizes[c]);
      float* cent = centroids.data() + static_cast<std::size_t>(c) * dim;
      const float* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t j = 0; j < dim; ++j) cent[j] = s[j] * inv;
    }
  }
  return assignment;
}

}  // namespace egocensus
