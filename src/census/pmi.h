#ifndef EGOCENSUS_CENSUS_PMI_H_
#define EGOCENSUS_CENSUS_PMI_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "match/match_set.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace egocensus {

/// The "anchor" view of a match set: the pattern nodes whose images must lie
/// inside the search neighborhood. For plain COUNTP queries the anchors are
/// all pattern nodes; for COUNTSP they are the subpattern's nodes (the
/// appendix's mu(V_SP, M) generalization). All census engines are written
/// against this view.
class MatchAnchors {
 public:
  /// `anchor_nodes` are pattern node indices (sorted, distinct).
  MatchAnchors(const MatchSet* matches, std::vector<int> anchor_nodes)
      : matches_(matches), anchor_nodes_(std::move(anchor_nodes)) {}

  std::size_t NumMatches() const { return matches_->size(); }
  int NumAnchors() const { return static_cast<int>(anchor_nodes_.size()); }
  const std::vector<int>& anchor_nodes() const { return anchor_nodes_; }
  const MatchSet& matches() const { return *matches_; }

  /// Image of the j-th anchor in match `index`.
  NodeId Anchor(std::size_t index, int j) const {
    return matches_->Image(index, anchor_nodes_[j]);
  }

  /// Copies the anchor images of match `index` into `out`.
  void Get(std::size_t index, std::vector<NodeId>* out) const {
    out->clear();
    for (int j = 0; j < NumAnchors(); ++j) out->push_back(Anchor(index, j));
  }

 private:
  const MatchSet* matches_;
  std::vector<int> anchor_nodes_;
};

/// Resolves the anchor pattern nodes for a census run: all pattern nodes
/// when `subpattern` is empty, otherwise the named subpattern's nodes.
[[nodiscard]] Result<std::vector<int>> ResolveAnchorNodes(const Pattern& pattern,
                                            const std::string& subpattern);

/// Pattern match index (Section IV-A1): maps a database node to the ids of
/// the matches anchored at it. ND-PVOT indexes on the pivot's images only;
/// ND-DIFF indexes every match under each of its anchor images.
/// Immutable once built; lookups are const and safe to share across census
/// workers without synchronization.
class PatternMatchIndex {
 public:
  /// PMI_v: index matches by the image of the single pattern node `v`.
  static PatternMatchIndex BuildOnNode(const MatchSet& matches, int v);

  /// PMI: index each match under every distinct anchor image.
  static PatternMatchIndex BuildOnAnchors(const MatchAnchors& anchors);

  /// Ids of matches indexed at node n (empty span when none).
  std::span<const std::uint32_t> MatchesAt(NodeId n) const {
    auto it = index_.find(n);
    if (it == index_.end()) return {};
    return it->second;
  }

 private:
  std::unordered_map<NodeId, std::vector<std::uint32_t>> index_;
};

}  // namespace egocensus

#endif  // EGOCENSUS_CENSUS_PMI_H_
