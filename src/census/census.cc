#include "census/census.h"

#include <cmath>
#include <numeric>
#include <optional>
#include <string>

#include "census/approx.h"
#include "census/engines.h"
#include "census/fastpath/fastpath.h"
#include "census/pmi.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/timer.h"

namespace egocensus {

const char* CensusAlgorithmName(CensusAlgorithm algorithm) {
  switch (algorithm) {
    case CensusAlgorithm::kNdBas:
      return "ND-BAS";
    case CensusAlgorithm::kNdPvot:
      return "ND-PVOT";
    case CensusAlgorithm::kNdDiff:
      return "ND-DIFF";
    case CensusAlgorithm::kPtBas:
      return "PT-BAS";
    case CensusAlgorithm::kPtOpt:
      return "PT-OPT";
    case CensusAlgorithm::kPtRnd:
      return "PT-RND";
  }
  return "?";
}

const char* FastPathModeName(FastPathMode mode) {
  switch (mode) {
    case FastPathMode::kAuto:
      return "auto";
    case FastPathMode::kForce:
      return "force";
    case FastPathMode::kOff:
      return "off";
  }
  return "?";
}

const char* FocalStateName(FocalState state) {
  switch (state) {
    case FocalState::kPending:
      return "pending";
    case FocalState::kComplete:
      return "complete";
    case FocalState::kApprox:
      return "approx";
  }
  return "?";
}

std::vector<NodeId> AllNodes(const Graph& graph) {
  std::vector<NodeId> nodes(graph.NumNodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  return nodes;
}

namespace internal {

void InitFocalState(const CensusContext& ctx, CensusResult* result) {
  result->focal_state.assign(ctx.graph->NumNodes(), FocalState::kPending);
}

void MarkAllFocal(const CensusContext& ctx, CensusResult* result,
                  FocalState state) {
  // egolint: no-checkpoint(O(|focal|) state-flag stores, no match work)
}

void FinishExecStatus(const CensusContext& ctx, const char* engine,
                      CensusResult* result) {
  Governor* gov = ctx.governor();
  if (gov == nullptr) return;
  result->exec_status = gov->ToStatus(engine);
}

MatchSet FindMatchesTimed(const CensusContext& ctx, CensusStats* stats,
                          bool* interrupted) {
  EGO_SPAN("census/match");
  Timer timer;
  MatchSet matches(ctx.pattern->NumNodes());
  MatchOptions match_options;
  match_options.governor = ctx.governor();
  bool was_interrupted = false;
  if (ctx.options->use_gql_matcher) {
    GqlMatcher matcher(ctx.options->profile_index);
    matches = matcher.FindMatches(*ctx.graph, *ctx.pattern, match_options);
    was_interrupted = matcher.interrupted();
  } else {
    CnMatcher matcher(ctx.options->profile_index);
    matches = matcher.FindMatches(*ctx.graph, *ctx.pattern, match_options);
    was_interrupted = matcher.interrupted();
  }
  if (interrupted != nullptr) *interrupted = was_interrupted;
  stats->match_seconds = timer.ElapsedSeconds();
  stats->num_matches = matches.size();
  return matches;
}

}  // namespace internal

[[nodiscard]] Result<CensusResult> RunCensus(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> focal,
                               const CensusOptions& options) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto anchors = ResolveAnchorNodes(pattern, options.subpattern);
  if (!anchors.ok()) return anchors.status();

  std::vector<char> is_focal(graph.NumNodes(), 0);
  // egolint: no-checkpoint(O(|focal|) validation pass before engines run)
  for (NodeId n : focal) {
    if (n >= graph.NumNodes()) {
      return Status::OutOfRange("focal node out of range");
    }
    is_focal[n] = 1;
  }

  internal::CensusContext ctx;
  ctx.graph = &graph;
  ctx.pattern = &pattern;
  ctx.focal = focal;
  ctx.is_focal = &is_focal;
  ctx.anchor_nodes = std::move(anchors).value();
  ctx.options = &options;

  // Fast-path routing (docs/FAST_PATH.md): eligible <= 4-node censuses go
  // to the combinatorial kernels instead of options.algorithm. The
  // decision is observable (routed-vs-generic counters, per-shape and
  // per-reason breakdowns) so operators can audit hit rates.
  internal::FastPathDecision route;
  if (options.fast_path == FastPathMode::kOff) {
    route.reject_reason = "fast path off";
  } else {
    route = internal::DecideFastPath(graph, pattern, options);
  }
  if (!route.routed && options.fast_path == FastPathMode::kForce) {
    return Status::InvalidArgument(
        std::string("fast-path forced but census is ineligible: ") +
        route.reject_reason);
  }
  if (obs::Enabled()) {
    if (route.routed) {
      obs::CounterAdd("census/fastpath/routed", 1);
      obs::CounterAdd(
          std::string("census/fastpath/shape/") + ShapeName(route.shape.id),
          1);
      obs::HistogramRecord("census/fastpath/routed_focal", focal.size());
    } else {
      obs::CounterAdd("census/fastpath/generic", 1);
      obs::CounterAdd(std::string("census/fastpath/skip/") +
                          route.reject_reason,
                      1);
    }
  }

  // The counting phase is embarrassingly parallel across focal nodes /
  // match clusters; the pool lives for exactly one census so a caller's
  // requested width (including widths beyond the core count, which tests
  // use to widen interleavings) is honored exactly.
  const unsigned num_threads =
      ThreadPool::ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) {
    pool.emplace(num_threads);
    ctx.pool = &*pool;
  }

  EGO_SPAN("census/run", focal.size());
  auto finish = [&](CensusResult result) -> Result<CensusResult> {
    result.stats.threads_used = num_threads;
    result.stats.pattern_nodes =
        static_cast<std::uint32_t>(pattern.NumNodes());
    result.stats.k = options.k;
    if (options.governor != nullptr) {
      EGO_HIST_RECORD("exec/checkpoints_per_census",
                      options.governor->checkpoints());
    }
    // Graceful degradation: a deadline/budget stop (not an explicit cancel
    // — the user asked out) re-covers the unfinished focal nodes with the
    // sampling-based approximate census so the result has estimates
    // everywhere instead of holes. Completed nodes keep their exact counts;
    // exec_status still reports the stop so callers know what happened.
    if (!result.exec_status.ok() &&
        result.exec_status.code() != StatusCode::kCancelled &&
        options.degrade_to_approx) {
      std::vector<NodeId> pending;
      // egolint: no-checkpoint(O(|focal|) scan collecting incomplete nodes)
      for (NodeId n : focal) {
        if (result.focal_state[n] != FocalState::kComplete) pending.push_back(n);
      }
      if (!pending.empty()) {
        ApproximateCensusOptions approx_options;
        approx_options.k = options.k;
        approx_options.subpattern = options.subpattern;
        approx_options.sample_rate = options.degrade_sample_rate;
        approx_options.seed = options.seed;
        auto approx =
            RunApproximateCensus(graph, pattern, pending, approx_options);
        if (approx.ok()) {
          // egolint: no-checkpoint(O(|pending|) copy of finished estimates)
          for (NodeId n : pending) {
            result.counts[n] = static_cast<std::uint64_t>(
                std::llround(approx->estimates[n]));
            result.focal_state[n] = FocalState::kApprox;
          }
          // Stats now cover both passes (exact prefix + degraded tail).
          result.stats.Merge(approx->stats);
          EGO_COUNTER_ADD("exec/degraded_focal", pending.size());
        }
      }
    }
    if (obs::Enabled()) {
      // Route the per-census totals through the registry under
      // census/<engine>/ so repeated censuses accumulate and the
      // exporters see the same numbers CensusStats reports.
      const std::string prefix =
          "census/" +
          (route.routed ? std::string("fastpath")
                        : ToLower(CensusAlgorithmName(options.algorithm))) +
          "/";
      const CensusStats& s = result.stats;
      obs::CounterAdd(prefix + "runs", 1);
      obs::CounterAdd(prefix + "num_matches", s.num_matches);
      obs::CounterAdd(prefix + "nodes_expanded", s.nodes_expanded);
      obs::CounterAdd(prefix + "reinsertions", s.reinsertions);
      obs::CounterAdd(prefix + "containment_checks", s.containment_checks);
      obs::GaugeMax(prefix + "peak_neighborhood", s.peak_neighborhood);
      obs::GaugeMax(prefix + "threads_used", s.threads_used);
    }
    return result;
  };
  if (route.routed) {
    CensusResult fast = internal::RunFastPath(ctx, route.shape);
    fast.stats.fastpath_routed = 1;
    return finish(std::move(fast));
  }
  switch (options.algorithm) {
    case CensusAlgorithm::kNdBas:
      return finish(internal::RunNdBas(ctx));
    case CensusAlgorithm::kNdPvot:
      return finish(internal::RunNdPvot(ctx));
    case CensusAlgorithm::kNdDiff:
      return finish(internal::RunNdDiff(ctx));
    case CensusAlgorithm::kPtBas:
      return finish(internal::RunPtBas(ctx));
    case CensusAlgorithm::kPtOpt:
    case CensusAlgorithm::kPtRnd:
      return finish(internal::RunPtOpt(ctx));
  }
  return Status::Internal("unknown census algorithm");
}

}  // namespace egocensus
