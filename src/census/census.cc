#include "census/census.h"

#include <numeric>
#include <optional>
#include <string>

#include "census/engines.h"
#include "census/pmi.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/timer.h"

namespace egocensus {

const char* CensusAlgorithmName(CensusAlgorithm algorithm) {
  switch (algorithm) {
    case CensusAlgorithm::kNdBas:
      return "ND-BAS";
    case CensusAlgorithm::kNdPvot:
      return "ND-PVOT";
    case CensusAlgorithm::kNdDiff:
      return "ND-DIFF";
    case CensusAlgorithm::kPtBas:
      return "PT-BAS";
    case CensusAlgorithm::kPtOpt:
      return "PT-OPT";
    case CensusAlgorithm::kPtRnd:
      return "PT-RND";
  }
  return "?";
}

std::vector<NodeId> AllNodes(const Graph& graph) {
  std::vector<NodeId> nodes(graph.NumNodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  return nodes;
}

namespace internal {

MatchSet FindMatchesTimed(const CensusContext& ctx, CensusStats* stats) {
  EGO_SPAN("census/match");
  Timer timer;
  MatchSet matches(ctx.pattern->NumNodes());
  if (ctx.options->use_gql_matcher) {
    GqlMatcher matcher(ctx.options->profile_index);
    matches = matcher.FindMatches(*ctx.graph, *ctx.pattern);
  } else {
    CnMatcher matcher(ctx.options->profile_index);
    matches = matcher.FindMatches(*ctx.graph, *ctx.pattern);
  }
  stats->match_seconds = timer.ElapsedSeconds();
  stats->num_matches = matches.size();
  return matches;
}

}  // namespace internal

Result<CensusResult> RunCensus(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> focal,
                               const CensusOptions& options) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto anchors = ResolveAnchorNodes(pattern, options.subpattern);
  if (!anchors.ok()) return anchors.status();

  std::vector<char> is_focal(graph.NumNodes(), 0);
  for (NodeId n : focal) {
    if (n >= graph.NumNodes()) {
      return Status::OutOfRange("focal node out of range");
    }
    is_focal[n] = 1;
  }

  internal::CensusContext ctx;
  ctx.graph = &graph;
  ctx.pattern = &pattern;
  ctx.focal = focal;
  ctx.is_focal = &is_focal;
  ctx.anchor_nodes = std::move(anchors).value();
  ctx.options = &options;

  // The counting phase is embarrassingly parallel across focal nodes /
  // match clusters; the pool lives for exactly one census so a caller's
  // requested width (including widths beyond the core count, which tests
  // use to widen interleavings) is honored exactly.
  const unsigned num_threads =
      ThreadPool::ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) {
    pool.emplace(num_threads);
    ctx.pool = &*pool;
  }

  EGO_SPAN("census/run", focal.size());
  auto finish = [&](CensusResult result) -> Result<CensusResult> {
    result.stats.threads_used = num_threads;
    if (obs::Enabled()) {
      // Route the per-census totals through the registry under
      // census/<algorithm>/ so repeated censuses accumulate and the
      // exporters see the same numbers CensusStats reports.
      const std::string prefix =
          "census/" + ToLower(CensusAlgorithmName(options.algorithm)) + "/";
      const CensusStats& s = result.stats;
      obs::CounterAdd(prefix + "runs", 1);
      obs::CounterAdd(prefix + "num_matches", s.num_matches);
      obs::CounterAdd(prefix + "nodes_expanded", s.nodes_expanded);
      obs::CounterAdd(prefix + "reinsertions", s.reinsertions);
      obs::CounterAdd(prefix + "containment_checks", s.containment_checks);
      obs::GaugeMax(prefix + "peak_neighborhood", s.peak_neighborhood);
      obs::GaugeMax(prefix + "threads_used", s.threads_used);
    }
    return result;
  };
  switch (options.algorithm) {
    case CensusAlgorithm::kNdBas:
      return finish(internal::RunNdBas(ctx));
    case CensusAlgorithm::kNdPvot:
      return finish(internal::RunNdPvot(ctx));
    case CensusAlgorithm::kNdDiff:
      return finish(internal::RunNdDiff(ctx));
    case CensusAlgorithm::kPtBas:
      return finish(internal::RunPtBas(ctx));
    case CensusAlgorithm::kPtOpt:
    case CensusAlgorithm::kPtRnd:
      return finish(internal::RunPtOpt(ctx));
  }
  return Status::Internal("unknown census algorithm");
}

}  // namespace egocensus
