#include "census/census.h"

#include <numeric>

#include "census/engines.h"
#include "census/pmi.h"
#include "match/cn_matcher.h"
#include "util/timer.h"

namespace egocensus {

const char* CensusAlgorithmName(CensusAlgorithm algorithm) {
  switch (algorithm) {
    case CensusAlgorithm::kNdBas:
      return "ND-BAS";
    case CensusAlgorithm::kNdPvot:
      return "ND-PVOT";
    case CensusAlgorithm::kNdDiff:
      return "ND-DIFF";
    case CensusAlgorithm::kPtBas:
      return "PT-BAS";
    case CensusAlgorithm::kPtOpt:
      return "PT-OPT";
    case CensusAlgorithm::kPtRnd:
      return "PT-RND";
  }
  return "?";
}

std::vector<NodeId> AllNodes(const Graph& graph) {
  std::vector<NodeId> nodes(graph.NumNodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  return nodes;
}

namespace internal {

MatchSet FindMatchesTimed(const CensusContext& ctx, CensusStats* stats) {
  Timer timer;
  CnMatcher matcher(ctx.options->profile_index);
  MatchSet matches = matcher.FindMatches(*ctx.graph, *ctx.pattern);
  stats->match_seconds = timer.ElapsedSeconds();
  stats->num_matches = matches.size();
  return matches;
}

}  // namespace internal

Result<CensusResult> RunCensus(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> focal,
                               const CensusOptions& options) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto anchors = ResolveAnchorNodes(pattern, options.subpattern);
  if (!anchors.ok()) return anchors.status();

  std::vector<char> is_focal(graph.NumNodes(), 0);
  for (NodeId n : focal) {
    if (n >= graph.NumNodes()) {
      return Status::OutOfRange("focal node out of range");
    }
    is_focal[n] = 1;
  }

  internal::CensusContext ctx;
  ctx.graph = &graph;
  ctx.pattern = &pattern;
  ctx.focal = focal;
  ctx.is_focal = &is_focal;
  ctx.anchor_nodes = std::move(anchors).value();
  ctx.options = &options;

  switch (options.algorithm) {
    case CensusAlgorithm::kNdBas:
      return internal::RunNdBas(ctx);
    case CensusAlgorithm::kNdPvot:
      return internal::RunNdPvot(ctx);
    case CensusAlgorithm::kNdDiff:
      return internal::RunNdDiff(ctx);
    case CensusAlgorithm::kPtBas:
      return internal::RunPtBas(ctx);
    case CensusAlgorithm::kPtOpt:
    case CensusAlgorithm::kPtRnd:
      return internal::RunPtOpt(ctx);
  }
  return Status::Internal("unknown census algorithm");
}

}  // namespace egocensus
