#include "census/topk.h"

#include <algorithm>

#include "census/pmi.h"
#include "graph/bfs.h"
#include "match/cn_matcher.h"
#include "util/timer.h"

namespace egocensus {
namespace {

/// Shared pivot machinery (identical to ND-PVOT's).
struct PivotSetup {
  int pivot = 0;
  std::uint32_t max_v = 0;
  std::vector<std::vector<int>> distant;  // anchor positions per slack level
};

PivotSetup MakePivotSetup(const Pattern& pattern,
                          const std::vector<int>& anchor_nodes) {
  PivotSetup setup;
  std::uint32_t best = Pattern::kUnreachable;
  for (int x : anchor_nodes) {
    std::uint32_t ecc = 0;
    for (int y : anchor_nodes) ecc = std::max(ecc, pattern.Distance(x, y));
    if (ecc < best) {
      best = ecc;
      setup.pivot = x;
    }
  }
  setup.max_v = best;
  setup.distant.resize(setup.max_v + 1);
  for (std::uint32_t i = 1; i <= setup.max_v; ++i) {
    for (std::size_t j = 0; j < anchor_nodes.size(); ++j) {
      if (pattern.Distance(setup.pivot, anchor_nodes[j]) >= i) {
        setup.distant[i].push_back(static_cast<int>(j));
      }
    }
  }
  return setup;
}

}  // namespace

[[nodiscard]] Result<TopKResult> RunTopKCensus(const Graph& graph, const Pattern& pattern,
                                 std::span<const NodeId> focal,
                                 const TopKOptions& options) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  auto anchor_nodes = ResolveAnchorNodes(pattern, options.subpattern);
  if (!anchor_nodes.ok()) return anchor_nodes.status();

  TopKResult result;
  const std::uint32_t k = options.k;

  Timer match_timer;
  CnMatcher matcher;
  MatchSet matches = matcher.FindMatches(graph, pattern);
  result.stats.match_seconds = match_timer.ElapsedSeconds();
  result.stats.num_matches = matches.size();
  MatchAnchors anchors(&matches, *anchor_nodes);

  Timer index_timer;
  PivotSetup setup = MakePivotSetup(pattern, *anchor_nodes);
  PatternMatchIndex pmi = PatternMatchIndex::BuildOnNode(matches, setup.pivot);
  result.stats.index_seconds = index_timer.ElapsedSeconds();

  Timer census_timer;
  // Pass 1: upper bounds. `exact` marks nodes whose bound is already the
  // true count (no pivot image needed a containment check).
  struct Bound {
    NodeId node;
    std::uint64_t bound;
    bool exact;
  };
  std::vector<Bound> bounds;
  bounds.reserve(focal.size());
  Governor* gov = options.governor;
  BfsWorkspace bfs;
  for (NodeId n : focal) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("top-k census (bounding pass)");
    }
    if (n >= graph.NumNodes()) {
      return Status::OutOfRange("focal node out of range");
    }
    bfs.Run(graph, n, k);
    result.stats.nodes_expanded += bfs.visited().size();
    std::uint64_t bound = 0;
    bool exact = true;
    for (NodeId visited : bfs.visited()) {
      auto mids = pmi.MatchesAt(visited);
      if (mids.empty()) continue;
      bound += mids.size();
      if (bfs.DistanceTo(visited) + setup.max_v > k) exact = false;
    }
    bounds.push_back({n, bound, exact});
  }
  std::sort(bounds.begin(), bounds.end(), [](const Bound& a, const Bound& b) {
    return a.bound != b.bound ? a.bound > b.bound : a.node < b.node;
  });

  // Pass 2: evaluate exact counts in decreasing-bound order until the
  // current K-th best dominates every remaining bound.
  auto exact_count = [&](NodeId n) {
    bfs.Run(graph, n, k);
    result.stats.nodes_expanded += bfs.visited().size();
    std::uint64_t count = 0;
    for (NodeId visited : bfs.visited()) {
      auto mids = pmi.MatchesAt(visited);
      if (mids.empty()) continue;
      std::uint32_t d = bfs.DistanceTo(visited);
      if (d + setup.max_v <= k) {
        count += mids.size();
        continue;
      }
      const auto& check_set = setup.distant[k - d + 1];
      for (std::uint32_t mid : mids) {
        bool inside = true;
        for (int j : check_set) {
          ++result.stats.containment_checks;
          if (!bfs.Reached(anchors.Anchor(mid, j))) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
    }
    return count;
  };

  const std::size_t top_k = std::min(options.top_k, bounds.size());
  // Current best K as (count, node), kept as a min-heap on count.
  std::vector<std::pair<std::uint64_t, NodeId>> heap;
  auto heap_cmp = [](const auto& a, const auto& b) {
    // Min-heap by count; among equal counts evict the larger node id first
    // so ties resolve toward smaller ids.
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  for (const Bound& b : bounds) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("top-k census (exact pass)");
    }
    if (heap.size() == top_k &&
        (top_k == 0 || heap.front().first >= b.bound)) {
      break;  // no remaining node can displace the current top-K
    }
    std::uint64_t count;
    if (b.exact) {
      count = b.bound;
    } else {
      count = exact_count(b.node);
      ++result.exact_evaluations;
    }
    if (heap.size() < top_k) {
      heap.emplace_back(count, b.node);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    } else if (top_k > 0 && (count > heap.front().first ||
                             (count == heap.front().first &&
                              b.node < heap.front().second))) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.back() = {count, b.node};
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  std::sort(heap.begin(), heap.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  result.top.reserve(heap.size());
  for (const auto& [count, node] : heap) result.top.emplace_back(node, count);
  result.stats.census_seconds = census_timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus
