#include "census/approx.h"

#include <algorithm>

#include "census/pmi.h"
#include "graph/bfs.h"
#include "match/cn_matcher.h"
#include "util/rng.h"
#include "util/timer.h"

namespace egocensus {

[[nodiscard]] Result<ApproximateCensusResult> RunApproximateCensus(
    const Graph& graph, const Pattern& pattern, std::span<const NodeId> focal,
    const ApproximateCensusOptions& options) {
  if (!pattern.prepared()) {
    return Status::InvalidArgument("pattern must be prepared");
  }
  if (!(options.sample_rate > 0.0) || options.sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  auto anchor_nodes = ResolveAnchorNodes(pattern, options.subpattern);
  if (!anchor_nodes.ok()) return anchor_nodes.status();

  ApproximateCensusResult result;
  result.estimates.assign(graph.NumNodes(), 0.0);
  const std::uint32_t k = options.k;

  Timer match_timer;
  CnMatcher matcher;
  MatchSet all_matches = matcher.FindMatches(graph, pattern);
  result.stats.match_seconds = match_timer.ElapsedSeconds();
  result.stats.num_matches = all_matches.size();

  // Bernoulli-sample the matches.
  Timer index_timer;
  Rng rng(options.seed);
  MatchSet sampled(all_matches.arity());
  // egolint: no-checkpoint(one RNG draw per match; BFS loop below polls)
  for (std::size_t m = 0; m < all_matches.size(); ++m) {
    if (rng.NextBool(options.sample_rate)) sampled.Add(all_matches.Match(m));
  }
  result.sampled_matches = sampled.size();
  MatchAnchors anchors(&sampled, *anchor_nodes);

  // Pivot setup identical to ND-PVOT.
  int pivot = (*anchor_nodes)[0];
  std::uint32_t max_v = 0;
  {
    std::uint32_t best = Pattern::kUnreachable;
    for (int x : *anchor_nodes) {
      std::uint32_t ecc = 0;
      for (int y : *anchor_nodes) ecc = std::max(ecc, pattern.Distance(x, y));
      if (ecc < best) {
        best = ecc;
        pivot = x;
      }
    }
    max_v = best;
  }
  std::vector<std::vector<int>> distant(max_v + 1);
  for (std::uint32_t i = 1; i <= max_v; ++i) {
    for (std::size_t j = 0; j < anchor_nodes->size(); ++j) {
      if (pattern.Distance(pivot, (*anchor_nodes)[j]) >= i) {
        distant[i].push_back(static_cast<int>(j));
      }
    }
  }
  PatternMatchIndex pmi = PatternMatchIndex::BuildOnNode(sampled, pivot);
  result.stats.index_seconds = index_timer.ElapsedSeconds();

  Timer census_timer;
  const double scale = 1.0 / options.sample_rate;
  Governor* gov = options.governor;
  BfsWorkspace bfs;
  for (NodeId n : focal) {
    if (gov != nullptr && gov->Checkpoint() != StopReason::kNone) {
      return gov->ToStatus("approximate census");
    }
    if (n >= graph.NumNodes()) {
      return Status::OutOfRange("focal node out of range");
    }
    bfs.Run(graph, n, k);
    result.stats.nodes_expanded += bfs.visited().size();
    std::uint64_t count = 0;
    for (NodeId visited : bfs.visited()) {
      auto mids = pmi.MatchesAt(visited);
      if (mids.empty()) continue;
      std::uint32_t d = bfs.DistanceTo(visited);
      if (d + max_v <= k) {
        count += mids.size();
        continue;
      }
      const auto& check_set = distant[k - d + 1];
      for (std::uint32_t mid : mids) {
        bool inside = true;
        for (int j : check_set) {
          ++result.stats.containment_checks;
          if (!bfs.Reached(anchors.Anchor(mid, j))) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
    }
    result.estimates[n] = static_cast<double>(count) * scale;
  }
  result.stats.census_seconds = census_timer.ElapsedSeconds();
  return result;
}

}  // namespace egocensus
