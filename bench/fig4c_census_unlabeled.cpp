// Figure 4(c): pattern census runtime vs graph size on UNLABELED graphs —
// the query COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) over all nodes. The
// unlabeled triangle is non-selective (many matches), so node-driven
// ND-PVOT wins and pattern-driven methods lag; ND-BAS (reported only at the
// smallest size) is ~2 orders of magnitude slower than ND-PVOT.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(c)",
              "census runtime vs size, unlabeled clq3, k=2, all nodes");

  const std::vector<std::uint32_t> sizes = {Scaled(4000), Scaled(8000),
                                            Scaled(16000)};
  const CensusAlgorithm algorithms[] = {
      CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
      CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt,
      CensusAlgorithm::kPtRnd};

  Pattern pattern = MakeTriangle(false);
  TablePrinter table({"nodes", "matches", "ND-BAS", "ND-PVOT s (visits)", "ND-DIFF",
                      "PT-BAS", "PT-OPT", "PT-RND"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    GeneratorOptions gen;
    gen.num_nodes = sizes[i];
    gen.edges_per_node = 5;
    gen.seed = 21;
    Graph graph = GeneratePreferentialAttachment(gen);
    auto focal = AllNodes(graph);
    // Centers are chosen apriori (Section IV-B4): prebuild the index.
    CenterDistanceIndex index =
        CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));

    std::vector<std::string> row = {std::to_string(sizes[i])};
    CensusStats stats;
    std::string nd_bas = "-";
    if (i == 0) {
      // ND-BAS only at the smallest size (the paper reports it separately:
      // 218x slower than ND-PVOT at 20K nodes).
      CensusOptions opts;
      opts.algorithm = CensusAlgorithm::kNdBas;
      opts.k = 2;
      nd_bas = TablePrinter::FormatDouble(
          TimeCensus(graph, pattern, focal, opts, &stats), 2);
    }
    std::vector<std::string> cells;
    std::uint64_t matches = 0;
    for (auto algorithm : algorithms) {
      CensusOptions opts;
      opts.algorithm = algorithm;
      opts.k = 2;
      opts.center_index = &index;
      double seconds = TimeCensus(graph, pattern, focal, opts, &stats);
      matches = stats.num_matches;
      cells.push_back(TablePrinter::FormatDouble(seconds, 2) + " (" +
                      TablePrinter::FormatDouble(
                          stats.nodes_expanded / 1e6, 1) +
                      "M)");
    }
    row.push_back(std::to_string(matches));
    row.push_back(nd_bas);
    row.insert(row.end(), cells.begin(), cells.end());
    table.AddRow(std::move(row));
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: ND-PVOT fastest (non-selective pattern); "
               "ND-BAS ~200x slower;\npattern-driven methods behind the "
               "node-driven ones\n";
  return 0;
}
