// Figure 4(d): pattern census runtime vs graph size on LABELED graphs (4
// labels) — COUNTP(clq3, SUBGRAPH(ID, 2)) over all nodes. The labeled
// triangle is selective (few matches), so the pattern-driven PT-OPT wins
// and PT-RND shows the cost of abandoning best-first ordering.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(d)",
              "census runtime vs size, labeled clq3, k=2, all nodes");

  const std::vector<std::uint32_t> sizes = {Scaled(20000), Scaled(40000),
                                            Scaled(80000)};
  const CensusAlgorithm algorithms[] = {
      CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
      CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt,
      CensusAlgorithm::kPtRnd};

  Pattern pattern = MakeTriangle(true);
  TablePrinter table({"nodes", "matches", "ND-PVOT s (visits)", "ND-DIFF",
                      "PT-BAS", "PT-OPT", "PT-RND"});
  for (std::uint32_t n : sizes) {
    GeneratorOptions gen;
    gen.num_nodes = n;
    gen.edges_per_node = 5;
    gen.num_labels = 4;
    gen.seed = 22;
    Graph graph = GeneratePreferentialAttachment(gen);
    auto focal = AllNodes(graph);
    // Centers are chosen apriori (Section IV-B4): prebuild the index.
    CenterDistanceIndex index =
        CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));

    std::vector<std::string> row = {std::to_string(n)};
    std::uint64_t matches = 0;
    std::vector<std::string> cells;
    for (auto algorithm : algorithms) {
      CensusOptions opts;
      opts.algorithm = algorithm;
      opts.k = 2;
      opts.center_index = &index;
      CensusStats stats;
      double seconds = TimeCensus(graph, pattern, focal, opts, &stats);
      matches = stats.num_matches;
      cells.push_back(TablePrinter::FormatDouble(seconds, 2) + " (" +
                      TablePrinter::FormatDouble(
                          stats.nodes_expanded / 1e6, 1) +
                      "M)");
    }
    row.push_back(std::to_string(matches));
    row.insert(row.end(), cells.begin(), cells.end());
    table.AddRow(std::move(row));
  }
  table.PrintText(std::cout);
  std::cout
      << "\npaper shape: pattern-driven beats node-driven on this selective "
         "pattern and\nPT-OPT beats PT-RND (best-first matters). Note: on "
         "the in-memory substrate\nPT-BAS wall-clock can undercut PT-OPT at "
         "laptop scale even though PT-OPT\nvisits ~7x fewer nodes (see "
         "visit counts) — traversals are no longer the\ndominant cost they "
         "were on the paper's disk-based engine; see EXPERIMENTS.md\n";
  return 0;
}
