// Dynamic-update benchmark: incremental census maintenance
// (IncrementalCensus::ApplyBatch) vs full recomputation (RunCensus on the
// materialized overlay) for COUNTP(clq3-unlb, SUBGRAPH(ID, k)) over all
// nodes of the default preferential-attachment workload.
//
// For each batch size B the same mixed insert/delete stream is applied in
// batches of B and the per-batch maintenance time is compared with the time
// of one full recompute (what a static engine would have to pay per batch
// to stay fresh). The acceptance bar for the dynamic subsystem is a >= 10x
// speedup at B = 1 (single-edge updates).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_census.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Dynamic updates",
              "incremental maintenance vs full recompute, clq3, PA graph");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(20000);
  gen.edges_per_node = 5;
  gen.seed = 21;
  Graph base = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(/*labeled=*/false);

  // At k=2 the PA hubs make the touched regions a sizable fraction of the
  // graph, so large batches pass the crossover where a full recompute wins;
  // only the small-batch points are interesting there.
  struct Config {
    std::uint32_t k;
    std::vector<std::size_t> batch_sizes;
  };
  const std::vector<Config> configs = {{1, {1, 10, 100, 1000}}, {2, {1, 10}}};

  for (const Config& config : configs) {
    const std::uint32_t k = config.k;
    // Cost of keeping the census fresh without the dynamic layer: one full
    // recompute per batch, measured on the starting graph.
    auto focal = AllNodes(base);
    CensusOptions census_opts;
    census_opts.k = k;
    double full_seconds = TimeCensus(base, pattern, focal, census_opts);

    std::cout << "\nk=" << k << ": full recompute " << base.NumNodes()
              << " nodes / " << base.NumEdges() << " edges: "
              << TablePrinter::FormatDouble(full_seconds, 3) << " s\n";
    TablePrinter table({"batch size", "batches", "inc s/batch",
                        "updates/s", "speedup vs full"});

    for (std::size_t batch : config.batch_sizes) {
      DynamicGraph dynamic(base);
      IncrementalCensus::Options opts;
      opts.k = k;
      auto census = IncrementalCensus::Create(&dynamic, pattern, opts);
      if (!census.ok()) {
        std::cerr << census.status().ToString() << "\n";
        return 1;
      }

      // Mixed stream: deletions sample existing edges, insertions sample
      // random non-adjacent endpoint pairs; ~1000 updates per batch size,
      // but at least 8 batches so small-batch timings average fairly.
      std::size_t num_batches = std::max<std::size_t>(8, 1000 / batch);
      num_batches = std::min<std::size_t>(num_batches, 64);
      Rng rng(1234 + k);
      double inc_seconds = 0;
      std::uint64_t applied = 0;
      for (std::size_t b = 0; b < num_batches; ++b) {
        std::vector<GraphUpdate> updates;
        updates.reserve(batch);
        while (updates.size() < batch) {
          NodeId u = static_cast<NodeId>(rng.NextBounded(dynamic.NumNodes()));
          NodeId v = static_cast<NodeId>(rng.NextBounded(dynamic.NumNodes()));
          if (u == v) continue;
          if (rng.NextBool(0.45) && dynamic.Degree(u) > 0) {
            auto nbrs = dynamic.Neighbors(u);
            v = nbrs[rng.NextBounded(nbrs.size())];
            updates.push_back(GraphUpdate::RemoveEdge(u, v));
          } else if (!dynamic.HasEdge(u, v)) {
            updates.push_back(GraphUpdate::AddEdge(u, v));
          }
        }
        Timer timer;
        auto stats = census->ApplyBatch(updates);
        inc_seconds += timer.ElapsedSeconds();
        if (!stats.ok()) {
          std::cerr << stats.status().ToString() << "\n";
          return 1;
        }
        applied += stats->updates_applied;
      }

      double per_batch = inc_seconds / static_cast<double>(num_batches);
      double speedup = per_batch > 0 ? full_seconds / per_batch : 0;
      table.AddRow({std::to_string(batch), std::to_string(num_batches),
                    TablePrinter::FormatDouble(per_batch, 5),
                    TablePrinter::FormatDouble(
                        static_cast<double>(applied) / inc_seconds, 0),
                    TablePrinter::FormatDouble(speedup, 1) + "x"});
    }
    table.PrintText(std::cout);
  }

  std::cout << "\nexpected shape: single-edge updates >= 10x faster than a\n"
               "full recompute; the advantage narrows as batches approach\n"
               "the size where the touched regions cover the whole graph\n";
  return 0;
}
