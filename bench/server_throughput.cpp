// server_throughput: the latency case for the daemon. An interactive
// ego-centric drill-down (a handful of focal nodes on a large resident
// graph) pays three costs: graph load, index build, and the census itself.
// The per-invocation CLI pays all three every time; ecensusd pays the
// first two once at LOAD and amortizes them across every request, so the
// per-request cost collapses to the census plus one framed round trip.
// This bench measures both paths on the same query and reports the
// speedup; the cold path is even conservative, since it skips the process
// fork/exec a real `ecensus query` invocation adds on top.
//
// A second scenario measures overload behavior: a 2x burst (twice as many
// closed-loop clients as execution slots) against (a) the legacy
// reject-on-full daemon (queue_depth=0, clients retry with backoff) and
// (b) the fair request queue (clients park server-side). Queueing absorbs
// the burst without the guess-again latency of client backoff, so its p99
// should come in well under the reject config's. Emitted as one JSON line
// so CI can assert on it.
//
// Usage: server_throughput [nodes] [iters]   (defaults 150000, 15)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "lang/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "util/timer.h"

using namespace egocensus;

namespace {

// 100 focal nodes (WHERE pushes down to focal selection), label counting
// in their 1-hop ego networks — seconds of load for milliseconds of query.
constexpr const char* kQuery =
    "PATTERN p {?A; [?A.LABEL=1];} "
    "SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 100";

QueryEngine::Options EngineOptions() {
  QueryEngine::Options options;
  options.auto_algorithm = false;
  options.census.algorithm = CensusAlgorithm::kNdPvot;
  return options;
}

double ColdQueryMicros(const std::string& path) {
  Timer timer;
  auto graph = LoadGraph(path);
  CheckOk(graph.status(), "bench graph load");
  QueryEngine engine(*graph);
  auto table = engine.Execute(kQuery, EngineOptions());
  CheckOk(table.status(), "bench cold query");
  return timer.ElapsedMicros();
}

double Percentile(std::vector<double>& sorted_inout, double q) {
  if (sorted_inout.empty()) return 0;
  std::sort(sorted_inout.begin(), sorted_inout.end());
  auto idx = static_cast<std::size_t>(q * (sorted_inout.size() - 1) + 0.5);
  return sorted_inout[idx];
}

struct BurstResult {
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t attempts = 0;       // total client attempts (retries incl.)
  std::uint64_t busy_terminal = 0;  // requests that exhausted their retries
};

// Closed-loop burst: `clients` threads each issue `per_client` requests
// through the retrying client. With queue_depth=0 the excess load turns
// into BUSY + client backoff; with a queue it parks server-side.
BurstResult RunBurst(const std::string& path, int slots,
                     std::uint64_t queue_depth, int clients, int per_client) {
  net::CensusServer::Options options;
  options.listen.port = 0;
  options.max_inflight = slots;
  options.queue_depth = queue_depth;
  net::CensusServer server(options);
  CheckOk(server.registry().LoadFromFile("g", path), "bench registry load");
  CheckOk(server.Start(), "bench server start");
  net::Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();

  auto request = net::Client::QueryRequest("g", kQuery);
  request.headers["algorithm"] = "nd-pvot";

  std::mutex mu;
  std::vector<double> latencies;
  BurstResult result;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      net::RetryPolicy policy;
      policy.max_retries = 8;
      policy.base_backoff_ms = 25;
      policy.max_backoff_ms = 500;
      policy.budget_ms = 10000;
      policy.jitter_seed = 1000 + static_cast<std::uint64_t>(c);
      for (int i = 0; i < per_client; ++i) {
        net::RetryStats stats;
        Timer timer;
        auto response = net::CallWithRetry(endpoint, request,
                                           net::Client::Options{}, policy,
                                           &stats);
        double us = timer.ElapsedMicros();
        CheckOk(response.status(), "bench burst call");
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(us);
        result.attempts += static_cast<std::uint64_t>(stats.attempts);
        if (response->type == net::FrameType::kBusy) ++result.busy_terminal;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  server.RequestShutdown();
  server.Wait();
  result.p50_us = Percentile(latencies, 0.5);
  result.p99_us = Percentile(latencies, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(
                                       std::strtoul(argv[1], nullptr, 10))
                                 : 150000;
  int iters = argc > 2 ? std::atoi(argv[2]) : 15;

  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = 8;
  gen.num_labels = 4;
  gen.seed = 42;
  Graph graph = GeneratePreferentialAttachment(gen);
  std::string path = "/tmp/server_throughput.graph";
  CheckOk(SaveGraph(graph, path), "bench graph save");

  std::printf("server_throughput: %u nodes, %llu edges, %d iters\n", nodes,
              static_cast<unsigned long long>(graph.NumEdges()), iters);

  // Cold path: what every per-process `ecensus query` invocation pays.
  double cold_total = 0;
  ColdQueryMicros(path);  // warm the page cache so I/O jitter cancels
  for (int i = 0; i < iters; ++i) cold_total += ColdQueryMicros(path);
  double cold_us = cold_total / iters;

  // Warm path: graph resident in a daemon, one framed round trip per query.
  net::CensusServer::Options options;
  options.listen.port = 0;
  net::CensusServer server(options);
  CheckOk(server.registry().LoadFromFile("g", path), "bench registry load");
  CheckOk(server.Start(), "bench server start");
  net::Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();
  auto client = net::Client::Connect(endpoint);
  CheckOk(client.status(), "bench client connect");

  auto request = net::Client::QueryRequest("g", kQuery);
  request.headers["algorithm"] = "nd-pvot";
  double warm_total = 0;
  {
    auto first = client->Call(request);  // connection warmup
    CheckOk(first.status(), "bench warm query");
  }
  for (int i = 0; i < iters; ++i) {
    Timer timer;
    auto response = client->Call(request);
    CheckOk(response.status(), "bench warm query");
    warm_total += timer.ElapsedMicros();
  }
  double warm_us = warm_total / iters;
  server.RequestShutdown();
  server.Wait();

  std::printf("  per-process (load + index + census): %10.0f us/query\n",
              cold_us);
  std::printf("  graph-resident (daemon round trip):  %10.0f us/query\n",
              warm_us);
  std::printf("  speedup: %.1fx\n", cold_us / warm_us);

  // Overload scenario: 2x burst (8 clients, 4 slots), reject-on-full with
  // retrying clients vs the fair queue. One JSON line for CI assertions.
  constexpr int kSlots = 4;
  constexpr int kBurstClients = 2 * kSlots;
  constexpr int kPerClient = 6;
  BurstResult reject = RunBurst(path, kSlots, /*queue_depth=*/0,
                                kBurstClients, kPerClient);
  BurstResult queued = RunBurst(path, kSlots, /*queue_depth=*/16,
                                kBurstClients, kPerClient);
  std::printf(
      "{\"scenario\": \"queued_burst\", \"slots\": %d, "
      "\"burst_clients\": %d, \"requests_per_client\": %d, \"configs\": ["
      "{\"name\": \"reject_on_full\", \"queue_depth\": 0, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f, \"attempts\": %llu, \"busy_terminal\": %llu}, "
      "{\"name\": \"fair_queue\", \"queue_depth\": 16, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f, \"attempts\": %llu, \"busy_terminal\": %llu}], "
      "\"p99_ratio_queued_vs_reject\": %.3f}\n",
      kSlots, kBurstClients, kPerClient, reject.p50_us, reject.p99_us,
      static_cast<unsigned long long>(reject.attempts),
      static_cast<unsigned long long>(reject.busy_terminal), queued.p50_us,
      queued.p99_us, static_cast<unsigned long long>(queued.attempts),
      static_cast<unsigned long long>(queued.busy_terminal),
      reject.p99_us > 0 ? queued.p99_us / reject.p99_us : 0.0);

  std::remove(path.c_str());
  return 0;
}
