// server_throughput: the latency case for the daemon. An interactive
// ego-centric drill-down (a handful of focal nodes on a large resident
// graph) pays three costs: graph load, index build, and the census itself.
// The per-invocation CLI pays all three every time; ecensusd pays the
// first two once at LOAD and amortizes them across every request, so the
// per-request cost collapses to the census plus one framed round trip.
// This bench measures both paths on the same query and reports the
// speedup; the cold path is even conservative, since it skips the process
// fork/exec a real `ecensus query` invocation adds on top.
//
// Usage: server_throughput [nodes] [iters]   (defaults 150000, 15)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "lang/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "util/timer.h"

using namespace egocensus;

namespace {

// 100 focal nodes (WHERE pushes down to focal selection), label counting
// in their 1-hop ego networks — seconds of load for milliseconds of query.
constexpr const char* kQuery =
    "PATTERN p {?A; [?A.LABEL=1];} "
    "SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 100";

QueryEngine::Options EngineOptions() {
  QueryEngine::Options options;
  options.auto_algorithm = false;
  options.census.algorithm = CensusAlgorithm::kNdPvot;
  return options;
}

double ColdQueryMicros(const std::string& path) {
  Timer timer;
  auto graph = LoadGraph(path);
  CheckOk(graph.status(), "bench graph load");
  QueryEngine engine(*graph);
  auto table = engine.Execute(kQuery, EngineOptions());
  CheckOk(table.status(), "bench cold query");
  return timer.ElapsedMicros();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(
                                       std::strtoul(argv[1], nullptr, 10))
                                 : 150000;
  int iters = argc > 2 ? std::atoi(argv[2]) : 15;

  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = 8;
  gen.num_labels = 4;
  gen.seed = 42;
  Graph graph = GeneratePreferentialAttachment(gen);
  std::string path = "/tmp/server_throughput.graph";
  CheckOk(SaveGraph(graph, path), "bench graph save");

  std::printf("server_throughput: %u nodes, %llu edges, %d iters\n", nodes,
              static_cast<unsigned long long>(graph.NumEdges()), iters);

  // Cold path: what every per-process `ecensus query` invocation pays.
  double cold_total = 0;
  ColdQueryMicros(path);  // warm the page cache so I/O jitter cancels
  for (int i = 0; i < iters; ++i) cold_total += ColdQueryMicros(path);
  double cold_us = cold_total / iters;

  // Warm path: graph resident in a daemon, one framed round trip per query.
  net::CensusServer::Options options;
  options.listen.port = 0;
  net::CensusServer server(options);
  CheckOk(server.registry().LoadFromFile("g", path), "bench registry load");
  CheckOk(server.Start(), "bench server start");
  net::Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();
  auto client = net::Client::Connect(endpoint);
  CheckOk(client.status(), "bench client connect");

  auto request = net::Client::QueryRequest("g", kQuery);
  request.headers["algorithm"] = "nd-pvot";
  double warm_total = 0;
  {
    auto first = client->Call(request);  // connection warmup
    CheckOk(first.status(), "bench warm query");
  }
  for (int i = 0; i < iters; ++i) {
    Timer timer;
    auto response = client->Call(request);
    CheckOk(response.status(), "bench warm query");
    warm_total += timer.ElapsedMicros();
  }
  double warm_us = warm_total / iters;
  server.RequestShutdown();
  server.Wait();

  std::printf("  per-process (load + index + census): %10.0f us/query\n",
              cold_us);
  std::printf("  graph-resident (daemon round trip):  %10.0f us/query\n",
              warm_us);
  std::printf("  speedup: %.1fx\n", cold_us / warm_us);
  std::remove(path.c_str());
  return 0;
}
