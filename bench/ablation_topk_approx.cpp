// Ablation bench for the Section VII future-work extensions implemented in
// this library:
//   * top-K census: exact top-K via bound-ordered early termination vs the
//     full census + sort;
//   * approximate census: match-sampling at various rates vs the exact
//     census, with measured error on the top nodes.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "census/approx.h"
#include "census/topk.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Extensions",
              "top-K early termination and sampling-based approximation "
              "(paper Section VII future work)");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(30000);
  gen.edges_per_node = 5;
  gen.seed = 29;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(false);
  auto focal = AllNodes(graph);
  std::cout << "graph: " << graph.NumNodes()
            << " nodes; unlabeled triangle census, k = 2\n\n";

  // Exact full census (reference).
  CensusOptions exact_opts;
  exact_opts.algorithm = CensusAlgorithm::kNdPvot;
  exact_opts.k = 2;
  CensusStats exact_stats;
  double exact_seconds =
      TimeCensus(graph, pattern, focal, exact_opts, &exact_stats);
  auto exact = RunCensus(graph, pattern, focal, exact_opts);

  // ---- Top-K ----
  TablePrinter topk_table({"top_k", "full census+sort (s)", "top-K (s)",
                           "exact evaluations", "of focal"});
  for (std::size_t top_k : {10u, 50u, 200u}) {
    TopKOptions opts;
    opts.k = 2;
    opts.top_k = top_k;
    Timer timer;
    auto result = RunTopKCensus(graph, pattern, focal, opts);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    topk_table.AddRow({std::to_string(top_k),
                       TablePrinter::FormatDouble(exact_seconds, 2),
                       TablePrinter::FormatDouble(seconds, 2),
                       std::to_string(result->exact_evaluations),
                       std::to_string(focal.size())});
  }
  topk_table.PrintText(std::cout);
  std::cout << "\nexact top-K results with only a small fraction of focal "
               "nodes needing\ncontainment checks (the bound pass is one "
               "check-free BFS per node)\n\n";

  // ---- Approximation ----
  // Error metric: mean relative error over the 100 highest-count nodes.
  std::vector<NodeId> heavy(focal.begin(), focal.end());
  std::partial_sort(heavy.begin(), heavy.begin() + 100, heavy.end(),
                    [&](NodeId a, NodeId b) {
                      return exact->counts[a] > exact->counts[b];
                    });
  heavy.resize(100);

  TablePrinter approx_table({"sample rate", "exact (s)", "approx (s)",
                             "census speedup", "mean rel. error (top 100)"});
  for (double rate : {0.5, 0.2, 0.1, 0.05}) {
    ApproximateCensusOptions opts;
    opts.k = 2;
    opts.sample_rate = rate;
    opts.seed = 31;
    Timer timer;
    auto result = RunApproximateCensus(graph, pattern, focal, opts);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    double err_sum = 0;
    for (NodeId n : heavy) {
      double truth = static_cast<double>(exact->counts[n]);
      if (truth > 0) {
        err_sum += std::abs(result->estimates[n] - truth) / truth;
      }
    }
    approx_table.AddRow(
        {TablePrinter::FormatDouble(rate, 2),
         TablePrinter::FormatDouble(exact_stats.census_seconds, 2),
         TablePrinter::FormatDouble(result->stats.census_seconds, 2),
         TablePrinter::FormatDouble(
             exact_stats.census_seconds / result->stats.census_seconds, 2),
         TablePrinter::FormatDouble(err_sum / heavy.size(), 3)});
  }
  approx_table.PrintText(std::cout);
  std::cout << "\nestimates stay accurate on high-count nodes (relative "
               "std. error ~ sqrt((1-p)/(p*count)))\nwhile the counting "
               "pass shrinks with the sampling rate\n";
  return 0;
}
