// Fast-path ablation (docs/FAST_PATH.md): for every connected <= 4-node
// shape, the same k=1 census through the combinatorial kernels, the
// generic engine with the CN matcher, and the generic engine with the GQL
// matcher. Emits a JSON document (stdout) with per-shape wall-clock,
// speedup-vs-CN / speedup-vs-GQL, and a bit_identical flag comparing the
// fast-path counts against the CN reference — CI runs this on a tiny graph
// and asserts bit_identical for every shape; at default scale the triangle
// and wedge rows demonstrate the >= 5x the fast path exists for.
//
//   fastpath_ablation [--nodes N] [--edges-per-node M] [--k K] [--reps R]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "pattern/pattern_parser.h"
#include "pattern/shape.h"

int main(int argc, char** argv) {
  using namespace egocensus;
  using namespace egocensus::bench;
  InitObsFromEnv();

  std::uint32_t nodes = Scaled(6000);
  std::uint32_t edges_per_node = 5;
  std::uint32_t k = 1;
  int reps = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--edges-per-node") == 0) {
      edges_per_node = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--k") == 0) {
      k = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(argv[i + 1]);
    } else {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 2;
    }
  }

  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = edges_per_node;
  gen.seed = 23;
  Graph graph = GeneratePreferentialAttachment(gen);
  auto focal = AllNodes(graph);

  struct ShapeBench {
    const char* label;
    const char* text;
  };
  const ShapeBench shapes[] = {
      {"edge", "PATTERN p {?A-?B;}"},
      {"wedge", "PATTERN p {?A-?B; ?B-?C;}"},
      {"triangle", "PATTERN p {?A-?B; ?B-?C; ?C-?A;}"},
      {"path4", "PATTERN p {?A-?B; ?B-?C; ?C-?D;}"},
      {"claw", "PATTERN p {?A-?B; ?A-?C; ?A-?D;}"},
      {"paw", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?A-?D;}"},
      {"cycle4", "PATTERN p {?A-?B; ?B-?C; ?C-?D; ?D-?A;}"},
      {"diamond", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?B-?D; ?C-?D;}"},
      {"clique4", "PATTERN p {?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D;}"},
  };

  std::cout << "{\n  \"bench\": \"fastpath_ablation\",\n"
            << "  \"nodes\": " << graph.NumNodes()
            << ", \"edges\": " << graph.NumEdges() << ", \"k\": " << k
            << ", \"reps\": " << reps << ",\n  \"shapes\": [\n";
  bool all_identical = true;
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    auto pattern = ParsePattern(shapes[i].text);
    if (!pattern.ok()) {
      std::cerr << pattern.status().ToString() << "\n";
      return 1;
    }

    CensusOptions cn;
    cn.fast_path = FastPathMode::kOff;
    cn.algorithm = CensusAlgorithm::kNdPvot;
    cn.k = k;
    CensusOptions gql = cn;
    gql.use_gql_matcher = true;
    CensusOptions fast;
    fast.fast_path = FastPathMode::kForce;
    fast.k = k;

    double cn_s = TimeCensusBestOf(graph, *pattern, focal, cn, reps);
    double gql_s = TimeCensusBestOf(graph, *pattern, focal, gql, reps);
    double fast_s = TimeCensusBestOf(graph, *pattern, focal, fast, reps);

    // Bit-identity check outside the timed loop.
    auto reference = RunCensus(graph, *pattern, focal, cn);
    auto routed = RunCensus(graph, *pattern, focal, fast);
    if (!reference.ok() || !routed.ok()) {
      std::cerr << "census failed for " << shapes[i].label << "\n";
      return 1;
    }
    bool identical = reference->counts == routed->counts;
    all_identical = all_identical && identical;

    std::cout << "    {\"shape\": \"" << shapes[i].label << "\""
              << ", \"fastpath_s\": " << fast_s << ", \"cn_s\": " << cn_s
              << ", \"gql_s\": " << gql_s
              << ", \"speedup_vs_cn\": " << (fast_s > 0 ? cn_s / fast_s : 0)
              << ", \"speedup_vs_gql\": " << (fast_s > 0 ? gql_s / fast_s : 0)
              << ", \"bit_identical\": " << (identical ? "true" : "false")
              << "}" << (i + 1 < std::size(shapes) ? "," : "") << "\n";
  }
  std::cout << "  ],\n  \"all_bit_identical\": "
            << (all_identical ? "true" : "false") << "\n}\n";
  return all_identical ? 0 : 1;
}
