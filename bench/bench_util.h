#ifndef EGOCENSUS_BENCH_BENCH_UTIL_H_
#define EGOCENSUS_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints the same series the corresponding figure of the paper
// plots. Default graph sizes are scaled down from the paper's testbed so a
// full `for b in build/bench/*; do $b; done` sweep finishes in minutes;
// set ECENSUS_SCALE (e.g. 5.0) to scale sizes back up toward the paper's.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>

#include "census/census.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern.h"
#include "util/timer.h"

namespace egocensus::bench {

/// Multiplier applied to all default graph sizes (env ECENSUS_SCALE).
inline double ScaleFactor() {
  const char* env = std::getenv("ECENSUS_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline std::uint32_t Scaled(std::uint32_t base) {
  return static_cast<std::uint32_t>(base * ScaleFactor());
}

/// Turns observability on from the environment: ECENSUS_TRACE=FILE and/or
/// ECENSUS_METRICS=FILE enable instrumentation and register an atexit
/// export, so any bench binary can produce a Chrome trace or metrics dump
/// without its own flag plumbing. Idempotent.
inline void InitObsFromEnv() {
  static bool done = false;
  if (done) return;
  done = true;
  const char* trace = std::getenv("ECENSUS_TRACE");
  const char* metrics = std::getenv("ECENSUS_METRICS");
  if (trace == nullptr && metrics == nullptr) return;
  obs::SetEnabled(true);
  static std::string trace_path = trace == nullptr ? "" : trace;
  static std::string metrics_path = metrics == nullptr ? "" : metrics;
  std::atexit([] {
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (out) obs::Tracer::Global().WriteChromeTrace(out);
      std::cerr << "trace: " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (out) {
        obs::Registry::Global().Snapshot().WriteJson(out);
      }
      std::cerr << "metrics: " << metrics_path << "\n";
    }
  });
}

inline void PrintHeader(const std::string& figure, const std::string& what) {
  InitObsFromEnv();
  std::cout << "==========================================================\n"
            << figure << " — " << what << "\n"
            << "(scale " << ScaleFactor()
            << "x; set ECENSUS_SCALE to change)\n"
            << "==========================================================\n";
}

/// Runs one census and returns end-to-end wall-clock seconds (match +
/// index + counting). Exits on error.
inline double TimeCensus(const Graph& graph, const Pattern& pattern,
                         std::span<const NodeId> focal,
                         const CensusOptions& options,
                         CensusStats* stats_out = nullptr) {
  Timer timer;
  auto result = RunCensus(graph, pattern, focal, options);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::cerr << "census failed: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  if (stats_out != nullptr) *stats_out = result->stats;
  return seconds;
}

/// Runs `reps` censuses, aggregating stats across runs with
/// CensusStats::Merge (counters sum, peak metrics max). Returns the best
/// (minimum) wall-clock seconds of the repetitions.
inline double TimeCensusBestOf(const Graph& graph, const Pattern& pattern,
                               std::span<const NodeId> focal,
                               const CensusOptions& options, int reps,
                               CensusStats* stats_out = nullptr) {
  double best = 0;
  CensusStats merged;
  for (int r = 0; r < reps; ++r) {
    CensusStats stats;
    double seconds = TimeCensus(graph, pattern, focal, options, &stats);
    merged.Merge(stats);
    if (r == 0 || seconds < best) best = seconds;
  }
  if (stats_out != nullptr) *stats_out = merged;
  return best;
}

}  // namespace egocensus::bench

#endif  // EGOCENSUS_BENCH_BENCH_UTIL_H_
