// Parallel scaling: census runtime vs thread count on the Fig. 4(c)
// (unlabeled clq3, non-selective) and Fig. 4(d) (labeled clq3, selective)
// workloads, k=2, all nodes, prebuilt 12-center index. Sweeps 1 -> N
// threads (N = max(8, hardware)) and emits a JSON document of per-algorithm
// speedup curves, verifying along the way that every parallel run produces
// counts bit-identical to the single-threaded baseline.
//
// Speedup saturates at the number of physical cores; on a single-core
// machine the curves are flat (the runs still exercise the parallel code
// paths and the determinism check).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace egocensus;
using namespace egocensus::bench;

struct AlgorithmSpec {
  const char* name;
  CensusAlgorithm algorithm;
};

std::vector<unsigned> ThreadSweep() {
  unsigned max_threads = std::max(8u, ThreadPool::HardwareThreads());
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

std::string JsonList(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += TablePrinter::FormatDouble(v[i], 4);
  }
  return out + "]";
}

/// Runs every algorithm of `specs` on (graph, pattern) across the thread
/// sweep and prints one JSON workload object.
void RunWorkload(const std::string& figure, const Graph& graph,
                 const Pattern& pattern, const CenterDistanceIndex& index,
                 const std::vector<AlgorithmSpec>& specs, bool last) {
  auto focal = AllNodes(graph);
  const std::vector<unsigned> sweep = ThreadSweep();

  std::cout << "    {\"figure\": \"" << figure
            << "\", \"nodes\": " << graph.NumNodes() << ", \"threads\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << sweep[i];
  }
  std::cout << "],\n     \"series\": [\n";

  for (std::size_t a = 0; a < specs.size(); ++a) {
    const AlgorithmSpec& spec = specs[a];
    std::vector<double> seconds;
    std::vector<double> speedup;
    std::vector<std::uint64_t> baseline_counts;
    bool bit_identical = true;
    std::uint64_t matches = 0;
    for (unsigned t : sweep) {
      CensusOptions opts;
      opts.algorithm = spec.algorithm;
      opts.k = 2;
      opts.center_index = &index;
      opts.num_threads = t;
      Timer timer;
      auto result = RunCensus(graph, pattern, focal, opts);
      double secs = timer.ElapsedSeconds();
      if (!result.ok()) {
        std::cerr << "census failed: " << result.status().ToString() << "\n";
        std::exit(1);
      }
      matches = result->stats.num_matches;
      seconds.push_back(secs);
      speedup.push_back(seconds.front() / secs);
      if (t == sweep.front()) {
        baseline_counts = result->counts;
      } else if (result->counts != baseline_counts) {
        bit_identical = false;
      }
    }
    std::cout << "      {\"algorithm\": \"" << spec.name
              << "\", \"matches\": " << matches
              << ", \"seconds\": " << JsonList(seconds)
              << ",\n       \"speedup\": " << JsonList(speedup)
              << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
              << "}" << (a + 1 < specs.size() ? "," : "") << "\n";
    if (!bit_identical) {
      std::cerr << figure << " " << spec.name
                << ": parallel counts DIVERGED from single-threaded run\n";
    }
  }
  std::cout << "    ]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  std::cerr << "parallel scaling sweep (hardware threads: "
            << ThreadPool::HardwareThreads()
            << "; set ECENSUS_SCALE to resize graphs)\n";

  std::cout << "{\n  \"hardware_threads\": " << ThreadPool::HardwareThreads()
            << ",\n  \"workloads\": [\n";

  {
    // Fig. 4(c) workload: unlabeled PA graph, non-selective triangle.
    GeneratorOptions gen;
    gen.num_nodes = Scaled(8000);
    gen.edges_per_node = 5;
    gen.seed = 21;
    Graph graph = GeneratePreferentialAttachment(gen);
    CenterDistanceIndex index =
        CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));
    Pattern pattern = MakeTriangle(false);
    RunWorkload("4c", graph, pattern, index,
                {{"nd-pvot", CensusAlgorithm::kNdPvot},
                 {"nd-diff", CensusAlgorithm::kNdDiff},
                 {"pt-bas", CensusAlgorithm::kPtBas},
                 {"pt-opt", CensusAlgorithm::kPtOpt},
                 {"pt-rnd", CensusAlgorithm::kPtRnd}},
                /*last=*/false);
  }
  {
    // ND-BAS separately at a smaller size (it is ~2 orders of magnitude
    // slower; its per-node extract+match loop parallelizes the best).
    GeneratorOptions gen;
    gen.num_nodes = Scaled(2000);
    gen.edges_per_node = 5;
    gen.seed = 21;
    Graph graph = GeneratePreferentialAttachment(gen);
    CenterDistanceIndex index =
        CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));
    Pattern pattern = MakeTriangle(false);
    RunWorkload("4c-small", graph, pattern, index,
                {{"nd-bas", CensusAlgorithm::kNdBas}},
                /*last=*/false);
  }
  {
    // Fig. 4(d) workload: labeled PA graph, selective triangle.
    GeneratorOptions gen;
    gen.num_nodes = Scaled(20000);
    gen.edges_per_node = 5;
    gen.num_labels = 4;
    gen.seed = 22;
    Graph graph = GeneratePreferentialAttachment(gen);
    CenterDistanceIndex index =
        CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));
    Pattern pattern = MakeTriangle(true);
    RunWorkload("4d", graph, pattern, index,
                {{"nd-pvot", CensusAlgorithm::kNdPvot},
                 {"nd-diff", CensusAlgorithm::kNdDiff},
                 {"pt-bas", CensusAlgorithm::kPtBas},
                 {"pt-opt", CensusAlgorithm::kPtOpt},
                 {"pt-rnd", CensusAlgorithm::kPtRnd}},
                /*last=*/true);
  }

  std::cout << "  ]\n}\n";
  return 0;
}
