// Figure 4(b): CN vs GQL across query patterns on a fixed labeled graph
// (paper: 1M nodes / 5M edges; scaled down here). The paper reports GQL
// needing 37 hours for sqr (480x CN); expect the CN advantage to grow with
// pattern complexity, most extreme on sqr.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(b)", "CN vs GQL across patterns (4 labels)");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(40000);
  gen.edges_per_node = 5;
  gen.num_labels = 4;
  gen.seed = 18;
  Graph graph = GeneratePreferentialAttachment(gen);
  std::cout << "graph: " << graph.NumNodes() << " nodes, " << graph.NumEdges()
            << " edges\n";

  std::vector<Pattern> patterns;
  patterns.push_back(MakeTriangle(true));
  patterns.push_back(MakeClique4(true));
  patterns.push_back(MakePath(4, true));
  patterns.push_back(MakeSquare(true));

  TablePrinter table(
      {"pattern", "matches", "CN (s)", "GQL (s)", "speedup"});
  for (const Pattern& pattern : patterns) {
    CnMatcher cn;
    Timer t1;
    std::size_t matches = cn.FindMatches(graph, pattern).size();
    double cn_seconds = t1.ElapsedSeconds();
    GqlMatcher gql;
    Timer t2;
    std::size_t gql_matches = gql.FindMatches(graph, pattern).size();
    double gql_seconds = t2.ElapsedSeconds();
    if (matches != gql_matches) {
      std::cerr << "MISMATCH on " << pattern.name() << "\n";
      return 1;
    }
    table.AddRow({pattern.name(), std::to_string(matches),
                  TablePrinter::FormatDouble(cn_seconds, 3),
                  TablePrinter::FormatDouble(gql_seconds, 3),
                  TablePrinter::FormatDouble(gql_seconds / cn_seconds, 1)});
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: CN orders of magnitude faster; the gap is "
               "largest on sqr\n";
  return 0;
}
