// Figure 4(a): CN vs GQL pattern matching runtime as the graph grows.
// Paper setup: preferential-attachment graphs with |E| = 5|V|, labels drawn
// from 4 values, patterns clq3 and clq4; 200K–1M nodes (scaled down here).
// Expected shape: CN beats GQL by 1–2 orders of magnitude at every size.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(a)", "CN vs GQL, varying graph size (4 labels)");

  const std::vector<std::uint32_t> sizes = {Scaled(10000), Scaled(20000),
                                            Scaled(40000)};
  TablePrinter table({"nodes", "pattern", "matches", "CN (s)", "GQL (s)",
                      "speedup"});
  for (std::uint32_t n : sizes) {
    GeneratorOptions gen;
    gen.num_nodes = n;
    gen.edges_per_node = 5;
    gen.num_labels = 4;
    gen.seed = 17;
    Graph graph = GeneratePreferentialAttachment(gen);
    for (bool clq4 : {false, true}) {
      Pattern pattern = clq4 ? MakeClique4(true) : MakeTriangle(true);
      CnMatcher cn;
      Timer t1;
      std::size_t matches = cn.FindMatches(graph, pattern).size();
      double cn_seconds = t1.ElapsedSeconds();
      GqlMatcher gql;
      Timer t2;
      std::size_t gql_matches = gql.FindMatches(graph, pattern).size();
      double gql_seconds = t2.ElapsedSeconds();
      if (matches != gql_matches) {
        std::cerr << "MISMATCH: CN " << matches << " vs GQL " << gql_matches
                  << "\n";
        return 1;
      }
      table.AddRow({std::to_string(n), pattern.name(),
                    std::to_string(matches),
                    TablePrinter::FormatDouble(cn_seconds, 3),
                    TablePrinter::FormatDouble(gql_seconds, 3),
                    TablePrinter::FormatDouble(gql_seconds / cn_seconds, 1)});
    }
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: CN 10x-140x faster than GQL across sizes\n";
  return 0;
}
