// Micro-benchmarks (google-benchmark) for the building blocks behind the
// paper's optimizations: the O(1) array bucket queue vs a binary heap
// (Section IV-B3), k-hop BFS, profile index construction, subgraph
// extraction, CN vs GQL matching, and the simultaneous expander.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>

#include "egolint.h"

#include "census/census.h"
#include "census/pt_expander.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/profile_index.h"
#include "graph/subgraph.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "pattern/catalog.h"
#include "util/bucket_queue.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace egocensus {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    GeneratorOptions gen;
    gen.num_nodes = 20000;
    gen.edges_per_node = 5;
    gen.num_labels = 4;
    gen.seed = 77;
    return new Graph(GeneratePreferentialAttachment(gen));
  }();
  return *graph;
}

void BM_BucketQueue(benchmark::State& state) {
  const std::size_t n = 10000;
  Rng rng(1);
  std::vector<std::pair<std::uint32_t, std::size_t>> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.emplace_back(static_cast<std::uint32_t>(i), rng.NextBounded(64));
  }
  for (auto _ : state) {
    BucketQueue<std::uint32_t> queue(64);
    for (const auto& [value, score] : items) queue.Push(value, score);
    std::uint64_t sum = 0;
    while (!queue.Empty()) sum += queue.PopMin();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BucketQueue);

void BM_BinaryHeap(benchmark::State& state) {
  const std::size_t n = 10000;
  Rng rng(1);
  std::vector<std::pair<std::size_t, std::uint32_t>> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.emplace_back(rng.NextBounded(64), static_cast<std::uint32_t>(i));
  }
  for (auto _ : state) {
    std::priority_queue<std::pair<std::size_t, std::uint32_t>,
                        std::vector<std::pair<std::size_t, std::uint32_t>>,
                        std::greater<>>
        queue;
    for (const auto& item : items) queue.push(item);
    std::uint64_t sum = 0;
    while (!queue.empty()) {
      sum += queue.top().second;
      queue.pop();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BinaryHeap);

void BM_KHopBfs(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  BfsWorkspace bfs;
  NodeId source = 0;
  for (auto _ : state) {
    const auto& visited =
        bfs.Run(graph, source, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(visited.size());
    source = (source + 1) % graph.NumNodes();
  }
}
BENCHMARK(BM_KHopBfs)->Arg(1)->Arg(2)->Arg(3);

void BM_ProfileIndexBuild(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  for (auto _ : state) {
    ProfileIndex index = ProfileIndex::Build(graph);
    benchmark::DoNotOptimize(index.num_labels());
  }
}
BENCHMARK(BM_ProfileIndexBuild);

void BM_SubgraphExtraction(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  SubgraphExtractor extractor(graph);
  NodeId source = 0;
  for (auto _ : state) {
    EgoSubgraph sub = extractor.ExtractKHop(source, 2);
    benchmark::DoNotOptimize(sub.graph.NumEdges());
    source = (source + 1) % graph.NumNodes();
  }
}
BENCHMARK(BM_SubgraphExtraction);

void BM_CnMatch(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Pattern pattern = MakeTriangle(true);
  for (auto _ : state) {
    CnMatcher matcher;
    benchmark::DoNotOptimize(matcher.FindMatches(graph, pattern).size());
  }
}
BENCHMARK(BM_CnMatch);

void BM_GqlMatch(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Pattern pattern = MakeTriangle(true);
  for (auto _ : state) {
    GqlMatcher matcher;
    benchmark::DoNotOptimize(matcher.FindMatches(graph, pattern).size());
  }
}
BENCHMARK(BM_GqlMatch);

void BM_SimultaneousExpander(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  internal::ExpanderOptions options;
  options.k = 2;
  options.best_first = state.range(0) != 0;
  internal::SimultaneousExpander expander(graph, options);
  Rng rng(3);
  std::vector<std::vector<NodeId>> anchors = {
      {static_cast<NodeId>(rng.NextBounded(graph.NumNodes())),
       static_cast<NodeId>(rng.NextBounded(graph.NumNodes())),
       static_cast<NodeId>(rng.NextBounded(graph.NumNodes()))}};
  for (auto _ : state) {
    expander.Expand(anchors, nullptr);
    benchmark::DoNotOptimize(expander.NumVisited());
  }
}
BENCHMARK(BM_SimultaneousExpander)->Arg(1)->Arg(0);

void BM_SubgraphExtractionInto(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  SubgraphExtractor extractor(graph);
  EgoSubgraph sub;  // buffers reused across iterations (the ND-BAS loop)
  NodeId source = 0;
  for (auto _ : state) {
    extractor.ExtractKHopInto(source, 2, /*copy_attributes=*/true, &sub);
    benchmark::DoNotOptimize(sub.graph.NumEdges());
    source = (source + 1) % graph.NumNodes();
  }
}
BENCHMARK(BM_SubgraphExtractionInto);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 1 << 16;
  std::vector<std::uint64_t> out(n, 0);
  for (auto _ : state) {
    pool.ParallelFor(0, n, /*grain=*/256,
                     [&](std::size_t begin, std::size_t end, unsigned) {
                       for (std::size_t i = begin; i < end; ++i) {
                         out[i] = i * i;
                       }
                     });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelCensus(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Pattern pattern = MakeTriangle(true);
  auto focal = AllNodes(graph);
  CensusOptions options;
  options.algorithm = CensusAlgorithm::kNdPvot;
  options.k = 2;
  options.num_threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto result = RunCensus(graph, pattern, focal, options);
    benchmark::DoNotOptimize(result->stats.num_matches);
  }
}
BENCHMARK(BM_ParallelCensus)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Observability overhead on the densest instrumentation path (ND-BAS k=2
// runs the matcher once per focal node). Arg(0) = runtime-disabled
// (the acceptance bar: within noise of a build without instrumentation),
// Arg(1) = enabled (the price of actually recording).
void BM_ObsOverheadNdBas(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Pattern pattern = MakeTriangle(true);
  auto focal = AllNodes(graph);
  CensusOptions options;
  options.algorithm = CensusAlgorithm::kNdBas;
  options.k = 2;
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    auto result = RunCensus(graph, pattern, focal, options);
    benchmark::DoNotOptimize(result->stats.num_matches);
  }
  obs::SetEnabled(false);
}
BENCHMARK(BM_ObsOverheadNdBas)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Composing the daemon's per-request wide event (docs/OBSERVABILITY.md,
// "Request telemetry"): one LogEvent with the full QUERY field set. This
// runs once per request on the server's connection thread, so it needs to
// stay far below the census work it describes (microseconds, not millis).
void BM_WideEventCompose(benchmark::State& state) {
  for (auto _ : state) {
    obs::LogEvent event("request");
    event.Str("request_id", "r1a2b3c4d5e6f7-42")
        .Str("verb", "QUERY")
        .Str("graph", "bench")
        .Str("status", "OK")
        .Str("stop_reason", "none")
        .Int("queue_us", 31)
        .Int("execute_us", 18452)
        .Int("latency_us", 18483)
        .Int("bytes_in", 120)
        .Int("bytes_out", 4096)
        .Int("rows", 5000)
        .Int("threads", 4)
        .Int("pattern_nodes", 3)
        .Int("k", 1);
    benchmark::DoNotOptimize(event);
  }
}
BENCHMARK(BM_WideEventCompose);

// Rendering a metrics snapshot as Prometheus text exposition — the body of
// every METRICS frame. Arg = labeled series count; the render is pure (no
// registry access), so this prices the scrape itself.
void BM_PrometheusRender(benchmark::State& state) {
  obs::MetricsSnapshot snapshot;
  const int series = static_cast<int>(state.range(0));
  for (int i = 0; i < series; ++i) {
    const std::string labels =
        "{verb=\"QUERY\",graph=\"g" + std::to_string(i) + "\"}";
    snapshot.counters["server/requests" + labels] = 100 + i;
    snapshot.counters["server/bytes_out" + labels] = 4096u * (i + 1);
    auto& hist = snapshot.histograms["server/latency_us" + labels];
    for (int b = 0; b < 16; ++b) hist.buckets[b] = b + i;
    hist.count = 256;
    hist.sum = 1 << 20;
    hist.max = 1 << 15;
  }
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    obs::WritePrometheus(snapshot, os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_PrometheusRender)->Arg(8)->Arg(64);

// Governor overhead on the densest checkpoint path (ND-BAS k=2 checkpoints
// per focal node and per matcher search-tree node). Arg(0) = no governor
// (one pointer test per checkpoint; the acceptance bar is <=1% vs the seed
// ND-BAS numbers), Arg(1) = unlimited governor (relaxed fetch_add per
// checkpoint), Arg(2) = far deadline + large budget (adds the steady-clock
// poll and the budget charges — the full governed price).
void BM_GovernorOverhead(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Pattern pattern = MakeTriangle(true);
  auto focal = AllNodes(graph);
  CensusOptions options;
  options.algorithm = CensusAlgorithm::kNdBas;
  options.k = 2;
  for (auto _ : state) {
    Governor governor;
    if (state.range(0) >= 1) options.governor = &governor;
    if (state.range(0) >= 2) {
      governor.SetDeadline(Deadline::AfterMillis(3'600'000));
      governor.SetMemoryLimitBytes(1ull << 40);
    }
    auto result = RunCensus(graph, pattern, focal, options);
    benchmark::DoNotOptimize(result->stats.num_matches);
    options.governor = nullptr;
  }
}
BENCHMARK(BM_GovernorOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Full-repo egolint scan (lex + all six checks over every src/ and tools/
// file, matching what CI's lint job and the egolint_repo ctest run). CI
// treats the lint job as nearly free; this keeps the whole scan honest
// against the 2s budget the egolint_test smoke asserts.
void BM_EgolintRepoScan(benchmark::State& state) {
  namespace fs = std::filesystem;
  std::vector<egolint::SourceFile> files;
  std::vector<fs::path> roots = {EGOCENSUS_REPO_SRC};
#ifdef EGOCENSUS_REPO_TOOLS
  roots.emplace_back(EGOCENSUS_REPO_TOOLS);
#endif
  for (const fs::path& root : roots) {
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(it->path());
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back(
          egolint::SourceFile{it->path().generic_string(), content.str()});
    }
  }
  std::size_t findings = 0;
  for (auto _ : state) {
    auto out = egolint::RunLint(files, egolint::LintOptions{});
    findings = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["files"] = static_cast<double>(files.size());
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_EgolintRepoScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace egocensus

BENCHMARK_MAIN();
