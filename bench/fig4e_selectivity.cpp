// Figure 4(e): runtime vs focal-node selectivity — the query
//   SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < R
// on an unlabeled graph (paper: 500K nodes, scaled down). Node-driven
// runtimes grow linearly with R; pattern-driven runtimes are flat (they
// process matches regardless of which nodes are selected) and win at high
// selectivity... i.e. node-driven wins at low R, crossing over as R grows.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(e)",
              "census runtime vs focal selectivity (WHERE RND() < R), "
              "unlabeled clq3, k=2");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(20000);
  gen.edges_per_node = 5;
  gen.seed = 23;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(false);
  std::cout << "graph: " << graph.NumNodes() << " nodes\n";
  CenterDistanceIndex index =
      CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));

  TablePrinter table(
      {"R", "focal nodes", "ND-PVOT", "ND-DIFF", "PT-BAS", "PT-OPT"});
  for (double r : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    // Deterministic focal sample, like the WHERE RND() < R clause.
    Rng rng(100);
    std::vector<NodeId> focal;
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      if (rng.NextDouble() < r) focal.push_back(n);
    }
    std::vector<std::string> row = {TablePrinter::FormatDouble(r, 1),
                                    std::to_string(focal.size())};
    for (auto algorithm :
         {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
          CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt}) {
      CensusOptions opts;
      opts.algorithm = algorithm;
      opts.k = 2;
      opts.center_index = &index;
      row.push_back(TablePrinter::FormatDouble(
          TimeCensus(graph, pattern, focal, opts), 2));
    }
    table.AddRow(std::move(row));
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: node-driven times grow ~linearly with R; "
               "pattern-driven times are\nflat in R and eventually the "
               "node-driven curves cross above them\n";
  return 0;
}
