// Figure 4(f): effect of the number of centers and of how they are chosen
// (DEG-CNTR = highest degree vs RND-CNTR = random) on the pattern-driven
// algorithm — COUNTP(clq3, SUBGRAPH(ID, 2)) on a labeled graph. To isolate
// the PMD-initialization effect from clustering quality, the K-means
// feature centers are pinned to a fixed 12-degree-center index while the
// number of PMD centers sweeps 0..24 (the paper's methodology).
// Center-index build time is excluded (centers are chosen apriori).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(f)",
              "effect of #centers and center choice on PT-OPT, labeled clq3, "
              "k=2");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(60000);
  gen.edges_per_node = 5;
  gen.num_labels = 4;
  gen.seed = 24;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(true);
  auto focal = AllNodes(graph);
  std::cout << "graph: " << graph.NumNodes() << " nodes\n";

  // Prebuilt indexes: 24 degree centers, 24 random centers, and the fixed
  // 12-degree-center clustering index.
  CenterDistanceIndex deg_index =
      CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 24));
  Rng rng(9);
  CenterDistanceIndex rnd_index =
      CenterDistanceIndex::Build(graph, PickRandomCenters(graph, 24, &rng));
  CenterDistanceIndex cluster_index =
      CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));

  TablePrinter table({"centers", "DEG-CNTR s (reinsertions)",
                      "RND-CNTR s (reinsertions)"});
  for (std::uint32_t centers : {0u, 4u, 8u, 12u, 16u, 24u}) {
    std::vector<std::string> row = {std::to_string(centers)};
    for (bool random : {false, true}) {
      CensusOptions opts;
      opts.algorithm = CensusAlgorithm::kPtOpt;
      opts.k = 2;
      opts.num_centers = centers;
      opts.center_index = random ? &rnd_index : &deg_index;
      opts.cluster_center_index = &cluster_index;  // fixed clustering
      CensusStats stats;
      TimeCensus(graph, pattern, focal, opts, &stats);
      // Report match + counting time only (the center index is apriori),
      // plus the queue reinsertions the centers are meant to eliminate.
      row.push_back(
          TablePrinter::FormatDouble(
              stats.match_seconds + stats.census_seconds, 2) +
          " (" + std::to_string(stats.reinsertions) + ")");
    }
    table.AddRow(std::move(row));
  }
  table.PrintText(std::cout);
  std::cout
      << "\npaper shape: degree-chosen centers steadily reduce the queue "
         "reinsertions the\noptimization targets, random centers do not; "
         "with too many centers the\nper-node initialization overhead "
         "dominates (the paper's right-hand tail). On\nthis in-memory "
         "substrate the overhead shows earlier in wall-clock than it did\n"
         "on the paper's disk-based engine; see EXPERIMENTS.md.\n";
  return 0;
}
