// Figure 4(h) + the Section V-B runtime notes: DBLP link prediction.
// Nine pairwise census measures (common nodes/edges/triangles within 1/2/3
// hops of the pair's intersected neighborhoods), the Jaccard coefficient
// and a random predictor, scored as precision@50 and @600 against future
// collaborations; plus the ND-BAS / PT-BAS / PT-OPT runtime comparison
// (paper: ND-BAS orders of magnitude slower; PT-OPT 0.9x–3.4x vs PT-BAS).

#include <iostream>
#include <vector>

#include "apps/dblp_gen.h"
#include "apps/link_prediction.h"
#include "bench/bench_util.h"
#include "census/pairwise.h"
#include "pattern/catalog.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(h)", "DBLP link prediction, precision@50 / @600");

  DblpOptions gen;
  gen.num_authors = Scaled(3000);
  gen.papers_per_year = Scaled(350);
  gen.seed = 2001;
  DblpData data = GenerateDblp(gen);
  std::cout << "train: " << data.train.NumNodes() << " authors, "
            << data.train.NumEdges() << " collaborations; test: "
            << data.test_edges.size() << " new collaborations\n\n";

  LinkPredictionOptions options;
  options.radii = {1, 2, 3};
  options.precision_ks = {50, 600};
  auto report = RunLinkPrediction(data, options);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table({"measure", "prec@50", "prec@600", "pairs", "time (s)"});
  for (const auto& m : report->measures) {
    table.AddRow({m.name, TablePrinter::FormatDouble(m.precision[0], 3),
                  TablePrinter::FormatDouble(m.precision[1], 3),
                  std::to_string(m.ranked_pairs),
                  TablePrinter::FormatDouble(m.seconds, 2)});
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: several census measures beat Jaccard "
               "(common nodes @2 ~2x Jaccard);\nrandom predictor at ~0\n";

  // ---- Runtime comparison (Section V-B): ND-BAS vs PT-BAS vs PT-OPT ----
  std::cout << "\nRuntime comparison on two measures (all-pairs census):\n";
  TablePrinter runtime({"measure", "PT-BAS (s)", "PT-OPT (s)", "PT speedup",
                        "ND-BAS est. (s, extrapolated)"});
  struct MeasureDef {
    const char* name;
    std::uint32_t k;
    bool triangle;
  };
  for (const auto& def :
       std::vector<MeasureDef>{{"node@1", 1, false}, {"triangle@3", 3, true}}) {
    Pattern pattern =
        def.triangle ? MakeTriangle(false) : MakeSingleNode();
    PairwiseCensusOptions opts;
    opts.k = def.k;
    opts.neighborhood = PairNeighborhood::kIntersection;

    Timer t1;
    auto bas = RunPairwisePtBas(data.train, pattern, opts);
    double bas_seconds = t1.ElapsedSeconds();
    Timer t2;
    auto opt = RunPairwisePtOpt(data.train, pattern, opts);
    double opt_seconds = t2.ElapsedSeconds();
    if (!bas.ok() || !opt.ok() || *bas != *opt) {
      std::cerr << "pairwise result mismatch on " << def.name << "\n";
      return 1;
    }

    // ND-BAS over all ~N^2/2 pairs is infeasible; time a sample and
    // extrapolate (the paper reports it "orders of magnitude" slower).
    const std::size_t sample = 500;
    Rng rng(5);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    while (pairs.size() < sample) {
      NodeId a = static_cast<NodeId>(rng.NextBounded(data.train.NumNodes()));
      NodeId b = static_cast<NodeId>(rng.NextBounded(data.train.NumNodes()));
      if (a != b) pairs.emplace_back(a, b);
    }
    Timer t3;
    auto nd = RunPairwiseNdBas(data.train, pattern, pairs, opts);
    double nd_sample_seconds = t3.ElapsedSeconds();
    if (!nd.ok()) {
      std::cerr << nd.status().ToString() << "\n";
      return 1;
    }
    double total_pairs = 0.5 * data.train.NumNodes() *
                         (data.train.NumNodes() - 1.0);
    double nd_estimate = nd_sample_seconds / sample * total_pairs;

    runtime.AddRow({def.name, TablePrinter::FormatDouble(bas_seconds, 2),
                    TablePrinter::FormatDouble(opt_seconds, 2),
                    TablePrinter::FormatDouble(bas_seconds / opt_seconds, 2),
                    TablePrinter::FormatDouble(nd_estimate, 0)});
  }
  runtime.PrintText(std::cout);
  std::cout << "\npaper shape: ND-BAS poorest by orders of magnitude; PT-OPT "
               "0.9x-3.4x vs PT-BAS\n(overhead can outweigh gains on the "
               "cheapest measure)\n";
  return 0;
}
