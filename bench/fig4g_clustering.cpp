// Figure 4(g): effect of pattern-match clustering on PT-OPT —
// COUNTP(clq3, SUBGRAPH(ID, 2)) on a labeled graph, comparing NO-CLUST
// (every match processed independently), RND-CLUST (random grouping) and
// OPT-CLUST (K-means over center-distance features), sweeping the number
// of clusters.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;
  using namespace egocensus::bench;
  PrintHeader("Figure 4(g)",
              "effect of match clustering on PT-OPT, labeled clq3, k=2");

  GeneratorOptions gen;
  gen.num_nodes = Scaled(60000);
  gen.edges_per_node = 5;
  gen.num_labels = 4;
  gen.seed = 25;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(true);
  auto focal = AllNodes(graph);

  CenterDistanceIndex index =
      CenterDistanceIndex::Build(graph, PickHighestDegreeCenters(graph, 12));

  // Report the match count once so the cluster-count sweep can be read
  // against it.
  {
    CensusOptions probe;
    probe.algorithm = CensusAlgorithm::kPtOpt;
    probe.k = 2;
    probe.center_index = &index;
    CensusStats stats;
    TimeCensus(graph, pattern, focal, probe, &stats);
    std::cout << "graph: " << graph.NumNodes() << " nodes; "
              << stats.num_matches << " matches of clq3\n";
  }

  TablePrinter table(
      {"clusters", "NO-CLUST (s)", "RND-CLUST (s)", "OPT-CLUST (s)"});
  for (std::uint32_t clusters : {100u, 200u, 400u, 600u}) {
    std::vector<std::string> row = {std::to_string(clusters)};
    for (auto mode : {ClusteringMode::kNone, ClusteringMode::kRandom,
                      ClusteringMode::kKMeans}) {
      CensusOptions opts;
      opts.algorithm = CensusAlgorithm::kPtOpt;
      opts.k = 2;
      opts.clustering = mode;
      opts.num_clusters = clusters;
      opts.center_index = &index;
      CensusStats stats;
      TimeCensus(graph, pattern, focal, opts, &stats);
      row.push_back(TablePrinter::FormatDouble(
          stats.match_seconds + stats.census_seconds, 2));
    }
    table.AddRow(std::move(row));
  }
  table.PrintText(std::cout);
  std::cout << "\npaper shape: OPT-CLUST beats RND-CLUST and NO-CLUST; "
               "too few clusters hurts\n(redundant distance computations), "
               "too many approaches NO-CLUST\n";
  return 0;
}
