// Structural balance (Section I): in a signed network, triangles with an
// odd number of negative edges are unstable. This example measures each
// node's ego-network instability by counting unstable triangles in its
// 2-hop neighborhood — patterns over *edge* attributes via EDGE(?X,?Y).SIGN.

#include <iostream>
#include <vector>

#include "graph/generators.h"
#include "lang/engine.h"
#include "util/rng.h"

int main() {
  using namespace egocensus;

  // A signed friendship/foe network.
  GeneratorOptions gen;
  gen.num_nodes = 1500;
  gen.edges_per_node = 4;
  gen.seed = 99;
  Graph graph = GeneratePreferentialAttachment(gen);
  Rng rng(3);
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    // ~25% negative ties.
    graph.edge_attributes().Set(
        e, "SIGN", std::int64_t{rng.NextBool(0.25) ? -1 : 1});
  }
  std::cout << "signed network: " << graph.NumNodes() << " nodes, "
            << graph.NumEdges() << " signed edges\n\n";

  QueryEngine engine(graph);

  // Unstable triangle type 1: exactly one negative edge. Three symmetric
  // placements are covered by one pattern because the census counts
  // distinct subgraphs (the two positive edges are interchangeable).
  const char* one_negative =
      "PATTERN unstable1 {\n"
      "  ?A-?B; ?B-?C; ?A-?C;\n"
      "  [EDGE(?A,?B).SIGN = -1];\n"
      "  [EDGE(?B,?C).SIGN = 1];\n"
      "  [EDGE(?A,?C).SIGN = 1];\n"
      "}\n"
      "SELECT ID, COUNTP(unstable1, SUBGRAPH(ID, 2)) FROM nodes";
  // Unstable triangle type 2: all three edges negative.
  const char* three_negative =
      "PATTERN unstable3 {\n"
      "  ?A-?B; ?B-?C; ?A-?C;\n"
      "  [EDGE(?A,?B).SIGN = -1];\n"
      "  [EDGE(?B,?C).SIGN = -1];\n"
      "  [EDGE(?A,?C).SIGN = -1];\n"
      "}\n"
      "SELECT ID, COUNTP(unstable3, SUBGRAPH(ID, 2)) FROM nodes";

  auto r1 = engine.Execute(one_negative);
  auto r3 = engine.Execute(three_negative);
  if (!r1.ok() || !r3.ok()) {
    std::cerr << "query failed: "
              << (!r1.ok() ? r1.status() : r3.status()).ToString() << "\n";
    return 1;
  }

  // Combine: instability score = #(1-neg) + #(3-neg) triangles in the ego
  // network.
  std::vector<std::int64_t> score(graph.NumNodes(), 0);
  for (std::size_t row = 0; row < r1->NumRows(); ++row) {
    NodeId n = static_cast<NodeId>(std::get<std::int64_t>(r1->At(row, 0)));
    score[n] += std::get<std::int64_t>(r1->At(row, 1));
  }
  for (std::size_t row = 0; row < r3->NumRows(); ++row) {
    NodeId n = static_cast<NodeId>(std::get<std::int64_t>(r3->At(row, 0)));
    score[n] += std::get<std::int64_t>(r3->At(row, 1));
  }
  NodeId worst = 0;
  std::int64_t total = 0;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    total += score[n];
    if (score[n] > score[worst]) worst = n;
  }
  std::cout << "most unstable ego network: node " << worst << " with "
            << score[worst] << " unstable triangles within 2 hops\n";
  std::cout << "average instability: "
            << static_cast<double>(total) / graph.NumNodes()
            << " unstable triangles per ego network\n";
  return 0;
}
