// Node classification (Fig. 1(b)): in a family network with "parent of"
// edges and a SMOKER attribute, a child's risk is measured by counting, in
// their 3-hop neighborhood, the relatives who smoke and whose own parent
// also smokes — a COUNTSP query whose full pattern (parent -> relative,
// both smokers) extends beyond the part anchored in the neighborhood.

#include <algorithm>
#include <iostream>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "lang/engine.h"
#include "util/rng.h"

int main() {
  using namespace egocensus;

  // Synthetic multi-generation family forest with marriages linking
  // families; smoking is familially correlated.
  Rng rng(77);
  Graph graph(/*directed=*/true);
  const std::uint32_t kFamilies = 60;
  const std::uint32_t kGenerations = 4;
  const std::uint32_t kChildrenPerCouple = 3;

  std::vector<std::vector<NodeId>> generation(kGenerations);
  std::vector<char> smoker;
  auto add_person = [&](double smoke_prob) {
    NodeId person = graph.AddNode();
    smoker.push_back(rng.NextBool(smoke_prob) ? 1 : 0);
    return person;
  };
  // Founders.
  for (std::uint32_t f = 0; f < kFamilies; ++f) {
    generation[0].push_back(add_person(0.3));
  }
  // Later generations: each child gets a parent from the previous
  // generation; smoking probability rises sharply if the parent smokes.
  for (std::uint32_t gen = 1; gen < kGenerations; ++gen) {
    for (NodeId parent : generation[gen - 1]) {
      for (std::uint32_t c = 0; c < kChildrenPerCouple; ++c) {
        if (!rng.NextBool(0.7)) continue;
        double p = smoker[parent] ? 0.55 : 0.12;
        NodeId child = add_person(p);
        generation[gen].push_back(child);
        graph.AddEdge(parent, child);  // parent -> child
      }
    }
  }
  // Marriages create cross-family ties (undirected semantics via two
  // directed edges is unnecessary; neighborhood expansion ignores
  // direction, so one edge suffices to connect the families).
  std::set<std::pair<NodeId, NodeId>> married;
  for (std::uint32_t m = 0; m < kFamilies; ++m) {
    const auto& pool = generation[1];
    if (pool.size() < 2) break;
    NodeId a = pool[rng.NextBounded(pool.size())];
    NodeId b = pool[rng.NextBounded(pool.size())];
    if (a == b) continue;
    auto key = std::minmax(a, b);
    if (married.insert(key).second) graph.AddEdge(a, b);
  }
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    graph.node_attributes().Set(n, "SMOKER",
                                static_cast<std::int64_t>(smoker[n]));
  }
  CheckOk(graph.Finalize(), "example graph setup");
  std::cout << "family network: " << graph.NumNodes() << " people, "
            << graph.NumEdges() << " ties\n";

  QueryEngine engine(graph);
  auto result = engine.Execute(
      "PATTERN smoking_lineage {\n"
      "  ?P->?R;\n"
      "  [?P.SMOKER = 1];\n"
      "  [?R.SMOKER = 1];\n"
      "  SUBPATTERN relative {?R;}\n"
      "}\n"
      "SELECT ID, COUNTSP(relative, smoking_lineage, SUBGRAPH(ID, 3)) "
      "FROM nodes");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // Validation: the risk measure should be higher for actual smokers.
  double smoker_sum = 0, smoker_n = 0, non_sum = 0, non_n = 0;
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    NodeId n = static_cast<NodeId>(std::get<std::int64_t>(result->At(r, 0)));
    double score =
        static_cast<double>(std::get<std::int64_t>(result->At(r, 1)));
    if (smoker[n]) {
      smoker_sum += score;
      ++smoker_n;
    } else {
      non_sum += score;
      ++non_n;
    }
  }
  std::cout << "avg risk score of smokers:     " << smoker_sum / smoker_n
            << "\n"
            << "avg risk score of non-smokers: " << non_sum / non_n << "\n"
            << "(the ego-centric census score separates the classes, which "
               "is what a\ncollective classifier would exploit)\n";
  return 0;
}
