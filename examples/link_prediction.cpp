// Link prediction over a DBLP-like co-authorship network (Section V-B):
// predict future collaborations from the counts of common nodes, edges and
// triangles in pairs of authors' intersected k-hop neighborhoods, and
// compare against the Jaccard coefficient and a random predictor.

#include <iostream>

#include "apps/dblp_gen.h"
#include "apps/link_prediction.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;

  DblpOptions gen;
  gen.num_authors = 1500;
  gen.papers_per_year = 250;
  gen.seed = 2001;
  DblpData data = GenerateDblp(gen);
  std::cout << "train graph (years 1-5): " << data.train.NumNodes()
            << " authors, " << data.train.NumEdges() << " collaborations\n"
            << "test: " << data.test_edges.size()
            << " new collaborations in years 6-10\n\n";

  LinkPredictionOptions options;
  options.radii = {1, 2, 3};
  options.precision_ks = {50, 600};
  auto report = RunLinkPrediction(data, options);
  if (!report.ok()) {
    std::cerr << "link prediction failed: " << report.status().ToString()
              << "\n";
    return 1;
  }

  TablePrinter table({"measure", "precision@50", "precision@600",
                      "candidate pairs", "census time (s)"});
  for (const auto& m : report->measures) {
    table.AddRow({m.name, TablePrinter::FormatDouble(m.precision[0], 3),
                  TablePrinter::FormatDouble(m.precision[1], 3),
                  std::to_string(m.ranked_pairs),
                  TablePrinter::FormatDouble(m.seconds, 2)});
  }
  table.PrintText(std::cout);
  std::cout << "\n(the paper finds common nodes within 2 hops the strongest "
               "predictor,\n well above the Jaccard coefficient)\n";
  return 0;
}
