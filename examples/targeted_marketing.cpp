// Targeted marketing (Fig. 1(a)): a travel agency looks for the people with
// the most "couple pairs" — two married couples that are friends with each
// other — in their 2-hop network. Relationship types live on edge
// attributes (REL = 'sp' for spouse, 'fr' for friendship).

#include <iostream>

#include "graph/graph.h"
#include "lang/engine.h"
#include "util/rng.h"

int main() {
  using namespace egocensus;

  // Build a population of couples plus singles, with a friendship network
  // on top.
  Rng rng(2024);
  const std::uint32_t num_people = 1200;
  Graph graph;
  graph.AddNodes(num_people);
  // Marry consecutive pairs among the first 800 people.
  for (NodeId a = 0; a + 1 < 800; a += 2) {
    EdgeId e = graph.AddEdge(a, a + 1);
    graph.edge_attributes().Set(e, "REL", std::string("sp"));
  }
  // Random friendships.
  for (int i = 0; i < 6000; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(num_people));
    NodeId b = static_cast<NodeId>(rng.NextBounded(num_people));
    if (a == b || a / 2 == b / 2) continue;  // skip self and spouse
    EdgeId e = graph.AddEdge(a, b);
    if (e != kInvalidEdge) {
      graph.edge_attributes().Set(e, "REL", std::string("fr"));
    }
  }
  CheckOk(graph.Finalize(), "example graph setup");
  std::cout << "population: " << num_people << " people, " << graph.NumEdges()
            << " relationships\n\n";

  // Fig. 1(a): couple (A,B) and couple (C,D), with friendships tying the
  // two couples together.
  QueryEngine engine(graph);
  auto result = engine.Execute(
      "PATTERN couple_pair {\n"
      "  ?A-?B; ?C-?D;\n"
      "  ?A-?C; ?B-?D;\n"
      "  [EDGE(?A,?B).REL = 'sp'];\n"
      "  [EDGE(?C,?D).REL = 'sp'];\n"
      "  [EDGE(?A,?C).REL = 'fr'];\n"
      "  [EDGE(?B,?D).REL = 'fr'];\n"
      "}\n"
      "SELECT ID, COUNTP(couple_pair, SUBGRAPH(ID, 2)) FROM nodes");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  result->SortByColumnDesc(1);
  std::cout << "Best targets (most couple-pairs within 2 hops):\n"
            << result->ToString(10);

  std::int64_t nonzero = 0;
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    if (std::get<std::int64_t>(result->At(r, 1)) > 0) ++nonzero;
  }
  std::cout << "\n" << nonzero << " of " << num_people
            << " people have at least one couple-pair in reach\n";
  return 0;
}
