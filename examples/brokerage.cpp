// Brokerage analysis (Fig. 1(c) / Table I row 4): in a directed transaction
// network whose nodes carry an organization label, the middle node B of a
// triad A -> B -> C (with no direct A -> C edge) plays one of the five
// Gould-Fernandez roles determined by the organizations involved. Each
// role is one COUNTSP query with the subpattern {?B} and k = 0, wrapped by
// the ComputeBrokerage library call; the declarative route through the
// query engine is shown for one role as well.

#include <iostream>
#include <string>
#include <vector>

#include "apps/brokerage.h"
#include "graph/generators.h"
#include "lang/engine.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace egocensus;

  // Directed transaction network: 800 actors in 4 organizations
  // (label = organization id).
  Rng rng(7);
  Graph graph(/*directed=*/true);
  graph.AddNodes(800);
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    CheckOk(graph.SetLabel(n, static_cast<Label>(rng.NextBounded(4))), "example graph setup");
  }
  // Transactions: mostly within the organization, some across.
  for (int e = 0; e < 4000; ++e) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(800));
    NodeId b = static_cast<NodeId>(rng.NextBounded(800));
    if (a == b) continue;
    bool same_org = graph.label(a) == graph.label(b);
    if (!same_org && !rng.NextBool(0.25)) continue;
    graph.AddEdge(a, b);
  }
  CheckOk(graph.Finalize(), "example graph setup");
  std::cout << "transaction network: " << graph.NumNodes() << " actors, "
            << graph.NumEdges() << " directed transactions\n\n";

  // Library route: all five roles at once.
  auto brokerage = ComputeBrokerage(graph, CensusOptions());
  if (!brokerage.ok()) {
    std::cerr << "brokerage failed: " << brokerage.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table({"role", "total triads", "top broker", "their count"});
  for (int r = 0; r < kNumBrokerageRoles; ++r) {
    std::uint64_t total = 0;
    NodeId best = 0;
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      total += brokerage->counts[n][r];
      if (brokerage->counts[n][r] > brokerage->counts[best][r]) best = n;
    }
    table.AddRow({BrokerageRoleName(static_cast<BrokerageRole>(r)),
                  std::to_string(total),
                  "node " + std::to_string(best) + " (org " +
                      std::to_string(graph.label(best)) + ")",
                  std::to_string(brokerage->counts[best][r])});
  }
  table.PrintText(std::cout);

  // Declarative route for one role (Table I row 4 verbatim, plus ORDER BY).
  QueryEngine engine(graph);
  auto result = engine.Execute(
      "PATTERN triad {\n"
      "  ?A->?B; ?B->?C; ?A!->?C;\n"
      "  [?A.LABEL=?B.LABEL];\n"
      "  [?B.LABEL=?C.LABEL];\n"
      "  SUBPATTERN coordinator {?B;}\n"
      "}\n"
      "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes "
      "ORDER BY 2 DESC LIMIT 5");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nTop coordinators via the SQL surface:\n"
            << result->ToString();
  return 0;
}
