// Graph indexing (Section I, "Graph Indexing"): census counts of small
// patterns in every node's 1-hop neighborhood act as *node signatures* for
// subgraph search. A database node can play a role in a query subgraph only
// if its signature dominates the role's signature, which prunes far more
// candidates than a plain degree filter.
//
// Demo: build triangle/wedge signatures, then count the candidates for a
// node of a 4-clique query under (a) degree filtering only and (b)
// signature filtering, and verify the signature filter keeps all true
// 4-clique members.

#include <iostream>
#include <vector>

#include "apps/signatures.h"
#include "census/census.h"
#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "pattern/catalog.h"

int main() {
  using namespace egocensus;

  GeneratorOptions gen;
  gen.num_nodes = 8000;
  gen.edges_per_node = 6;
  gen.seed = 5;
  Graph graph = GeneratePreferentialAttachment(gen);
  std::cout << "graph: " << graph.NumNodes() << " nodes, " << graph.NumEdges()
            << " edges\n";

  // Signature family: edges and triangles within the 1-hop ego network.
  std::vector<Pattern> family;
  family.push_back(MakeSingleEdge());
  family.push_back(MakeTriangle(false));
  SignatureOptions options;
  auto signatures = BuildNodeSignatures(graph, family, options);
  if (!signatures.ok()) {
    std::cerr << signatures.status().ToString() << "\n";
    return 1;
  }

  // Query: a 4-clique. The signature of any of its roles (6 edges, 4
  // triangles in the skeleton ego net) must be dominated.
  Pattern clq4_query = MakeClique4(false);
  auto role_sig = RoleSignature(clq4_query, 0, family, options);
  if (!role_sig.ok()) {
    std::cerr << role_sig.status().ToString() << "\n";
    return 1;
  }
  auto filtered = FilterCandidatesBySignature(*signatures, *role_sig);
  std::size_t degree_candidates = 0;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (graph.Degree(n) >= 3) ++degree_candidates;
  }
  std::size_t signature_candidates = filtered.size();

  // Ground truth: nodes that actually participate in a 4-clique.
  std::vector<char> is_candidate(graph.NumNodes(), 0);
  for (NodeId n : filtered) is_candidate[n] = 1;
  CnMatcher matcher;
  MatchSet matches = matcher.FindMatches(graph, clq4_query);
  std::vector<char> in_clique(graph.NumNodes(), 0);
  for (std::size_t m = 0; m < matches.size(); ++m) {
    for (NodeId n : matches.Match(m)) in_clique[n] = 1;
  }
  std::size_t true_members = 0;
  std::size_t missed = 0;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (!in_clique[n]) continue;
    ++true_members;
    if (!is_candidate[n]) ++missed;
  }

  std::cout << "4-clique role candidates by degree filter:    "
            << degree_candidates << "\n"
            << "4-clique role candidates by census signature: "
            << signature_candidates << "\n"
            << "pruning gain: "
            << static_cast<double>(degree_candidates) /
                   static_cast<double>(signature_candidates)
            << "x fewer candidates\n"
            << "true 4-clique members: " << true_members
            << ", missed by the filter: " << missed
            << " (signatures are a sound filter)\n";
  return missed == 0 ? 0 : 1;
}
