// Quickstart: build a graph, declare a pattern, run an ego-centric pattern
// census, and inspect the result — the minimal end-to-end tour of the API.

#include <iostream>

#include "census/census.h"
#include "graph/generators.h"
#include "lang/engine.h"
#include "pattern/catalog.h"

int main() {
  using namespace egocensus;

  // 1. A synthetic social network: preferential attachment, 2000 people,
  //    ~10000 friendships, 4 community labels.
  GeneratorOptions gen;
  gen.num_nodes = 2000;
  gen.edges_per_node = 5;
  gen.num_labels = 4;
  gen.seed = 42;
  Graph graph = GeneratePreferentialAttachment(gen);
  std::cout << "graph: " << graph.NumNodes() << " nodes, " << graph.NumEdges()
            << " edges, " << graph.NumLabels() << " labels\n\n";

  // 2. Declarative route: Table I row 3 — how many squares (4-cycles) exist
  //    in each node's 2-hop neighborhood?
  QueryEngine engine(graph);
  auto result = engine.Execute(
      "PATTERN square {\n"
      "  ?A-?B; ?B-?C;\n"
      "  ?C-?D; ?D-?A;\n"
      "}\n"
      "SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  result->SortByColumnDesc(1);
  std::cout << "Top nodes by squares in their 2-hop ego network:\n"
            << result->ToString(10) << "\n";

  // 3. Programmatic route: the same census through the library API, with an
  //    explicit algorithm choice and execution statistics.
  Pattern triangle = MakeTriangle(/*labeled=*/false);
  CensusOptions options;
  options.algorithm = CensusAlgorithm::kNdPvot;
  options.k = 1;
  auto focal = AllNodes(graph);
  auto census = RunCensus(graph, triangle, focal, options);
  if (!census.ok()) {
    std::cerr << "census failed: " << census.status().ToString() << "\n";
    return 1;
  }
  std::uint64_t best_node = 0;
  for (NodeId n = 0; n < graph.NumNodes(); ++n) {
    if (census->counts[n] > census->counts[best_node]) best_node = n;
  }
  std::cout << "ND-PVOT: " << census->stats.num_matches
            << " triangles in the graph; node " << best_node << " has "
            << census->counts[best_node]
            << " of them in its 1-hop ego network\n";
  std::cout << "timing: match " << census->stats.match_seconds << "s, census "
            << census->stats.census_seconds << "s\n";
  return 0;
}
