// include-hygiene: no include cycles among src/ headers, and no
// `using namespace` at header scope (it leaks into every includer).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

bool IsHeader(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

/// "src/graph/io.h" -> "graph/io.h" (the include-path form); other paths
/// are returned unchanged.
std::string IncludeName(const std::string& path) {
  std::size_t at = path.find("src/");
  return at == std::string::npos ? path : path.substr(at + 4);
}

}  // namespace

void CheckIncludeHygiene(const std::vector<FileModel>& models,
                         std::vector<Finding>* findings) {
  // `using namespace` in headers.
  for (const FileModel& model : models) {
    if (!IsHeader(model.source->path)) continue;
    const std::vector<Token>& toks = model.tokens;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
      if (TokIs(toks[i], "using") && TokIs(toks[i + 1], "namespace")) {
        findings->push_back(Finding{
            model.source->path, toks[i].line, "include-hygiene",
            "allow-using-namespace",
            "`using namespace` in a header leaks into every includer"});
      }
    }
  }

  // Header include cycles. Nodes are include-path names; edges come from
  // quoted includes that resolve to another scanned header.
  std::map<std::string, const FileModel*> headers;
  for (const FileModel& model : models) {
    if (IsHeader(model.source->path)) {
      headers[IncludeName(model.source->path)] = &model;
    }
  }
  std::set<std::string> reported;  // canonical cycle keys, dedup
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;

  struct Dfs {
    std::map<std::string, const FileModel*>& headers;
    std::set<std::string>& reported;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::vector<Finding>* findings;

    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      const FileModel* model = headers[node];
      for (const IncludeEdge& inc : model->includes) {
        auto it = headers.find(inc.target);
        if (it == headers.end()) continue;
        int c = color[inc.target];
        if (c == 0) {
          Visit(inc.target);
        } else if (c == 1) {
          // Cycle: slice of the DFS stack from the target to here.
          auto at = std::find(stack.begin(), stack.end(), inc.target);
          std::vector<std::string> cycle(at, stack.end());
          std::vector<std::string> key = cycle;
          std::sort(key.begin(), key.end());
          std::string canon;
          for (const std::string& k : key) canon += k + "|";
          if (reported.insert(canon).second) {
            std::string path;
            for (const std::string& h : cycle) path += h + " -> ";
            path += inc.target;
            findings->push_back(Finding{model->source->path, inc.line,
                                        "include-hygiene", "allow-include",
                                        "header include cycle: " + path});
          }
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  };

  Dfs dfs{headers, reported, color, stack, findings};
  for (const auto& [name, model] : headers) {
    (void)model;
    if (color[name] == 0) dfs.Visit(name);
  }
}

}  // namespace egolint::internal
