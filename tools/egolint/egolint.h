#ifndef EGOCENSUS_TOOLS_EGOLINT_EGOLINT_H_
#define EGOCENSUS_TOOLS_EGOLINT_EGOLINT_H_

// egolint — a token-level static-analysis pass over the egocensus sources
// enforcing project invariants that the compiler cannot see (see
// docs/STATIC_ANALYSIS.md). No libclang: a hand-rolled C++ lexer feeds six
// named checks, each suppressible per line with an audited
// `// egolint: <suppression>(<reason>)` comment:
//
//  * status-discipline   — every function returning Status/Result is
//                          [[nodiscard]] (suppression: no-nodiscard) and no
//                          statement discards such a call's result
//                          (suppression: allow-discard).
//  * checkpoint-coverage — loops in src/census/, src/match/, src/dynamic/
//                          that can iterate over focal nodes, matches, or
//                          clusters must reach a Governor checkpoint
//                          (suppression: no-checkpoint).
//  * obs-gating          — obs:: references outside src/obs/ must sit under
//                          the EGO_OBS_ENABLED preprocessor gate or be one
//                          of the always-stubbed entry points
//                          (suppression: allow-obs).
//  * include-hygiene     — no include cycles among src/ headers
//                          (suppression: allow-include) and no
//                          `using namespace` in headers
//                          (suppression: allow-using-namespace).
//  * request-discipline  — request handlers (Handle*) in src/net/ must
//                          route through RequestContext so every request
//                          carries an id and telemetry
//                          (suppression: no-request-context); BUSY/ERROR
//                          frames in src/net/ must be composed by the
//                          request_context.h helpers, never by bare
//                          `= FrameType::kBusy/kError` assignment
//                          (suppression: allow-bare-response).
//  * lock-discipline     — raw std::mutex / std::shared_mutex outside
//                          src/util/ must be the annotated egocensus
//                          wrappers from util/mutex.h (suppression:
//                          allow-raw-mutex); a class owning a Mutex /
//                          SharedMutex capability must annotate every
//                          mutable member EGO_GUARDED_BY or record why it
//                          is safe (suppression: no-guard). Keeps the
//                          clang -Wthread-safety contract honest on
//                          compilers that compile the annotations away.
//
// A suppression with an empty reason, or with a name no check owns, is
// itself a finding (check "suppression") — the escape hatch stays audited.

#include <string>
#include <string_view>
#include <vector>

namespace egolint {

/// One input file. `path` should be repo-relative (e.g. "src/graph/io.cc");
/// the checks classify files by path substring, and the include-cycle check
/// resolves quoted includes against the path's "src/" prefix.
struct SourceFile {
  std::string path;
  std::string content;
};

enum class TokenKind { kIdent, kNumber, kString, kChar, kPunct };

/// One code token. Comments and preprocessor lines are not tokens: the
/// lexer folds them into suppressions / includes / the obs gate flag.
struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;  // view into SourceFile::content
  int line = 0;
  /// True when the token sits inside a preprocessor conditional whose
  /// condition mentions EGO_OBS_ENABLED / EGOCENSUS_OBS.
  bool obs_gated = false;
};

/// A `// egolint: name(reason)` comment.
struct Suppression {
  std::string name;
  std::string reason;
  int line = 0;
};

/// A quoted `#include "target"`.
struct IncludeEdge {
  std::string target;
  int line = 0;
};

/// Lexed view of one source file, shared by all checks.
struct FileModel {
  const SourceFile* source = nullptr;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<IncludeEdge> includes;
};

/// One reported violation. `suppression` names the comment that would
/// silence it; the driver consumes matching suppressions before reporting.
struct Finding {
  std::string file;
  int line = 0;
  std::string check;        // "status-discipline", ...
  std::string suppression;  // "allow-discard", ...
  std::string message;
};

struct LintOptions {
  /// Empty = run every check. Otherwise names from: status-discipline,
  /// checkpoint-coverage, obs-gating, include-hygiene, request-discipline,
  /// lock-discipline.
  std::vector<std::string> checks;
};

/// Lexes one file into the model the checks consume.
FileModel Lex(const SourceFile& file);

/// Runs the selected checks over `files` and returns surviving findings
/// (line-level suppressions already applied), including "suppression"
/// findings for reasonless or unknown suppression comments.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintOptions& options);

/// "path:line: [check] message" – one line per finding.
std::string FormatFinding(const Finding& finding);

/// Findings rendered as a JSON report (CI artifact).
std::string FindingsToJson(const std::vector<Finding>& findings);

/// 0 = clean, 1 = findings.
int ExitCodeFor(const std::vector<Finding>& findings);

/// True for the six check names accepted by LintOptions / --check.
bool IsKnownCheck(const std::string& name);

namespace internal {

/// A function or named-lambda definition: `name` plus the token index range
/// of its brace-balanced body (exclusive end). Used to build the set of
/// directly-polling functions for checkpoint-coverage.
struct FunctionDef {
  std::string name;
  int body_begin = 0;
  int body_end = 0;
};

/// Extracts function/lambda definitions from a lexed file.
std::vector<FunctionDef> ExtractFunctions(const FileModel& model);

void CheckStatusDiscipline(const std::vector<FileModel>& models,
                           std::vector<Finding>* findings);
void CheckCheckpointCoverage(const std::vector<FileModel>& models,
                             std::vector<Finding>* findings);
void CheckObsGating(const std::vector<FileModel>& models,
                    std::vector<Finding>* findings);
void CheckIncludeHygiene(const std::vector<FileModel>& models,
                         std::vector<Finding>* findings);
void CheckRequestDiscipline(const std::vector<FileModel>& models,
                            std::vector<Finding>* findings);
void CheckLockDiscipline(const std::vector<FileModel>& models,
                         std::vector<Finding>* findings);

}  // namespace internal

}  // namespace egolint

#endif  // EGOCENSUS_TOOLS_EGOLINT_EGOLINT_H_
