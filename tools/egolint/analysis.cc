#include "analysis.h"

#include <cstddef>
#include <map>
#include <string>

namespace egolint::internal {

namespace {

bool IsClassKey(std::string_view t) {
  return t == "class" || t == "struct" || t == "union" || t == "enum";
}

/// Tokens allowed between a parameter list's `)` and a function body's `{`:
/// cv/ref qualifiers, noexcept/override/final, trailing return types, and
/// constructor initializer lists.
bool IsFunctionTrailer(const Token& t) {
  if (t.kind == TokenKind::kIdent) return true;
  return TokIs(t, "->") || TokIs(t, "::") || TokIs(t, "<") ||
         TokIs(t, ">") || TokIs(t, "&") || TokIs(t, "*") || TokIs(t, ":") ||
         TokIs(t, ",") || TokIs(t, "(") || TokIs(t, ")") || TokIs(t, "{") ||
         TokIs(t, "}");
}

}  // namespace

int MatchForward(const std::vector<Token>& tokens, int open_index,
                 std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t i = open_index; i < tokens.size(); ++i) {
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) return static_cast<int>(i) + 1;
    }
  }
  return static_cast<int>(tokens.size());
}

ScopeInfo AnalyzeScopes(const FileModel& model) {
  const std::vector<Token>& toks = model.tokens;
  ScopeInfo info;
  info.scope.assign(toks.size(), Scope::kDecl);
  info.paren_depth.assign(toks.size(), 0);

  // Pre-pass: named lambdas. `name = [...](...) ... {` maps the body's `{`
  // token index to the lambda's name so the main walk opens a function
  // scope for it.
  std::map<int, std::string> lambda_brace;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (!TokIs(toks[i], "[") || !TokIs(toks[i - 1], "=") ||
        toks[i - 2].kind != TokenKind::kIdent) {
      continue;
    }
    int after_capture = MatchForward(toks, static_cast<int>(i), "[", "]");
    if (after_capture >= static_cast<int>(toks.size())) continue;
    int j = after_capture;
    if (j < static_cast<int>(toks.size()) && TokIs(toks[j], "(")) {
      j = MatchForward(toks, j, "(", ")");
    }
    // Skip mutable/noexcept/trailing-return tokens up to the body brace.
    while (j < static_cast<int>(toks.size()) && !TokIs(toks[j], "{") &&
           !TokIs(toks[j], ";")) {
      ++j;
    }
    if (j < static_cast<int>(toks.size()) && TokIs(toks[j], "{")) {
      lambda_brace[j] = std::string(toks[i - 2].text);
    }
  }

  struct Frame {
    Scope scope;
    bool is_function = false;
    int open_index = 0;
    std::string name;
  };
  std::vector<Frame> stack;
  int paren = 0;

  auto current_scope = [&stack] {
    return stack.empty() ? Scope::kDecl : stack.back().scope;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    info.scope[i] = current_scope();
    info.paren_depth[i] = paren;
    const Token& t = toks[i];
    if (TokIs(t, "(")) {
      ++paren;
      continue;
    }
    if (TokIs(t, ")")) {
      if (paren > 0) --paren;
      continue;
    }
    if (TokIs(t, "{")) {
      Frame frame;
      frame.open_index = static_cast<int>(i);
      auto named = lambda_brace.find(static_cast<int>(i));
      if (named != lambda_brace.end()) {
        frame.scope = Scope::kBody;
        frame.is_function = true;
        frame.name = named->second;
      } else if (current_scope() == Scope::kBody) {
        frame.scope = Scope::kBody;
      } else {
        // Declaration scope: classify by the tokens since the last
        // boundary. A `)` followed only by trailer tokens means a function
        // body; a class-key or `namespace` keeps declaration scope;
        // anything else (braced initializers) is an opaque body.
        int begin = static_cast<int>(i) - 1;
        while (begin >= 0 && !TokIs(toks[begin], ";") &&
               !TokIs(toks[begin], "{") && !TokIs(toks[begin], "}") &&
               static_cast<int>(i) - begin < 400) {
          --begin;
        }
        ++begin;
        int last_close = -1;
        bool has_class_key = false, has_namespace = false;
        for (int j = begin; j < static_cast<int>(i); ++j) {
          if (TokIs(toks[j], ")")) last_close = j;
          if (toks[j].kind == TokenKind::kIdent) {
            if (IsClassKey(toks[j].text)) has_class_key = true;
            if (TokIs(toks[j], "namespace")) has_namespace = true;
          }
        }
        bool function_like = last_close >= 0;
        for (int j = last_close + 1; function_like && j < static_cast<int>(i);
             ++j) {
          if (!IsFunctionTrailer(toks[j])) function_like = false;
        }
        // `template <class T> Status f() {` contains a class-key, so the
        // function test wins when both apply.
        if (function_like) {
          frame.scope = Scope::kBody;
          frame.is_function = true;
          for (int j = begin; j + 1 < static_cast<int>(i); ++j) {
            if (TokIs(toks[j + 1], "(") &&
                toks[j].kind == TokenKind::kIdent) {
              frame.name = std::string(toks[j].text);
              break;
            }
          }
        } else if (has_class_key || has_namespace) {
          frame.scope = Scope::kDecl;
        } else {
          frame.scope = Scope::kBody;
        }
      }
      stack.push_back(frame);
      continue;
    }
    if (TokIs(t, "}")) {
      if (!stack.empty()) {
        Frame frame = stack.back();
        stack.pop_back();
        if (frame.is_function && !frame.name.empty()) {
          info.defs.push_back(FunctionDef{frame.name, frame.open_index + 1,
                                          static_cast<int>(i)});
        }
      }
      continue;
    }
  }
  return info;
}

std::vector<FunctionDef> ExtractFunctions(const FileModel& model) {
  return AnalyzeScopes(model).defs;
}

}  // namespace egolint::internal
