// egolint CLI. Usage:
//
//   egolint [--check=NAME]... [--report=FILE] [--list-suppressions] PATH...
//
// PATHs are files or directories (scanned recursively for .h/.cc/.cpp,
// skipping build trees). Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "egolint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourcePath(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool InBuildTree(const fs::path& p) {
  for (const auto& part : p) {
    std::string s = part.string();
    if (s.rfind("build", 0) == 0 || s == ".git") return true;
  }
  return false;
}

int Usage(std::ostream& out, int code) {
  out << "usage: egolint [--check=NAME]... [--report=FILE] "
         "[--list-suppressions] PATH...\n"
         "checks: status-discipline checkpoint-coverage obs-gating "
         "include-hygiene request-discipline lock-discipline "
         "(default: all)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  egolint::LintOptions options;
  std::string report_path;
  bool list_suppressions = false;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--check=", 0) == 0) {
      std::string name = arg.substr(8);
      if (!egolint::IsKnownCheck(name)) {
        std::cerr << "egolint: unknown check '" << name << "'\n";
        return Usage(std::cerr, 2);
      }
      options.checks.push_back(name);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "egolint: unknown flag '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return Usage(std::cerr, 2);

  std::vector<egolint::SourceFile> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !IsSourcePath(it->path()) ||
            InBuildTree(it->path())) {
          continue;
        }
        std::ifstream in(it->path());
        std::ostringstream content;
        content << in.rdbuf();
        files.push_back(egolint::SourceFile{it->path().generic_string(),
                                            content.str()});
      }
    } else if (fs::is_regular_file(root, ec)) {
      std::ifstream in(root);
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back(
          egolint::SourceFile{root.generic_string(), content.str()});
    } else {
      std::cerr << "egolint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }

  if (list_suppressions) {
    int count = 0;
    for (const egolint::SourceFile& f : files) {
      egolint::FileModel model = egolint::Lex(f);
      for (const egolint::Suppression& sup : model.suppressions) {
        std::cout << f.path << ":" << sup.line << ": " << sup.name << "("
                  << sup.reason << ")\n";
        ++count;
      }
    }
    std::cout << count << " suppression(s)\n";
    return 0;
  }

  std::vector<egolint::Finding> findings = egolint::RunLint(files, options);
  for (const egolint::Finding& f : findings) {
    std::cout << egolint::FormatFinding(f) << "\n";
  }
  std::cout << findings.size() << " finding(s) in " << files.size()
            << " file(s)\n";
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "egolint: cannot write report to '" << report_path
                << "'\n";
      return 2;
    }
    out << egolint::FindingsToJson(findings);
  }
  return egolint::ExitCodeFor(findings);
}
