// status-discipline: every function returning Status / Result<...> carries
// [[nodiscard]], and no statement discards such a call's result. Function
// names are collected across every scanned file first, so call sites in one
// translation unit see Status-returning APIs declared in another.

#include <cstddef>
#include <set>
#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

bool IsStatusType(const Token& t) {
  return t.kind == TokenKind::kIdent &&
         (t.text == "Status" || t.text == "Result");
}

/// True when the token before a candidate return type rules out a function
/// declaration (expression or parameter contexts).
bool RulesOutDeclaration(const Token& prev) {
  return TokIs(prev, "return") || TokIs(prev, "=") || TokIs(prev, "(") ||
         TokIs(prev, ",") || TokIs(prev, "<") || TokIs(prev, ".") ||
         TokIs(prev, "->") || TokIs(prev, "new") || TokIs(prev, "case") ||
         TokIs(prev, "using") || TokIs(prev, "typename") ||
         TokIs(prev, "const");
}

/// Index just past `Result<...>`'s closing angle (or type_index + 1 for a
/// plain Status). Angle depth counts naively; `>>` lexes as two `>`.
int SkipType(const std::vector<Token>& toks, int type_index) {
  int i = type_index + 1;
  if (i >= static_cast<int>(toks.size()) || !TokIs(toks[i], "<")) return i;
  int depth = 0;
  for (; i < static_cast<int>(toks.size()); ++i) {
    if (TokIs(toks[i], "<")) ++depth;
    if (TokIs(toks[i], ">") && --depth == 0) return i + 1;
    if (TokIs(toks[i], ";") || TokIs(toks[i], "{")) break;  // unbalanced
  }
  return i;
}

/// Looks for `nodiscard` between the previous declaration boundary and the
/// return type token.
bool HasNodiscardBefore(const std::vector<Token>& toks, int type_index) {
  for (int j = type_index - 1; j >= 0 && type_index - j < 40; --j) {
    const Token& t = toks[j];
    if (TokIs(t, ";") || TokIs(t, "{") || TokIs(t, "}") || TokIs(t, ":")) {
      break;
    }
    if (t.kind == TokenKind::kIdent && t.text == "nodiscard") return true;
  }
  return false;
}

bool IsStatementStart(const Token& prev) {
  return TokIs(prev, ";") || TokIs(prev, "{") || TokIs(prev, "}") ||
         TokIs(prev, ")") || TokIs(prev, "else") || TokIs(prev, "do");
}

}  // namespace

void CheckStatusDiscipline(const std::vector<FileModel>& models,
                           std::vector<Finding>* findings) {
  // Pass 1: declarations. Collect every Status/Result-returning function
  // name and flag declarations missing [[nodiscard]]. Names that also have
  // a declaration with some other return type (Graph::AddNode -> NodeId vs
  // DynamicGraph::AddNode -> Result) are ambiguous at token level and are
  // excluded from the discard pass rather than guessed at.
  std::set<std::string> status_fns;
  std::set<std::string> ambiguous_fns;
  std::vector<std::pair<const FileModel*, ScopeInfo>> scoped;
  scoped.reserve(models.size());
  for (const FileModel& model : models) {
    scoped.emplace_back(&model, AnalyzeScopes(model));
  }
  for (const auto& [model, info] : scoped) {
    const std::vector<Token>& toks = model->tokens;
    for (int i = 1; i + 1 < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdent || !TokIs(toks[i + 1], "(")) {
        continue;
      }
      if (info.scope[i] != Scope::kDecl || info.paren_depth[i] != 0) continue;
      // Return-type region: back to the previous declaration boundary.
      bool has_status = false;
      bool has_type = false;
      for (int j = i - 1; j >= 0 && i - j < 40; --j) {
        const Token& t = toks[j];
        if (TokIs(t, ";") || TokIs(t, "{") || TokIs(t, "}") ||
            TokIs(t, ":") || TokIs(t, "(") || TokIs(t, ",")) {
          break;
        }
        if (t.kind == TokenKind::kIdent) {
          if (t.text == "Status" || t.text == "Result") has_status = true;
          if (t.text != "static" && t.text != "inline" &&
              t.text != "virtual" && t.text != "constexpr" &&
              t.text != "explicit" && t.text != "friend" &&
              t.text != "nodiscard" && t.text != "const") {
            has_type = true;
          }
        }
      }
      if (has_type && !has_status) {
        ambiguous_fns.insert(std::string(toks[i].text));
      }
    }
  }
  for (const auto& [model, info] : scoped) {
    const std::vector<Token>& toks = model->tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      if (!IsStatusType(toks[i])) continue;
      if (info.scope[i] != Scope::kDecl || info.paren_depth[i] != 0) continue;
      if (i > 0 && RulesOutDeclaration(toks[i - 1])) continue;
      int name_index = SkipType(toks, i);
      if (name_index + 1 >= static_cast<int>(toks.size())) continue;
      const Token& name = toks[name_index];
      if (name.kind != TokenKind::kIdent || name.text == "operator") continue;
      if (!TokIs(toks[name_index + 1], "(")) continue;
      status_fns.insert(std::string(name.text));
      if (!HasNodiscardBefore(toks, i)) {
        findings->push_back(Finding{
            model->source->path, toks[i].line, "status-discipline",
            "no-nodiscard",
            "function '" + std::string(name.text) + "' returns " +
                std::string(toks[i].text) +
                " but is not marked [[nodiscard]]"});
      }
    }
  }

  // Pass 2: discarded results. A statement of the form
  // `obj.Name(...);` / `Name(...);` whose final callee is a collected
  // Status-returning function drops the Status on the floor. An explicit
  // `(void)` cast is still a discard here: intentional drops carry an
  // `// egolint: allow-discard(reason)` instead.
  for (const auto& [model, info] : scoped) {
    const std::vector<Token>& toks = model->tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      if (info.scope[i] != Scope::kBody || info.paren_depth[i] != 0) continue;
      if (i > 0 && !IsStatementStart(toks[i - 1])) continue;
      // `(void)Foo();` matches twice: at `(` (void-cast arm) and at `Foo`
      // (its previous token is `)`, a legal statement start after
      // `if (...)`). Report it once, from the `(`.
      if (i >= 3 && TokIs(toks[i - 1], ")") && TokIs(toks[i - 2], "void") &&
          TokIs(toks[i - 3], "(")) {
        continue;
      }
      int j = i;
      bool void_cast = false;
      if (TokIs(toks[j], "(") && j + 2 < static_cast<int>(toks.size()) &&
          TokIs(toks[j + 1], "void") && TokIs(toks[j + 2], ")")) {
        void_cast = true;
        j += 3;
      }
      // Member/namespace chain ending in the callee.
      if (j >= static_cast<int>(toks.size()) ||
          toks[j].kind != TokenKind::kIdent) {
        continue;
      }
      int last_ident = j;
      while (j + 2 < static_cast<int>(toks.size()) &&
             (TokIs(toks[j + 1], ".") || TokIs(toks[j + 1], "->") ||
              TokIs(toks[j + 1], "::")) &&
             toks[j + 2].kind == TokenKind::kIdent) {
        j += 2;
        last_ident = j;
      }
      if (j + 1 >= static_cast<int>(toks.size()) ||
          !TokIs(toks[j + 1], "(")) {
        continue;
      }
      std::string callee(toks[last_ident].text);
      if (status_fns.find(callee) == status_fns.end() ||
          ambiguous_fns.find(callee) != ambiguous_fns.end()) {
        continue;
      }
      int after = MatchForward(toks, j + 1, "(", ")");
      if (after >= static_cast<int>(toks.size()) ||
          !TokIs(toks[after], ";")) {
        continue;
      }
      findings->push_back(Finding{
          model->source->path, toks[last_ident].line, "status-discipline",
          "allow-discard",
          std::string(void_cast ? "(void)-cast still discards"
                                : "call discards") +
              " the Status/Result returned by '" +
              std::string(toks[last_ident].text) + "'"});
    }
  }
}

}  // namespace egolint::internal
