// egolint driver: lexes every input, dispatches the enabled checks,
// applies line-level suppressions, and audits the suppressions themselves
// (reasonless or unknown names are findings, so the escape hatch cannot
// silently rot).

#include <algorithm>
#include <set>
#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint {

namespace {

const char* const kKnownChecks[] = {"status-discipline", "checkpoint-coverage",
                                    "obs-gating", "include-hygiene",
                                    "request-discipline", "lock-discipline"};

const char* const kKnownSuppressions[] = {
    "no-nodiscard", "allow-discard",       "no-checkpoint",
    "allow-obs",    "allow-using-namespace", "allow-include",
    "no-request-context", "allow-bare-response",
    "allow-raw-mutex", "no-guard"};

bool Enabled(const LintOptions& options, const std::string& check) {
  if (options.checks.empty()) return true;
  return std::find(options.checks.begin(), options.checks.end(), check) !=
         options.checks.end();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintOptions& options) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) models.push_back(Lex(f));

  std::vector<Finding> raw;
  if (Enabled(options, "status-discipline")) {
    internal::CheckStatusDiscipline(models, &raw);
  }
  if (Enabled(options, "checkpoint-coverage")) {
    internal::CheckCheckpointCoverage(models, &raw);
  }
  if (Enabled(options, "obs-gating")) {
    internal::CheckObsGating(models, &raw);
  }
  if (Enabled(options, "include-hygiene")) {
    internal::CheckIncludeHygiene(models, &raw);
  }
  if (Enabled(options, "request-discipline")) {
    internal::CheckRequestDiscipline(models, &raw);
  }
  if (Enabled(options, "lock-discipline")) {
    internal::CheckLockDiscipline(models, &raw);
  }

  // A suppression silences a finding of its kind on the same line or the
  // line below it (comment-above style) — but only when it carries a
  // written reason.
  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    if (!f.suppression.empty()) {
      for (const FileModel& model : models) {
        if (model.source->path != f.file) continue;
        for (const Suppression& sup : model.suppressions) {
          if (sup.name == f.suppression && !sup.reason.empty() &&
              (sup.line == f.line || sup.line == f.line - 1)) {
            suppressed = true;
            break;
          }
        }
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // Audit the suppression comments themselves.
  std::set<std::string> known(std::begin(kKnownSuppressions),
                              std::end(kKnownSuppressions));
  for (const FileModel& model : models) {
    for (const Suppression& sup : model.suppressions) {
      if (known.find(sup.name) == known.end()) {
        out.push_back(Finding{model.source->path, sup.line, "suppression", "",
                              "unknown egolint suppression '" + sup.name +
                                  "'"});
      } else if (sup.reason.empty()) {
        out.push_back(Finding{model.source->path, sup.line, "suppression", "",
                              "egolint suppression '" + sup.name +
                                  "' must carry a written reason: " +
                                  "// egolint: " + sup.name + "(<why>)"});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return out;
}

std::string FormatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
         f.message;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "    {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"check\": \"" +
           JsonEscape(f.check) + "\", \"suppression\": \"" +
           JsonEscape(f.suppression) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"count\": " + std::to_string(findings.size()) + "\n}\n";
  return out;
}

int ExitCodeFor(const std::vector<Finding>& findings) {
  return findings.empty() ? 0 : 1;
}

bool IsKnownCheck(const std::string& name) {
  for (const char* c : kKnownChecks) {
    if (name == c) return true;
  }
  return false;
}

}  // namespace egolint
