// lock-discipline: the locking protocol is a compile-time contract under
// clang (-Wthread-safety over the annotations in util/thread_annotations.h),
// but GCC builds compile the annotations away. This check keeps the contract
// honest on every compiler with two token-level rules:
//
//  1. Raw standard mutexes (std::mutex, std::shared_mutex, and friends)
//     outside src/util/ are findings — locked subsystems must use the
//     annotated egocensus::Mutex / SharedMutex wrappers from util/mutex.h,
//     or the clang analysis silently sees nothing to analyze
//     (suppression: allow-raw-mutex).
//
//  2. Any class that OWNS a lock capability (a by-value Mutex / SharedMutex
//     member) must annotate every other mutable member variable with
//     EGO_GUARDED_BY / EGO_PT_GUARDED_BY, naming the capability that guards
//     it. Members that synchronize themselves (std::atomic, condition
//     variables), leading-`const` value members, and `static` members are
//     exempt. Everything else either names its guard or carries an audited
//     `// egolint: no-guard(<why>)` suppression — the suppression is the
//     paper trail for deliberate lock-free protocols (see
//     util/thread_pool.h's generation-protocol fields)
//     (suppression: no-guard).
//
// The member parse is deliberately shallow: a declaration is a member
// *variable* when its head (tokens before `=` / `{` / `;`) has no
// parenthesis at angle-bracket depth zero other than an annotation macro's
// argument list. That discriminates fields from functions, constructors,
// and nested types without a real parser, which matches the rest of
// egolint's design (docs/STATIC_ANALYSIS.md).

#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

bool IsRawMutexName(std::string_view name) {
  return name == "mutex" || name == "shared_mutex" ||
         name == "recursive_mutex" || name == "timed_mutex" ||
         name == "recursive_timed_mutex" || name == "shared_timed_mutex";
}

/// Annotation macros whose argument list may legally appear in a member
/// declaration's head without making it a function.
bool IsMemberAnnotation(std::string_view name) {
  return name == "EGO_GUARDED_BY" || name == "EGO_PT_GUARDED_BY" ||
         name == "EGO_ACQUIRED_BEFORE" || name == "EGO_ACQUIRED_AFTER";
}

bool IsClassKey(std::string_view name) {
  return name == "class" || name == "struct" || name == "union";
}

/// Declarations led by these keywords are never member variables.
bool IsNonMemberLead(std::string_view name) {
  return name == "using" || name == "typedef" || name == "friend" ||
         name == "template" || name == "static" || name == "enum" ||
         IsClassKey(name);
}

/// One parsed member declaration inside a class body.
struct MemberDecl {
  int begin = 0;  // token index of the first declaration token
  int end = 0;    // exclusive
  int line = 0;
  std::string name;       // last declarator identifier in the head
  bool is_variable = false;
  bool owns_capability = false;  // by-value Mutex / SharedMutex
  bool exempt = false;           // atomic / cv / leading-const / capability
  bool annotated = false;        // EGO_GUARDED_BY / EGO_PT_GUARDED_BY
};

/// Parses the top level of a class body ([begin, end) token range) into
/// member declarations. Nested type definitions and function bodies are
/// skipped as opaque units; nested classes are analyzed by the outer loop,
/// which visits every class-key token in the file.
std::vector<MemberDecl> ParseMembers(const std::vector<Token>& toks,
                                     int begin, int end) {
  std::vector<MemberDecl> members;
  int i = begin;
  while (i < end) {
    // Access specifiers.
    if (toks[i].kind == TokenKind::kIdent &&
        (TokIs(toks[i], "public") || TokIs(toks[i], "private") ||
         TokIs(toks[i], "protected")) &&
        i + 1 < end && TokIs(toks[i + 1], ":")) {
      i += 2;
      continue;
    }
    if (TokIs(toks[i], ";")) {  // stray semicolon
      ++i;
      continue;
    }

    MemberDecl decl;
    decl.begin = i;
    decl.line = toks[i].line;
    const bool skippable_lead =
        toks[i].kind == TokenKind::kIdent && IsNonMemberLead(toks[i].text);
    const bool static_lead =
        toks[i].kind == TokenKind::kIdent && TokIs(toks[i], "static");
    const bool const_lead =
        toks[i].kind == TokenKind::kIdent && TokIs(toks[i], "const");

    int angle = 0;
    bool in_head = true;
    bool is_func = false;
    bool saw_annotation_ident = false;
    bool head_has_pointer = false;
    bool head_has_ref = false;
    bool capability_ident = false;
    bool exempt_type = false;

    while (i < end) {
      const Token& t = toks[i];
      if (in_head) {
        if (t.kind == TokenKind::kIdent) {
          if (IsMemberAnnotation(t.text)) {
            saw_annotation_ident = true;
            if (t.text == "EGO_GUARDED_BY" || t.text == "EGO_PT_GUARDED_BY") {
              decl.annotated = true;
            }
          } else if (TokIs(t, "operator")) {
            is_func = true;
          } else if (!saw_annotation_ident) {
            // Self-synchronizing types exempt the member at any template
            // depth: std::array<std::atomic<...>, N> is as lock-free as a
            // bare atomic.
            if (t.text == "atomic" ||
                t.text.rfind("atomic_", 0) == 0 ||
                t.text == "condition_variable" ||
                t.text == "condition_variable_any") {
              exempt_type = true;
            }
            if (angle == 0) {
              if (TokIs(t, "Mutex") || TokIs(t, "SharedMutex")) {
                capability_ident = true;
              }
              decl.name = std::string(t.text);
            }
          }
        } else if (TokIs(t, "<")) {
          ++angle;
        } else if (TokIs(t, ">")) {
          if (angle > 0) --angle;
        } else if (TokIs(t, "(") && angle == 0) {
          if (i > decl.begin && toks[i - 1].kind == TokenKind::kIdent &&
              IsMemberAnnotation(toks[i - 1].text)) {
            i = MatchForward(toks, i, "(", ")");
            continue;
          }
          is_func = true;
        } else if (angle == 0 && TokIs(t, "*")) {
          head_has_pointer = true;
        } else if (angle == 0 && TokIs(t, "&")) {
          head_has_ref = true;
        } else if (TokIs(t, "=")) {
          in_head = false;
        }
      }
      if (TokIs(t, "{")) {
        int close = MatchForward(toks, i, "{", "}");
        if (is_func || skippable_lead) {
          // Function body or nested type definition: opaque unit. A nested
          // type carries a trailing `;`, a function body does not.
          i = close;
          if (i < end && TokIs(toks[i], ";")) ++i;
          break;
        }
        // Braced member initializer — part of the declaration.
        i = close;
        in_head = false;
        continue;
      }
      if (TokIs(t, ";")) {
        ++i;
        break;
      }
      ++i;
    }
    decl.end = i;

    decl.is_variable = !is_func && !skippable_lead;
    decl.owns_capability =
        decl.is_variable && capability_ident && !head_has_pointer &&
        !head_has_ref;
    decl.exempt = exempt_type || capability_ident || static_lead ||
                  (const_lead && !head_has_pointer);
    if (decl.is_variable) members.push_back(std::move(decl));
  }
  return members;
}

/// For a class-key token at `i`, locates the definition's body and name.
/// Returns false for template parameters, elaborated-type uses, forward
/// declarations, and `enum class`.
bool FindClassBody(const std::vector<Token>& toks, int i, std::string* name,
                   int* body_begin, int* body_end) {
  if (i > 0 && (TokIs(toks[i - 1], "<") || TokIs(toks[i - 1], ",") ||
                TokIs(toks[i - 1], "(") || TokIs(toks[i - 1], "enum"))) {
    return false;
  }
  const int n = static_cast<int>(toks.size());
  name->clear();
  for (int j = i + 1; j < n; ++j) {
    const Token& t = toks[j];
    if (TokIs(t, "(")) {  // attribute macro, e.g. EGO_CAPABILITY("mutex")
      j = MatchForward(toks, j, "(", ")") - 1;
      continue;
    }
    if (t.kind == TokenKind::kIdent) {
      *name = std::string(t.text);
      continue;
    }
    if (TokIs(t, "::")) continue;
    if (TokIs(t, ":")) {  // base clause: name is fixed, scan on to the brace
      for (int k = j + 1; k < n; ++k) {
        if (TokIs(toks[k], "{")) {
          *body_begin = k + 1;
          *body_end = MatchForward(toks, k, "{", "}") - 1;
          return !name->empty();
        }
        if (TokIs(toks[k], ";")) return false;
      }
      return false;
    }
    if (TokIs(t, "{")) {
      *body_begin = j + 1;
      *body_end = MatchForward(toks, j, "{", "}") - 1;
      return !name->empty();
    }
    return false;  // `;`, `*`, `&`, `>` … — not a definition
  }
  return false;
}

}  // namespace

void CheckLockDiscipline(const std::vector<FileModel>& models,
                         std::vector<Finding>* findings) {
  for (const FileModel& model : models) {
    const std::string& path = model.source->path;
    const std::vector<Token>& toks = model.tokens;
    const int n = static_cast<int>(toks.size());

    // Rule 1: raw standard mutex types outside src/util/ (util owns the
    // annotated wrappers, so it is the one place the raw types may live).
    if (path.find("src/util/") == std::string::npos) {
      for (int i = 0; i + 2 < n; ++i) {
        if (toks[i].kind == TokenKind::kIdent && TokIs(toks[i], "std") &&
            TokIs(toks[i + 1], "::") &&
            toks[i + 2].kind == TokenKind::kIdent &&
            IsRawMutexName(toks[i + 2].text)) {
          findings->push_back(Finding{
              path, toks[i].line, "lock-discipline", "allow-raw-mutex",
              "raw std::" + std::string(toks[i + 2].text) +
                  " — use the annotated egocensus wrappers in util/mutex.h "
                  "so clang's thread-safety analysis sees the lock"});
        }
      }
    }

    // Rule 2: lock-owning classes must annotate their mutable members.
    for (int i = 0; i < n; ++i) {
      if (toks[i].kind != TokenKind::kIdent || !IsClassKey(toks[i].text)) {
        continue;
      }
      std::string class_name;
      int body_begin = 0;
      int body_end = 0;
      if (!FindClassBody(toks, i, &class_name, &body_begin, &body_end)) {
        continue;
      }
      std::vector<MemberDecl> members =
          ParseMembers(toks, body_begin, body_end);
      bool owns_lock = false;
      for (const MemberDecl& m : members) {
        if (m.owns_capability) {
          owns_lock = true;
          break;
        }
      }
      if (!owns_lock) continue;
      for (const MemberDecl& m : members) {
        if (m.exempt || m.annotated) continue;
        findings->push_back(Finding{
            path, m.line, "lock-discipline", "no-guard",
            "member '" + m.name + "' of lock-owning class '" + class_name +
                "' names no guard — annotate it EGO_GUARDED_BY(<capability>)"
                " or record why it is safe with no-guard(<reason>)"});
      }
    }
  }
}

}  // namespace egolint::internal
