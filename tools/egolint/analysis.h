#ifndef EGOCENSUS_TOOLS_EGOLINT_ANALYSIS_H_
#define EGOCENSUS_TOOLS_EGOLINT_ANALYSIS_H_

// Internal shared analysis for the egolint checks: a single walk over a
// file's tokens that classifies every brace scope (declaration context vs
// function/block body), tracks parenthesis depth, and extracts function and
// named-lambda definitions with their body token ranges.

#include <string>
#include <string_view>
#include <vector>

#include "egolint.h"

namespace egolint::internal {

/// Per-token scope classification: kDecl = namespace/class/global scope
/// (where a `Status f(...)` sequence is a declaration), kBody = inside a
/// function body, statement block, or braced initializer.
enum class Scope : char { kDecl, kBody };

struct ScopeInfo {
  std::vector<Scope> scope;      // parallel to model.tokens
  std::vector<int> paren_depth;  // parallel to model.tokens
  std::vector<FunctionDef> defs;
};

ScopeInfo AnalyzeScopes(const FileModel& model);

inline bool TokIs(const Token& t, std::string_view text) {
  return t.text == text;
}

/// Index just past the token matching the opener at `open_index` (tokens
/// [open_index] must be `open`). Returns tokens.size() when unbalanced.
int MatchForward(const std::vector<Token>& tokens, int open_index,
                 std::string_view open, std::string_view close);

}  // namespace egolint::internal

#endif  // EGOCENSUS_TOOLS_EGOLINT_ANALYSIS_H_
