// obs-gating: outside src/obs/ the observability layer may only be reached
// through its self-gated call-site surface (EGO_* macros, the handle
// classes, and the free helpers — each checks Enabled(), which is constexpr
// false when EGO_OBS_ENABLED=0) or under an explicit EGO_OBS_ENABLED
// preprocessor gate. Direct obs:: references to anything else — the
// Registry, the Tracer, interning, exporters — are findings: those are the
// internals the EGOCENSUS_OBS=OFF kill-switch build must never reach.

#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

/// The self-gated call-site surface of obs/metrics.h, obs/trace.h,
/// obs/log.h, and obs/obs.h: every entry here compiles to a no-op (or a
/// relaxed load plus an untaken branch) when EGO_OBS_ENABLED=0, so ungated
/// use is safe. The structured-logging surface (Logger/LogEvent and the
/// level helpers) is stubbed the same way: Logger::enabled() is constexpr
/// false in the OFF build, so log call sites stay ungated.
bool IsStubbedEntryPoint(std::string_view name) {
  return name == "Enabled" || name == "SetEnabled" || name == "CounterAdd" ||
         name == "GaugeMax" || name == "HistogramRecord" ||
         name == "CounterHandle" || name == "GaugeHandle" ||
         name == "HistogramHandle" || name == "ScopedSpan" ||
         name == "Logger" || name == "LogEvent" || name == "LogLevel" ||
         name == "LogLevelName" || name == "LogLevelFromName";
}

}  // namespace

void CheckObsGating(const std::vector<FileModel>& models,
                    std::vector<Finding>* findings) {
  for (const FileModel& model : models) {
    if (model.source->path.find("src/obs/") != std::string::npos) continue;
    const std::vector<Token>& toks = model.tokens;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdent || toks[i].text != "obs") {
        continue;
      }
      if (!TokIs(toks[i + 1], "::")) continue;
      // `egocensus::obs` chains land on the same `obs ::` pair.
      if (toks[i].obs_gated) continue;
      if (i + 2 < static_cast<int>(toks.size()) &&
          toks[i + 2].kind == TokenKind::kIdent &&
          IsStubbedEntryPoint(toks[i + 2].text)) {
        continue;
      }
      std::string target =
          i + 2 < static_cast<int>(toks.size())
              ? std::string(toks[i + 2].text)
              : std::string();
      findings->push_back(Finding{
          model.source->path, toks[i].line, "obs-gating", "allow-obs",
          "obs::" + target +
              " referenced outside src/obs/ without an EGO_OBS_ENABLED "
              "gate (would break the EGOCENSUS_OBS=OFF kill-switch build)"});
    }
  }
}

}  // namespace egolint::internal
