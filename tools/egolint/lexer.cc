// Lexer for egolint: turns C++ source into code tokens plus the side
// channels the checks need (suppression comments, quoted includes, and the
// EGO_OBS_ENABLED preprocessor gate). Token text is a view into the
// SourceFile's content, so the model is cheap enough to lex the whole repo
// per run.

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

#include "egolint.h"

namespace egolint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses a suppression out of a `// egolint: name(reason)` comment. The
/// marker must start the comment so prose that merely mentions
/// "egolint: foo" is not treated as a suppression.
void ParseSuppression(std::string_view comment, int line, FileModel* model) {
  std::size_t at = 0;
  while (at < comment.size() && (comment[at] == '/' || comment[at] == ' ')) {
    ++at;
  }
  if (comment.substr(at, 8) != "egolint:") return;
  std::size_t pos = at + 8;
  while (pos < comment.size() && comment[pos] == ' ') ++pos;
  std::size_t name_begin = pos;
  while (pos < comment.size() &&
         (IsIdentChar(comment[pos]) || comment[pos] == '-')) {
    ++pos;
  }
  Suppression sup;
  sup.name = std::string(comment.substr(name_begin, pos - name_begin));
  sup.line = line;
  if (pos < comment.size() && comment[pos] == '(') {
    std::size_t close = comment.rfind(')');
    if (close != std::string_view::npos && close > pos) {
      sup.reason = std::string(comment.substr(pos + 1, close - pos - 1));
    }
  }
  model->suppressions.push_back(sup);
}

/// One frame of the preprocessor conditional stack.
struct CondFrame {
  bool obs_gate = false;  // condition mentions the obs kill switch
};

bool MentionsObsGate(std::string_view condition) {
  return condition.find("EGO_OBS_ENABLED") != std::string_view::npos ||
         condition.find("EGOCENSUS_OBS") != std::string_view::npos;
}

}  // namespace

FileModel Lex(const SourceFile& file) {
  FileModel model;
  model.source = &file;
  const std::string_view src = file.content;
  std::size_t i = 0;
  int line = 1;
  std::vector<CondFrame> cond_stack;

  auto gated = [&cond_stack] {
    for (const CondFrame& f : cond_stack) {
      if (f.obs_gate) return true;
    }
    return false;
  };
  auto push = [&](TokenKind kind, std::size_t begin, std::size_t end) {
    model.tokens.push_back(
        Token{kind, src.substr(begin, end - begin), line, gated()});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor logical line (with backslash continuations). '#' only
    // starts a directive when nothing but whitespace precedes it on the
    // line, so check the raw prefix back to the newline.
    if (c == '#') {
      std::size_t bol = src.rfind('\n', i == 0 ? 0 : i - 1);
      bol = (bol == std::string_view::npos) ? 0 : bol + 1;
      bool directive = true;
      for (std::size_t j = bol; j < i; ++j) {
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          directive = false;
          break;
        }
      }
      if (directive) {
        std::size_t begin = i;
        int begin_line = line;
        while (i < src.size()) {
          if (src[i] == '\n') {
            if (i > 0 && src[i - 1] == '\\') {
              ++line;
              ++i;
              continue;
            }
            break;
          }
          ++i;
        }
        std::string_view text = src.substr(begin, i - begin);
        // Classify the directive.
        std::size_t p = 1;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
        std::size_t kw_begin = p;
        while (p < text.size() && IsIdentChar(text[p])) ++p;
        std::string_view kw = text.substr(kw_begin, p - kw_begin);
        std::string_view rest = text.substr(p);
        if (kw == "include") {
          std::size_t q1 = rest.find('"');
          if (q1 != std::string_view::npos) {
            std::size_t q2 = rest.find('"', q1 + 1);
            if (q2 != std::string_view::npos) {
              model.includes.push_back(IncludeEdge{
                  std::string(rest.substr(q1 + 1, q2 - q1 - 1)), begin_line});
            }
          }
        } else if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
          CondFrame frame;
          // `#ifndef EGO_OBS_ENABLED` is the definition guard, not the
          // enabled branch; only a positive mention gates.
          frame.obs_gate = kw != "ifndef" && MentionsObsGate(rest) &&
                           rest.find('!') == std::string_view::npos;
          cond_stack.push_back(frame);
        } else if (kw == "elif") {
          if (!cond_stack.empty()) {
            cond_stack.back().obs_gate =
                MentionsObsGate(rest) &&
                rest.find('!') == std::string_view::npos;
          }
        } else if (kw == "else") {
          if (!cond_stack.empty()) cond_stack.back().obs_gate = false;
        } else if (kw == "endif") {
          if (!cond_stack.empty()) cond_stack.pop_back();
        }
        continue;
      }
    }
    // Line comment (and egolint suppressions).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t begin = i;
      while (i < src.size() && src[i] != '\n') ++i;
      ParseSuppression(src.substr(begin, i - begin), line, &model);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < src.size()) ? i + 2 : src.size();
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      std::size_t begin = i;
      std::size_t delim_begin = i + 2;
      std::size_t paren = src.find('(', delim_begin);
      if (paren != std::string_view::npos) {
        std::string closer = ")" +
                             std::string(src.substr(delim_begin,
                                                    paren - delim_begin)) +
                             "\"";
        std::size_t end = src.find(closer, paren + 1);
        end = (end == std::string_view::npos) ? src.size()
                                              : end + closer.size();
        int start_line = line;
        for (std::size_t j = begin; j < end; ++j) {
          if (src[j] == '\n') ++line;
        }
        model.tokens.push_back(Token{TokenKind::kString,
                                     src.substr(begin, end - begin),
                                     start_line, gated()});
        i = end;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t begin = i;
      char quote = c;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i < src.size()) ? i + 1 : src.size();
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar, begin, i);
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t begin = i;
      while (i < src.size() && IsIdentChar(src[i])) ++i;
      push(TokenKind::kIdent, begin, i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t begin = i;
      while (i < src.size() &&
             (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'')) {
        ++i;
      }
      push(TokenKind::kNumber, begin, i);
      continue;
    }
    // Punctuation; `::` and `->` as single tokens (the checks walk
    // member/namespace chains), everything else one char.
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      push(TokenKind::kPunct, i, i + 2);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      push(TokenKind::kPunct, i, i + 2);
      i += 2;
      continue;
    }
    push(TokenKind::kPunct, i, i + 1);
    ++i;
  }
  return model;
}

}  // namespace egolint
