// checkpoint-coverage: loops in the census/match/dynamic execution paths
// that can iterate over focal nodes, matches, clusters, or update streams
// must reach a Governor checkpoint. "Reach" is deliberately one hop deep:
// a loop passes when its header or body polls directly (`Checkpoint`,
// `ParallelFor`, `stopped`), calls a function or named lambda whose own
// body polls directly, or sits lexically inside a loop that passes. A poll
// buried two calls deep bounds nothing about this loop's iteration latency,
// so it needs an audited `// egolint: no-checkpoint(reason)` instead.
//
// One structural exemption: loops inside a *driven* function. The engines
// split work as `driver loop { Checkpoint(); process(item); }`, so the
// per-item loops inside `process` are bounded by the driver's per-item
// poll. Driven-ness seeds from calls made lexically inside a loop that
// polls and propagates through calls in driven bodies; it deliberately
// does NOT seed from ParallelFor arguments — ParallelFor polls once per
// chunk, and the explicit in-loop Checkpoint inside the chunk callback is
// what tightens that to per-item, which is exactly what this check
// defends. Removing that poll unroots the whole driven chain.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

const char* const kWatchedStems[] = {"focal",    "match",   "cluster",
                                     "update",   "frontier", "pending"};

bool IsWatchedIdent(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* stem : kWatchedStems) {
    if (lower.find(stem) != std::string::npos) return true;
  }
  return false;
}

bool InCheckedDir(const std::string& path) {
  if (path.size() < 3 || path.compare(path.size() - 3, 3, ".cc") != 0) {
    return false;
  }
  return path.find("src/census/") != std::string::npos ||
         path.find("src/match/") != std::string::npos ||
         path.find("src/dynamic/") != std::string::npos;
}

struct Loop {
  int kw_index = 0;      // the for/while/do token
  int range_begin = 0;   // header + body token range (inclusive begin)
  int range_end = 0;     // exclusive end
  bool passes = false;   // polls directly or via a one-hop call
};

/// Token range [begin, end) polls when it names Checkpoint / ParallelFor /
/// stopped, or calls a function in `polling`.
bool RangePolls(const std::vector<Token>& toks, int begin, int end,
                const std::set<std::string>& polling) {
  for (int i = begin; i < end; ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if (toks[i].text == "Checkpoint" || toks[i].text == "ParallelFor" ||
        toks[i].text == "stopped") {
      return true;
    }
    if (i + 1 < end && TokIs(toks[i + 1], "(") &&
        polling.count(std::string(toks[i].text)) != 0) {
      return true;
    }
  }
  return false;
}

bool RangeWatched(const std::vector<Token>& toks, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    if (toks[i].kind == TokenKind::kIdent && IsWatchedIdent(toks[i].text)) {
      return true;
    }
  }
  return false;
}

/// Statement end for a brace-less loop body: the first `;` at relative
/// parenthesis depth zero.
int SkipStatement(const std::vector<Token>& toks, int i) {
  int depth = 0;
  for (; i < static_cast<int>(toks.size()); ++i) {
    if (TokIs(toks[i], "(")) ++depth;
    if (TokIs(toks[i], ")")) --depth;
    if (TokIs(toks[i], "{")) return MatchForward(toks, i, "{", "}");
    if (TokIs(toks[i], ";") && depth <= 0) return i + 1;
  }
  return i;
}

}  // namespace

void CheckCheckpointCoverage(const std::vector<FileModel>& models,
                             std::vector<Finding>* findings) {
  // Directly-polling functions, collected across every scanned file so an
  // engine loop calling a matcher entry point defined elsewhere is covered.
  std::set<std::string> polling;
  std::vector<std::pair<const FileModel*, std::vector<FunctionDef>>> defs;
  defs.reserve(models.size());
  for (const FileModel& model : models) {
    defs.emplace_back(&model, ExtractFunctions(model));
    for (const FunctionDef& def : defs.back().second) {
      if (RangePolls(model.tokens, def.body_begin, def.body_end, {})) {
        polling.insert(def.name);
      }
    }
  }

  // Per-file loop extraction, shared by driven-ness seeding and the
  // findings pass below.
  auto extract_loops = [](const std::vector<Token>& toks) {
    std::vector<Loop> loops;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdent) continue;
      bool is_do = toks[i].text == "do";
      bool is_loop = is_do || toks[i].text == "for" || toks[i].text == "while";
      if (!is_loop) continue;
      Loop loop;
      loop.kw_index = i;
      if (is_do) {
        loop.range_begin = i + 1;
        loop.range_end = SkipStatement(toks, i + 1);
      } else {
        if (i + 1 >= static_cast<int>(toks.size()) ||
            !TokIs(toks[i + 1], "(")) {
          continue;  // do-while's trailing `while` was already consumed
        }
        loop.range_begin = i + 1;
        int after_header = MatchForward(toks, i + 1, "(", ")");
        loop.range_end = SkipStatement(toks, after_header);
      }
      loops.push_back(loop);
    }
    return loops;
  };

  // Driven functions: seed with every call made lexically inside a polling
  // loop, then close over calls made inside driven bodies (name-level,
  // cross-file — pt_opt's driven `process` calling Expand covers the loops
  // in pt_expander.cc).
  std::set<std::string> driven;
  for (const auto& [model, file_defs] : defs) {
    const std::vector<Token>& toks = model->tokens;
    for (const Loop& loop : extract_loops(toks)) {
      if (!RangePolls(toks, loop.range_begin, loop.range_end, polling)) {
        continue;
      }
      for (int i = loop.range_begin; i + 1 < loop.range_end; ++i) {
        if (toks[i].kind == TokenKind::kIdent && TokIs(toks[i + 1], "(")) {
          driven.insert(std::string(toks[i].text));
        }
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [model, file_defs] : defs) {
      const std::vector<Token>& toks = model->tokens;
      for (const FunctionDef& def : file_defs) {
        if (driven.count(def.name) == 0) continue;
        for (int i = def.body_begin; i + 1 < def.body_end; ++i) {
          if (toks[i].kind == TokenKind::kIdent && TokIs(toks[i + 1], "(") &&
              driven.insert(std::string(toks[i].text)).second) {
            changed = true;
          }
        }
      }
    }
  }

  for (const auto& [model_ptr, file_defs] : defs) {
    const FileModel& model = *model_ptr;
    if (!InCheckedDir(model.source->path)) continue;
    const std::vector<Token>& toks = model.tokens;
    std::vector<Loop> loops = extract_loops(toks);
    for (Loop& loop : loops) {
      loop.passes = RangePolls(toks, loop.range_begin, loop.range_end, polling);
    }
    for (const Loop& loop : loops) {
      if (loop.passes) continue;
      if (!RangeWatched(toks, loop.range_begin, loop.range_end)) continue;
      bool covered_by_ancestor = false;
      for (const Loop& outer : loops) {
        if (outer.passes && outer.range_begin <= loop.kw_index &&
            loop.range_end <= outer.range_end) {
          covered_by_ancestor = true;
          break;
        }
      }
      if (covered_by_ancestor) continue;
      bool in_driven_fn = false;
      for (const FunctionDef& def : file_defs) {
        if (def.body_begin <= loop.kw_index && loop.kw_index < def.body_end &&
            driven.count(def.name) != 0) {
          in_driven_fn = true;
          break;
        }
      }
      if (in_driven_fn) continue;
      findings->push_back(Finding{
          model.source->path, toks[loop.kw_index].line, "checkpoint-coverage",
          "no-checkpoint",
          "loop iterates over focal nodes/matches/clusters/updates without "
          "reaching a Governor Checkpoint() poll"});
    }
  }
}

}  // namespace egolint::internal
