// request-discipline: every request handler in src/net/ must route through
// the RequestContext (net/request_context.h). A handler that never touches
// the context produces responses with no request id, no wide log event, and
// no slow-query capture — exactly the blind spot the telemetry pipeline
// exists to close (docs/SERVER.md, "Request telemetry"). Handlers are
// recognized by name: `Handle` followed by an upper-case letter. The
// context may appear anywhere from the signature (a `RequestContext&`
// parameter) to the end of the body.

#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

bool IsHandlerName(std::string_view name) {
  // Qualified definitions (`CensusServer::HandleQuery`) extract with the
  // unqualified name; match the trailing component either way.
  std::size_t pos = name.rfind("Handle");
  if (pos == std::string_view::npos) return false;
  if (pos != 0 && name.compare(pos - 2, 2, "::") != 0) return false;
  std::string_view rest = name.substr(pos + 6);
  return !rest.empty() && rest[0] >= 'A' && rest[0] <= 'Z';
}

/// First token of the handler's signature: scan back from the opening brace
/// past the parameter list and declarator until the previous statement or
/// scope boundary.
int SignatureBegin(const std::vector<Token>& tokens, int body_begin) {
  int i = body_begin - 1;  // the `{`
  for (--i; i >= 0; --i) {
    if (TokIs(tokens[i], ";") || TokIs(tokens[i], "}") ||
        TokIs(tokens[i], "{")) {
      return i + 1;
    }
  }
  return 0;
}

}  // namespace

void CheckRequestDiscipline(const std::vector<FileModel>& models,
                            std::vector<Finding>* findings) {
  for (const FileModel& model : models) {
    if (model.source->path.find("src/net/") == std::string::npos) continue;
    const std::vector<Token>& toks = model.tokens;
    for (const FunctionDef& def : ExtractFunctions(model)) {
      if (!IsHandlerName(def.name)) continue;
      bool routed = false;
      int begin = SignatureBegin(toks, def.body_begin);
      for (int i = begin; i < def.body_end && i < static_cast<int>(toks.size());
           ++i) {
        if (toks[i].kind == TokenKind::kIdent &&
            toks[i].text == "RequestContext") {
          routed = true;
          break;
        }
      }
      if (routed) continue;
      // Anchor the finding on the signature's first line so a
      // comment-above suppression sits where the definition starts.
      int line = begin < static_cast<int>(toks.size()) ? toks[begin].line : 0;
      findings->push_back(Finding{
          model.source->path, line, "request-discipline",
          "no-request-context",
          "request handler " + def.name +
              " never routes through RequestContext — its requests get no "
              "id, no wide log event, and no slow-query capture "
              "(docs/SERVER.md)"});
    }
  }
}

}  // namespace egolint::internal
