// request-discipline: every request handler in src/net/ must route through
// the RequestContext (net/request_context.h). A handler that never touches
// the context produces responses with no request id, no wide log event, and
// no slow-query capture — exactly the blind spot the telemetry pipeline
// exists to close (docs/SERVER.md, "Request telemetry"). Handlers are
// recognized by name: `Handle` followed by an upper-case letter. The
// context may appear anywhere from the signature (a `RequestContext&`
// parameter) to the end of the body.
//
// A second rule polices response composition: BUSY and ERROR frames carry
// structured fields (code, retry_after_ms, echoed request_id) that clients
// parse, so they must be built by the canonical helpers (ErrorResponse /
// BusyResponse in net/request_context.h), never assembled by hand. Any
// `... = FrameType::kBusy` / `= FrameType::kError` assignment in src/net/
// outside request_context.h and frame.h is flagged; comparisons (`==`,
// `!=`) and `case` labels are fine.

#include <string>

#include "analysis.h"
#include "egolint.h"

namespace egolint::internal {

namespace {

bool IsHandlerName(std::string_view name) {
  // Qualified definitions (`CensusServer::HandleQuery`) extract with the
  // unqualified name; match the trailing component either way.
  std::size_t pos = name.rfind("Handle");
  if (pos == std::string_view::npos) return false;
  if (pos != 0 && name.compare(pos - 2, 2, "::") != 0) return false;
  std::string_view rest = name.substr(pos + 6);
  return !rest.empty() && rest[0] >= 'A' && rest[0] <= 'Z';
}

/// First token of the handler's signature: scan back from the opening brace
/// past the parameter list and declarator until the previous statement or
/// scope boundary.
int SignatureBegin(const std::vector<Token>& tokens, int body_begin) {
  int i = body_begin - 1;  // the `{`
  for (--i; i >= 0; --i) {
    if (TokIs(tokens[i], ";") || TokIs(tokens[i], "}") ||
        TokIs(tokens[i], "{")) {
      return i + 1;
    }
  }
  return 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when token i is the `=` of an assignment, not half of a
/// comparison. The lexer emits `==`, `!=`, `<=`, `>=` as two one-char
/// punctuation tokens, so look one token back for the other half.
bool IsAssignmentEquals(const std::vector<Token>& toks, int i) {
  if (!TokIs(toks[i], "=")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  return !(TokIs(prev, "=") || TokIs(prev, "!") || TokIs(prev, "<") ||
           TokIs(prev, ">"));
}

}  // namespace

void CheckRequestDiscipline(const std::vector<FileModel>& models,
                            std::vector<Finding>* findings) {
  for (const FileModel& model : models) {
    if (model.source->path.find("src/net/") == std::string::npos) continue;
    const std::vector<Token>& toks = model.tokens;
    for (const FunctionDef& def : ExtractFunctions(model)) {
      if (!IsHandlerName(def.name)) continue;
      bool routed = false;
      int begin = SignatureBegin(toks, def.body_begin);
      for (int i = begin; i < def.body_end && i < static_cast<int>(toks.size());
           ++i) {
        if (toks[i].kind == TokenKind::kIdent &&
            toks[i].text == "RequestContext") {
          routed = true;
          break;
        }
      }
      if (routed) continue;
      // Anchor the finding on the signature's first line so a
      // comment-above suppression sits where the definition starts.
      int line = begin < static_cast<int>(toks.size()) ? toks[begin].line : 0;
      findings->push_back(Finding{
          model.source->path, line, "request-discipline",
          "no-request-context",
          "request handler " + def.name +
              " never routes through RequestContext — its requests get no "
              "id, no wide log event, and no slow-query capture "
              "(docs/SERVER.md)"});
    }

    // Bare BUSY/ERROR composition. The helpers themselves (and the frame
    // struct's NSDMI default) are the allowed assembly sites.
    if (EndsWith(model.source->path, "request_context.h") ||
        EndsWith(model.source->path, "frame.h")) {
      continue;
    }
    for (int i = 3; i < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdent ||
          (toks[i].text != "kBusy" && toks[i].text != "kError")) {
        continue;
      }
      if (!TokIs(toks[i - 1], "::")) continue;
      if (toks[i - 2].kind != TokenKind::kIdent ||
          toks[i - 2].text != "FrameType") {
        continue;
      }
      if (!IsAssignmentEquals(toks, i - 3)) continue;
      findings->push_back(Finding{
          model.source->path, toks[i].line, "request-discipline",
          "allow-bare-response",
          std::string("bare FrameType::") + std::string(toks[i].text) +
              " assignment — compose BUSY/ERROR responses with the "
              "canonical helpers in net/request_context.h so the "
              "structured fields clients parse stay complete"});
    }
  }
}

}  // namespace egolint::internal
