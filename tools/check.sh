#!/usr/bin/env bash
# One-command local lint, matching the CI `lint` job (docs/STATIC_ANALYSIS.md).
#
#   tools/check.sh [build-dir]     (default build dir: build)
#
# Enforced (non-zero exit on failure):
#   * egolint over src/ — the four project-invariant checks.
# Advisory (reported, never fail the script; CI uploads their output):
#   * clang-tidy (bugprone-*, performance-*, concurrency-* via .clang-tidy)
#   * clang-format --dry-run --Werror against .clang-format
# The advisory tier is skipped loudly when the tool is not installed, so the
# script works in minimal containers that only carry the compiler.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

# --- egolint (enforced) -----------------------------------------------------
if [[ ! -x "${BUILD_DIR}/tools/egolint" ]]; then
  echo "check.sh: building egolint (${BUILD_DIR}/tools/egolint missing)"
  cmake -B "${BUILD_DIR}" >/dev/null || exit 2
  cmake --build "${BUILD_DIR}" --target egolint -j >/dev/null || exit 2
fi
echo "== egolint src/ (enforced) =="
if ! "${BUILD_DIR}/tools/egolint" src --report="${BUILD_DIR}/egolint-report.json"; then
  FAILED=1
fi
echo "   report: ${BUILD_DIR}/egolint-report.json"

# --- clang-tidy (advisory) --------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (advisory) =="
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    cmake -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  # Advisory: report but never fail (the repo has not been baselined yet;
  # see docs/STATIC_ANALYSIS.md "Enforcement tiers").
  find src -name '*.cc' -print0 |
    xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet 2>/dev/null |
    tee "${BUILD_DIR}/clang-tidy-report.txt" | tail -n 40 || true
  echo "   report: ${BUILD_DIR}/clang-tidy-report.txt"
else
  echo "== clang-tidy (advisory) == SKIPPED: clang-tidy not installed"
fi

# --- clang-format (advisory) ------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format --dry-run (advisory) =="
  find src tools/egolint tests bench -name '*.h' -o -name '*.cc' -o -name '*.cpp' |
    xargs clang-format --dry-run --Werror 2>"${BUILD_DIR}/clang-format-report.txt" &&
    echo "   formatting clean" ||
    echo "   formatting drift reported in ${BUILD_DIR}/clang-format-report.txt"
else
  echo "== clang-format (advisory) == SKIPPED: clang-format not installed"
fi

if [[ ${FAILED} -ne 0 ]]; then
  echo "check.sh: FAILED (egolint findings above)"
  exit 1
fi
echo "check.sh: OK"
