#!/usr/bin/env bash
# One-command local lint, matching the CI `lint` job (docs/STATIC_ANALYSIS.md).
#
#   tools/check.sh [build-dir]     (default build dir: build)
#
# Enforced (non-zero exit on failure):
#   * egolint over src/ and tools/ — the six project-invariant checks.
#   * clang -Wthread-safety over the annotated lock subsystems (when a
#     clang++ is installed; skipped loudly otherwise — GCC compiles the
#     annotations away, which is exactly why the egolint lock-discipline
#     check exists).
# Advisory (reported, never fail the script; CI uploads their output):
#   * clang-tidy (bugprone-*, performance-*, concurrency-* via .clang-tidy)
#   * clang-format --dry-run --Werror against .clang-format
# The optional tiers are skipped loudly when the tool is not installed, so
# the script works in minimal containers that only carry the compiler.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

# --- egolint (enforced) -----------------------------------------------------
if [[ ! -x "${BUILD_DIR}/tools/egolint" ]]; then
  echo "check.sh: building egolint (${BUILD_DIR}/tools/egolint missing)"
  cmake -B "${BUILD_DIR}" >/dev/null || exit 2
  cmake --build "${BUILD_DIR}" --target egolint -j >/dev/null || exit 2
fi
echo "== egolint src/ tools/ (enforced) =="
if ! "${BUILD_DIR}/tools/egolint" src tools --report="${BUILD_DIR}/egolint-report.json"; then
  FAILED=1
fi
echo "   report: ${BUILD_DIR}/egolint-report.json"

# --- clang thread-safety analysis (enforced when clang is present) -----------
# Syntax-only pass with -Werror=thread-safety over the lock-annotated TUs:
# the same contract CI's thread-safety job enforces with a full clang build.
if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Wthread-safety (enforced) =="
  TSA_FAILED=0
  for tu in src/net/registry.cc src/net/queue.cc src/net/server.cc \
            src/util/thread_pool.cc src/obs/log.cc src/obs/trace.cc \
            src/obs/metrics.cc src/exec/failpoints.cc; do
    if ! clang++ -std=c++20 -fsyntax-only -I src \
         -Wthread-safety -Werror=thread-safety "${tu}"; then
      echo "   thread-safety violation in ${tu}"
      TSA_FAILED=1
    fi
  done
  if [[ ${TSA_FAILED} -ne 0 ]]; then
    FAILED=1
  else
    echo "   all annotated TUs clean"
  fi
else
  echo "== clang -Wthread-safety == SKIPPED: clang++ not installed" \
       "(GCC compiles the annotations away; egolint lock-discipline still ran)"
fi

# --- clang-tidy (advisory) --------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (advisory) =="
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    cmake -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  # Advisory: report but never fail (the repo has not been baselined yet;
  # see docs/STATIC_ANALYSIS.md "Enforcement tiers").
  find src -name '*.cc' -print0 |
    xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet 2>/dev/null |
    tee "${BUILD_DIR}/clang-tidy-report.txt" | tail -n 40 || true
  echo "   report: ${BUILD_DIR}/clang-tidy-report.txt"
else
  echo "== clang-tidy (advisory) == SKIPPED: clang-tidy not installed"
fi

# --- clang-format (advisory) ------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format --dry-run (advisory) =="
  find src tools/egolint tests bench -name '*.h' -o -name '*.cc' -o -name '*.cpp' |
    xargs clang-format --dry-run --Werror 2>"${BUILD_DIR}/clang-format-report.txt" &&
    echo "   formatting clean" ||
    echo "   formatting drift reported in ${BUILD_DIR}/clang-format-report.txt"
else
  echo "== clang-format (advisory) == SKIPPED: clang-format not installed"
fi

if [[ ${FAILED} -ne 0 ]]; then
  echo "check.sh: FAILED (findings above)"
  exit 1
fi
echo "check.sh: OK"
