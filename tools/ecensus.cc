// ecensus — command-line front end to the ego-centric pattern census
// library.
//
//   ecensus generate --type pa|er|ws|rmat --nodes N [options] --out FILE
//   ecensus info --graph FILE
//   ecensus query --graph FILE (--query "SQL" | --query-file FILE)
//                 [--algorithm nd-bas|nd-pvot|nd-diff|pt-bas|pt-opt|pt-rnd]
//                 [--threads T] [--top N] [--csv]
//   ecensus update --graph FILE --updates FILE
//                  (--query "SQL" | --query-file FILE)
//                  [--batch-size N] [--top N] [--csv]
//
// Examples:
//   ecensus generate --type pa --nodes 100000 --labels 4 --out g.graph
//   ecensus query --graph g.graph
//     --query "PATTERN t {?A-?B; ?B-?C; ?C-?A;}
//              SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes" --top 10
//   ecensus update --graph g.graph --updates stream.txt
//     --query "PATTERN t {?A-?B; ?B-?C; ?C-?A;}
//              SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/update_stream.h"
#include "exec/governor.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lang/engine.h"
#include "lang/maintain.h"
#include "net/client.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using namespace egocensus;

/// Minimal --flag value parser; flags may appear in any order.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--")) {
        std::string key = arg.substr(2);
        // --key=value binds inline; without '=' the next non-flag token is
        // the value. Splitting matters for correctness, not just
        // convenience: before it, "--matcher=bogus" became the key
        // "matcher=bogus", so Get("matcher") silently fell back to its
        // default instead of rejecting the unknown value.
        std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "1";  // boolean flag
        }
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::uint64_t GetInt(const std::string& key, std::uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// Single exit path for every failing subcommand: renders the Status and
/// picks the exit code from its class (2 for usage/argument errors, 1 for
/// everything else — parse failures, I/O failures, governor stops).
int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return status.code() == StatusCode::kInvalidArgument ? 2 : 1;
}

/// sysexits.h EX_TEMPFAIL: the daemon was busy (or draining) and the
/// request never ran — retrying later is expected to succeed.
constexpr int kExitTempFail = 75;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  ecensus generate --type pa|er|ws|rmat --nodes N [--edges-per-node M]\n"
      "                   [--edges E] [--labels L] [--seed S] --out FILE\n"
      "  ecensus info --graph FILE\n"
      "  ecensus query --graph FILE (--query SQL | --query-file FILE)\n"
      "                [--algorithm nd-bas|nd-pvot|nd-diff|pt-bas|pt-opt|pt-rnd]\n"
      "                [--matcher cn|gql] [--threads T (0 = all cores)]\n"
      "                [--fast-path auto|force|off]\n"
      "                [--top N] [--csv] [--seed S]\n"
      "                [--timeout-ms MS] [--memory-budget-mb MB]\n"
      "                [--degrade-approx [RATE]]\n"
      "                [--trace FILE.json] [--metrics FILE.json|.csv]\n"
      "  ecensus stats --graph FILE (--query SQL | --query-file FILE)\n"
      "                [query options] (runs the query, prints metric tables)\n"
      "  ecensus update --graph FILE --updates FILE\n"
      "                 (--query SQL | --query-file FILE)\n"
      "                 [--batch-size N] [--top N] [--csv] [--seed S]\n"
      "                 [--timeout-ms MS] [--memory-budget-mb MB]\n"
      "                 [--trace FILE.json] [--metrics FILE.json|.csv]\n"
      "  ecensus remote query --connect HOST:PORT --graph NAME\n"
      "                 (--query SQL | --query-file FILE) [query options]\n"
      "  ecensus remote update --connect HOST:PORT --graph NAME\n"
      "                 --updates FILE [--timeout-ms MS]\n"
      "  ecensus remote status|shutdown --connect HOST:PORT\n"
      "                 [--slow-trace [ID|latest]] (status only)\n"
      "  ecensus remote metrics --connect HOST:PORT\n"
      "  ecensus remote load --connect HOST:PORT --name NAME --path FILE\n"
      "  ecensus remote unload --connect HOST:PORT --name NAME\n"
      "  (remote verbs accept --request-id ID; the daemon echoes it in the\n"
      "   response and its telemetry — docs/OBSERVABILITY.md. Also:\n"
      "   --tenant NAME (fair-queue tenant tag),\n"
      "   --connect-timeout-ms MS (default 5000), --io-timeout-ms MS,\n"
      "   --retries N --retry-budget-ms MS (backoff honoring the daemon's\n"
      "   retry_after_ms hint; off by default, and for update only with\n"
      "   --idempotent). BUSY exits 75 (EX_TEMPFAIL).)\n"
      "  ecensus --version\n"
      "\n"
      "Governed runs (--timeout-ms / --memory-budget-mb) that stop early\n"
      "still print their partial results — with per-focal .state columns on\n"
      "interrupted aggregates — and exit non-zero with the stop reason.\n"
      "--degrade-approx re-covers interrupted focal nodes with sampled\n"
      "estimates (optional RATE in (0,1], default 0.1).\n"
      "--fast-path controls the combinatorial <= 4-node kernels\n"
      "(docs/FAST_PATH.md): auto routes eligible censuses, force errors when\n"
      "ineligible, off always runs the generic engine. Default: auto, or off\n"
      "when --algorithm/--matcher picked an engine explicitly.\n";
  return 2;
}

/// --trace / --metrics export destinations. Requesting either turns the
/// instrumentation on for the whole run.
struct ObsExport {
  std::string trace_path;
  std::string metrics_path;

  bool requested() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

ObsExport ObsFromArgs(const Args& args) {
  ObsExport o;
  o.trace_path = args.Get("trace", "");
  o.metrics_path = args.Get("metrics", "");
  if (o.requested()) obs::SetEnabled(true);
  return o;
}

/// Writes the Chrome trace and/or the metrics dump (JSON, or CSV when the
/// path ends in .csv). Returns non-zero if an output file cannot be opened.
int WriteObsExports(const ObsExport& o) {
  if (!o.trace_path.empty()) {
    std::ofstream out(o.trace_path);
    if (!out) {
      return Fail(Status::Internal("cannot open trace output: " +
                                   o.trace_path));
    }
    // egolint: allow-obs(Tracer is declared unconditionally and stubbed under EGO_OBS_ENABLED=0 — the export is an empty trace, not a build break)
    obs::Tracer::Global().WriteChromeTrace(out);
    std::cerr << "trace: " << o.trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!o.metrics_path.empty()) {
    std::ofstream out(o.metrics_path);
    if (!out) {
      return Fail(Status::Internal("cannot open metrics output: " +
                                   o.metrics_path));
    }
    // egolint: allow-obs(MetricsSnapshot / Registry are declared unconditionally and stubbed under EGO_OBS_ENABLED=0 — the export is empty, not a build break)
    obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
    if (EndsWith(o.metrics_path, ".csv")) {
      snap.WriteCsv(out);
    } else {
      snap.WriteJson(out);
    }
    std::cerr << "metrics: " << o.metrics_path << "\n";
  }
  return 0;
}

/// Builds a Governor from --timeout-ms / --memory-budget-mb; true when
/// either limit was requested (callers then thread the governor through).
bool GovernorFromArgs(const Args& args, Governor* governor) {
  bool governed = false;
  if (args.Has("timeout-ms")) {
    governor->SetDeadline(Deadline::AfterMillis(args.GetInt("timeout-ms", 0)));
    governed = true;
  }
  if (args.Has("memory-budget-mb")) {
    governor->SetMemoryLimitBytes(args.GetInt("memory-budget-mb", 0) *
                                  1024ull * 1024ull);
    governed = true;
  }
  return governed;
}

/// Per-aggregate execution outcome of an interrupted query (stderr, next to
/// the partial result table on stdout).
void PrintExecSummary(const std::vector<QueryEngine::AggregateExec>& exec,
                      std::ostream& os) {
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const QueryEngine::AggregateExec& e = exec[i];
    os << "aggregate " << i << ": " << e.status.ToString()
       << " (focal complete=" << e.complete << " approx=" << e.approx
       << " pending=" << e.pending << ")\n";
  }
}

/// Per-aggregate census phase stats, one CSV row per aggregate (timings,
/// threads, peak neighborhood, execution outcome). Written to stderr so
/// stdout stays a pure result table — byte-identical across thread counts
/// and repeat runs (the exec columns are OK/all-complete when ungoverned).
void WriteStatsCsv(const std::vector<CensusStats>& stats,
                   const std::vector<QueryEngine::AggregateExec>& exec,
                   std::ostream& os) {
  if (stats.empty()) return;
  os << "aggregate,num_matches,match_seconds,index_seconds,census_seconds,"
        "threads_used,peak_neighborhood,exec_status,focal_complete,"
        "focal_approx,focal_pending\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const CensusStats& s = stats[i];
    os << i << "," << s.num_matches << "," << s.match_seconds << ","
       << s.index_seconds << "," << s.census_seconds << "," << s.threads_used
       << "," << s.peak_neighborhood;
    if (i < exec.size()) {
      const QueryEngine::AggregateExec& e = exec[i];
      os << "," << StatusCodeName(e.status.code()) << "," << e.complete << ","
         << e.approx << "," << e.pending;
    } else {
      os << ",OK,0,0,0";
    }
    os << "\n";
  }
}

/// Highest sortable column for --top: count columns sort, trailing .state
/// columns (appended on interrupted governed runs) do not.
std::size_t TopSortColumn(const ResultTable& table) {
  std::size_t cols = table.NumColumns();
  while (cols > 0 && EndsWith(table.columns()[cols - 1], ".state")) --cols;
  return cols;
}

/// Reads --query inline text or --query-file contents.
[[nodiscard]] Result<std::string> ReadQueryArg(const Args& args) {
  std::string query = args.Get("query", "");
  if (query.empty() && args.Has("query-file")) {
    std::ifstream in(args.Get("query-file", ""));
    if (!in) {
      return Status::NotFound("cannot open query file: " +
                              args.Get("query-file", ""));
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    query = ss.str();
  }
  if (query.empty()) {
    return Status::InvalidArgument("--query or --query-file is required");
  }
  return query;
}

int RunGenerate(const Args& args) {
  std::string type = args.Get("type", "pa");
  std::string out = args.Get("out", "");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("generate: --out is required"));
  }
  std::uint32_t nodes = static_cast<std::uint32_t>(args.GetInt("nodes", 10000));
  std::uint32_t labels = static_cast<std::uint32_t>(args.GetInt("labels", 1));
  std::uint64_t seed = args.GetInt("seed", 42);
  Graph graph;
  if (type == "pa") {
    GeneratorOptions gen;
    gen.num_nodes = nodes;
    gen.edges_per_node =
        static_cast<std::uint32_t>(args.GetInt("edges-per-node", 5));
    gen.num_labels = labels;
    gen.seed = seed;
    graph = GeneratePreferentialAttachment(gen);
  } else if (type == "er") {
    graph = GenerateErdosRenyi(nodes, args.GetInt("edges", nodes * 5ull),
                               labels, seed);
  } else if (type == "ws") {
    graph = GenerateWattsStrogatz(
        nodes, static_cast<std::uint32_t>(args.GetInt("edges-per-node", 5)),
        args.GetDouble("rewire", 0.1), labels, seed);
  } else if (type == "rmat") {
    std::uint32_t scale = 1;
    while ((1u << scale) < nodes) ++scale;
    graph = GenerateRmat(scale, args.GetInt("edges", nodes * 5ull), 0.45,
                         0.22, 0.22, labels, seed);
  } else {
    return Fail(Status::InvalidArgument("generate: unknown --type " + type));
  }
  Status status = SaveGraph(graph, out);
  if (!status.ok()) return Fail(status);
  std::cout << "wrote " << graph.NumNodes() << " nodes, " << graph.NumEdges()
            << " edges to " << out << "\n";
  return 0;
}

int RunInfo(const Args& args) {
  auto graph = LoadGraph(args.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  std::uint64_t degree_sum = 0;
  std::vector<std::uint32_t> degrees(graph->NumNodes());
  std::vector<std::uint64_t> label_counts(graph->NumLabels(), 0);
  for (NodeId n = 0; n < graph->NumNodes(); ++n) {
    degrees[n] = graph->Degree(n);
    degree_sum += degrees[n];
    ++label_counts[graph->label(n)];
  }
  std::sort(degrees.begin(), degrees.end());
  auto percentile = [&degrees](double p) -> std::uint32_t {
    if (degrees.empty()) return 0;
    std::size_t i = static_cast<std::size_t>(p * (degrees.size() - 1));
    return degrees[i];
  };
  std::cout << "nodes:      " << graph->NumNodes() << "\n"
            << "edges:      " << graph->NumEdges() << "\n"
            << "directed:   " << (graph->directed() ? "yes" : "no") << "\n"
            << "labels:     " << graph->NumLabels() << "\n"
            << "avg degree: "
            << (graph->NumNodes() > 0
                    ? static_cast<double>(degree_sum) / graph->NumNodes()
                    : 0)
            << "\n";
  std::cout << "degree distribution:\n"
            << "  min=" << (degrees.empty() ? 0 : degrees.front())
            << " p50=" << percentile(0.50) << " p90=" << percentile(0.90)
            << " p99=" << percentile(0.99)
            << " max=" << (degrees.empty() ? 0 : degrees.back()) << "\n";
  // Log2 histogram of degrees: bucket b covers [2^b, 2^(b+1)).
  std::vector<std::uint64_t> buckets;
  std::uint64_t zero_degree = 0;
  for (std::uint32_t d : degrees) {
    if (d == 0) {
      ++zero_degree;
      continue;
    }
    std::size_t b = 0;
    while ((1u << (b + 1)) <= d) ++b;
    if (b >= buckets.size()) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  if (zero_degree > 0) {
    std::cout << "  deg 0        : " << zero_degree << "\n";
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    std::cout << "  deg [" << (1u << b) << ", " << (1u << (b + 1))
              << "): " << buckets[b] << "\n";
  }
  std::cout << "label histogram:\n";
  for (Label l = 0; l < graph->NumLabels(); ++l) {
    std::cout << "  label " << l << ": " << label_counts[l];
    if (graph->NumNodes() > 0) {
      std::cout << " ("
                << 100.0 * static_cast<double>(label_counts[l]) /
                       graph->NumNodes()
                << "%)";
    }
    std::cout << "\n";
  }
  return 0;
}

/// Prints the metrics snapshot as aligned text tables (counters, gauges,
/// histograms with approximate percentiles) — the `ecensus stats` view.
// egolint: allow-obs(MetricsSnapshot is declared unconditionally and stubbed under EGO_OBS_ENABLED=0 — stats mode prints "no metrics recorded")
void PrintMetricsTables(const obs::MetricsSnapshot& snap, std::ostream& os) {
  if (snap.empty()) {
    os << "no metrics recorded\n";
    return;
  }
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TablePrinter table({"metric", "kind", "value"});
    for (const auto& [name, value] : snap.counters) {
      table.AddRow({name, "counter", std::to_string(value)});
    }
    for (const auto& [name, value] : snap.gauges) {
      table.AddRow({name, "gauge(max)", std::to_string(value)});
    }
    table.PrintText(os);
  }
  if (!snap.histograms.empty()) {
    os << "\n";
    TablePrinter table(
        {"histogram", "count", "mean", "p50<=", "p99<=", "max"});
    for (const auto& [name, h] : snap.histograms) {
      table.AddRow({name, std::to_string(h.count),
                    TablePrinter::FormatDouble(h.Mean(), 2),
                    std::to_string(h.ApproxPercentile(0.50)),
                    std::to_string(h.ApproxPercentile(0.99)),
                    std::to_string(h.max)});
    }
    table.PrintText(os);
  }
}

int RunQuery(const Args& args, bool stats_mode) {
  auto graph = LoadGraph(args.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto query = ReadQueryArg(args);
  if (!query.ok()) return Fail(query.status());

  ObsExport obs_export = ObsFromArgs(args);
  if (stats_mode) obs::SetEnabled(true);

  QueryEngine engine(*graph);
  QueryEngine::Options options;
  options.rnd_seed = args.GetInt("seed", 99);
  options.census.num_threads =
      static_cast<std::uint32_t>(args.GetInt("threads", 1));
  Governor governor;
  if (GovernorFromArgs(args, &governor)) {
    options.census.governor = &governor;
  }
  if (args.Has("degrade-approx")) {
    options.census.degrade_to_approx = true;
    double rate = args.GetDouble("degrade-approx", 0.0);
    if (rate > 0.0 && rate <= 1.0) options.census.degrade_sample_rate = rate;
  }
  std::string algorithm = args.Get("algorithm", "");
  if (!algorithm.empty()) {
    options.auto_algorithm = false;
    static const std::map<std::string, CensusAlgorithm> kNames = {
        {"nd-bas", CensusAlgorithm::kNdBas},
        {"nd-pvot", CensusAlgorithm::kNdPvot},
        {"nd-diff", CensusAlgorithm::kNdDiff},
        {"pt-bas", CensusAlgorithm::kPtBas},
        {"pt-opt", CensusAlgorithm::kPtOpt},
        {"pt-rnd", CensusAlgorithm::kPtRnd},
    };
    auto it = kNames.find(ToLower(algorithm));
    if (it == kNames.end()) {
      return Fail(Status::InvalidArgument("unknown --algorithm " + algorithm));
    }
    options.census.algorithm = it->second;
  }
  std::string matcher = ToLower(args.Get("matcher", "cn"));
  if (matcher == "gql") {
    options.census.use_gql_matcher = true;
  } else if (matcher != "cn") {
    return Fail(Status::InvalidArgument("unknown --matcher " + matcher +
                                        " (expected cn or gql)"));
  }
  // Fast-path routing. An explicit --algorithm/--matcher without
  // --fast-path pins the fast path off: asking for a specific engine means
  // that engine should actually run (and its matcher stats appear).
  std::string fast_path = ToLower(args.Get("fast-path", ""));
  if (fast_path.empty()) {
    if (args.Has("algorithm") || args.Has("matcher")) {
      options.census.fast_path = FastPathMode::kOff;
    }
  } else if (fast_path == "auto") {
    options.census.fast_path = FastPathMode::kAuto;
  } else if (fast_path == "force") {
    options.census.fast_path = FastPathMode::kForce;
  } else if (fast_path == "off") {
    options.census.fast_path = FastPathMode::kOff;
  } else {
    return Fail(Status::InvalidArgument("unknown --fast-path " + fast_path +
                                        " (expected auto, force or off)"));
  }
  auto result = engine.Execute(*query, options);
  if (!result.ok()) return Fail(result.status());
  // A governed run that stopped early still produced a (partial) table;
  // print it, then exit non-zero with the stop reason.
  Status exec_status = engine.last_exec_status();
  if (args.Has("top") && TopSortColumn(*result) >= 2) {
    result->SortByColumnDesc(TopSortColumn(*result) - 1);
  }
  if (stats_mode) {
    // Result rows are elided: the subcommand's product is the metric view.
    std::cout << "query returned " << result->NumRows() << " rows\n\n";
    // egolint: allow-obs(Registry is declared unconditionally and stubbed under EGO_OBS_ENABLED=0 — stats mode degrades to an empty table)
    PrintMetricsTables(obs::Registry::Global().Snapshot(), std::cout);
  } else if (args.Has("csv")) {
    result->WriteCsv(std::cout);
    WriteStatsCsv(engine.last_stats(), engine.last_exec(), std::cerr);
  } else {
    std::size_t limit = args.Has("top")
                            ? static_cast<std::size_t>(args.GetInt("top", 20))
                            : result->NumRows();
    std::cout << result->ToString(limit);
    for (std::size_t i = 0; i < engine.last_stats().size(); ++i) {
      const CensusStats& s = engine.last_stats()[i];
      std::cout << "aggregate " << i << ": "
                << (s.fastpath_routed != 0 ? "engine=fastpath " : "")
                << "threads=" << s.threads_used
                << " matches=" << s.num_matches << " match=" << s.match_seconds
                << "s index=" << s.index_seconds
                << "s census=" << s.census_seconds
                << "s peak_neighborhood=" << s.peak_neighborhood << "\n";
    }
  }
  if (!exec_status.ok()) {
    PrintExecSummary(engine.last_exec(), std::cerr);
    WriteObsExports(obs_export);
    return Fail(exec_status);
  }
  return WriteObsExports(obs_export);
}

int RunUpdate(const Args& args) {
  auto graph = LoadGraph(args.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto query = ReadQueryArg(args);
  if (!query.ok()) return Fail(query.status());
  ObsExport obs_export = ObsFromArgs(args);
  std::string updates_path = args.Get("updates", "");
  if (updates_path.empty()) {
    return Fail(Status::InvalidArgument("update: --updates is required"));
  }
  auto updates = LoadUpdateStream(updates_path);
  if (!updates.ok()) return Fail(updates.status());

  DynamicGraph dynamic(std::move(*graph));
  MaintainSession::Options options;
  options.rnd_seed = args.GetInt("seed", 99);
  Governor governor;
  if (GovernorFromArgs(args, &governor)) {
    options.governor = &governor;
  }
  auto session = MaintainSession::Create(&dynamic, *query, options);
  if (!session.ok()) return Fail(session.status());

  std::size_t batch_size =
      static_cast<std::size_t>(args.GetInt("batch-size", updates->size()));
  if (batch_size == 0) batch_size = 1;
  bool csv = args.Has("csv");
  MaintenanceStats total;
  std::span<const GraphUpdate> remaining(*updates);
  std::size_t batch_index = 0;
  while (!remaining.empty()) {
    std::size_t n = std::min(batch_size, remaining.size());
    auto deltas = session->ApplyBatch(remaining.first(n));
    if (!deltas.ok()) return Fail(deltas.status());
    remaining = remaining.subspan(n);
    total.Accumulate(session->last_stats());
    if (!csv) {
      std::cout << "batch " << batch_index << " (" << n << " updates, "
                << deltas->NumRows() << " changed counts):\n";
      if (deltas->NumRows() > 0) {
        std::cout << deltas->ToString(deltas->NumRows());
      }
    }
    ++batch_index;
  }

  ResultTable counts = session->CountsTable();
  if (args.Has("top") && TopSortColumn(counts) >= 2) {
    counts.SortByColumnDesc(TopSortColumn(counts) - 1);
  }
  if (csv) {
    counts.WriteCsv(std::cout);
  } else {
    std::cout << "maintained counts:\n";
    std::size_t limit = args.Has("top")
                            ? static_cast<std::size_t>(args.GetInt("top", 20))
                            : counts.NumRows();
    std::cout << counts.ToString(limit);
    std::cout << "stats: applied=" << total.updates_applied
              << " noop=" << total.noop_updates
              << " delta_matches=" << total.delta_matches
              << " recounted=" << total.recounted_nodes
              << " adjusted=" << total.adjusted_nodes
              << " changed=" << total.changed_nodes << "\n";
    if (total.seconds > 0) {
      std::cout << "throughput: "
                << static_cast<double>(total.updates_applied +
                                       total.noop_updates) /
                       total.seconds
                << " updates/sec (" << total.seconds << "s total)\n";
    }
  }
  return WriteObsExports(obs_export);
}

/// `ecensus remote ACTION --connect HOST:PORT ...` — the same verbs against
/// a running ecensusd instead of a local graph file. Exit codes mirror the
/// local contract: the response's status crosses the wire as text and maps
/// back through the same Fail() (2 for usage errors, 1 for everything else,
/// including governed stops reported in exec_status).
int RunRemote(const std::string& action, const Args& args) {
  std::string connect = args.Get("connect", "");
  if (connect.empty()) {
    std::cerr << "remote: --connect HOST:PORT is required\n";
    return Usage();
  }
  auto endpoint = net::ParseEndpoint(connect);
  if (!endpoint.ok()) {
    std::cerr << endpoint.status().ToString() << "\n";
    return Usage();
  }

  // Client-propagated request id (docs/SERVER.md, "Request telemetry"):
  // echoed in the response headers and the daemon's log/trace records, so
  // callers can correlate an invocation with the server-side telemetry.
  std::string request_id = args.Get("request-id", "");

  net::Message request;
  if (action == "query") {
    std::string graph = args.Get("graph", "");
    if (graph.empty()) {
      return Fail(Status::InvalidArgument("remote query: --graph NAME names "
                                          "a graph loaded in the daemon"));
    }
    auto query = ReadQueryArg(args);
    if (!query.ok()) return Fail(query.status());
    request = net::Client::QueryRequest(graph, *query);
    if (args.Has("timeout-ms")) {
      request.headers["deadline_ms"] =
          std::to_string(args.GetInt("timeout-ms", 0));
    }
    if (args.Has("memory-budget-mb")) {
      request.headers["memory_budget_mb"] =
          std::to_string(args.GetInt("memory-budget-mb", 0));
    }
    if (args.Has("threads")) {
      request.headers["threads"] = std::to_string(args.GetInt("threads", 1));
    }
    if (args.Has("algorithm")) {
      request.headers["algorithm"] = args.Get("algorithm", "");
    }
    if (args.Has("matcher")) {
      request.headers["matcher"] = args.Get("matcher", "cn");
    }
    if (args.Has("fast-path")) {
      request.headers["fast_path"] = args.Get("fast-path", "auto");
    }
    if (args.Has("top")) {
      request.headers["top"] = std::to_string(args.GetInt("top", 20));
    }
    if (args.Has("seed")) {
      request.headers["seed"] = std::to_string(args.GetInt("seed", 99));
    }
    if (args.Has("degrade-approx")) {
      // Wire format is integer permille (headers are integers); the CLI's
      // fractional RATE is converted here.
      double rate = args.GetDouble("degrade-approx", 0.0);
      request.headers["degrade-approx"] = std::to_string(
          rate > 0.0 && rate <= 1.0
              ? static_cast<std::uint64_t>(rate * 1000.0)
              : 0);
    }
    if (!args.Has("csv")) request.headers["format"] = "text";
  } else if (action == "update") {
    std::string graph = args.Get("graph", "");
    std::string updates_path = args.Get("updates", "");
    if (graph.empty() || updates_path.empty()) {
      return Fail(Status::InvalidArgument(
          "remote update: --graph NAME and --updates FILE are required"));
    }
    std::ifstream in(updates_path);
    if (!in) {
      return Fail(Status::NotFound("cannot open update stream: " +
                                   updates_path));
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    request = net::Client::UpdateRequest(graph, ss.str());
    if (args.Has("timeout-ms")) {
      request.headers["deadline_ms"] =
          std::to_string(args.GetInt("timeout-ms", 0));
    }
  } else if (action == "status") {
    request = net::Client::StatusRequest();
    if (args.Has("slow-trace")) {
      // "latest" (or an empty value) dumps the newest capture; a request id
      // dumps that capture. The body is a Chrome trace JSON.
      request.headers["slow_trace"] = args.Get("slow-trace", "latest");
    }
  } else if (action == "metrics") {
    request = net::Client::MetricsRequest();
  } else if (action == "load") {
    std::string name = args.Get("name", "");
    std::string path = args.Get("path", "");
    if (name.empty() || path.empty()) {
      return Fail(Status::InvalidArgument(
          "remote load: --name NAME and --path FILE are required"));
    }
    request = net::Client::LoadRequest(name, path);
  } else if (action == "unload") {
    std::string name = args.Get("name", "");
    if (name.empty()) {
      return Fail(
          Status::InvalidArgument("remote unload: --name NAME is required"));
    }
    request = net::Client::UnloadRequest(name);
  } else if (action == "shutdown") {
    request = net::Client::ShutdownRequest();
  } else {
    std::cerr << "remote: unknown action '" << action << "'\n";
    return Usage();
  }

  if (!request_id.empty()) request.headers["request_id"] = request_id;
  // Tenant tag for the daemon's fair queue (docs/SERVER.md, "Admission and
  // queueing"). Invalid names fall back to the shared default tenant
  // server-side rather than erroring.
  if (args.Has("tenant")) request.headers["tenant"] = args.Get("tenant", "");

  net::Client::Options client_options;
  client_options.connect_timeout_ms =
      static_cast<int>(args.GetInt("connect-timeout-ms", 5000));
  client_options.io_timeout_ms =
      static_cast<int>(args.GetInt("io-timeout-ms", 0));

  // Retries are opt-in, and gated for UPDATE: a retried update whose first
  // attempt actually executed (the response just never arrived) would
  // apply twice. --idempotent is the caller asserting that is safe.
  int retries = static_cast<int>(args.GetInt("retries", 0));
  if (retries > 0 && action == "update" && !args.Has("idempotent")) {
    return Fail(Status::InvalidArgument(
        "remote update: --retries requires --idempotent (a retried update "
        "may apply twice when only the response was lost)"));
  }
  net::RetryPolicy policy;
  policy.max_retries = retries;
  policy.budget_ms =
      static_cast<std::uint64_t>(args.GetInt("retry-budget-ms", 15000));
  net::RetryStats retry_stats;
  auto response = net::CallWithRetry(*endpoint, request, client_options,
                                     policy, &retry_stats);
  if (!response.ok()) return Fail(response.status());
  if (retry_stats.attempts > 1) {
    std::cerr << "retried: " << retry_stats.attempts << " attempts, "
              << retry_stats.slept_ms << " ms backed off\n";
  }

  // BUSY is a temporary condition, not a failure of the request itself:
  // exit 75 (EX_TEMPFAIL) so wrappers can distinguish "try again later"
  // from a real error's exit 1.
  if (response->type == net::FrameType::kBusy) {
    net::BusyInfo busy = net::BusyInfoFromResponse(*response);
    std::cerr << net::ResponseToStatus(*response).ToString() << "\n";
    std::cerr << "busy: inflight=" << busy.inflight << "/" << busy.capacity
              << " queued=" << busy.queued
              << " retry_after_ms=" << busy.retry_after_ms
              << (busy.draining ? " (draining)" : "") << "\n";
    return kExitTempFail;
  }

  // The RESULT body is the payload (result table, JSON, or confirmation);
  // side data (stop_reason, focal tallies) goes to stderr so stdout stays
  // pipeable, exactly like the local verbs. ERROR/BUSY bodies reach stderr
  // through Fail below instead.
  if (response->type == net::FrameType::kResult) std::cout << response->body;
  if (response->HasHeader("stop_reason") &&
      response->Header("stop_reason", "none") != "none") {
    std::cerr << "stop_reason: " << response->Header("stop_reason", "none")
              << " (focal complete=" << response->Header("focal_complete", "0")
              << " approx=" << response->Header("focal_approx", "0")
              << " pending=" << response->Header("focal_pending", "0")
              << ")\n";
  }
  Status outcome = net::ResponseToStatus(*response);
  if (!outcome.ok()) return Fail(outcome);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::cout << BuildInfoString() << "\n";
    return 0;
  }
  if (command == "remote") {
    if (argc < 3) {
      std::cerr << "remote: an action is required "
                   "(query|update|status|metrics|load|unload|shutdown)\n";
      return Usage();
    }
    return RunRemote(argv[2], Args(argc, argv, 3));
  }
  Args args(argc, argv, 2);
  if (command == "generate") return RunGenerate(args);
  if (command == "info") return RunInfo(args);
  if (command == "query") return RunQuery(args, /*stats_mode=*/false);
  if (command == "stats") return RunQuery(args, /*stats_mode=*/true);
  if (command == "update") return RunUpdate(args);
  std::cerr << "unknown subcommand: " << command << "\n";
  return Usage();
}
