// ecensus — command-line front end to the ego-centric pattern census
// library.
//
//   ecensus generate --type pa|er|ws|rmat --nodes N [options] --out FILE
//   ecensus info --graph FILE
//   ecensus query --graph FILE (--query "SQL" | --query-file FILE)
//                 [--algorithm nd-bas|nd-pvot|nd-diff|pt-bas|pt-opt|pt-rnd]
//                 [--top N] [--csv]
//
// Examples:
//   ecensus generate --type pa --nodes 100000 --labels 4 --out g.graph
//   ecensus query --graph g.graph \
//     --query "PATTERN t {?A-?B; ?B-?C; ?C-?A;}
//              SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes" --top 10

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "lang/engine.h"
#include "util/strings.h"

namespace {

using namespace egocensus;

/// Minimal --flag value parser; flags may appear in any order.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--")) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "1";  // boolean flag
        }
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::uint64_t GetInt(const std::string& key, std::uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::cerr <<
      "usage:\n"
      "  ecensus generate --type pa|er|ws|rmat --nodes N [--edges-per-node M]\n"
      "                   [--edges E] [--labels L] [--seed S] --out FILE\n"
      "  ecensus info --graph FILE\n"
      "  ecensus query --graph FILE (--query SQL | --query-file FILE)\n"
      "                [--algorithm nd-bas|nd-pvot|nd-diff|pt-bas|pt-opt|pt-rnd]\n"
      "                [--top N] [--csv] [--seed S]\n";
  return 2;
}

int RunGenerate(const Args& args) {
  std::string type = args.Get("type", "pa");
  std::string out = args.Get("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out is required\n";
    return 2;
  }
  std::uint32_t nodes = static_cast<std::uint32_t>(args.GetInt("nodes", 10000));
  std::uint32_t labels = static_cast<std::uint32_t>(args.GetInt("labels", 1));
  std::uint64_t seed = args.GetInt("seed", 42);
  Graph graph;
  if (type == "pa") {
    GeneratorOptions gen;
    gen.num_nodes = nodes;
    gen.edges_per_node =
        static_cast<std::uint32_t>(args.GetInt("edges-per-node", 5));
    gen.num_labels = labels;
    gen.seed = seed;
    graph = GeneratePreferentialAttachment(gen);
  } else if (type == "er") {
    graph = GenerateErdosRenyi(nodes, args.GetInt("edges", nodes * 5ull),
                               labels, seed);
  } else if (type == "ws") {
    graph = GenerateWattsStrogatz(
        nodes, static_cast<std::uint32_t>(args.GetInt("edges-per-node", 5)),
        args.GetDouble("rewire", 0.1), labels, seed);
  } else if (type == "rmat") {
    std::uint32_t scale = 1;
    while ((1u << scale) < nodes) ++scale;
    graph = GenerateRmat(scale, args.GetInt("edges", nodes * 5ull), 0.45,
                         0.22, 0.22, labels, seed);
  } else {
    std::cerr << "generate: unknown --type " << type << "\n";
    return 2;
  }
  Status status = SaveGraph(graph, out);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << graph.NumNodes() << " nodes, " << graph.NumEdges()
            << " edges to " << out << "\n";
  return 0;
}

int RunInfo(const Args& args) {
  auto graph = LoadGraph(args.Get("graph", ""));
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::uint64_t degree_sum = 0;
  std::uint32_t max_degree = 0;
  for (NodeId n = 0; n < graph->NumNodes(); ++n) {
    degree_sum += graph->Degree(n);
    max_degree = std::max(max_degree, graph->Degree(n));
  }
  std::cout << "nodes:      " << graph->NumNodes() << "\n"
            << "edges:      " << graph->NumEdges() << "\n"
            << "directed:   " << (graph->directed() ? "yes" : "no") << "\n"
            << "labels:     " << graph->NumLabels() << "\n"
            << "avg degree: "
            << (graph->NumNodes() > 0
                    ? static_cast<double>(degree_sum) / graph->NumNodes()
                    : 0)
            << "\n"
            << "max degree: " << max_degree << "\n";
  return 0;
}

int RunQuery(const Args& args) {
  auto graph = LoadGraph(args.Get("graph", ""));
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::string query = args.Get("query", "");
  if (query.empty() && args.Has("query-file")) {
    std::ifstream in(args.Get("query-file", ""));
    if (!in) {
      std::cerr << "cannot open query file\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    query = ss.str();
  }
  if (query.empty()) {
    std::cerr << "query: --query or --query-file is required\n";
    return 2;
  }

  QueryEngine engine(*graph);
  QueryEngine::Options options;
  options.rnd_seed = args.GetInt("seed", 99);
  std::string algorithm = args.Get("algorithm", "");
  if (!algorithm.empty()) {
    options.auto_algorithm = false;
    static const std::map<std::string, CensusAlgorithm> kNames = {
        {"nd-bas", CensusAlgorithm::kNdBas},
        {"nd-pvot", CensusAlgorithm::kNdPvot},
        {"nd-diff", CensusAlgorithm::kNdDiff},
        {"pt-bas", CensusAlgorithm::kPtBas},
        {"pt-opt", CensusAlgorithm::kPtOpt},
        {"pt-rnd", CensusAlgorithm::kPtRnd},
    };
    auto it = kNames.find(ToLower(algorithm));
    if (it == kNames.end()) {
      std::cerr << "unknown --algorithm " << algorithm << "\n";
      return 2;
    }
    options.census.algorithm = it->second;
  }
  auto result = engine.Execute(query, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  if (args.Has("top") && result->NumColumns() >= 2) {
    result->SortByColumnDesc(result->NumColumns() - 1);
  }
  if (args.Has("csv")) {
    result->WriteCsv(std::cout);
  } else {
    std::size_t limit = args.Has("top")
                            ? static_cast<std::size_t>(args.GetInt("top", 20))
                            : result->NumRows();
    std::cout << result->ToString(limit);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "generate") return RunGenerate(args);
  if (command == "info") return RunInfo(args);
  if (command == "query") return RunQuery(args);
  return Usage();
}
