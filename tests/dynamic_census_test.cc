// Property tests of the dynamic-update subsystem: IncrementalCensus counts
// are checked *exactly* against a from-scratch census on the equivalent
// static graph after every update batch, across random insert/delete
// streams (with no-op duplicates and node add/remove), pattern shapes
// (triangle, square, labeled, negated, COUNTSP), radii, and directedness.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "census/census.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_census.h"
#include "graph/generators.h"
#include "lang/maintain.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

Pattern MustParse(const std::string& text) {
  auto p = ParsePattern(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

/// From-scratch reference: ND-BAS census on the materialized static graph.
std::vector<std::uint64_t> Reference(const DynamicGraph& dg, const Pattern& p,
                                     std::uint32_t k,
                                     const std::string& subpattern) {
  Graph snapshot = dg.Materialize();
  std::vector<NodeId> focal;
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    if (!dg.NodeRemoved(n)) focal.push_back(n);
  }
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdBas;
  opts.k = k;
  opts.subpattern = subpattern;
  auto r = RunCensus(snapshot, p, focal, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->counts;
}

void ExpectCountsMatchReference(const DynamicGraph& dg,
                                const IncrementalCensus& census,
                                const Pattern& p, std::uint32_t k,
                                const std::string& subpattern,
                                const std::string& context) {
  auto reference = Reference(dg, p, k, subpattern);
  ASSERT_EQ(census.counts().size(), dg.NumNodes()) << context;
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    if (dg.NodeRemoved(n)) {
      EXPECT_EQ(census.counts()[n], 0u) << context << " removed node " << n;
    } else {
      ASSERT_EQ(census.counts()[n], reference[n])
          << context << " node " << n;
    }
  }
}

struct StreamConfig {
  std::uint32_t k = 1;
  std::string subpattern;
  int num_batches = 8;
  int batch_size = 6;
  bool node_ops = false;  // also generate add-node / remove-node updates
  std::uint64_t seed = 1;
};

/// Drives a random update stream against an IncrementalCensus, checking
/// exact agreement with the from-scratch recount after every batch. The
/// stream deliberately includes duplicate inserts and deletes of missing
/// edges (both must be exact no-ops).
void RunRandomStream(Graph base, const Pattern& pattern,
                     const StreamConfig& config) {
  DynamicGraph dg(std::move(base));
  IncrementalCensus::Options opts;
  opts.k = config.k;
  opts.subpattern = config.subpattern;
  // Exercise compaction mid-stream.
  opts.auto_compact = true;
  opts.compact_threshold = 0.15;
  auto census = IncrementalCensus::Create(&dg, pattern, opts);
  ASSERT_TRUE(census.ok()) << census.status().ToString();

  // Shadow state for generating valid updates; the listener-reported
  // deltas must reconstruct the maintained counts exactly.
  std::vector<char> alive(dg.NumNodes(), 1);
  std::unordered_map<NodeId, std::uint64_t> shadow;
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    shadow[n] = census->counts()[n];
  }
  census->AddListener([&shadow](const std::vector<CountDelta>& deltas) {
    for (const CountDelta& d : deltas) {
      shadow[d.node] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(shadow[d.node]) + d.delta);
      EXPECT_EQ(shadow[d.node], d.new_count);
    }
  });

  Rng rng(config.seed);
  auto random_alive = [&]() -> NodeId {
    while (true) {
      NodeId n = static_cast<NodeId>(rng.NextBounded(alive.size()));
      if (alive[n]) return n;
    }
  };

  for (int batch = 0; batch < config.num_batches; ++batch) {
    std::vector<GraphUpdate> updates;
    for (int i = 0; i < config.batch_size; ++i) {
      double roll = rng.NextDouble();
      if (!updates.empty() && roll < 0.15) {
        // Exact duplicate of the previous update: duplicate inserts and
        // re-deletes must be reported no-ops.
        GraphUpdate prev = updates.back();
        if (prev.kind == GraphUpdate::Kind::kAddEdge ||
            prev.kind == GraphUpdate::Kind::kRemoveEdge) {
          updates.push_back(prev);
          continue;
        }
      }
      if (config.node_ops && roll < 0.25) {
        updates.push_back(GraphUpdate::AddNode(0));
        alive.push_back(1);
        continue;
      }
      if (config.node_ops && roll < 0.35) {
        NodeId victim = random_alive();
        updates.push_back(GraphUpdate::RemoveNode(victim));
        alive[victim] = 0;
        continue;
      }
      NodeId u = random_alive();
      NodeId v = random_alive();
      if (u == v) {
        --i;
        continue;
      }
      if (rng.NextDouble() < 0.5) {
        updates.push_back(GraphUpdate::AddEdge(u, v));
      } else {
        updates.push_back(GraphUpdate::RemoveEdge(u, v));
      }
    }
    auto stats = census->ApplyBatch(updates);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->updates_applied + stats->noop_updates, updates.size());
    ExpectCountsMatchReference(dg, *census, pattern, config.k,
                               config.subpattern,
                               "batch " + std::to_string(batch));
  }

  // The accumulated listener deltas reproduce the final counts.
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    std::uint64_t expected = n < census->counts().size()
                                 ? census->counts()[n]
                                 : 0;
    auto it = shadow.find(n);
    EXPECT_EQ(it == shadow.end() ? 0 : it->second, expected)
        << "listener-reconstructed count for node " << n;
  }
}

Graph SmallPa(std::uint32_t nodes, std::uint32_t labels, std::uint64_t seed,
              bool directed = false) {
  GeneratorOptions g;
  g.num_nodes = nodes;
  g.edges_per_node = 3;
  g.num_labels = labels;
  g.seed = seed;
  g.directed = directed;
  return GeneratePreferentialAttachment(g);
}

TEST(DynamicCensusTest, TriangleK1RandomStream) {
  StreamConfig config;
  config.k = 1;
  config.seed = 11;
  RunRandomStream(SmallPa(60, 1, 5),
                  MustParse("PATTERN t {?A-?B; ?B-?C; ?C-?A;}"), config);
}

TEST(DynamicCensusTest, TriangleK2RandomStream) {
  StreamConfig config;
  config.k = 2;
  config.num_batches = 6;
  config.seed = 12;
  RunRandomStream(SmallPa(50, 1, 6),
                  MustParse("PATTERN t {?A-?B; ?B-?C; ?C-?A;}"), config);
}

TEST(DynamicCensusTest, LabeledSquareK1) {
  StreamConfig config;
  config.k = 1;
  config.seed = 13;
  RunRandomStream(
      SmallPa(60, 3, 7),
      MustParse("PATTERN sq {?A-?B; ?B-?C; ?C-?D; ?D-?A; "
                "[?A.LABEL=0]; [?C.LABEL=1];}"),
      config);
}

TEST(DynamicCensusTest, PathSubpatternCountSp) {
  StreamConfig config;
  config.k = 1;
  config.subpattern = "mid";
  config.seed = 14;
  RunRandomStream(
      SmallPa(60, 1, 8),
      MustParse("PATTERN wedge {?A-?B; ?B-?C; SUBPATTERN mid {?B;}}"),
      config);
}

TEST(DynamicCensusTest, DirectedNegatedCoordinatorSubpattern) {
  StreamConfig config;
  config.k = 1;
  config.subpattern = "ends";
  config.num_batches = 6;
  config.seed = 15;
  RunRandomStream(
      GenerateErdosRenyi(50, 200, 2, 31, /*directed=*/true),
      MustParse("PATTERN coord {?A->?B; ?A->?C; ?B!-?C; "
                "SUBPATTERN ends {?B; ?C;}}"),
      config);
}

TEST(DynamicCensusTest, NegatedEdgeUndirectedK2) {
  StreamConfig config;
  config.k = 2;
  config.num_batches = 5;
  config.seed = 16;
  RunRandomStream(SmallPa(40, 1, 9),
                  MustParse("PATTERN open {?A-?B; ?B-?C; ?A!-?C;}"), config);
}

TEST(DynamicCensusTest, NodeAddRemoveStream) {
  StreamConfig config;
  config.k = 1;
  config.node_ops = true;
  config.num_batches = 8;
  config.seed = 17;
  RunRandomStream(SmallPa(40, 1, 10),
                  MustParse("PATTERN t {?A-?B; ?B-?C; ?C-?A;}"), config);
}

TEST(DynamicCensusTest, DirectedTriadK1) {
  StreamConfig config;
  config.k = 1;
  config.seed = 18;
  RunRandomStream(GenerateErdosRenyi(60, 240, 1, 33, /*directed=*/true),
                  MustParse("PATTERN c {?A->?B; ?B->?C; ?C->?A;}"), config);
}

TEST(DynamicCensusTest, ExplicitNoopsAndStats) {
  Graph g = testing::MakeGraph(4, {{0, 1}, {1, 2}});
  DynamicGraph dg(std::move(g));
  IncrementalCensus::Options opts;
  opts.k = 1;
  auto census = IncrementalCensus::Create(
      &dg, MustParse("PATTERN t {?A-?B; ?B-?C; ?C-?A;}"), opts);
  ASSERT_TRUE(census.ok());

  // Close the triangle, then re-insert the same edge (no-op) and delete a
  // missing edge (no-op).
  std::vector<GraphUpdate> updates = {
      GraphUpdate::AddEdge(0, 2),
      GraphUpdate::AddEdge(2, 0),
      GraphUpdate::RemoveEdge(1, 3),
  };
  std::vector<CountDelta> deltas;
  auto stats = census->ApplyBatch(updates, &deltas);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->updates_applied, 1u);
  EXPECT_EQ(stats->noop_updates, 2u);
  // Nodes 0,1,2 all see the new triangle in S(n,1).
  ASSERT_EQ(deltas.size(), 3u);
  for (const CountDelta& d : deltas) {
    EXPECT_EQ(d.delta, 1);
    EXPECT_EQ(d.new_count, 1u);
  }
  EXPECT_EQ(census->counts()[3], 0u);

  // Deleting an edge of the triangle reverts all three counts.
  updates = {GraphUpdate::RemoveEdge(1, 2)};
  stats = census->ApplyBatch(updates, &deltas);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(deltas.size(), 3u);
  for (const CountDelta& d : deltas) {
    EXPECT_EQ(d.delta, -1);
    EXPECT_EQ(d.new_count, 0u);
  }
}

TEST(DynamicCensusTest, RejectsEdgeAttributePatterns) {
  DynamicGraph dg(testing::MakeGraph(3, {{0, 1}}));
  Pattern p = MustParse("PATTERN s {?A-?B; [EDGE(?A,?B).SIGN = 1];}");
  IncrementalCensus::Options opts;
  auto census = IncrementalCensus::Create(&dg, p, opts);
  EXPECT_FALSE(census.ok());
  EXPECT_EQ(census.status().code(), StatusCode::kUnimplemented);
}

TEST(DynamicCensusTest, RejectsOutsideMutation) {
  DynamicGraph dg(testing::MakeGraph(4, {{0, 1}, {1, 2}}));
  IncrementalCensus::Options opts;
  auto census = IncrementalCensus::Create(
      &dg, MustParse("PATTERN e {?A-?B;}"), opts);
  ASSERT_TRUE(census.ok());
  ASSERT_TRUE(dg.AddEdge(2, 3).ok());
  std::vector<GraphUpdate> updates = {GraphUpdate::AddEdge(0, 2)};
  auto stats = census->ApplyBatch(updates);
  EXPECT_FALSE(stats.ok());
}

TEST(DynamicCensusTest, MaintainSessionEndToEnd) {
  DynamicGraph dg(SmallPa(50, 2, 21));
  MaintainSession::Options opts;
  auto session = MaintainSession::Create(
      &dg,
      "PATTERN t {?A-?B; ?B-?C; ?C-?A;}\n"
      "SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes\n"
      "WHERE LABEL = 0",
      opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Focal = label-0 nodes only.
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    EXPECT_EQ(session->census().IsFocal(n), dg.label(n) == 0) << n;
  }

  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    std::vector<GraphUpdate> updates;
    for (int i = 0; i < 5; ++i) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
      NodeId v = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
      if (u == v) continue;
      updates.push_back(rng.NextDouble() < 0.6
                            ? GraphUpdate::AddEdge(u, v)
                            : GraphUpdate::RemoveEdge(u, v));
    }
    auto table = session->ApplyBatch(updates);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_EQ(table->NumColumns(), 4u);

    // Cross-check the maintained counts against a fresh static engine run.
    Graph snapshot = dg.Materialize();
    std::vector<NodeId> focal;
    for (NodeId n = 0; n < snapshot.NumNodes(); ++n) {
      if (snapshot.label(n) == 0) focal.push_back(n);
    }
    CensusOptions ref;
    ref.algorithm = CensusAlgorithm::kNdBas;
    ref.k = 1;
    Pattern p = MustParse("PATTERN t {?A-?B; ?B-?C; ?C-?A;}");
    auto expected = RunCensus(snapshot, p, focal, ref);
    ASSERT_TRUE(expected.ok());
    for (NodeId n : focal) {
      ASSERT_EQ(session->census().counts()[n], expected->counts[n])
          << "round " << round << " node " << n;
    }
  }
}

}  // namespace
}  // namespace egocensus
