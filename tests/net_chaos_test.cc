// Fault-injected end-to-end churn for the fair request queue (run under
// TSan in CI's daemon-chaos job): tenant bursts that overflow the bounds,
// clients that hang up while queued, and a graceful drain with work still
// in flight. The invariant under all of it is conservation — every request
// that entered the queue leaves it exactly once (enqueue hits = dequeue +
// evict hits), every served client gets exactly one terminal response
// carrying its request id, and nothing executes twice.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/failpoints.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace egocensus::net {
namespace {

constexpr const char* kTriangleQuery =
    "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
    "SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes";

Graph TestGraph() {
  GeneratorOptions gen;
  gen.num_nodes = 300;
  gen.edges_per_node = 4;
  gen.num_labels = 3;
  gen.seed = 7;
  return GeneratePreferentialAttachment(gen);
}

bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

struct Observed {
  std::string sent_id;
  std::string echoed_id;
  FrameType type = FrameType::kError;
  bool transport_ok = false;
  bool draining = false;
};

Observed CallOnce(const Endpoint& endpoint, const std::string& tenant,
                  const std::string& request_id) {
  Observed seen;
  seen.sent_id = request_id;
  auto client = Client::Connect(endpoint);
  if (!client.ok()) return seen;
  Message request = Client::QueryRequest("g", kTriangleQuery);
  request.headers["tenant"] = tenant;
  request.headers["request_id"] = request_id;
  auto response = client->Call(request);
  if (!response.ok()) return seen;
  seen.transport_ok = true;
  seen.echoed_id = response->Header("request_id", "");
  seen.type = response->type;
  seen.draining = response->Header("draining", "") == "1";
  return seen;
}

TEST(NetChaosTest, ConservationAcrossBurstsDisconnectsAndDrain) {
  if (!failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  failpoints::DisarmAll();
  // Observe-only counters: the conservation law's three terms.
  failpoints::Arm("net/queue/enqueue", 0, nullptr);
  failpoints::Arm("net/queue/dequeue", 0, nullptr);
  failpoints::Arm("net/queue/evict", 0, nullptr);

  CensusServer::Options options;
  options.listen.port = 0;
  options.max_inflight = 1;  // one slot: bursts genuinely queue
  options.queue_depth = 4;
  options.queue_poll_ms = 1;
  auto server = std::make_unique<CensusServer>(options);
  ASSERT_TRUE(server->registry().Add("g", TestGraph()).ok());
  ASSERT_TRUE(server->Start().ok());
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server->port();

  // ---- Phase A: tenant bursts, some beyond the depth bound ------------
  std::mutex seen_mu;
  std::vector<Observed> seen;
  const char* kTenants[] = {"alpha", "beta", "gamma", "delta"};
  for (int round = 0; round < 2; ++round) {
    std::vector<std::thread> burst;
    for (const char* tenant : kTenants) {
      for (int c = 0; c < 2; ++c) {
        std::string id = std::string(tenant) + "-r" +
                         std::to_string(round) + "-c" + std::to_string(c);
        burst.emplace_back([&endpoint, &seen_mu, &seen, tenant, id] {
          Observed observed = CallOnce(endpoint, tenant, id);
          std::lock_guard<std::mutex> lock(seen_mu);
          seen.push_back(observed);
        });
      }
    }
    for (auto& thread : burst) thread.join();
  }
  for (const Observed& observed : seen) {
    ASSERT_TRUE(observed.transport_ok)
        << observed.sent_id << ": the server must answer every request";
    EXPECT_EQ(observed.echoed_id, observed.sent_id);
    EXPECT_TRUE(observed.type == FrameType::kResult ||
                observed.type == FrameType::kBusy)
        << observed.sent_id << " got " << FrameTypeName(observed.type);
  }

  // ---- Phase B: clients that hang up while queued ---------------------
  std::atomic<bool> release{false};
  failpoints::Arm("exec/checkpoint", 1, [&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread holder([&endpoint] {
    Observed observed = CallOnce(endpoint, "alpha", "holder-1");
    EXPECT_TRUE(observed.transport_ok);
    EXPECT_EQ(observed.type, FrameType::kResult);
  });
  ASSERT_TRUE(
      WaitFor([] { return failpoints::Hits("exec/checkpoint") >= 1; }));

  // Ghost clients: send a QUERY, confirm it queued, then vanish without
  // ever reading the response. Each send rides its own thread because
  // Call() blocks for a response that never comes; closing the socket
  // makes that Call fail, which is the thread's exit.
  std::uint64_t evicted_before = failpoints::Hits("net/queue/evict");
  std::vector<std::unique_ptr<Client>> ghosts;
  std::vector<std::thread> ghost_threads;
  for (int i = 0; i < 3; ++i) {
    auto client = Client::Connect(endpoint);
    ASSERT_TRUE(client.ok());
    ghosts.push_back(std::make_unique<Client>(std::move(*client)));
  }
  for (int i = 0; i < 3; ++i) {
    Message request = Client::QueryRequest("g", kTriangleQuery);
    request.headers["tenant"] = "beta";
    request.headers["request_id"] = "ghost-" + std::to_string(i);
    Client* ghost = ghosts[static_cast<std::size_t>(i)].get();
    ghost_threads.emplace_back(
        [ghost, request] { (void)ghost->Call(request); });
  }
  ASSERT_TRUE(WaitFor([&server] { return server->queue().depth() == 3; }));
  // shutdown(), not close(): it sends the FIN the queue's disconnect probe
  // watches for AND wakes each ghost thread's blocked recv, so the threads
  // join without racing a reused fd.
  for (auto& ghost : ghosts) ::shutdown(ghost->fd(), SHUT_RDWR);
  for (auto& thread : ghost_threads) thread.join();
  for (auto& ghost : ghosts) ghost->Close();
  ASSERT_TRUE(WaitFor([evicted_before] {
    return failpoints::Hits("net/queue/evict") >= evicted_before + 3;
  }));
  ASSERT_TRUE(WaitFor([&server] { return server->queue().depth() == 0; }));
  release.store(true);
  holder.join();
  ASSERT_TRUE(WaitFor([&server] { return server->queue().Idle(); }));

  // ---- Phase C: graceful drain with queued work -----------------------
  std::atomic<bool> release2{false};
  failpoints::Arm("exec/checkpoint", 1, [&release2] {
    for (int i = 0; i < 2000 && !release2.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread holder2([&endpoint] {
    // Released mid-settle: served or hung up by the final shutdown —
    // either way it must not execute twice (conservation checks that).
    (void)CallOnce(endpoint, "alpha", "drain-holder");
  });
  ASSERT_TRUE(
      WaitFor([] { return failpoints::Hits("exec/checkpoint") >= 1; }));

  std::mutex drain_mu;
  std::vector<Observed> drained_seen;
  std::vector<std::thread> queued;
  for (int i = 0; i < 2; ++i) {
    std::string id = "drain-q" + std::to_string(i);
    queued.emplace_back([&endpoint, &drain_mu, &drained_seen, id] {
      Observed observed = CallOnce(endpoint, "gamma", id);
      std::lock_guard<std::mutex> lock(drain_mu);
      drained_seen.push_back(observed);
    });
  }
  ASSERT_TRUE(WaitFor([&server] { return server->queue().depth() == 2; }));

  std::thread drainer([&server] {
    CensusServer::DrainResult result = server->Drain(/*drain_ms=*/800);
    // The slot holder is parked past the budget, so the queued requests
    // must have been flushed rather than served.
    EXPECT_EQ(result.flushed, 2u);
    EXPECT_FALSE(result.completed);
  });
  // Both queued clients get a terminal BUSY carrying the draining flag.
  ASSERT_TRUE(WaitFor([&drain_mu, &drained_seen] {
    std::lock_guard<std::mutex> lock(drain_mu);
    return drained_seen.size() == 2;
  }));
  release2.store(true);  // let the holder finish inside the settle window
  for (auto& thread : queued) thread.join();
  drainer.join();
  holder2.join();
  server->Wait();

  for (const Observed& observed : drained_seen) {
    ASSERT_TRUE(observed.transport_ok) << observed.sent_id;
    EXPECT_EQ(observed.type, FrameType::kBusy) << observed.sent_id;
    EXPECT_TRUE(observed.draining) << observed.sent_id;
    EXPECT_EQ(observed.echoed_id, observed.sent_id);
  }

  // ---- The conservation law -------------------------------------------
  std::uint64_t enqueued = failpoints::Hits("net/queue/enqueue");
  std::uint64_t dequeued = failpoints::Hits("net/queue/dequeue");
  std::uint64_t evicted = failpoints::Hits("net/queue/evict");
  EXPECT_GT(enqueued, 0u);
  EXPECT_EQ(enqueued, dequeued + evicted)
      << "every request that entered the queue must leave exactly once";

  // No double execution: grants recorded by the queue match the dequeue
  // failpoint exactly, and concurrency never exceeded the slot count.
  std::uint64_t granted = 0;
  for (const TenantQueueStats& stats : server->queue().TenantStats()) {
    granted += stats.granted;
  }
  EXPECT_EQ(granted, dequeued);
  EXPECT_LE(server->queue().peak_active(), options.max_inflight);
  failpoints::DisarmAll();
}

TEST(NetChaosTest, DrrKeepsLightTenantShareUnderHeavyLoad) {
  failpoints::DisarmAll();
  CensusServer::Options options;
  options.listen.port = 0;
  options.max_inflight = 1;
  options.queue_depth = 32;
  options.queue_poll_ms = 1;
  auto server = std::make_unique<CensusServer>(options);
  ASSERT_TRUE(server->registry().Add("g", TestGraph()).ok());
  ASSERT_TRUE(server->Start().ok());
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server->port();

  // Closed-loop offered load 10:1 — ten heavy connections vs one light.
  // With per-tenant round-robin the light tenant's completed share should
  // approach 1/2; the acceptance bar is within 2x of its weight (>= 1/4).
  constexpr int kTotalTarget = 60;
  std::atomic<int> total{0};
  std::atomic<int> heavy_done{0};
  std::atomic<int> light_done{0};
  auto worker = [&](const std::string& tenant, std::atomic<int>* done) {
    while (total.load(std::memory_order_relaxed) < kTotalTarget) {
      Observed observed = CallOnce(endpoint, tenant,
                                   tenant + std::to_string(total.load()));
      if (observed.transport_ok && observed.type == FrameType::kResult) {
        done->fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 10; ++i) {
    threads.emplace_back(worker, "heavy", &heavy_done);
  }
  threads.emplace_back(worker, "light", &light_done);
  for (auto& thread : threads) thread.join();

  int light = light_done.load();
  int completed = heavy_done.load() + light;
  ASSERT_GE(completed, kTotalTarget);
  double share = static_cast<double>(light) / completed;
  EXPECT_GE(share, 0.25) << "light tenant completed " << light << " of "
                         << completed
                         << " — DRR should keep its share near 1/2 despite "
                            "a 10:1 offered-load imbalance";
  server->RequestShutdown();
  server->Wait();
  failpoints::DisarmAll();
}

}  // namespace
}  // namespace egocensus::net
