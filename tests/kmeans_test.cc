#include "census/kmeans.h"

#include <gtest/gtest.h>

namespace egocensus {
namespace {

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  auto assignment = KMeansCluster({}, 0, 3, 2, 10, &rng);
  EXPECT_TRUE(assignment.empty());
}

TEST(KMeansTest, SingleClusterAllZero) {
  Rng rng(1);
  std::vector<float> f = {1, 2, 3, 4, 5, 6};
  auto assignment = KMeansCluster(f, 3, 2, 1, 10, &rng);
  EXPECT_EQ(assignment, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight blobs far apart in 2D.
  std::vector<float> features;
  for (int i = 0; i < 10; ++i) {
    features.push_back(0.f + i * 0.01f);
    features.push_back(0.f);
  }
  for (int i = 0; i < 10; ++i) {
    features.push_back(100.f + i * 0.01f);
    features.push_back(100.f);
  }
  Rng rng(7);
  auto assignment = KMeansCluster(features, 20, 2, 2, 10, &rng);
  ASSERT_EQ(assignment.size(), 20u);
  for (int i = 1; i < 10; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(assignment[i], assignment[10]);
  EXPECT_NE(assignment[0], assignment[10]);
}

TEST(KMeansTest, KLargerThanPointsClamped) {
  std::vector<float> f = {0.f, 10.f, 20.f};
  Rng rng(3);
  auto assignment = KMeansCluster(f, 3, 1, 10, 5, &rng);
  ASSERT_EQ(assignment.size(), 3u);
  for (auto a : assignment) EXPECT_LT(a, 3u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<float> features;
  Rng data_rng(5);
  for (int i = 0; i < 60; ++i) {
    features.push_back(static_cast<float>(data_rng.NextBounded(100)));
  }
  Rng a(9), b(9);
  auto r1 = KMeansCluster(features, 30, 2, 4, 10, &a);
  auto r2 = KMeansCluster(features, 30, 2, 4, 10, &b);
  EXPECT_EQ(r1, r2);
}

TEST(KMeansTest, AssignmentsInRange) {
  std::vector<float> features;
  Rng data_rng(6);
  for (int i = 0; i < 100; ++i) {
    features.push_back(static_cast<float>(data_rng.NextBounded(50)));
  }
  Rng rng(4);
  auto assignment = KMeansCluster(features, 50, 2, 7, 10, &rng);
  for (auto a : assignment) EXPECT_LT(a, 7u);
}

}  // namespace
}  // namespace egocensus
