// Fast-path kernels vs the generic engines (docs/FAST_PATH.md): for every
// connected <= 4-node shape — induced and non-induced — the combinatorial
// counts must be bit-identical to ND-BAS on randomized ER and power-law
// graphs, at k=1 and k=2, at 1/2/8 threads, and under governor interrupts
// (the kComplete prefix of a cancelled run stays bit-identical). Also the
// routing contract itself: what kForce rejects, and what kAuto falls back
// from.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "census/census.h"
#include "exec/failpoints.h"
#include "exec/governor.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "pattern/shape.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

struct ShapeCase {
  const char* label;
  const char* text;
  ShapeId id;
  bool induced;
};

/// Every connected shape on <= 4 nodes, as parser text. Induced variants
/// carry the exact complement as negated edges; complete skeletons
/// (edge, triangle, clique4) have no distinct induced variant.
const std::vector<ShapeCase>& AllShapes() {
  static const std::vector<ShapeCase> kCases = {
      {"singleton", "PATTERN p {?A;}", ShapeId::kSingleton, false},
      {"edge", "PATTERN p {?A-?B;}", ShapeId::kEdge, false},
      {"wedge", "PATTERN p {?A-?B; ?B-?C;}", ShapeId::kWedge, false},
      {"wedge_i", "PATTERN p {?A-?B; ?B-?C; ?A!-?C;}", ShapeId::kWedge, true},
      {"triangle", "PATTERN p {?A-?B; ?B-?C; ?C-?A;}", ShapeId::kTriangle,
       false},
      {"path4", "PATTERN p {?A-?B; ?B-?C; ?C-?D;}", ShapeId::kPath4, false},
      {"path4_i",
       "PATTERN p {?A-?B; ?B-?C; ?C-?D; ?A!-?C; ?A!-?D; ?B!-?D;}",
       ShapeId::kPath4, true},
      {"claw", "PATTERN p {?A-?B; ?A-?C; ?A-?D;}", ShapeId::kClaw, false},
      {"claw_i", "PATTERN p {?A-?B; ?A-?C; ?A-?D; ?B!-?C; ?B!-?D; ?C!-?D;}",
       ShapeId::kClaw, true},
      {"paw", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?A-?D;}", ShapeId::kPaw,
       false},
      {"paw_i", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?A-?D; ?B!-?D; ?C!-?D;}",
       ShapeId::kPaw, true},
      {"cycle4", "PATTERN p {?A-?B; ?B-?C; ?C-?D; ?D-?A;}", ShapeId::kCycle4,
       false},
      {"cycle4_i", "PATTERN p {?A-?B; ?B-?C; ?C-?D; ?D-?A; ?A!-?C; ?B!-?D;}",
       ShapeId::kCycle4, true},
      {"diamond", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?B-?D; ?C-?D;}",
       ShapeId::kDiamond, false},
      {"diamond_i", "PATTERN p {?A-?B; ?B-?C; ?C-?A; ?B-?D; ?C-?D; ?A!-?D;}",
       ShapeId::kDiamond, true},
      {"clique4",
       "PATTERN p {?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D;}",
       ShapeId::kClique4, false},
  };
  return kCases;
}

Pattern Parse(const char* text) {
  auto p = ParsePattern(text);
  CheckOk(p.status(), "shape-case pattern");
  return std::move(*p);
}

std::vector<Graph> TestGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(GenerateErdosRenyi(90, 400, 1, 1301));
  GeneratorOptions pa;
  pa.num_nodes = 110;
  pa.edges_per_node = 4;
  pa.seed = 1302;
  graphs.push_back(GeneratePreferentialAttachment(pa));
  return graphs;
}

std::vector<std::uint64_t> GenericCounts(const Graph& g, const Pattern& p,
                                         std::span<const NodeId> focal,
                                         std::uint32_t k) {
  CensusOptions opts;
  opts.fast_path = FastPathMode::kOff;
  opts.algorithm = CensusAlgorithm::kNdBas;
  opts.k = k;
  auto r = RunCensus(g, p, focal, opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r->stats.fastpath_routed, 0u);
  return r->counts;
}

TEST(FastPathPropertyTest, ShapesClassify) {
  for (const ShapeCase& c : AllShapes()) {
    Pattern p = Parse(c.text);
    PatternShape shape = AnalyzeShape(p);
    EXPECT_TRUE(shape.eligible()) << c.label << ": " << shape.reject_reason;
    EXPECT_EQ(shape.id, c.id) << c.label;
    EXPECT_EQ(shape.induced, c.induced) << c.label;
  }
}

TEST(FastPathPropertyTest, BitIdenticalToGenericAcrossShapesAndThreads) {
  for (const Graph& g : TestGraphs()) {
    auto focal = AllNodes(g);
    for (const ShapeCase& c : AllShapes()) {
      Pattern p = Parse(c.text);
      for (std::uint32_t k : {1u, 2u}) {
        auto reference = GenericCounts(g, p, focal, k);
        for (std::uint32_t threads : {1u, 2u, 8u}) {
          CensusOptions opts;
          opts.fast_path = FastPathMode::kForce;
          opts.k = k;
          opts.num_threads = threads;
          auto r = RunCensus(g, p, focal, opts);
          ASSERT_TRUE(r.ok()) << c.label;
          EXPECT_EQ(r->stats.fastpath_routed, 1u);
          ASSERT_EQ(r->counts, reference)
              << c.label << " k=" << k << " threads=" << threads;
        }
      }
    }
  }
}

TEST(FastPathPropertyTest, ExpiredDeadlineLeavesEveryFocalPending) {
  Graph g = GenerateErdosRenyi(80, 320, 1, 1303);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  gov.SetDeadline(Deadline::AtMicros(1));  // long past
  CensusOptions opts;
  opts.fast_path = FastPathMode::kForce;
  opts.k = 1;
  opts.governor = &gov;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec_status.code(), StatusCode::kDeadlineExceeded);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->focal_state[n], FocalState::kPending);
    EXPECT_EQ(r->counts[n], 0u);
  }
}

#if EGO_FAILPOINTS_ENABLED

/// The governance contract of nd_bas, for the fast path: cancel at every
/// (strided) per-focal checkpoint; completed focals must stay bit-identical
/// to the uninterrupted run, pending ones untouched.
TEST(FastPathPropertyTest, CancelAtEveryCheckpointSweep) {
  Graph g = GenerateErdosRenyi(80, 320, 1, 1304);
  Pattern diamond =
      Parse("PATTERN p {?A-?B; ?B-?C; ?C-?A; ?B-?D; ?C-?D;}");
  auto focal = AllNodes(g);
  for (std::uint32_t threads : {1u, 8u}) {
    CensusOptions opts;
    opts.fast_path = FastPathMode::kForce;
    opts.k = 2;
    opts.num_threads = threads;
    auto baseline = RunCensus(g, diamond, focal, opts);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(baseline->complete());

    failpoints::Arm("census/focal", 0, nullptr);
    {
      Governor gov;
      CensusOptions governed = opts;
      governed.governor = &gov;
      ASSERT_TRUE(RunCensus(g, diamond, focal, governed).ok());
    }
    const std::uint64_t hits = failpoints::Hits("census/focal");
    failpoints::DisarmAll();
    ASSERT_GT(hits, 0u);

    const std::uint64_t stride = std::max<std::uint64_t>(1, hits / 16);
    for (std::uint64_t i = 1; i <= hits; i += stride) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " cancel@" +
                   std::to_string(i) + "/" + std::to_string(hits));
      Governor gov;
      failpoints::Arm("census/focal", i, [&gov] { gov.RequestCancel(); });
      CensusOptions governed = opts;
      governed.governor = &gov;
      auto r = RunCensus(g, diamond, focal, governed);
      failpoints::DisarmAll();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->exec_status.code(), StatusCode::kCancelled);
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (r->focal_state[n] == FocalState::kComplete) {
          EXPECT_EQ(r->counts[n], baseline->counts[n]) << n;
        } else {
          EXPECT_EQ(r->focal_state[n], FocalState::kPending) << n;
          EXPECT_EQ(r->counts[n], 0u) << n;
        }
      }
    }
  }
}

#endif  // EGO_FAILPOINTS_ENABLED

TEST(FastPathPropertyTest, ForceRejectsIneligibleCensuses) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}}, {0, 1, 2, 0});
  auto focal = AllNodes(g);
  CensusOptions force;
  force.fast_path = FastPathMode::kForce;

  // Labeled pattern.
  EXPECT_EQ(RunCensus(g, MakeTriangle(true), focal, force).status().code(),
            StatusCode::kInvalidArgument);
  // Five-node pattern.
  EXPECT_EQ(RunCensus(g, MakePath(5, false), focal, force).status().code(),
            StatusCode::kInvalidArgument);
  // Partial negation: not the exact complement of the skeleton.
  Pattern partial = Parse("PATTERN p {?A-?B; ?B-?C; ?C-?D; ?A!-?C;}");
  EXPECT_EQ(RunCensus(g, partial, focal, force).status().code(),
            StatusCode::kInvalidArgument);
  // Explicit GQL matcher.
  CensusOptions gql = force;
  gql.use_gql_matcher = true;
  EXPECT_EQ(RunCensus(g, MakeTriangle(false), focal, gql).status().code(),
            StatusCode::kInvalidArgument);
  // Directed pattern on a directed graph.
  Graph dg = MakeGraph(3, {{0, 1}, {1, 2}}, {}, /*directed=*/true);
  Pattern directed = Parse("PATTERN p {?A->?B;}");
  EXPECT_EQ(
      RunCensus(dg, directed, AllNodes(dg), force).status().code(),
      StatusCode::kInvalidArgument);
  // Parallel edges in the graph.
  Graph multi = MakeGraph(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(
      RunCensus(multi, MakeTriangle(false), AllNodes(multi), force)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(FastPathPropertyTest, AutoFallsBackOnParallelEdges) {
  // A multigraph breaks the closed-form identities, so kAuto must route to
  // the generic engine — and agree with an explicit kOff run.
  Graph multi = MakeGraph(
      5, {{0, 1}, {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(multi);
  CensusOptions automatic;
  automatic.k = 1;
  auto routed = RunCensus(multi, tri, focal, automatic);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->stats.fastpath_routed, 0u);
  EXPECT_EQ(routed->counts, GenericCounts(multi, tri, focal, 1));
}

TEST(FastPathPropertyTest, AutoRoutesEligibleCensus) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  auto focal = AllNodes(g);
  CensusOptions automatic;
  automatic.k = 1;
  auto r = RunCensus(g, MakeTriangle(false), focal, automatic);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.fastpath_routed, 1u);
  EXPECT_EQ(r->stats.num_matches, 0u);  // no matcher ran
}

}  // namespace
}  // namespace egocensus
