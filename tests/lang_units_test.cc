// Direct unit tests for the language-layer components: ResultTable,
// AnalyzeQuery and the AST helpers (the engine tests cover them end-to-end;
// these pin the individual contracts).

#include <gtest/gtest.h>

#include <sstream>

#include "census/census.h"
#include "lang/analyzer.h"
#include "lang/query_parser.h"
#include "lang/result_table.h"
#include "pattern/catalog.h"

namespace egocensus {
namespace {

TEST(ResultTableTest, RowsPaddedToColumns) {
  ResultTable t({"a", "b", "c"});
  t.AddRow({std::int64_t{1}});
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.At(0, 2)), 0);
}

TEST(ResultTableTest, SortByColumnDesc) {
  ResultTable t({"id", "count"});
  t.AddRow({std::int64_t{1}, std::int64_t{5}});
  t.AddRow({std::int64_t{2}, std::int64_t{9}});
  t.AddRow({std::int64_t{3}, std::int64_t{7}});
  t.SortByColumnDesc(1);
  EXPECT_EQ(std::get<std::int64_t>(t.At(0, 0)), 2);
  EXPECT_EQ(std::get<std::int64_t>(t.At(1, 0)), 3);
  EXPECT_EQ(std::get<std::int64_t>(t.At(2, 0)), 1);
}

TEST(ResultTableTest, MultiKeySortStable) {
  ResultTable t({"group", "value"});
  t.AddRow({std::int64_t{2}, std::int64_t{10}});
  t.AddRow({std::int64_t{1}, std::int64_t{20}});
  t.AddRow({std::int64_t{2}, std::int64_t{5}});
  t.AddRow({std::int64_t{1}, std::int64_t{5}});
  // group ascending, then value descending.
  t.SortByColumns({{0, false}, {1, true}});
  EXPECT_EQ(std::get<std::int64_t>(t.At(0, 0)), 1);
  EXPECT_EQ(std::get<std::int64_t>(t.At(0, 1)), 20);
  EXPECT_EQ(std::get<std::int64_t>(t.At(1, 1)), 5);
  EXPECT_EQ(std::get<std::int64_t>(t.At(2, 0)), 2);
  EXPECT_EQ(std::get<std::int64_t>(t.At(2, 1)), 10);
}

TEST(ResultTableTest, SortWithMixedNumericTypes) {
  ResultTable t({"x"});
  t.AddRow({AttributeValue(2.5)});
  t.AddRow({AttributeValue(std::int64_t{2})});
  t.AddRow({AttributeValue(3.0)});
  t.SortByColumns({{0, false}});
  EXPECT_EQ(std::get<std::int64_t>(t.At(0, 0)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(t.At(2, 0)), 3.0);
}

TEST(ResultTableTest, Truncate) {
  ResultTable t({"x"});
  for (int i = 0; i < 5; ++i) t.AddRow({std::int64_t{i}});
  t.Truncate(2);
  EXPECT_EQ(t.NumRows(), 2u);
  t.Truncate(10);  // no-op when larger
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(ResultTableTest, ToStringTruncationNotice) {
  ResultTable t({"x"});
  for (int i = 0; i < 30; ++i) t.AddRow({std::int64_t{i}});
  std::string text = t.ToString(10);
  EXPECT_NE(text.find("20 more rows"), std::string::npos);
}

TEST(ResultTableTest, CsvWithStrings) {
  ResultTable t({"name", "v"});
  t.AddRow({AttributeValue(std::string("alice")), AttributeValue(1.5)});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_NE(os.str().find("alice"), std::string::npos);
}

TEST(AnalyzerTest, ResolvesRegisteredPatterns) {
  auto query = ParseQuery(
      "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(query.ok());
  std::vector<Pattern> registered;
  registered.push_back(MakeTriangle(false));
  auto analyzed = AnalyzeQuery(*query, registered);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->counts.size(), 1u);
  EXPECT_EQ(analyzed->counts[0].pattern, &registered[0]);
  EXPECT_FALSE(analyzed->pairwise);
}

TEST(AnalyzerTest, InlineShadowsRegistered) {
  auto query = ParseQuery(
      "PATTERN clq3-unlb {?A-?B;}\n"
      "SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(query.ok());
  std::vector<Pattern> registered;
  registered.push_back(MakeTriangle(false));
  auto analyzed = AnalyzeQuery(*query, registered);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed->counts[0].pattern, &query->patterns[0]);
}

TEST(AnalyzerTest, PairwiseValidation) {
  // Same alias twice.
  auto dup = ParseQuery(
      "PATTERN p {?A;} SELECT COUNTP(p, SUBGRAPH-UNION(a.ID, a.ID, 1)) "
      "FROM nodes AS a, nodes AS a");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(AnalyzeQuery(*dup, {}).ok());

  // Neighborhood referencing a foreign alias.
  auto wrong = ParseQuery(
      "PATTERN p {?A;} SELECT COUNTP(p, SUBGRAPH-UNION(a.ID, c.ID, 1)) "
      "FROM nodes AS a, nodes AS b");
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(AnalyzeQuery(*wrong, {}).ok());

  // Correct pairwise form, either alias order in the neighborhood.
  auto ok = ParseQuery(
      "PATTERN p {?A;} SELECT COUNTP(p, SUBGRAPH-UNION(b.ID, a.ID, 1)) "
      "FROM nodes AS a, nodes AS b");
  ASSERT_TRUE(ok.ok());
  std::vector<Pattern> none;
  auto analyzed = AnalyzeQuery(*ok, none);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(analyzed->pairwise);
}

TEST(AnalyzerTest, MissingFromRejected) {
  Query query;  // empty FROM
  query.select.push_back(SelectItem{});
  EXPECT_FALSE(AnalyzeQuery(query, {}).ok());
}

TEST(AstTest, NeighborhoodKindNames) {
  EXPECT_STREQ(NeighborhoodKindName(NeighborhoodSpec::Kind::kSubgraph),
               "SUBGRAPH");
  EXPECT_STREQ(NeighborhoodKindName(NeighborhoodSpec::Kind::kIntersection),
               "SUBGRAPH-INTERSECTION");
  EXPECT_STREQ(NeighborhoodKindName(NeighborhoodSpec::Kind::kUnion),
               "SUBGRAPH-UNION");
}

TEST(AstTest, CensusAlgorithmNames) {
  EXPECT_STREQ(CensusAlgorithmName(CensusAlgorithm::kNdPvot), "ND-PVOT");
  EXPECT_STREQ(CensusAlgorithmName(CensusAlgorithm::kPtRnd), "PT-RND");
}

}  // namespace
}  // namespace egocensus
