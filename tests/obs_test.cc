#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "census/census.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/catalog.h"

namespace egocensus {
namespace {

using obs::HistogramBucket;
using obs::HistogramBucketLow;
using obs::HistogramSnapshot;
using obs::MetricsSnapshot;
using obs::Registry;
using obs::Tracer;

TEST(HistogramBucketTest, BucketBoundaries) {
  EXPECT_EQ(HistogramBucket(0), 0u);
  EXPECT_EQ(HistogramBucket(1), 1u);
  EXPECT_EQ(HistogramBucket(2), 2u);
  EXPECT_EQ(HistogramBucket(3), 2u);
  EXPECT_EQ(HistogramBucket(4), 3u);
  EXPECT_EQ(HistogramBucket(7), 3u);
  EXPECT_EQ(HistogramBucket(8), 4u);
  EXPECT_EQ(HistogramBucket(~0ull), obs::kHistogramBuckets - 1);
}

TEST(HistogramBucketTest, LowIsInclusiveBound) {
  EXPECT_EQ(HistogramBucketLow(0), 0u);
  EXPECT_EQ(HistogramBucketLow(1), 1u);
  EXPECT_EQ(HistogramBucketLow(2), 2u);
  EXPECT_EQ(HistogramBucketLow(3), 4u);
  // Every value lands in the bucket whose [low, next_low) range contains it.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull, 1ull << 40}) {
    std::size_t b = HistogramBucket(v);
    EXPECT_GE(v, HistogramBucketLow(b));
    if (b + 1 < obs::kHistogramBuckets) {
      EXPECT_LT(v, HistogramBucketLow(b + 1));
    }
  }
}

TEST(HistogramSnapshotTest, MergeSumsBucketsMaxesMax) {
  HistogramSnapshot a;
  a.count = 2;
  a.sum = 10;
  a.max = 8;
  a.buckets[3] = 2;
  HistogramSnapshot b;
  b.count = 1;
  b.sum = 100;
  b.max = 100;
  b.buckets[7] = 1;
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 110u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_EQ(a.buckets[3], 2u);
  EXPECT_EQ(a.buckets[7], 1u);
}

TEST(HistogramSnapshotTest, MeanAndPercentile) {
  HistogramSnapshot h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ApproxPercentile(0.5), 0u);
  h.count = 4;
  h.sum = 20;
  h.max = 17;
  h.buckets[HistogramBucket(1)] += 3;
  h.buckets[HistogramBucket(17)] += 1;
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
  // p50 falls in the bucket of the 1s; p99 in the bucket of 17.
  EXPECT_LE(h.ApproxPercentile(0.5), 1u);
  EXPECT_GE(h.ApproxPercentile(0.99), 17u);
}

#if EGO_OBS_ENABLED

/// Fixture: observability on, registry/tracer cleared, and off again after
/// (other tests must not observe instrumentation state).
class ObsRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    Registry::Global().Reset();
    Tracer::Global().Reset();
  }
  void TearDown() override {
    obs::SetEnabled(false);
    Registry::Global().Reset();
    Tracer::Global().Reset();
  }
};

TEST_F(ObsRuntimeTest, CountersGaugesHistograms) {
  obs::CounterAdd("test/counter", 2);
  obs::CounterAdd("test/counter", 3);
  obs::GaugeMax("test/gauge", 7);
  obs::GaugeMax("test/gauge", 4);  // below current max: ignored
  obs::HistogramRecord("test/hist", 5);
  obs::HistogramRecord("test/hist", 9);

  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test/counter"), 5u);
  EXPECT_EQ(snap.gauges.at("test/gauge"), 7u);
  const HistogramSnapshot& h = snap.histograms.at("test/hist");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 14u);
  EXPECT_EQ(h.max, 9u);
}

TEST_F(ObsRuntimeTest, MacrosRecord) {
  for (int i = 0; i < 3; ++i) {
    EGO_COUNTER_ADD("test/macro_counter", 1);
    EGO_GAUGE_MAX("test/macro_gauge", static_cast<std::uint64_t>(i));
    EGO_HIST_RECORD("test/macro_hist", 2);
  }
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test/macro_counter"), 3u);
  EXPECT_EQ(snap.gauges.at("test/macro_gauge"), 2u);
  EXPECT_EQ(snap.histograms.at("test/macro_hist").count, 3u);
}

TEST_F(ObsRuntimeTest, DisabledRecordsNothing) {
  obs::SetEnabled(false);
  obs::CounterAdd("test/off", 1);
  EGO_COUNTER_ADD("test/off_macro", 1);
  obs::SetEnabled(true);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.count("test/off"), 0u);
  EXPECT_EQ(snap.counters.count("test/off_macro"), 0u);
}

TEST_F(ObsRuntimeTest, ZeroValuedMetricsOmitted) {
  // Interned but never recorded: must not clutter exports.
  obs::CounterHandle handle("test/never_recorded");
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.count("test/never_recorded"), 0u);
}

TEST_F(ObsRuntimeTest, ShardsOfExitedThreadsSurvive) {
  // Values recorded by short-lived threads (the worker-pool lifecycle) must
  // fold into the retired accumulator and still appear in snapshots.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        obs::CounterAdd("test/mt_counter", 1);
        obs::GaugeMax("test/mt_gauge", static_cast<std::uint64_t>(i));
        obs::HistogramRecord("test/mt_hist", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  obs::CounterAdd("test/mt_counter", 1);  // this thread's live shard too

  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test/mt_counter"), 401u);
  EXPECT_EQ(snap.gauges.at("test/mt_gauge"), 99u);
  EXPECT_EQ(snap.histograms.at("test/mt_hist").count, 400u);
}

TEST_F(ObsRuntimeTest, ResetClearsValuesKeepsIds) {
  obs::CounterHandle handle("test/reset_counter");
  handle.Add(5);
  Registry::Global().Reset();
  EXPECT_TRUE(Registry::Global().Snapshot().empty());
  handle.Add(2);  // interned id stays valid across Reset
  EXPECT_EQ(Registry::Global().Snapshot().counters.at("test/reset_counter"),
            2u);
}

TEST_F(ObsRuntimeTest, JsonAndCsvExports) {
  obs::CounterAdd("test/c", 1);
  obs::GaugeMax("test/g", 2);
  obs::HistogramRecord("test/h", 3);
  MetricsSnapshot snap = Registry::Global().Snapshot();

  std::ostringstream json;
  snap.WriteJson(json);
  std::string j = json.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"test/c\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"buckets\""), std::string::npos);

  std::ostringstream csv;
  snap.WriteCsv(csv);
  std::string c = csv.str();
  EXPECT_NE(c.find("metric,kind,count,sum,mean,max"), std::string::npos);
  EXPECT_NE(c.find("test/c,counter"), std::string::npos);
  EXPECT_NE(c.find("test/h,histogram"), std::string::npos);
}

TEST_F(ObsRuntimeTest, SpansRecordAndExportChromeTrace) {
  {
    EGO_SPAN("test/outer", 42);
    EGO_SPAN("test/inner");
  }
  obs::ScopedSpan manual("test/manual");
  manual.End();
  manual.End();  // idempotent

  auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);

  std::ostringstream os;
  Tracer::Global().WriteChromeTrace(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"test/outer\""), std::string::npos);
  EXPECT_NE(out.find("\"value\": 42"), std::string::npos);
  EXPECT_EQ(out.find("test/never"), std::string::npos);
}

TEST_F(ObsRuntimeTest, SpanStartedDisabledNotRecorded) {
  obs::SetEnabled(false);
  {
    EGO_SPAN("test/while_off");
  }
  obs::SetEnabled(true);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

/// End-to-end: a census run populates matcher + engine metrics and phase
/// spans, for both the CN and the GQL matcher.
TEST_F(ObsRuntimeTest, CensusPopulatesMetricsForBothMatchers) {
  GeneratorOptions gen;
  gen.num_nodes = 200;
  gen.edges_per_node = 5;
  gen.num_labels = 1;
  gen.seed = 11;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(false);
  auto focal = AllNodes(graph);

  CensusOptions options;
  options.algorithm = CensusAlgorithm::kPtBas;
  // This test observes the matchers' metrics, so the fast path (which
  // skips matching entirely) must not take the census.
  options.fast_path = FastPathMode::kOff;
  options.k = 1;

  auto cn = RunCensus(graph, pattern, focal, options);
  ASSERT_TRUE(cn.ok());
  ASSERT_GT(cn->stats.num_matches, 0u);  // metrics below depend on matches
  MetricsSnapshot cn_snap = Registry::Global().Snapshot();
  EXPECT_GT(cn_snap.histograms.at("match/cn/candidate_set_size").count, 0u);
  EXPECT_GT(cn_snap.histograms.at("census/neighborhood_size").count, 0u);
  EXPECT_EQ(cn_snap.counters.at("census/pt-bas/num_matches"),
            cn->stats.num_matches);

  Registry::Global().Reset();
  options.use_gql_matcher = true;
  auto gql = RunCensus(graph, pattern, focal, options);
  ASSERT_TRUE(gql.ok());
  MetricsSnapshot gql_snap = Registry::Global().Snapshot();
  EXPECT_GT(gql_snap.histograms.at("match/gql/candidate_set_size").count, 0u);
  EXPECT_EQ(gql_snap.histograms.count("match/cn/candidate_set_size"), 0u);

  // Same matches either way (GQL is the baseline matcher, not an
  // approximation), and the census phases appear as spans.
  EXPECT_EQ(gql->stats.num_matches, cn->stats.num_matches);
  EXPECT_EQ(gql->counts, cn->counts);
  bool saw_match = false;
  bool saw_count = false;
  for (const auto& span : Tracer::Global().Snapshot()) {
    if (std::string(span.name) == "census/match") saw_match = true;
    if (std::string(span.name) == "census/count") saw_count = true;
  }
  EXPECT_TRUE(saw_match);
  EXPECT_TRUE(saw_count);
}

TEST_F(ObsRuntimeTest, ParallelCensusRecordsWorkerSpansAndPoolCounters) {
  GeneratorOptions gen;
  gen.num_nodes = 400;
  gen.edges_per_node = 4;
  gen.num_labels = 1;
  gen.seed = 5;
  Graph graph = GeneratePreferentialAttachment(gen);
  Pattern pattern = MakeTriangle(false);
  auto focal = AllNodes(graph);

  CensusOptions options;
  options.algorithm = CensusAlgorithm::kNdBas;
  options.k = 1;
  options.num_threads = 4;
  auto parallel = RunCensus(graph, pattern, focal, options);
  ASSERT_TRUE(parallel.ok());

  MetricsSnapshot snap = Registry::Global().Snapshot();
  // Every chunk is either owned or stolen; together they cover the job.
  std::uint64_t chunks = snap.counters.at("pool/chunks_own");
  auto stolen = snap.counters.find("pool/chunks_stolen");
  if (stolen != snap.counters.end()) chunks += stolen->second;
  EXPECT_EQ(snap.histograms.at("pool/chunks_per_worker").sum, chunks);

  std::uint64_t workers_seen = 0;
  for (const auto& span : Tracer::Global().Snapshot()) {
    if (std::string(span.name) == "pool/worker") ++workers_seen;
  }
  EXPECT_EQ(workers_seen, 4u);

  // Parallel instrumentation observes, never perturbs: counts match a
  // serial run with observability off.
  obs::SetEnabled(false);
  options.num_threads = 1;
  auto serial = RunCensus(graph, pattern, focal, options);
  obs::SetEnabled(true);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(parallel->counts, serial->counts);
}

#endif  // EGO_OBS_ENABLED

}  // namespace
}  // namespace egocensus
